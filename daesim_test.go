package daesim_test

import (
	"testing"

	"daesim"
)

func TestQuickstartFlow(t *testing.T) {
	tr, err := daesim.Workload("FLO52Q", 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := suite.RunDM(daesim.Params{Window: 64, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := suite.RunSWSM(daesim.Params{Window: 64, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Cycles >= sw.Cycles {
		t.Fatalf("headline result violated: DM %d, SWSM %d", dm.Cycles, sw.Cycles)
	}
	serial := daesim.SerialCycles(tr, daesim.DefaultTiming(60))
	if daesim.Speedup(serial, dm.Cycles) <= 1 {
		t.Fatal("DM speedup should exceed 1")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	specs := daesim.Workloads()
	if len(specs) != 7 {
		t.Fatalf("want 7 workloads, got %d", len(specs))
	}
	if _, err := daesim.Workload("NOPE", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCustomKernelThroughPublicAPI(t *testing.T) {
	b := daesim.NewKernel("custom")
	arr := b.Array("a", 64, 8)
	base := b.Int()
	var acc daesim.Val
	for i := 0; i < 32; i++ {
		v := b.Load(arr, i%64, base)
		if acc.Valid() {
			acc = b.FP(v, acc)
		} else {
			acc = b.FP(v)
		}
	}
	b.Store(arr, 0, acc, base)
	tr, err := b.Trace()
	if err != nil {
		t.Fatal(err)
	}
	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := suite.RunDM(daesim.Params{Window: 16, MD: 0})
	if err != nil {
		t.Fatal(err)
	}
	r60, err := suite.RunDM(daesim.Params{Window: 16, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	if r60.Cycles < r0.Cycles {
		t.Fatal("md=60 should not be faster than md=0")
	}
}

func TestMemoryModelsThroughPublicAPI(t *testing.T) {
	tr, err := daesim.Workload("TRACK", 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		t.Fatal(err)
	}
	bypass, err := daesim.NewBypassMem(60, 128)
	if err != nil {
		t.Fatal(err)
	}
	base, err := suite.RunDM(daesim.Params{Window: 64, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	with, err := suite.RunDM(daesim.Params{Window: 64, MD: 60, Mem: bypass})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cycles > base.Cycles {
		t.Fatalf("bypass should not hurt: %d vs %d", with.Cycles, base.Cycles)
	}
	if bypass.HitRate() <= 0 {
		t.Fatal("bypass should observe hits on TRACK's strided measurements")
	}
}

func TestEquivalentWindowThroughPublicAPI(t *testing.T) {
	tr, err := daesim.Workload("MDG", 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok, err := daesim.EquivalentWindowRatio(daesim.NewRunner(suite), daesim.Params{Window: 50, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("search saturated")
	}
	if ratio < 1.0 || ratio > 8.0 {
		t.Fatalf("ratio %.2f out of expected band", ratio)
	}
}
