package daesim_test

// Benchmark harness: one benchmark per paper artifact (Table 1, Figures
// 4-9) plus engine microbenchmarks. Each artifact benchmark regenerates
// the table or figure end to end (workload construction, lowering,
// simulation sweep) and reports the artifact's headline number as a
// custom metric, so `go test -bench=.` both times the harness and prints
// the reproduced result.

import (
	"sync"
	"testing"

	"daesim"
	"daesim/internal/experiments"
)

// benchSuite caches lowered programs for the microbenchmarks only; the
// artifact benchmarks rebuild everything per iteration on purpose.
var (
	benchOnce  sync.Once
	benchFLO   *daesim.Suite
	benchTRACK *daesim.Suite
)

func suites(b *testing.B) (*daesim.Suite, *daesim.Suite) {
	b.Helper()
	benchOnce.Do(func() {
		for _, s := range []struct {
			name string
			dst  **daesim.Suite
		}{{"FLO52Q", &benchFLO}, {"TRACK", &benchTRACK}} {
			tr, err := daesim.Workload(s.name, 1)
			if err != nil {
				panic(err)
			}
			suite, err := daesim.NewSuite(tr, daesim.Classic)
			if err != nil {
				panic(err)
			}
			*s.dst = suite
		}
	})
	return benchFLO, benchTRACK
}

// BenchmarkEngineDM measures raw simulation throughput of the decoupled
// machine at the paper's headline operating point (pool-backed scratch).
func BenchmarkEngineDM(b *testing.B) {
	flo, _ := suites(b)
	ops := float64(flo.DM.Program.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flo.RunDM(daesim.Params{Window: 64, MD: 60})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkEngineSWSM measures raw simulation throughput of the
// superscalar machine (pool-backed scratch).
func BenchmarkEngineSWSM(b *testing.B) {
	flo, _ := suites(b)
	ops := float64(flo.SWSM.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flo.RunSWSM(daesim.Params{Window: 64, MD: 60}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkEngineDMScratch is BenchmarkEngineDM on a caller-held Sim,
// the pattern sweep workers use: no pool round-trip, scratch stays warm
// for the goroutine's whole lifetime.
func BenchmarkEngineDMScratch(b *testing.B) {
	flo, _ := suites(b)
	ops := float64(flo.DM.Program.Len())
	sim := daesim.NewSim()
	if _, err := flo.RunDMWith(sim, daesim.Params{Window: 64, MD: 60}); err != nil {
		b.Fatal(err) // warm the scratch so growth isn't timed
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flo.RunDMWith(sim, daesim.Params{Window: 64, MD: 60}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkEngineSWSMScratch is BenchmarkEngineSWSM on a caller-held Sim.
func BenchmarkEngineSWSMScratch(b *testing.B) {
	flo, _ := suites(b)
	ops := float64(flo.SWSM.Len())
	sim := daesim.NewSim()
	if _, err := flo.RunSWSMWith(sim, daesim.Params{Window: 64, MD: 60}); err != nil {
		b.Fatal(err) // warm the scratch so growth isn't timed
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flo.RunSWSMWith(sim, daesim.Params{Window: 64, MD: 60}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkLowering measures trace construction and machine lowering.
func BenchmarkLowering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := daesim.Workload("MDG", 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := daesim.NewSuite(tr, daesim.Classic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (DM latency-hiding effectiveness
// for the seven programs, MD=60) and reports TRACK's unlimited-window
// LHE, the poorly-effective band's headline value.
func BenchmarkTable1(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext()
		res, err := ctx.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last = res.Rows[len(res.Rows)-1].Unlimited
	}
	b.ReportMetric(last, "LHE(TRACK,inf)")
}

func benchFigure(b *testing.B, workload string) {
	var gap float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext()
		res, err := ctx.Figure(workload)
		if err != nil {
			b.Fatal(err)
		}
		n := len(res.Series[2].Y) - 1
		gap = res.Series[2].Y[n] / res.Series[3].Y[n]
	}
	b.ReportMetric(gap, "DM/SWSM@w100,md60")
}

// BenchmarkFigure4 regenerates Figure 4 (FLO52Q speedup vs window) and
// reports the DM/SWSM speedup gap at window 100, MD=60.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, "FLO52Q") }

// BenchmarkFigure5 regenerates Figure 5 (MDG speedup vs window).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, "MDG") }

// BenchmarkFigure6 regenerates Figure 6 (TRACK speedup vs window).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "TRACK") }

func benchRatioFigure(b *testing.B, workload string) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext()
		res, err := ctx.RatioFigure(workload)
		if err != nil {
			b.Fatal(err)
		}
		md60 := res.Series[len(res.Series)-1]
		// Ratio at the realistic DM window of 60 slots.
		for j, x := range md60.X {
			if x == 60 {
				ratio = md60.Y[j]
			}
		}
	}
	b.ReportMetric(ratio, "ratio@w60,md60")
}

// BenchmarkFigure7 regenerates Figure 7 (FLO52Q equivalent window ratio)
// and reports the MD=60 ratio at a 60-slot DM window.
func BenchmarkFigure7(b *testing.B) { benchRatioFigure(b, "FLO52Q") }

// BenchmarkFigure8 regenerates Figure 8 (MDG equivalent window ratio).
func BenchmarkFigure8(b *testing.B) { benchRatioFigure(b, "MDG") }

// BenchmarkFigure9 regenerates Figure 9 (TRACK equivalent window ratio).
func BenchmarkFigure9(b *testing.B) { benchRatioFigure(b, "TRACK") }

// BenchmarkAblationSplit regenerates the A1 issue-width-split ablation
// point grid for TRACK.
func BenchmarkAblationSplit(b *testing.B) {
	_, track := suites(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, split := range [][2]int{{2, 7}, {4, 5}, {6, 3}} {
			if _, err := track.RunDM(daesim.Params{Window: 64, MD: 60, AUWidth: split[0], DUWidth: split[1]}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEquivalentWindowSearch measures one Figure 7-9 search step:
// finding the SWSM window matching a DM configuration. A fresh Runner
// per iteration keeps the measurement honest: nothing is memoized across
// iterations, so the number reflects a full cold search.
func BenchmarkEquivalentWindowSearch(b *testing.B) {
	flo, _ := suites(b)
	for i := 0; i < b.N; i++ {
		r := daesim.NewRunner(flo)
		if _, _, err := daesim.EquivalentWindowRatio(r, daesim.Params{Window: 50, MD: 60}); err != nil {
			b.Fatal(err)
		}
	}
}
