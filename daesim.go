// Package daesim reproduces Jones & Topham, "A Comparison of Data
// Prefetching on an Access Decoupled and Superscalar Machine" (MICRO-30,
// 1997): a trace-driven simulator of an access decoupled machine (DM) and
// a single-window out-of-order superscalar machine (SWSM), the seven
// PERFECT-club-style workloads the paper evaluates, and drivers that
// regenerate every table and figure of its evaluation.
//
// # Quick start
//
//	tr, _ := daesim.Workload("FLO52Q", 1)
//	suite, _ := daesim.NewSuite(tr, daesim.Classic)
//	res, _ := suite.RunDM(daesim.Params{Window: 64, MD: 60})
//	fmt.Println(res.Cycles, res.IPC())
//
// # Architecture
//
// Traces (package-internal dataflow DAGs with perfect renaming and no
// branches, per the paper's idealized environment) are authored with the
// kernel builder, partitioned into AU/DU streams, lowered to machine
// programs, and executed on an event-driven out-of-order window engine.
// See DESIGN.md for the full inventory and EXPERIMENTS.md for measured
// results against the paper.
package daesim

import (
	"daesim/internal/daemon"
	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/isa"
	"daesim/internal/kernel"
	"daesim/internal/machine"
	"daesim/internal/memsys"
	"daesim/internal/metrics"
	"daesim/internal/partition"
	"daesim/internal/sweep"
	"daesim/internal/trace"
	"daesim/internal/workgen"
	"daesim/internal/workloads"
)

// Machine models.
type (
	// Kind selects a machine model: DM or SWSM.
	Kind = machine.Kind
	// Params configures one simulation run; the zero value plus Window and
	// MD reproduces the paper's configuration (AU/DU widths 4/5, SWSM
	// width 9, FP latency 3, window-scaled memory queue).
	Params = machine.Params
	// Suite holds the lowered programs for one trace; build once, run many
	// configurations.
	Suite = machine.Suite
	// Result reports cycles and microarchitectural statistics.
	Result = engine.Result
	// MemModel abstracts the memory system (see Fixed, Ports, Outstanding,
	// Bypass).
	MemModel = engine.MemModel
	// Sim is a reusable engine scratch context: hold one per goroutine and
	// pass it to Suite.RunDMWith/RunSWSMWith so repeated runs allocate
	// almost nothing. The plain Run methods draw from a shared pool.
	Sim = engine.Sim
)

// NewSim returns an empty reusable simulation context (see Sim).
func NewSim() *Sim { return engine.NewSim() }

// Machine kinds.
const (
	// DM is the access decoupled machine (AU + DU + decoupled memory).
	DM = machine.DM
	// SWSM is the single-window superscalar machine with a prefetch buffer.
	SWSM = machine.SWSM
)

// Unbounded disables the outstanding-fill queue limit in Params.MemQueue.
const Unbounded = machine.Unbounded

// RetirePolicy selects how window slots are reclaimed (Params.Retire).
// The zero value RetireAuto resolves to the machine default — in-order
// (ROB/FIFO-queue-style) on both machines; RetireAtComplete forces the
// older free-at-completion accounting (ablation A6, EXPERIMENTS.md).
type RetirePolicy = machine.RetirePolicy

const (
	// RetireAuto picks the machine default: in-order on both machines.
	RetireAuto = machine.RetireAuto
	// RetireAtComplete frees a window slot when its op completes.
	RetireAtComplete = machine.RetireAtComplete
	// RetireInOrder frees window slots in program order (reorder buffer).
	RetireInOrder = machine.RetireInOrder
)

// Partition policies for the decoupled machine.
type Policy = partition.Policy

const (
	// Classic places all integer computation on the AU (the paper's
	// machine).
	Classic = partition.Classic
	// SliceOnly places only the address slice on the AU.
	SliceOnly = partition.SliceOnly
	// Balance greedily balances non-slice integer ops.
	Balance = partition.Balance
)

// Traces and workloads.
type (
	// Trace is a machine-independent instruction trace.
	Trace = trace.Trace
	// WorkloadSpec describes one of the seven benchmark models.
	WorkloadSpec = workloads.Spec
	// KernelBuilder authors custom workload traces.
	KernelBuilder = kernel.Builder
	// Val is an SSA value handle produced by the kernel builder.
	Val = kernel.Val
	// Timing holds latency parameters (MD, FP latency, copy latency).
	Timing = isa.Timing
)

// NewSuite lowers tr for both machines under the given partition policy.
func NewSuite(tr *Trace, pol Policy) (*Suite, error) { return machine.NewSuite(tr, pol) }

// Workload builds a trace by name at the given scale (1 = the
// calibrated default size): one of the seven PERFECT-club-style
// kernels (TRFD, ADM, FLO52Q, DYFESM, QCD, MDG, TRACK), or a generated
// workload "spec:depth=8,ilp=4,..." (see GenSpec).
func Workload(name string, scale int) (*Trace, error) { return workloads.Build(name, scale) }

// Workloads lists the seven benchmark specs in the paper's Table 1 order.
func Workloads() []WorkloadSpec { return workloads.Catalog() }

// NewKernel returns a builder for authoring a custom workload trace.
func NewKernel(name string) *KernelBuilder { return kernel.New(name) }

// Generated workloads: any point in the knob space the study is
// sensitive to is a workload (DESIGN.md §14). A GenSpec parses from
// the "depth=8,ilp=4,mem=0.4,addr=gather,..." grammar, generates
// deterministically from its seed, and its Name (the canonical
// spelling under the "spec:" prefix) works wherever a workload name
// does — Workload, sweeps, the daemon, the cache.
type (
	// GenSpec parameterizes a generated workload: FP chain depth, lane
	// ILP, memory intensity, address-slice shape, DU→AU hazard rate.
	GenSpec = workgen.Spec
	// GenShape is a GenSpec's address-slice shape knob.
	GenShape = workgen.Shape
)

// Address-slice shapes for GenSpec.Addr.
const (
	// GenAffine computes addresses from the lane base alone.
	GenAffine = workgen.Affine
	// GenGather inserts an index load ahead of each data load.
	GenGather = workgen.Gather
	// GenChase makes each address depend on the previously loaded value.
	GenChase = workgen.Chase
	// GenMixed draws the shape per load from the coordinate hash.
	GenMixed = workgen.Mixed
)

// ParseGenSpec parses a generated-workload spec such as
// "depth=8,ilp=4,mem=0.4,addr=gather" (without the "spec:" name
// prefix); omitted knobs take defaults.
func ParseGenSpec(s string) (GenSpec, error) { return workgen.Parse(s) }

// SerialCycles is the serial-reference execution time used as the
// speedup baseline (see machine.SerialCycles).
func SerialCycles(tr *Trace, tm Timing) int64 { return machine.SerialCycles(tr, tm) }

// DefaultTiming returns the paper's latencies with the given memory
// differential.
func DefaultTiming(md int) Timing { return isa.DefaultTiming(md) }

// Sweeping and searching. A Runner executes simulation points against
// one suite, in parallel, memoizing results so overlapping sweeps do not
// re-simulate; a Search runs the speculative-parallel equivalent-window
// and crossover searches against a Runner on a warm scratch pool. A
// Store adds a persistent on-disk layer behind a Runner's in-memory
// cache: results survive process restarts, keyed by engine version,
// workload content fingerprint and canonical parameters, so re-runs skip
// every point they have seen before (DESIGN.md §9), and Store.GC keeps
// it bounded (GCPolicy). A DaemonClient serves the same sweeps from a
// long-lived sweepd process instead of simulating locally
// (DESIGN.md §10).
type (
	// Runner is a parallel, memoizing simulation executor for one Suite.
	// Set Runner.Store to persist results across processes.
	Runner = sweep.Runner
	// Point identifies one simulation for a Runner or a DaemonClient: a
	// machine kind plus parameters.
	Point = sweep.Point
	// Search runs equivalent-window and crossover searches against a
	// Runner (see NewSearch).
	Search = metrics.Search
	// Store is a persistent, content-addressed, corruption-tolerant
	// on-disk result cache, safe for concurrent processes.
	Store = sweep.Store
	// CacheStats counts where a Runner's results came from.
	CacheStats = sweep.CacheStats
	// StoreStats is a snapshot of a Store's traffic counters.
	StoreStats = sweep.StoreStats
	// GCPolicy bounds a Store for garbage collection (Store.GC): entry
	// count, total bytes, and age since last access; LRU entries are
	// evicted first. Zero fields are unbounded.
	GCPolicy = sweep.GCPolicy
	// GCResult reports one Store.GC pass (entries scanned, evicted, kept).
	GCResult = sweep.GCResult
	// DaemonClient talks to a running sweepd daemon (cmd/sweepd): run
	// single points, sharded sweeps and equivalent-window searches on a
	// long-lived server with a shared persistent cache, query its cache
	// statistics, and trigger store GC. Every method takes a
	// context.Context that cancels the request in flight. Bind
	// DaemonClient.Run to a context and attach it to Experiments.Remote
	// (or, bound to one workload, Runner.Remote) to route a local
	// sweep's cacheable simulations through the daemon — repro -remote
	// is exactly that wiring. See DESIGN.md §10.
	DaemonClient = daemon.Client
	// DaemonFleet routes simulations across several sweepd replicas by
	// consistent hashing of cache keys, with per-replica health checks
	// and an explicit failure ladder: ring-order failover with bounded,
	// deterministically-jittered backoff, per-replica circuit breakers
	// with probe-on-recovery, penalty-free rerouting off draining
	// replicas, optional hedged single-point requests (HedgeDelay), and
	// partial-batch returns that let a Degrade-enabled Runner simulate
	// unserved points locally. Bind DaemonFleet.Run and
	// DaemonFleet.RunBatch to a context and attach them to
	// Experiments.Remote/RemoteBatch to shard a sweep across the fleet
	// with batched round trips — repro -remote url1,url2,... is exactly
	// that wiring. See DESIGN.md §11 and §13.
	DaemonFleet = daemon.FleetClient
	// FleetRing is the consistent-hash ring behind DaemonFleet: a pure
	// function of the replica address list, deterministic across
	// processes, remapping ~1/N of the keyspace per membership change.
	FleetRing = daemon.Ring
)

// NewRunner returns a memoizing Runner for the suite.
func NewRunner(s *Suite) *Runner { return sweep.NewRunner(s) }

// OpenStore opens (creating if needed) a persistent result cache rooted
// at dir. Attach it to a Runner (Runner.Store) or an experiment context
// (Experiments.Cache) before the first run.
func OpenStore(dir string) (*Store, error) { return sweep.OpenStore(dir) }

// NewSearch returns a Search against the runner. Hold one per sweep so
// its per-worker scratch contexts stay warm across search points.
func NewSearch(r *Runner) *Search { return metrics.NewSearch(r) }

// ParseGCPolicy parses a comma-separated Store GC bound list, e.g.
// "max-entries=500,max-bytes=64mb,max-age=168h" (the syntax of
// repro -cache-gc and sweepd -gc). Omitted bounds are unlimited.
func ParseGCPolicy(spec string) (GCPolicy, error) { return sweep.ParseGCPolicy(spec) }

// NewDaemonClient returns a client for the sweepd daemon at baseURL
// (e.g. "http://127.0.0.1:8077").
func NewDaemonClient(baseURL string) *DaemonClient { return daemon.NewClient(baseURL) }

// NewDaemonFleet returns a client routing across the sweepd replicas at
// the given base URLs. Every client of a fleet must list the same
// addresses (the URL strings are the ring identity).
func NewDaemonFleet(urls []string) (*DaemonFleet, error) { return daemon.NewFleetClient(urls) }

// NewFleetRing builds the consistent-hash ring over the member names —
// exposed for capacity planning and tests; DaemonFleet builds its own.
func NewFleetRing(members []string) *FleetRing { return daemon.NewRing(members) }

// Metrics.
var (
	// Speedup returns serial/actual.
	Speedup = metrics.Speedup
	// LHE returns the latency-hiding effectiveness T_perfect/T_actual.
	LHE = metrics.LHE
	// EquivalentWindow returns the smallest SWSM window matching a target
	// time, probing through the runner's cache.
	EquivalentWindow = metrics.EquivalentWindow
	// EquivalentWindowRatio runs the DM and reports the SWSM/DM window
	// ratio of Figures 7-9.
	EquivalentWindowRatio = metrics.EquivalentWindowRatio
	// Crossover finds the first window where the SWSM matches the DM.
	Crossover = metrics.Crossover
)

// Memory models for Params.Mem (the default is the paper's fixed
// differential behind a window-scaled outstanding-fill queue).
type (
	// FixedMem is the paper's fixed-differential model.
	FixedMem = memsys.Fixed
	// PortsMem models finite memory bandwidth.
	PortsMem = memsys.Ports
	// OutstandingMem bounds outstanding fills (decoupled-memory or
	// prefetch-buffer capacity).
	OutstandingMem = memsys.Outstanding
	// BypassMem is the paper's future-work bypass buffer: a line-grain LRU
	// buffer capturing the temporal locality exposed by decoupling.
	BypassMem = memsys.Bypass
	// CacheHierarchy is a multi-level LRU cache refining the fixed
	// differential (full misses pay MD).
	CacheHierarchy = memsys.Hierarchy
	// CacheLevel configures one level of a CacheHierarchy.
	CacheLevel = memsys.CacheLevel
)

// NewPortsMem returns a bandwidth-limited memory model.
func NewPortsMem(md int64, ports int) (*PortsMem, error) { return memsys.NewPorts(md, ports) }

// NewOutstandingMem returns a capacity-limited memory model.
func NewOutstandingMem(md int64, capacity int) (*OutstandingMem, error) {
	return memsys.NewOutstanding(md, capacity)
}

// NewBypassMem returns a bypass-buffer memory model.
func NewBypassMem(md int64, lines int) (*BypassMem, error) { return memsys.NewBypass(md, lines) }

// NewCacheHierarchy returns a multi-level cache memory model ordered from
// L1 outward.
func NewCacheHierarchy(md int64, levels ...CacheLevel) (*CacheHierarchy, error) {
	return memsys.NewHierarchy(md, levels...)
}

// DefaultCacheHierarchy returns the Pentium-Pro-flavoured two-level
// hierarchy used by the A7 study.
func DefaultCacheHierarchy(md int64) (*CacheHierarchy, error) {
	return memsys.DefaultHierarchy(md)
}

// Experiments: regenerate the paper's evaluation.
type (
	// Experiments caches workloads across experiment drivers.
	Experiments = experiments.Context
	// Table1Result is the reproduction of Table 1.
	Table1Result = experiments.Table1Result
	// FigureResult is the reproduction of one of Figures 4-6.
	FigureResult = experiments.FigureResult
	// RatioResult is the reproduction of one of Figures 7-9.
	RatioResult = experiments.RatioResult
)

// NewExperiments returns an experiment context at scale 1.
func NewExperiments() *Experiments { return experiments.NewContext() }
