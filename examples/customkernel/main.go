// Custom workload authoring: build a sparse matrix-vector product kernel
// (gathers through a column-index array) with the kernel builder, compare
// partition policies on the decoupled machine, and measure the bypass
// buffer the paper proposes as future work.
package main

import (
	"fmt"
	"log"

	"daesim"
)

// buildSpMV emits y[r] = sum_j A[r,j] * x[col[r,j]] over a band matrix:
// per element an index load (AU self-load), a value load, a gathered x
// load, and a multiply-accumulate chain.
func buildSpMV(rows, nnzPerRow int) *daesim.Trace {
	b := daesim.NewKernel("spmv")
	colIdx := b.Array("COL", rows*nnzPerRow, 8)
	vals := b.Array("VAL", rows*nnzPerRow, 8)
	x := b.Array("X", rows, 8)
	y := b.Array("Y", rows, 8)
	for r := 0; r < rows; r++ {
		base := b.Int()
		// Integer row bookkeeping (scaling exponent): pure data integer
		// work, so the partition policies place it differently.
		scale := b.Int(b.Int(base))
		var acc daesim.Val
		for j := 0; j < nnzPerRow; j++ {
			k := r*nnzPerRow + j
			col := b.Load(colIdx, k, base) // column index: AU self-load
			xa := b.Int(col)
			xv := b.Load(x, (r+j)%rows, xa) // gathered x element
			av := b.Load(vals, k, base)
			p := b.FP(av, xv)
			if acc.Valid() {
				acc = b.FP(p, acc)
			} else {
				acc = p
			}
		}
		acc = b.FP(acc, scale) // apply the row scaling
		b.Store(y, r, acc, base)
	}
	tr, err := b.Trace()
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	tr := buildSpMV(1200, 8)
	fmt.Printf("custom SpMV kernel: %d instructions\n\n", tr.Len())

	fmt.Println("partition policy comparison (window 64, MD=60):")
	for _, pol := range []daesim.Policy{daesim.Classic, daesim.SliceOnly, daesim.Balance} {
		suite, err := daesim.NewSuite(tr, pol)
		if err != nil {
			log.Fatal(err)
		}
		res, err := suite.RunDM(daesim.Params{Window: 64, MD: 60})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s %9d cycles  (AU ops %d, DU ops %d, copies %d)\n",
			pol, res.Cycles,
			suite.DM.Assignment.OpsAU, suite.DM.Assignment.OpsDU,
			suite.DM.CopiesAUDU+suite.DM.CopiesDUAU)
	}

	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		log.Fatal(err)
	}
	base, err := suite.RunDM(daesim.Params{Window: 64, MD: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbypass buffer (the paper's future work):")
	fmt.Printf("  %-11s %9d cycles\n", "none", base.Cycles)
	for _, lines := range []int{32, 128, 512} {
		bp, err := daesim.NewBypassMem(60, lines)
		if err != nil {
			log.Fatal(err)
		}
		res, err := suite.RunDM(daesim.Params{Window: 64, MD: 60, Mem: bp})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d lines  %9d cycles  (hit rate %.0f%%)\n", lines, res.Cycles, 100*bp.HitRate())
	}
}
