// Latency-hiding study (the paper's Table 1): measure how effectively
// the decoupled machine hides a 60-cycle memory differential for all
// seven workloads across window sizes, reproducing the three effectiveness
// bands and the dip-then-recover shape the paper reports.
package main

import (
	"fmt"
	"log"

	"daesim"
)

func main() {
	windows := []int{8, 16, 32, 64, 128, 0} // 0 = unlimited
	fmt.Printf("DM latency-hiding effectiveness, MD=60 (LHE = T_perfect/T_actual)\n\n")
	fmt.Printf("%-8s", "prog")
	for _, w := range windows {
		if w == 0 {
			fmt.Printf("%10s", "unlimited")
		} else {
			fmt.Printf("%10d", w)
		}
	}
	fmt.Println()

	for _, spec := range daesim.Workloads() {
		tr := spec.Build(1)
		suite, err := daesim.NewSuite(tr, daesim.Classic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", spec.Name)
		for _, w := range windows {
			actual, err := suite.RunDM(daesim.Params{Window: w, MD: 60})
			if err != nil {
				log.Fatal(err)
			}
			perfect, err := suite.PerfectCycles(daesim.DM, daesim.Params{Window: w, MD: 60})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.2f", daesim.LHE(perfect, actual.Cycles))
		}
		fmt.Printf("   (%s)\n", spec.Band)
	}
	fmt.Println("\nNote the bands at unlimited windows (highly / moderately / poorly)")
	fmt.Println("and that finite windows hide far less than unlimited resources.")
}
