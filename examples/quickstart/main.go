// Quickstart: build the paper's showcase workload (FLO52Q), run both
// machine models at a realistic window size, and print the headline
// comparison — the decoupled machine hides a 60-cycle memory differential
// that swamps the single-window superscalar.
package main

import (
	"fmt"
	"log"

	"daesim"
)

func main() {
	tr, err := daesim.Workload("FLO52Q", 1)
	if err != nil {
		log.Fatal(err)
	}
	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload FLO52Q: %d instructions\n\n", tr.Len())
	fmt.Printf("%-8s %-8s %12s %10s %10s\n", "machine", "md", "cycles", "IPC", "speedup")
	for _, md := range []int{0, 60} {
		serial := daesim.SerialCycles(tr, daesim.DefaultTiming(md))
		for _, kind := range []daesim.Kind{daesim.DM, daesim.SWSM} {
			res, err := suite.Run(kind, daesim.Params{Window: 64, MD: md})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-8d %12d %10.2f %10.1f\n",
				kind, md, res.Cycles, res.IPC(), daesim.Speedup(serial, res.Cycles))
		}
	}

	dm, err := suite.RunDM(daesim.Params{Window: 64, MD: 60})
	if err != nil {
		log.Fatal(err)
	}
	sw, err := suite.RunSWSM(daesim.Params{Window: 64, MD: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt window 64 and MD=60 the decoupled machine is %.1fx faster;\n",
		float64(sw.Cycles)/float64(dm.Cycles))
	fmt.Println("at MD=0 and large windows the superscalar's full 9-wide issue wins instead.")
}
