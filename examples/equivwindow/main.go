// Equivalent-window study (the paper's Figures 7-9): how much larger
// must the superscalar's single window be to match the decoupled machine?
// The ratio grows with memory latency and shrinks as the DM window grows.
package main

import (
	"fmt"
	"log"

	"daesim"
)

func main() {
	tr, err := daesim.Workload("MDG", 1)
	if err != nil {
		log.Fatal(err)
	}
	suite, err := daesim.NewSuite(tr, daesim.Classic)
	if err != nil {
		log.Fatal(err)
	}
	// One memoizing runner + search for the whole table: scratch stays
	// warm and overlapping probes are simulated once.
	search := daesim.NewSearch(daesim.NewRunner(suite))

	mds := []int{0, 20, 40, 60}
	windows := []int{10, 20, 40, 60, 80, 100}

	fmt.Println("MDG: SWSM window needed to match the DM, as a ratio of the DM window")
	fmt.Printf("\n%-10s", "DM window")
	for _, md := range mds {
		fmt.Printf("  md=%-5d", md)
	}
	fmt.Println()
	for _, w := range windows {
		fmt.Printf("%-10d", w)
		for _, md := range mds {
			ratio, ok, err := search.EquivalentWindowRatio(daesim.Params{Window: w, MD: md})
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("  %-7s", ">cap")
				continue
			}
			fmt.Printf("  %-7.2f", ratio)
		}
		fmt.Println()
	}
	fmt.Println("\nAt MD=60 and realistic windows the SWSM needs a window roughly")
	fmt.Println("2x-4x larger — window logic delay grows quadratically with size")
	fmt.Println("(Palacharla et al.), which is the paper's complexity argument.")
}
