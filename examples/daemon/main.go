// Daemon client example: serve simulations from a long-lived sweepd
// (DESIGN.md §10) instead of simulating in-process. With -addr it talks
// to a daemon you started yourself (`go run ./cmd/sweepd -cache dir`);
// without, it spins up an in-process server on a loopback port so the
// example is self-contained. Either way the client-side code is the
// same: one point, a sharded sweep, an equivalent-window search, cache
// statistics, and a store GC pass — all over HTTP/JSON, all memoized
// server-side, so re-running this example against a live daemon does
// zero simulations the second time.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"daesim"
	"daesim/internal/daemon"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running sweepd (empty: start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		var stop func()
		var err error
		base, stop, err = startInProcess()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("started in-process daemon at %s\n\n", base)
	}

	client := daesim.NewDaemonClient(base)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// One point: the paper's headline configuration for FLO52Q.
	res, err := client.Run(ctx, "FLO52Q", 1, "", daesim.Point{Kind: daesim.DM, P: daesim.Params{Window: 64, MD: 60}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FLO52Q DM w=64 md=60: %d cycles, IPC %.2f\n\n", res.Cycles, res.IPC())

	// A sweep: both machines across a window grid, one request. The
	// daemon shards the batch across its worker pool and memoizes every
	// point, so an overlapping sweep (another client, a repro -remote
	// run) reuses these results.
	var pts []daesim.Point
	windows := []int{16, 32, 64, 96}
	for _, kind := range []daesim.Kind{daesim.DM, daesim.SWSM} {
		for _, w := range windows {
			pts = append(pts, daesim.Point{Kind: kind, P: daesim.Params{Window: w, MD: 60}})
		}
	}
	results, err := client.Sweep(ctx, "FLO52Q", 1, pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("window    DM cycles    SWSM cycles")
	for i, w := range windows {
		fmt.Printf("%-9d %-12d %d\n", w, results[i].Cycles, results[len(windows)+i].Cycles)
	}

	// An equivalent-window search (the Figures 7-9 metric), probed
	// entirely through the daemon's cache.
	search, err := client.Search(ctx, "FLO52Q", 1, daemon.SearchRequest{
		Op:     daemon.SearchRatio,
		Params: daemon.Params{Window: 60, MD: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nequivalent-window ratio at w=60 md=60: %.3f (ok=%v)\n", search.Ratio, search.OK)

	// Cache statistics and a GC pass.
	stats, err := client.CacheStats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaemon cache: %d sims, %d L1 hits, hit rate %.1f%%, %d store entries\n",
		stats.Runner.Sims, stats.Runner.L1Hits, 100*stats.HitRate, stats.StoreEntries)
	gc, err := client.GC(ctx, daesim.GCPolicy{MaxEntries: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store GC (max-entries=1000): %s\n", gc)
}

// startInProcess runs a daemon inside this process on a loopback port,
// with a persistent store in a temp directory — the same wiring as
// cmd/sweepd, minus the process boundary.
func startInProcess() (base string, stop func(), err error) {
	dir, err := os.MkdirTemp("", "daesim-daemon-example-")
	if err != nil {
		return "", nil, err
	}
	store, err := daesim.OpenStore(filepath.Join(dir, "cache"))
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	srv := daemon.NewServer(daemon.Config{Store: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		os.RemoveAll(dir)
	}, nil
}
