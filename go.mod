module daesim

go 1.24
