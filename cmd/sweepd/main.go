// Command sweepd serves simulations and sweeps from a long-lived
// daemon: one memoizing, single-flight runner per (workload, scale,
// partition policy) over a shared persistent result store, behind an
// HTTP/JSON API (DESIGN.md §10).
//
// Usage:
//
//	sweepd [-addr :8077] [-cache dir] [-par 0] [-max-concurrent 0]
//	       [-timeout 0] [-gc ""] [-gc-interval 10m] [-drain 30s]
//	       [-drain-grace 500ms] [-quiet] [-replica id] [-fleet url1,url2,...]
//	       [-metrics=true]
//
// Endpoints: POST /v1/run (one point), POST /v1/sweep (a batch, sharded
// across the bounded pool), POST /v1/search (equivalent-window, ratio
// and crossover searches), POST /v1/batch/run and /v1/batch/search
// (many independent items in one round trip — the request-collapsing
// path of fleet clients), GET /v1/cache/stats, POST /v1/cache/gc,
// GET /healthz, and GET /metrics (Prometheus text exposition of the
// request, cache, store and admission-queue counters — DESIGN.md §15;
// disable with -metrics=false). -gc takes a sweep GC policy
// ("max-entries=N,max-bytes=N,max-age=DUR") enforced every -gc-interval
// in the background; /v1/cache/gc remains available on demand either
// way.
//
// As one replica of a fleet (DESIGN.md §11), give each daemon a unique
// -replica id and the full member list in -fleet — the same
// comma-separated URLs, spelled the same way, that clients pass to
// repro -remote. Both are advertised in /healthz so fleet clients can
// refuse a replica whose ring membership disagrees with theirs instead
// of silently splitting the keyspace.
//
// On SIGTERM or SIGINT the daemon drains gracefully in two steps:
// first it advertises "draining" — /healthz flips status and every new
// work request is refused with 503 plus the X-Sweepd-State header, so
// fleet clients reroute immediately and penalty-free (DESIGN.md §13) —
// for -drain-grace; then it stops accepting connections, lets in-flight
// requests finish for up to -drain, and exits with a final cache
// summary on stderr. Clients: repro -remote <url> routes a local
// reproduction's cacheable simulations here; examples/daemon shows the
// raw API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"daesim/internal/daemon"
	"daesim/internal/sweep"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		cacheDir   = flag.String("cache", "", "persistent result-cache directory (empty = memory only)")
		par        = flag.Int("par", 0, "max concurrent simulations per sweep and search (0 = GOMAXPROCS)")
		maxConc    = flag.Int("max-concurrent", 0, "max simulation requests executing at once (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "per-request timeout, queue wait included (0 = none)")
		gcSpec     = flag.String("gc", "", "background store GC policy, e.g. max-entries=5000,max-bytes=256mb,max-age=168h (empty = no background GC)")
		gcInterval = flag.Duration("gc-interval", 10*time.Minute, "background GC period (with -gc)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight requests")
		drainGrace = flag.Duration("drain-grace", 500*time.Millisecond, "time to advertise draining (503 + header, reroutes fleet clients) before closing listeners")
		quiet      = flag.Bool("quiet", false, "suppress per-request logging")
		replica    = flag.String("replica", "", "this daemon's replica id within a fleet (advertised in /healthz; must be unique)")
		fleet      = flag.String("fleet", "", "comma-separated URLs of every fleet member, matching the clients' -remote list (advertised in /healthz for membership-skew checks)")
		metrics    = flag.Bool("metrics", true, "serve GET /metrics (Prometheus text exposition)")
	)
	flag.Parse()
	if err := run(*addr, *cacheDir, *par, *maxConc, *timeout, *gcSpec, *gcInterval, *drain, *drainGrace, *quiet, *replica, *fleet, *metrics); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, par, maxConc int, timeout time.Duration, gcSpec string, gcInterval, drain, drainGrace time.Duration, quiet bool, replica, fleet string, metrics bool) error {
	cfg := daemon.Config{
		Parallelism:    par,
		MaxConcurrent:  maxConc,
		RequestTimeout: timeout,
		GCInterval:     gcInterval,
		ReplicaID:      replica,
		DisableMetrics: !metrics,
	}
	if fleet != "" {
		for _, u := range strings.Split(fleet, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.Fleet = append(cfg.Fleet, u)
			}
		}
	}
	if !quiet {
		cfg.Log = log.New(os.Stderr, "sweepd: ", log.LstdFlags)
	}
	if cacheDir != "" {
		store, err := sweep.OpenStore(cacheDir)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	if gcSpec != "" {
		if cfg.Store == nil {
			return fmt.Errorf("-gc needs -cache")
		}
		pol, err := sweep.ParseGCPolicy(gcSpec)
		if err != nil {
			return err
		}
		cfg.GCPolicy = pol
	}

	server := daemon.NewServer(cfg)
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT begin the graceful drain: stop accepting, let
	// in-flight sweeps finish (up to the drain budget), then report.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	go server.GCLoop(ctx)

	errc := make(chan error, 1)
	go func() {
		if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s (cache %s)\n", addr, orNone(cacheDir))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Two-step drain: advertise first (new work gets 503 + the draining
	// header, /healthz flips, fleet clients reroute without charging a
	// failure), hold the listeners open for the grace window so clients
	// actually observe the advertisement, then close them and wait out
	// the in-flight requests.
	fmt.Fprintln(os.Stderr, "sweepd: draining...")
	server.BeginDrain()
	if drainGrace > 0 {
		time.Sleep(drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := httpServer.Shutdown(shutdownCtx)
	stats := server.Stats()
	fmt.Fprintf(os.Stderr, "sweepd: served %d requests (%d received, %d refused, %d queue timeouts): %d sims, %d L1 hits, %d store hits (hit rate %.1f%%); store: %d writes, %d GC evictions\n",
		stats.Requests, stats.Received, stats.Refused, stats.QueueTimeouts,
		stats.Runner.Sims, stats.Runner.L1Hits, stats.Runner.StoreHits,
		100*stats.HitRate, stats.Store.Writes, stats.Store.GCEvictions)
	if err != nil {
		return fmt.Errorf("drain incomplete after %s: %w", drain, err)
	}
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
