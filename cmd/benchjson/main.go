// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH_engine.json) and the perf trajectory is diffable across
// PRs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine -benchmem . | benchjson > BENCH_engine.json
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) get stable JSON field
// names; custom -ReportMetric units (e.g. Mops/s) are collected under
// "metrics" keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"daesim/internal/benchparse"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	doc, err := benchparse.Parse(bufio.NewReader(in))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
