// Command tracedump inspects workload traces: statistics, partition
// summaries, listings, binary export/import and ingestion of externally
// recorded address traces.
//
// Usage:
//
//	tracedump -workload MDG [-n 40] [-stats] [-partition] [-o trace.bin]
//	tracedump -workload spec:depth=8,ilp=4,addr=gather -stats
//	tracedump -i trace.bin -stats
//	tracedump -ingest recorded.txt -o trace.bin
//
// -ingest reads the textual interchange format (see internal/trace
// ReadText): one instruction per line with ^N backward operand
// references and @ADDR memory addresses, so traces recorded from
// arbitrary programs become sweepable workloads — validate here, export
// with -o, and simulate the binary via the library. -text exports the
// same format, closing the round trip.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"daesim/internal/isa"
	"daesim/internal/partition"
	"daesim/internal/trace"
	"daesim/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to build (TRFD ADM FLO52Q DYFESM QCD MDG TRACK, or spec:depth=...)")
		in       = flag.String("i", "", "read a binary trace instead of building a workload")
		ingest   = flag.String("ingest", "", "read a textual address trace (see internal/trace ReadText) instead of building a workload")
		out      = flag.String("o", "", "write the trace in binary format to this file")
		text     = flag.String("text", "", "write the trace in the textual ingestion format to this file")
		n        = flag.Int("n", 20, "instructions to list (0 = all)")
		stats    = flag.Bool("stats", false, "print composition statistics")
		part     = flag.Bool("partition", false, "print AU/DU partition summary")
		reuse    = flag.Bool("reuse", false, "print line-grain reuse profile")
		dot      = flag.String("dot", "", "write the dependence graph (first -n instructions) as Graphviz to this file")
		scale    = flag.Int("scale", 1, "workload scale factor")
		list     = flag.Bool("list", false, "list instructions")
	)
	flag.Parse()
	if err := run(os.Stdout, *workload, *in, *ingest, *out, *text, *dot, *n, *scale, *stats, *part, *reuse, *list); err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, workload, in, ingest, out, text, dot string, n, scale int, stats, part, reuse, list bool) error {
	var tr *trace.Trace
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			return err
		}
	case ingest != "":
		f, err := os.Open(ingest)
		if err != nil {
			return err
		}
		defer f.Close()
		// The file may name itself with a "# trace NAME" directive; the
		// base name is the fallback identity.
		tr, err = trace.ReadText(f, "ingest:"+filepath.Base(ingest))
		if err != nil {
			return err
		}
	case workload != "":
		var err error
		tr, err = workloads.Build(workload, scale)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload, -i or -ingest (known workloads: %v)", workloads.Names())
	}

	if stats {
		st := tr.Stats()
		fmt.Fprintf(w, "trace %s: %v\n", tr.Name, st)
		fmt.Fprintf(w, "critical path: %d cycles at md=0, %d at md=60; mean ILP %.1f\n",
			tr.CriticalPath(isa.DefaultTiming(0)), tr.CriticalPath(isa.DefaultTiming(60)), tr.MeanILP())
	}
	if reuse {
		p := tr.Reuse()
		fmt.Fprintf(w, "reuse: %d refs over %d lines; median stack distance %d\n", p.Refs, p.Lines, p.MedianDistance())
		for _, c := range []int{16, 64, 256, 1024} {
			fmt.Fprintf(w, "  fully associative %4d lines would hit %5.1f%%\n", c, 100*p.HitRate(c))
		}
	}
	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteDot(f, n); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", dot)
	}
	if part {
		for _, pol := range partition.Policies() {
			a, err := partition.Partition(tr, pol)
			if err != nil {
				return err
			}
			s := a.Stats()
			fmt.Fprintf(w, "partition %-10s AU=%d DU=%d slice=%d self-loads=%d\n",
				pol, s.AUOps, s.DUOps, s.SliceSize, s.SelfLoads)
		}
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d instructions)\n", out, tr.Len())
	}
	if text != "" {
		f, err := os.Create(text)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteText(f, tr); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d instructions)\n", text, tr.Len())
	}
	if list || (!stats && !part && !reuse && out == "" && text == "" && dot == "") {
		return trace.Dump(w, tr, n)
	}
	return nil
}
