package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStatsAndPartitionAndReuse(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "MDG", "", "", "", 0, 1, true, true, true, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace MDG", "critical path", "partition classic", "self-loads", "reuse:", "fully associative"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestListDefault(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "TRFD", "", "", "", 5, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "showing 5") {
		t.Fatalf("default listing missing:\n%s", b.String())
	}
}

func TestBinaryRoundTripAndDot(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	dot := filepath.Join(dir, "t.dot")
	var b strings.Builder
	if err := run(&b, "QCD", "", bin, dot, 10, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Read the binary back and print stats.
	b.Reset()
	if err := run(&b, "", bin, "", "", 0, 1, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace QCD") {
		t.Fatalf("round trip lost the trace:\n%s", b.String())
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("dot export malformed")
	}
}

func TestNeedsInput(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", "", "", "", 0, 1, true, false, false, false); err == nil {
		t.Fatal("missing input accepted")
	}
}
