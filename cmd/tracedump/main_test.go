package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"daesim/internal/machine"
	"daesim/internal/partition"
	"daesim/internal/trace"
	"daesim/internal/workloads"
)

func TestStatsAndPartitionAndReuse(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "MDG", "", "", "", "", "", 0, 1, true, true, true, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace MDG", "critical path", "partition classic", "self-loads", "reuse:", "fully associative"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestListDefault(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "TRFD", "", "", "", "", "", 5, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "showing 5") {
		t.Fatalf("default listing missing:\n%s", b.String())
	}
}

func TestBinaryRoundTripAndDot(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	dot := filepath.Join(dir, "t.dot")
	var b strings.Builder
	if err := run(&b, "QCD", "", "", bin, "", dot, 10, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Read the binary back and print stats.
	b.Reset()
	if err := run(&b, "", bin, "", "", "", "", 0, 1, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace QCD") {
		t.Fatalf("round trip lost the trace:\n%s", b.String())
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("dot export malformed")
	}
}

// TestIngestRoundTrip closes the encode→decode→partition path end to
// end: dump a generated workload in the textual ingestion format,
// re-ingest it through -ingest into a binary export, and require the
// re-lowered program to produce bit-identical Results on both machines
// — the property that makes externally recorded traces first-class
// workloads rather than approximations.
func TestIngestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "t.txt")
	bin := filepath.Join(dir, "t.bin")
	const spec = "spec:depth=5,ilp=3,mem=0.8,addr=mixed,hazard=0.2,iters=24,seed=4"

	// Dump the generated workload as text, then ingest the text back out
	// to binary — both through the command's own driver.
	var b strings.Builder
	if err := run(&b, spec, "", "", "", text, "", 0, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "", "", text, bin, "", "", 0, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}

	orig, err := workloads.Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ingested, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, ingested) {
		t.Fatal("ingested trace differs structurally from the generated original")
	}

	// Re-lower both and compare Results bit for bit on both machines.
	so, err := machine.NewSuite(orig, partition.Policy(0))
	if err != nil {
		t.Fatal(err)
	}
	si, err := machine.NewSuite(ingested, partition.Policy(0))
	if err != nil {
		t.Fatal(err)
	}
	if so.Fingerprint() != si.Fingerprint() {
		t.Fatal("ingested suite fingerprint differs: the cache would treat the round trip as a new workload")
	}
	for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
		for _, p := range []machine.Params{{Window: 16, MD: 60}, {Window: 0, MD: 0}} {
			a, err := so.Run(kind, p)
			if err != nil {
				t.Fatal(err)
			}
			c, err := si.Run(kind, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, c) {
				t.Fatalf("%v %+v: ingested Results diverge:\n orig:     %+v\n ingested: %+v", kind, p, a, c)
			}
		}
	}
}

func TestIngestRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("int\nload ^7 @0x10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run(&b, "", "", bad, "", "", "", 0, 1, false, false, false, false)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed ingest error %v does not name the line", err)
	}
}

func TestNeedsInput(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", "", "", "", "", "", 0, 1, true, false, false, false); err == nil {
		t.Fatal("missing input accepted")
	}
}
