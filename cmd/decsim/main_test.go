package main

import (
	"strings"
	"testing"

	"daesim/internal/machine"
)

func TestRunDM(t *testing.T) {
	var b strings.Builder
	err := run(&b, "TRACK", "DM", "classic", machine.Params{Window: 32, MD: 60, CollectESW: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"workload   TRACK", "machine    DM", "partition", "cycles", "LHE", "AU ", "DU ", "esw"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSWSM(t *testing.T) {
	var b strings.Builder
	err := run(&b, "QCD", "swsm", "classic", machine.Params{Window: 16, MD: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "machine    SWSM") {
		t.Errorf("SWSM header missing:\n%s", out)
	}
	if strings.Contains(out, "partition  AU") {
		t.Error("SWSM output should not print a partition summary")
	}
	if strings.Contains(out, "esw") {
		t.Error("esw line printed without -esw")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "NOPE", "DM", "classic", machine.Params{Window: 8}, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(&b, "TRACK", "VLIW", "classic", machine.Params{Window: 8}, 1); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run(&b, "TRACK", "DM", "magic", machine.Params{Window: 8}, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"classic", "slice-only", "balance"} {
		if _, err := parsePolicy(name); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	if _, err := parsePolicy("x"); err == nil {
		t.Error("bad policy accepted")
	}
}
