// Command decsim runs one simulation configuration and prints statistics.
//
// Usage:
//
//	decsim -workload FLO52Q -machine DM -window 64 -md 60 [-esw] [-scale 1]
//	       [-au-width 4] [-du-width 5] [-width 9] [-policy classic] [-queue 0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"daesim/internal/engine"
	"daesim/internal/isa"
	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/partition"
	"daesim/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "FLO52Q", "workload name (TRFD ADM FLO52Q DYFESM QCD MDG TRACK, or spec:depth=...; see internal/workgen)")
		kind     = flag.String("machine", "DM", "machine model: DM or SWSM")
		window   = flag.Int("window", 64, "window size (0 = unlimited; per unit on the DM)")
		md       = flag.Int("md", 60, "memory differential in cycles")
		scale    = flag.Int("scale", 1, "workload scale factor")
		esw      = flag.Bool("esw", false, "collect effective-single-window statistics")
		auWidth  = flag.Int("au-width", 0, "AU issue width (default 4)")
		duWidth  = flag.Int("du-width", 0, "DU issue width (default 5)")
		width    = flag.Int("width", 0, "SWSM issue width (default 9)")
		policy   = flag.String("policy", "classic", "partition policy: classic, slice-only, balance")
		queue    = flag.Int("queue", 0, "memory queue capacity (0 = window-scaled default, -1 = unbounded)")
		hold     = flag.Bool("hold-sends", false, "sends hold window slots until fill returns (ablation A3)")
	)
	flag.Parse()

	if err := run(os.Stdout, *workload, *kind, *policy, machine.Params{
		Window: *window, MD: *md,
		AUWidth: *auWidth, DUWidth: *duWidth, Width: *width,
		MemQueue: *queue, CollectESW: *esw, HoldSendSlots: *hold,
	}, *scale); err != nil {
		fmt.Fprintf(os.Stderr, "decsim: %v\n", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (partition.Policy, error) {
	for _, p := range partition.Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func run(w io.Writer, workload, kindName, policyName string, p machine.Params, scale int) error {
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	var kind machine.Kind
	switch kindName {
	case "DM", "dm":
		kind = machine.DM
	case "SWSM", "swsm":
		kind = machine.SWSM
	default:
		return fmt.Errorf("unknown machine %q (want DM or SWSM)", kindName)
	}
	tr, err := workloads.Build(workload, scale)
	if err != nil {
		return err
	}
	suite, err := machine.NewSuite(tr, pol)
	if err != nil {
		return err
	}
	res, err := suite.Run(kind, p)
	if err != nil {
		return err
	}

	st := tr.Stats()
	fmt.Fprintf(w, "workload   %s (scale %d): %v\n", workload, scale, st)
	fmt.Fprintf(w, "machine    %s  window=%d md=%d policy=%s\n", kind, p.Window, p.MD, pol)
	if kind == machine.DM {
		fmt.Fprintf(w, "partition  AU ops=%d DU ops=%d self-loads=%d copies AU->DU=%d DU->AU=%d\n",
			suite.DM.Assignment.OpsAU, suite.DM.Assignment.OpsDU, suite.DM.Assignment.SelfLoads,
			suite.DM.CopiesAUDU, suite.DM.CopiesDUAU)
	}
	fmt.Fprintf(w, "cycles     %d\n", res.Cycles)
	fmt.Fprintf(w, "ipc        %.2f instructions/cycle (%.2f machine ops/cycle)\n", res.IPC(), res.OpsPerCycle())
	serial := machine.SerialCycles(tr, p.Timing())
	fmt.Fprintf(w, "speedup    %.1f over the serial reference (%d cycles)\n", metrics.Speedup(serial, res.Cycles), serial)
	perfect, err := suite.PerfectCycles(kind, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LHE        %.3f (perfect %d cycles)\n", metrics.LHE(perfect, res.Cycles), perfect)
	for u, cs := range res.Cores {
		name := "core"
		if kind == machine.DM {
			name = isa.Unit(u).String()
		}
		fmt.Fprintf(w, "%-4s       issued=%d busy=%d%% avg-occ=%.1f max-occ=%d\n",
			name, cs.Issued, pct(cs.BusyCycles, res.Cycles), cs.AvgOcc(res.Cycles), cs.MaxOcc)
		fmt.Fprintf(w, "           by kind:%s\n", kindBreakdown(cs))
	}
	fmt.Fprintf(w, "memory     fills=%d max-in-flight=%d\n", res.Fills, res.MaxFillsInFlight)
	if p.CollectESW {
		fmt.Fprintf(w, "esw        max=%d avg=%.0f  slip max=%d avg=%.0f\n", res.MaxESW, res.AvgESW, res.MaxSlip, res.AvgSlip)
	}
	return nil
}

func pct(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}

func kindBreakdown(cs engine.CoreStats) string {
	out := ""
	for k := 0; k < isa.NumOpKinds; k++ {
		if n := cs.IssuedByKind[k]; n > 0 {
			out += fmt.Sprintf(" %s=%d", isa.OpKind(k), n)
		}
	}
	return out
}
