// Command daelint runs the repo's static-analysis suite (internal/lint):
// seven analyzers that enforce the determinism, schema-parity, hot-path,
// version-bump, lock-discipline, context-flow and error-classification
// invariants the figures and the fleet failure ladder depend on. CI runs
// it as a required step; DESIGN.md §12 documents the analyzers and the
// //daelint: annotation grammar.
//
// Usage:
//
//	go run ./cmd/daelint ./...                      lint the module
//	go run ./cmd/daelint -tests ./...               include _test.go files
//	go run ./cmd/daelint -only determinism ./...    run a subset
//	go run ./cmd/daelint -json ./...                machine-readable findings
//	go run ./cmd/daelint -update-semantics ./...    regenerate semantics.lock
//
// Exit status is 1 when any finding survives, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"daesim/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	only := flag.String("only", "", "comma-separated analyzer subset (determinism,schemaguard,hotpath,versionkey,lockguard,ctxflow,errclass)")
	update := flag.Bool("update-semantics", false, "regenerate the versionkey semantics lock instead of linting")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message/directive)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: daelint [-tests] [-only names] [-json] [-update-semantics] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := []*lint.Analyzer{
		lint.NewDeterminism(lint.DeterminismConfig{Paths: lint.DefaultDeterminismPaths}),
		lint.NewSchemaGuard(lint.DefaultSchemaConfig),
		lint.NewHotpath(),
		lint.NewVersionKey(lint.DefaultVersionKeyConfig),
		lint.NewLockguard(lint.LockguardConfig{Paths: lint.DefaultConcurrencyPaths}),
		lint.NewCtxflow(lint.CtxflowConfig{Paths: lint.DefaultConcurrencyPaths}),
		lint.NewErrclass(lint.DefaultErrclassConfig),
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Schemaguard's oracle check audits a test helper, so the world
	// always loads test files; determinism and hotpath skip them unless
	// -tests (Package.IsTestFile gates the walk).
	w, err := lint.Load(".", patterns, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w.IncludeTests = *tests

	if *update {
		path, err := lint.WriteSemanticsLock(w, lint.DefaultVersionKeyConfig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("daelint: wrote %s\n", path)
		return
	}

	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "daelint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	diags := lint.RunAnalyzers(w, analyzers)
	if *jsonOut {
		writeJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Println(relString(d.String()))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "daelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable finding shape CI archives next to
// chaos_smoke.json. Directive names the suppression that would silence
// the finding (empty for pseudo-analyzers like "directive").
type jsonDiag struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Directive string `json:"directive,omitempty"`
}

func writeJSON(diags []lint.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:      relString(d.Pos.Filename),
			Line:      d.Pos.Line,
			Col:       d.Pos.Column,
			Analyzer:  d.Analyzer,
			Message:   d.Message,
			Directive: lint.SuppressDirective(d.Analyzer),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// relString strips the working directory prefix, keeping CI output
// clickable and the JSON artifact host-independent.
func relString(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	if strings.HasPrefix(s, wd+"/") {
		return s[len(wd)+1:]
	}
	return s
}
