// Command daelint runs the repo's static-analysis suite (internal/lint):
// four analyzers that enforce the determinism, schema-parity, hot-path
// and version-bump invariants the figures depend on. CI runs it as a
// required step; DESIGN.md §12 documents the analyzers and the
// //daelint: annotation grammar.
//
// Usage:
//
//	go run ./cmd/daelint ./...                      lint the module
//	go run ./cmd/daelint -tests ./...               include _test.go files
//	go run ./cmd/daelint -only determinism ./...    run a subset
//	go run ./cmd/daelint -update-semantics ./...    regenerate semantics.lock
//
// Exit status is 1 when any finding survives, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daesim/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	only := flag.String("only", "", "comma-separated analyzer subset (determinism,schemaguard,hotpath,versionkey)")
	update := flag.Bool("update-semantics", false, "regenerate the versionkey semantics lock instead of linting")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: daelint [-tests] [-only names] [-update-semantics] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := []*lint.Analyzer{
		lint.NewDeterminism(lint.DeterminismConfig{Paths: lint.DefaultDeterminismPaths}),
		lint.NewSchemaGuard(lint.DefaultSchemaConfig),
		lint.NewHotpath(),
		lint.NewVersionKey(lint.DefaultVersionKeyConfig),
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Schemaguard's oracle check audits a test helper, so the world
	// always loads test files; determinism and hotpath skip them unless
	// -tests (Package.IsTestFile gates the walk).
	w, err := lint.Load(".", patterns, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w.IncludeTests = *tests

	if *update {
		path, err := lint.WriteSemanticsLock(w, lint.DefaultVersionKeyConfig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("daelint: wrote %s\n", path)
		return
	}

	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "daelint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	diags := lint.RunAnalyzers(w, analyzers)
	for _, d := range diags {
		fmt.Println(rel(d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "daelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// rel prints a diagnostic with the filename relative to the working
// directory when possible, keeping CI output clickable.
func rel(d lint.Diagnostic) string {
	wd, err := os.Getwd()
	if err != nil {
		return d.String()
	}
	s := d.String()
	if strings.HasPrefix(s, wd+"/") {
		return s[len(wd)+1:]
	}
	return s
}
