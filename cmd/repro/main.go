// Command repro regenerates every table and figure of the paper into a
// results directory.
//
// Usage:
//
//	repro [-out results] [-scale 1] [-par 0] [-exp all|table1|fig4|fig5|fig6|fig7|fig8|fig9|cutoffs|bigwindow|esw|ablations]
package main

import (
	"flag"
	"fmt"
	"os"

	"daesim/internal/experiments"
)

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Int("scale", 1, "workload scale factor")
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig4..fig9, cutoffs, bigwindow, esw, ablations, expansion, policies, retire, cache, complexity")
	par := flag.Int("par", 0, "max concurrent simulations per sweep and search (0 = GOMAXPROCS)")
	flag.Parse()

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.Parallelism = *par

	if err := run(ctx, *exp, *out); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx *experiments.Context, exp, out string) error {
	if exp == "all" {
		_, err := ctx.WriteAll(out, os.Stdout)
		return err
	}
	figures := map[string]string{"fig4": "FLO52Q", "fig5": "MDG", "fig6": "TRACK"}
	ratios := map[string]string{"fig7": "FLO52Q", "fig8": "MDG", "fig9": "TRACK"}
	switch {
	case exp == "table1":
		t, err := ctx.Table1()
		if err != nil {
			return err
		}
		return t.Render(os.Stdout)
	case figures[exp] != "":
		f, err := ctx.Figure(figures[exp])
		if err != nil {
			return err
		}
		return f.Render(os.Stdout)
	case ratios[exp] != "":
		f, err := ctx.RatioFigure(ratios[exp])
		if err != nil {
			return err
		}
		return f.Render(os.Stdout)
	case exp == "cutoffs":
		c, err := ctx.Cutoffs()
		if err != nil {
			return err
		}
		return c.Render(os.Stdout)
	case exp == "bigwindow":
		b, err := ctx.BigWindow()
		if err != nil {
			return err
		}
		return b.Render(os.Stdout)
	case exp == "esw":
		e, err := ctx.ESWStudy()
		if err != nil {
			return err
		}
		return e.Render(os.Stdout)
	case exp == "ablations":
		as, err := ctx.Ablations()
		if err != nil {
			return err
		}
		for _, a := range as {
			if err := a.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case exp == "expansion":
		e, err := ctx.CodeExpansion()
		if err != nil {
			return err
		}
		return e.Render(os.Stdout)
	case exp == "policies":
		p, err := ctx.PolicyStudy()
		if err != nil {
			return err
		}
		return p.Render(os.Stdout)
	case exp == "retire":
		r, err := ctx.RetireStudy()
		if err != nil {
			return err
		}
		return r.Render(os.Stdout)
	case exp == "cache":
		r, err := ctx.CacheStudy()
		if err != nil {
			return err
		}
		return r.Render(os.Stdout)
	case exp == "complexity":
		r, err := ctx.ComplexityStudy()
		if err != nil {
			return err
		}
		return r.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
