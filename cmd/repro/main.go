// Command repro regenerates every table and figure of the paper into a
// results directory.
//
// Usage:
//
//	repro [-out results] [-scale 1] [-par 0] [-cache dir] [-cache-clear] [-cache-stats file]
//	      [-cache-gc policy] [-remote url1,url2,...] [-remote-batch=true] [-degrade=true]
//	      [-hedge 0] [-chaos spec] [-chaos-stats file] [-chaos-trace file]
//	      [-metrics-dump file]
//	      [-exp all|table1|fig4|fig5|fig6|fig7|fig8|fig9|cutoffs|bigwindow|esw|ablations|expansion|policies|retire|cache|complexity]
//	repro -exp fig7 -workload spec:depth=6,ilp=2,mem=0.5,addr=chase,hazard=0.4
//	repro -list
//
// -workload re-points one of the figure experiments (fig4-fig9) at any
// registered workload instead of the paper's: a catalog kernel or a
// generated "spec:..." workload (internal/workgen), so the whole
// generator space sweeps through the same figure machinery, local or
// -remote (generated workloads travel by name; the daemon regenerates
// them and the content fingerprint proves both sides agree). -list
// prints the workload registry in its canonical enumeration order and
// exits.
//
// With -cache, simulation results are read from and written to a
// persistent on-disk store keyed by engine version, workload content and
// parameters, so a re-run (or an overlapping experiment) skips every
// point it has seen before; -cache-clear empties the store first,
// -cache-gc trims it after the run to the given bounds (e.g.
// "max-entries=5000,max-bytes=256mb,max-age=168h", LRU by access time;
// DESIGN.md §10), and -cache-stats writes the run's hit/miss counters as
// JSON. With -remote, cacheable simulations that miss the local layers
// are executed by running sweepd daemons instead of locally: one base
// URL (e.g. http://127.0.0.1:8077) attaches a single daemon, a
// comma-separated list shards points across the fleet by consistent
// hashing with failover (DESIGN.md §11). Remote sweeps and search probe
// waves are batched into one request per replica round trip;
// -remote-batch=false reverts to one request per point (the
// request-count comparison CI's fleet smoke asserts). Replica failures
// climb the ladder of DESIGN.md §13 — retry with backoff, circuit
// breakers, rerouting — and -degrade (on by default) arms the last
// resort: points whose every replica is down are simulated locally, so
// the run completes byte-identically even with the whole fleet dead
// (-degrade=false fails loudly instead). -hedge arms tail-latency
// hedging for single-point remote calls. SIGINT/SIGTERM cancel the
// remote calls in flight and fail the run cleanly.
//
// -chaos injects deterministic faults for testing that ladder: the spec
// (e.g. "seed=7,timeout@r1:rate=0.2,5xx:rate=0.05") seeds a schedule of
// refusals, timeouts, slow or corrupted replies against the daemon
// transports (scopes r0,r1,... in -remote list order) and the local
// store's blob I/O (scope "store"). The same spec replays the same
// faults. -chaos-stats writes the observed fault/retry/degrade counters
// as JSON; -chaos-trace writes the per-request fault decisions (stable
// across runs at -par 1). The summary always prints to stderr, keeping
// stdout byte-comparable across runs.
//
// -metrics-dump writes a one-shot Prometheus text exposition of the
// run's client-side metrics — the runner cache counters, the store
// counters and gauges, and (with -remote) the fleet client's failure
// ladder and per-replica latency histograms — to a file after the run:
// the same exposition a sweepd serves live on GET /metrics (DESIGN.md
// §15), for runs that have no daemon to scrape.
//
// TestUsageEnumeratesExperiments keeps the usage line above, the -exp
// flag help and the dispatch table in sync.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"daesim/internal/daemon"
	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/faultinject"
	"daesim/internal/machine"
	"daesim/internal/obsv"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// experimentOrder lists every dispatchable -exp value except "all", in
// usage order. The dispatch table below must cover exactly these.
var experimentOrder = []string{
	"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"cutoffs", "bigwindow", "esw", "ablations",
	"expansion", "policies", "retire", "cache", "complexity",
}

// renderTo adapts a result-producing experiment to the dispatch table.
func renderTo[T interface{ Render(io.Writer) error }](get func() (T, error)) func(io.Writer) error {
	return func(w io.Writer) error {
		res, err := get()
		if err != nil {
			return err
		}
		return res.Render(w)
	}
}

// figureExps maps the figure experiments to their number and the
// paper's workload; -workload overrides the workload, never the number.
var figureExps = map[string]struct {
	num      int
	workload string
}{
	"fig4": {4, "FLO52Q"}, "fig5": {5, "MDG"}, "fig6": {6, "TRACK"},
	"fig7": {7, "FLO52Q"}, "fig8": {8, "MDG"}, "fig9": {9, "TRACK"},
}

// dispatch maps -exp values to their drivers (each bound to ctx).
// workload, when non-empty, re-points the figure experiments at that
// workload (run rejects the combination for non-figure experiments).
func dispatch(ctx *experiments.Context, workload string) map[string]func(io.Writer) error {
	m := map[string]func(io.Writer) error{
		"table1":     renderTo(ctx.Table1),
		"cutoffs":    renderTo(ctx.Cutoffs),
		"bigwindow":  renderTo(ctx.BigWindow),
		"esw":        renderTo(ctx.ESWStudy),
		"expansion":  renderTo(ctx.CodeExpansion),
		"policies":   renderTo(ctx.PolicyStudy),
		"retire":     renderTo(ctx.RetireStudy),
		"cache":      renderTo(ctx.CacheStudy),
		"complexity": renderTo(ctx.ComplexityStudy),
		"ablations": func(w io.Writer) error {
			as, err := ctx.Ablations()
			if err != nil {
				return err
			}
			for _, a := range as {
				if err := a.Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		},
	}
	for exp, fig := range figureExps { //daelint:nondeterministic-ok populates the dispatch map; per-entry closures are order-free
		num, name := fig.num, fig.workload
		if workload != "" {
			name = workload
		}
		if num <= 6 {
			m[exp] = renderTo(func() (*experiments.FigureResult, error) { return ctx.FigureNamed(num, name) })
		} else {
			m[exp] = renderTo(func() (*experiments.RatioResult, error) { return ctx.RatioFigureNamed(num, name) })
		}
	}
	return m
}

// expFlagHelp enumerates the -exp values for the flag description.
func expFlagHelp() string {
	return "experiment to run: all, " + strings.Join(experimentOrder, ", ")
}

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Int("scale", 1, "workload scale factor")
	exp := flag.String("exp", "all", expFlagHelp())
	workload := flag.String("workload", "", "with -exp fig4..fig9, sweep this workload instead of the paper's (catalog name or spec:depth=...; see internal/workgen)")
	list := flag.Bool("list", false, "list the workload registry in canonical order and exit")
	par := flag.Int("par", 0, "max concurrent simulations per sweep and search (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persistent result-cache directory (empty = cache disabled)")
	cacheClear := flag.Bool("cache-clear", false, "empty the persistent cache before running")
	cacheStats := flag.String("cache-stats", "", "write cache hit/miss statistics as JSON to this file")
	cacheGC := flag.String("cache-gc", "", "trim the persistent cache after the run, e.g. max-entries=5000,max-bytes=256mb,max-age=168h")
	remote := flag.String("remote", "", "comma-separated sweepd base URLs: run cacheable simulations on a daemon (or a consistent-hash fleet) instead of locally")
	remoteBatch := flag.Bool("remote-batch", true, "with -remote, batch sweeps and probe waves into one request per replica round trip")
	degrade := flag.Bool("degrade", true, "with -remote, fall back to local simulation for points whose every replica is unavailable (false: fail loudly)")
	hedge := flag.Duration("hedge", 0, "with -remote, hedge single-point calls to a second replica after this delay (0 = off)")
	chaos := flag.String("chaos", "", "deterministic fault-injection schedule, e.g. seed=7,timeout@r1:rate=0.2,5xx:rate=0.05 (see internal/faultinject)")
	chaosStats := flag.String("chaos-stats", "", "write fault-injection and failure-handling counters as JSON to this file")
	chaosTrace := flag.String("chaos-trace", "", "write the per-request fault decision trace as JSON to this file (stable across runs at -par 1)")
	metricsDump := flag.String("metrics-dump", "", "write a one-shot Prometheus text exposition of the run's client-side metrics to this file")
	flag.Parse()

	if *list {
		listWorkloads(os.Stdout)
		return
	}

	// SIGINT/SIGTERM cancel remote calls in flight: the run fails
	// cleanly instead of hanging on a retry loop (cancellation is never
	// degraded to local simulation).
	rctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.Parallelism = *par

	if *cacheDir != "" {
		store, err := sweep.OpenStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if *cacheClear {
			if err := store.Clear(); err != nil {
				fatal(err)
			}
		}
		ctx.Cache = store
	} else if *cacheClear {
		fatal(fmt.Errorf("-cache-clear needs -cache"))
	}
	gcPolicy := sweep.GCPolicy{}
	if *cacheGC != "" {
		if ctx.Cache == nil {
			fatal(fmt.Errorf("-cache-gc needs -cache"))
		}
		pol, err := sweep.ParseGCPolicy(*cacheGC)
		if err != nil {
			fatal(err)
		}
		gcPolicy = pol
	}
	var injector *faultinject.Injector
	if *chaos != "" {
		sched, err := faultinject.ParseSchedule(*chaos)
		if err != nil {
			fatal(fmt.Errorf("-chaos: %w", err))
		}
		injector = faultinject.NewInjector(sched)
		if ctx.Cache != nil {
			ctx.Cache.Faults = &faultinject.StoreFaults{Injector: injector}
		}
	} else if *chaosTrace != "" {
		fatal(fmt.Errorf("-chaos-trace needs -chaos"))
	}
	// The metrics registry exists for the whole run when -metrics-dump is
	// set, so the fleet client's per-replica histograms observe traffic
	// as it happens; the cache/store bridges read their snapshots at dump
	// time either way.
	var reg *obsv.Registry
	if *metricsDump != "" {
		reg = obsv.NewRegistry()
	}
	var fleet *daemon.FleetClient
	if *remote != "" {
		f, err := attachRemote(rctx, ctx, *remote, *remoteBatch, injector, *hedge, reg)
		if err != nil {
			fatal(fmt.Errorf("-remote: %w", err))
		}
		fleet = f
		ctx.Degrade = *degrade
	}

	if err := run(ctx, *exp, *out, *workload); err != nil {
		fatal(err)
	}
	if err := reportCache(ctx, *cacheStats); err != nil {
		fatal(err)
	}
	if err := reportChaos(ctx, fleet, injector, *chaos, *chaosStats, *chaosTrace); err != nil {
		fatal(err)
	}
	if reg != nil {
		if err := writeMetricsDump(reg, ctx, *metricsDump); err != nil {
			fatal(err)
		}
	}
	if *cacheGC != "" {
		if err := runCacheGC(ctx.Cache, gcPolicy, os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// attachRemote wires the context's Remote/RemoteBatch/RemoteSearch
// hooks to a consistent-hash fleet over the comma-separated URLs (a
// single URL is a one-replica fleet — same failure ladder, trivial
// ring). The health handshake runs up front, over the clean
// transports, so a dead or skewed daemon fails the run before any
// simulation starts; only then are the transports wrapped with the
// chaos injector (scope "r<i>" in list order) — faults exercise the
// steady-state path, not the startup gate. rctx carries the process
// signal context into every remote call.
func attachRemote(rctx context.Context, ctx *experiments.Context, spec string, batch bool, injector *faultinject.Injector, hedge time.Duration, reg *obsv.Registry) (*daemon.FleetClient, error) {
	urls := strings.Split(spec, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	fleet, err := daemon.NewFleetClient(urls)
	if err != nil {
		return nil, err
	}
	fleet.HedgeDelay = hedge
	if reg != nil {
		fleet.Instrument(reg)
	}
	if err := fleet.Health(rctx); err != nil {
		return nil, err
	}
	if injector != nil {
		for i, c := range fleet.Clients() {
			c.HTTP = &http.Client{
				Timeout:   15 * time.Minute,
				Transport: &faultinject.Transport{Injector: injector, Scope: fmt.Sprintf("r%d", i)},
			}
		}
	}
	ctx.Remote = func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
		return fleet.Run(rctx, workload, scale, fingerprint, pt)
	}
	if batch {
		ctx.RemoteBatch = func(workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error) {
			return fleet.RunBatch(rctx, workload, scale, fingerprint, pts)
		}
		ctx.RemoteSearch = func(workload string, scale int, fingerprint string, params []machine.Params) ([]experiments.RatioAnswer, error) {
			return fleet.RatioBatch(rctx, workload, scale, fingerprint, params)
		}
	}
	return fleet, nil
}

// runCacheGC trims the store post-run and prints the pinned one-line
// summary (TestCacheGCSummary) to w.
func runCacheGC(store *sweep.Store, pol sweep.GCPolicy, w io.Writer) error {
	res, err := store.GC(pol)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "repro: cache-gc (%s): %s\n", pol, res)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "repro: %v\n", err)
	os.Exit(1)
}

// listWorkloads prints the registry, one name per line, in the
// canonical enumeration order — the same order the workloads.Lookup
// error and the daemon's /v1/run validation errors print
// (TestListOrderParity pins the agreement).
func listWorkloads(w io.Writer) {
	for _, name := range workloads.Names() {
		fmt.Fprintln(w, name)
	}
}

func run(ctx *experiments.Context, exp, out, workload string) error {
	if workload != "" {
		if _, isFigure := figureExps[exp]; !isFigure {
			return fmt.Errorf("-workload applies to the figure experiments only (-exp fig4..fig9), not %q", exp)
		}
		// Fail on an unknown or malformed workload before any simulation
		// starts, with the registry's own enumerating error.
		if _, err := workloads.Lookup(workload); err != nil {
			return err
		}
	}
	if exp == "all" {
		_, err := ctx.WriteAll(out, os.Stdout)
		return err
	}
	fn, ok := dispatch(ctx, workload)[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, %s)", exp, strings.Join(experimentOrder, ", "))
	}
	return fn(os.Stdout)
}

// cacheReport is the -cache-stats JSON document.
type cacheReport struct {
	// Runner-level traffic: L1 (in-memory) hits, persistent-store hits,
	// simulations executed, uncacheable runs, and the composite hit rate.
	Runner sweep.CacheStats `json:"runner"`
	// HitRate is Runner's fraction of cacheable points served from cache.
	HitRate float64 `json:"hit_rate"`
	// Store-level counters (zero when -cache is off).
	Store sweep.StoreStats `json:"store"`
}

// reportCache prints the cache summary to stderr (stdout must stay
// byte-comparable between cold and warm runs) and writes the JSON stats
// file when asked.
func reportCache(ctx *experiments.Context, statsPath string) error {
	stats := ctx.CacheStats()
	report := cacheReport{Runner: stats, HitRate: stats.HitRate(), Store: ctx.StoreStats()}
	fmt.Fprintf(os.Stderr, "repro: cache: %d sims, %d L1 hits, %d store hits, %d remote, %d remote searches (hit rate %.1f%%), %d uncacheable, %d degraded; store: %d writes, %d corrupt\n",
		stats.Sims, stats.L1Hits, stats.StoreHits, stats.RemoteHits, stats.RemoteSearches, 100*report.HitRate, stats.Uncacheable, stats.Degraded,
		report.Store.Writes, report.Store.Corrupt)
	if statsPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(statsPath, append(data, '\n'), 0o644)
}

// chaosReport is the -chaos-stats JSON document: what the schedule
// injected and how the client stack absorbed it.
type chaosReport struct {
	// Spec is the -chaos schedule verbatim (empty when only real
	// failures were in play).
	Spec string `json:"spec"`
	// Faults counts the injector's decisions by kind.
	Faults faultinject.Counts `json:"faults"`
	// Fleet counts the failure-handling the FleetClient performed:
	// retries, breaker opens, hedges, draining reroutes, exhausted
	// points.
	Fleet daemon.FleetMetrics `json:"fleet"`
	// Degraded counts points answered by last-resort local simulation.
	Degraded int64 `json:"degraded"`
	// Quarantined counts store keys retired after repeated corruption.
	Quarantined int64 `json:"quarantined"`
}

// writeMetricsDump bridges the run's cache and store counters into reg
// and writes the full exposition — the -metrics-dump file, the offline
// twin of a sweepd's GET /metrics.
func writeMetricsDump(reg *obsv.Registry, ctx *experiments.Context, path string) error {
	daemon.InstrumentCacheStats(reg, ctx.CacheStats)
	if ctx.Cache != nil {
		daemon.InstrumentStore(reg, ctx.Cache)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// reportChaos writes the -chaos-stats and -chaos-trace documents.
func reportChaos(ctx *experiments.Context, fleet *daemon.FleetClient, injector *faultinject.Injector, spec, statsPath, tracePath string) error {
	if statsPath != "" {
		report := chaosReport{Spec: spec}
		if injector != nil {
			report.Faults = injector.Counts()
		}
		if fleet != nil {
			report.Fleet = fleet.Metrics()
		}
		report.Degraded = ctx.CacheStats().Degraded
		report.Quarantined = ctx.StoreStats().CorruptQuarantined
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(statsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if tracePath != "" && injector != nil {
		data, err := json.MarshalIndent(injector.Trace(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
