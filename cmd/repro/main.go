// Command repro regenerates every table and figure of the paper into a
// results directory.
//
// Usage:
//
//	repro [-out results] [-scale 1] [-par 0] [-cache dir] [-cache-clear] [-cache-stats file]
//	      [-cache-gc policy] [-remote url1,url2,...] [-remote-batch=true]
//	      [-exp all|table1|fig4|fig5|fig6|fig7|fig8|fig9|cutoffs|bigwindow|esw|ablations|expansion|policies|retire|cache|complexity]
//
// With -cache, simulation results are read from and written to a
// persistent on-disk store keyed by engine version, workload content and
// parameters, so a re-run (or an overlapping experiment) skips every
// point it has seen before; -cache-clear empties the store first,
// -cache-gc trims it after the run to the given bounds (e.g.
// "max-entries=5000,max-bytes=256mb,max-age=168h", LRU by access time;
// DESIGN.md §10), and -cache-stats writes the run's hit/miss counters as
// JSON. With -remote, cacheable simulations that miss the local layers
// are executed by running sweepd daemons instead of locally: one base
// URL (e.g. http://127.0.0.1:8077) attaches a single daemon, a
// comma-separated list shards points across the fleet by consistent
// hashing with failover (DESIGN.md §11). Remote sweeps and search probe
// waves are batched into one request per replica round trip;
// -remote-batch=false reverts to one request per point (the
// request-count comparison CI's fleet smoke asserts). The summary
// always prints to stderr, keeping stdout byte-comparable across runs.
//
// TestUsageEnumeratesExperiments keeps the usage line above, the -exp
// flag help and the dispatch table in sync.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"daesim/internal/daemon"
	"daesim/internal/experiments"
	"daesim/internal/sweep"
)

// experimentOrder lists every dispatchable -exp value except "all", in
// usage order. The dispatch table below must cover exactly these.
var experimentOrder = []string{
	"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"cutoffs", "bigwindow", "esw", "ablations",
	"expansion", "policies", "retire", "cache", "complexity",
}

// renderTo adapts a result-producing experiment to the dispatch table.
func renderTo[T interface{ Render(io.Writer) error }](get func() (T, error)) func(io.Writer) error {
	return func(w io.Writer) error {
		res, err := get()
		if err != nil {
			return err
		}
		return res.Render(w)
	}
}

// dispatch maps -exp values to their drivers (each bound to ctx).
func dispatch(ctx *experiments.Context) map[string]func(io.Writer) error {
	m := map[string]func(io.Writer) error{
		"table1":     renderTo(ctx.Table1),
		"cutoffs":    renderTo(ctx.Cutoffs),
		"bigwindow":  renderTo(ctx.BigWindow),
		"esw":        renderTo(ctx.ESWStudy),
		"expansion":  renderTo(ctx.CodeExpansion),
		"policies":   renderTo(ctx.PolicyStudy),
		"retire":     renderTo(ctx.RetireStudy),
		"cache":      renderTo(ctx.CacheStudy),
		"complexity": renderTo(ctx.ComplexityStudy),
		"ablations": func(w io.Writer) error {
			as, err := ctx.Ablations()
			if err != nil {
				return err
			}
			for _, a := range as {
				if err := a.Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		},
	}
	for _, f := range []struct{ exp, name string }{{"fig4", "FLO52Q"}, {"fig5", "MDG"}, {"fig6", "TRACK"}} {
		name := f.name
		m[f.exp] = renderTo(func() (*experiments.FigureResult, error) { return ctx.Figure(name) })
	}
	for _, f := range []struct{ exp, name string }{{"fig7", "FLO52Q"}, {"fig8", "MDG"}, {"fig9", "TRACK"}} {
		name := f.name
		m[f.exp] = renderTo(func() (*experiments.RatioResult, error) { return ctx.RatioFigure(name) })
	}
	return m
}

// expFlagHelp enumerates the -exp values for the flag description.
func expFlagHelp() string {
	return "experiment to run: all, " + strings.Join(experimentOrder, ", ")
}

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Int("scale", 1, "workload scale factor")
	exp := flag.String("exp", "all", expFlagHelp())
	par := flag.Int("par", 0, "max concurrent simulations per sweep and search (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persistent result-cache directory (empty = cache disabled)")
	cacheClear := flag.Bool("cache-clear", false, "empty the persistent cache before running")
	cacheStats := flag.String("cache-stats", "", "write cache hit/miss statistics as JSON to this file")
	cacheGC := flag.String("cache-gc", "", "trim the persistent cache after the run, e.g. max-entries=5000,max-bytes=256mb,max-age=168h")
	remote := flag.String("remote", "", "comma-separated sweepd base URLs: run cacheable simulations on a daemon (or a consistent-hash fleet) instead of locally")
	remoteBatch := flag.Bool("remote-batch", true, "with -remote, batch sweeps and probe waves into one request per replica round trip")
	flag.Parse()

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.Parallelism = *par

	if *cacheDir != "" {
		store, err := sweep.OpenStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if *cacheClear {
			if err := store.Clear(); err != nil {
				fatal(err)
			}
		}
		ctx.Cache = store
	} else if *cacheClear {
		fatal(fmt.Errorf("-cache-clear needs -cache"))
	}
	gcPolicy := sweep.GCPolicy{}
	if *cacheGC != "" {
		if ctx.Cache == nil {
			fatal(fmt.Errorf("-cache-gc needs -cache"))
		}
		pol, err := sweep.ParseGCPolicy(*cacheGC)
		if err != nil {
			fatal(err)
		}
		gcPolicy = pol
	}
	if *remote != "" {
		if err := attachRemote(ctx, *remote, *remoteBatch); err != nil {
			fatal(fmt.Errorf("-remote: %w", err))
		}
	}

	if err := run(ctx, *exp, *out); err != nil {
		fatal(err)
	}
	if err := reportCache(ctx, *cacheStats); err != nil {
		fatal(err)
	}
	if *cacheGC != "" {
		if err := runCacheGC(ctx.Cache, gcPolicy, os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// attachRemote wires the context's Remote/RemoteBatch hooks to one
// daemon or, for a comma-separated list, a consistent-hash fleet. The
// health handshake runs up front so a dead or skewed daemon fails the
// run before any simulation starts.
func attachRemote(ctx *experiments.Context, spec string, batch bool) error {
	urls := strings.Split(spec, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	if len(urls) == 1 {
		client := daemon.NewClient(urls[0])
		if err := client.Health(); err != nil {
			return err
		}
		ctx.Remote = client.Run
		if batch {
			ctx.RemoteBatch = client.RunBatch
			ctx.RemoteSearch = client.RatioBatch
		}
		return nil
	}
	fleet, err := daemon.NewFleetClient(urls)
	if err != nil {
		return err
	}
	if err := fleet.Health(); err != nil {
		return err
	}
	ctx.Remote = fleet.Run
	if batch {
		ctx.RemoteBatch = fleet.RunBatch
		ctx.RemoteSearch = fleet.RatioBatch
	}
	return nil
}

// runCacheGC trims the store post-run and prints the pinned one-line
// summary (TestCacheGCSummary) to w.
func runCacheGC(store *sweep.Store, pol sweep.GCPolicy, w io.Writer) error {
	res, err := store.GC(pol)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "repro: cache-gc (%s): %s\n", pol, res)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "repro: %v\n", err)
	os.Exit(1)
}

func run(ctx *experiments.Context, exp, out string) error {
	if exp == "all" {
		_, err := ctx.WriteAll(out, os.Stdout)
		return err
	}
	fn, ok := dispatch(ctx)[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, %s)", exp, strings.Join(experimentOrder, ", "))
	}
	return fn(os.Stdout)
}

// cacheReport is the -cache-stats JSON document.
type cacheReport struct {
	// Runner-level traffic: L1 (in-memory) hits, persistent-store hits,
	// simulations executed, uncacheable runs, and the composite hit rate.
	Runner sweep.CacheStats `json:"runner"`
	// HitRate is Runner's fraction of cacheable points served from cache.
	HitRate float64 `json:"hit_rate"`
	// Store-level counters (zero when -cache is off).
	Store sweep.StoreStats `json:"store"`
}

// reportCache prints the cache summary to stderr (stdout must stay
// byte-comparable between cold and warm runs) and writes the JSON stats
// file when asked.
func reportCache(ctx *experiments.Context, statsPath string) error {
	stats := ctx.CacheStats()
	report := cacheReport{Runner: stats, HitRate: stats.HitRate(), Store: ctx.StoreStats()}
	fmt.Fprintf(os.Stderr, "repro: cache: %d sims, %d L1 hits, %d store hits, %d remote, %d remote searches (hit rate %.1f%%), %d uncacheable; store: %d writes, %d corrupt\n",
		stats.Sims, stats.L1Hits, stats.StoreHits, stats.RemoteHits, stats.RemoteSearches, 100*report.HitRate, stats.Uncacheable,
		report.Store.Writes, report.Store.Corrupt)
	if statsPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(statsPath, append(data, '\n'), 0o644)
}
