package main

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// TestUsageEnumeratesExperiments keeps three things in sync: the
// dispatch table, the doc comment's usage line, and the -exp flag help.
// Any experiment reachable through run() must be discoverable from both
// user-facing strings.
func TestUsageEnumeratesExperiments(t *testing.T) {
	table := dispatch(experiments.NewContext(), "")
	if len(table) != len(experimentOrder) {
		t.Errorf("dispatch table has %d entries, experimentOrder %d", len(table), len(experimentOrder))
	}
	for _, name := range experimentOrder {
		if table[name] == nil {
			t.Errorf("experimentOrder lists %q but dispatch cannot run it", name)
		}
	}
	for name := range table { //daelint:nondeterministic-ok order-free membership assertion over the dispatch table
		found := false
		for _, n := range experimentOrder {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("dispatchable experiment %q missing from experimentOrder", name)
		}
	}

	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// Extract only the -exp enumeration of the doc comment (the
	// "//	repro ..." block after "Usage:") and split them into words,
	// so a name like "cache" or "all" must appear in the -exp
	// enumeration itself — a stray "-cache dir" or "always" elsewhere
	// in the comment cannot mask an omission.
	doc := string(src[:strings.Index(string(src), "package main")])
	if !strings.Contains(doc, "Usage:") {
		t.Fatal("main.go doc comment lost its Usage block")
	}
	usageWords := map[string]bool{}
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "//\t") {
			continue
		}
		// Only the -exp enumeration counts: the "-cache dir" flag on a
		// usage line must not be able to mask an omitted "cache".
		i := strings.Index(line, "-exp ")
		if i < 0 {
			continue
		}
		for _, w := range strings.FieldsFunc(line[i+len("-exp "):], func(r rune) bool {
			return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
		}) {
			usageWords[w] = true
		}
	}
	if len(usageWords) == 0 {
		t.Fatal("main.go usage block lost its -exp enumeration line")
	}
	helpWords := map[string]bool{}
	for _, w := range strings.FieldsFunc(expFlagHelp(), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	}) {
		helpWords[w] = true
	}
	for _, name := range append([]string{"all"}, experimentOrder...) {
		if !usageWords[name] {
			t.Errorf("doc comment usage line omits experiment %q", name)
		}
		if !helpWords[name] {
			t.Errorf("-exp flag help omits experiment %q", name)
		}
	}
}

// TestCacheGCSummary pins the -cache-gc stderr line: scripts (and the
// CI smoke job) grep it, so format drift is a breaking change.
func TestCacheGCSummary(t *testing.T) {
	dir := t.TempDir()
	store, err := sweep.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		store.Put(fmt.Sprintf("k%d", i), &engine.Result{Cycles: int64(i)})
	}
	// All three entries marshal to the same number of bytes (single-digit
	// cycle counts), so the summary's byte totals are exact multiples.
	var size int64
	if err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		size = info.Size()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if size == 0 {
		t.Fatal("no store entries written")
	}

	pol, err := sweep.ParseGCPolicy("max-entries=1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runCacheGC(store, pol, &buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("repro: cache-gc (max-entries=1): scanned 3 entries, evicted 2 (%d B), kept 1 (%d B)\n", 2*size, size)
	if buf.String() != want {
		t.Fatalf("summary drifted:\ngot  %q\nwant %q", buf.String(), want)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d entries after GC, want 1", store.Len())
	}
}

func TestSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration is slow")
	}
	ctx := experiments.NewContext()
	// Stdout-printing paths for a representative subset (shared context
	// caches the workload suites across them).
	for _, exp := range []string{"table1", "fig6", "cutoffs", "esw", "expansion", "cache"} {
		if err := run(ctx, exp, t.TempDir(), ""); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := run(ctx, "not-an-experiment", t.TempDir(), ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestWorkloadOverride covers -workload: a generated workload sweeps
// through a figure experiment, non-figure experiments refuse the flag,
// and a bad spec fails before any simulation starts.
func TestWorkloadOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration is slow")
	}
	ctx := experiments.NewContext()
	if err := run(ctx, "fig4", t.TempDir(), "spec:depth=3,ilp=2,iters=16"); err != nil {
		t.Errorf("fig4 with a generated workload: %v", err)
	}
	if err := run(ctx, "table1", t.TempDir(), "spec:depth=3"); err == nil {
		t.Error("-workload accepted for a non-figure experiment")
	}
	err := run(ctx, "fig4", t.TempDir(), "spec:depth=999")
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("bad spec error %v does not name the field", err)
	}
	err = run(ctx, "fig4", t.TempDir(), "NOSUCH")
	if err == nil || !strings.Contains(err.Error(), "TRFD") {
		t.Errorf("unknown workload error %v does not enumerate the registry", err)
	}
}

// TestListOrderParity pins satellite agreement across every user-facing
// enumeration of the workload registry: repro -list, the
// workloads.Lookup unknown-name error, and (transitively, because the
// daemon's /v1/run validation error wraps that same Lookup error —
// daemon_test.go's TestUnknownWorkloadErrorEnumeratesRegistry holds the
// other end) the fleet's 400 bodies all list the same names in the same
// order.
func TestListOrderParity(t *testing.T) {
	var buf bytes.Buffer
	listWorkloads(&buf)
	var listed []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		listed = append(listed, strings.TrimSpace(line))
	}
	if !reflect.DeepEqual(listed, workloads.Names()) {
		t.Fatalf("repro -list order %v != registry order %v", listed, workloads.Names())
	}
	_, err := workloads.Lookup("NOSUCH")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	want := fmt.Sprintf("%v", workloads.Names())
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Lookup error %q does not enumerate the registry in order (want substring %q)", err, want)
	}
}
