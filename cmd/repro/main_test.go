package main

import (
	"testing"

	"daesim/internal/experiments"
)

func TestSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration is slow")
	}
	ctx := experiments.NewContext()
	// Stdout-printing paths for a representative subset (shared context
	// caches the workload suites across them).
	for _, exp := range []string{"table1", "fig6", "cutoffs", "esw", "expansion", "cache"} {
		if err := run(ctx, exp, t.TempDir()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := run(ctx, "not-an-experiment", t.TempDir()); err == nil {
		t.Error("unknown experiment accepted")
	}
}
