package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
)

// randomConfig draws a core configuration like the quick-check property
// tests use, plus occasional engine-mode flags, so the differential test
// covers every code path of the event loop.
func randomConfig(rng *rand.Rand, units int) Config {
	cores := make([]isa.CoreConfig, units)
	for i := range cores {
		w := rng.Intn(20) // 0 = unlimited
		cores[i] = isa.CoreConfig{Window: w, IssueWidth: 1 + rng.Intn(6)}
		if rng.Intn(4) == 0 {
			cores[i].DispatchWidth = 1 + rng.Intn(6)
		}
	}
	cfg := Config{
		Timing:        tm(rng.Intn(70)),
		Cores:         cores,
		CollectESW:    rng.Intn(2) == 0,
		HoldSendSlots: rng.Intn(3) == 0,
		RetireInOrder: rng.Intn(3) == 0,
	}
	if rng.Intn(3) == 0 {
		cfg.Mem = &delayMem{md: int64(rng.Intn(40))}
	}
	return cfg
}

// TestCalendarQueueMatchesReference differentially tests the
// calendar-queue engine against the seed's map-and-heap implementation:
// every field of the Result must be bit-identical across random
// programs, configurations and memory models.
func TestCalendarQueueMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(2)
		p := randomProgram(rng, 20+rng.Intn(180), units)
		cfg := randomConfig(rng, units)
		got, gotErr := Run(p, cfg)
		// The reference must see the same memory-model state; Run resets
		// the model, and referenceRun resets it again before use.
		want, wantErr := referenceRun(p, cfg)
		if (gotErr == nil) != (wantErr == nil) {
			t.Logf("seed=%d: error mismatch: %v vs %v", seed, gotErr, wantErr)
			return false
		}
		if gotErr != nil {
			return true
		}
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed=%d: result mismatch:\n calendar: %+v\n reference: %+v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFarEventOverflow drives events far beyond the wheel horizon (huge
// MD, and a memory model that delays arrivals past any horizon) through
// both engines.
func TestFarEventOverflow(t *testing.T) {
	p := twoUnitProgram(40)
	cores := []isa.CoreConfig{{Window: 6, IssueWidth: 4}, {Window: 6, IssueWidth: 5}}
	for _, cfg := range []Config{
		{Timing: isa.Timing{MD: 100_000, FPLat: 3, CopyLat: 1}, Cores: cores},
		{Timing: tm(30), Cores: cores, Mem: &delayMem{md: 50_000}},
		{Timing: isa.Timing{MD: 9000, FPLat: 3, CopyLat: 1}, Cores: cores, HoldSendSlots: true},
	} {
		got := mustRun(t, p, cfg)
		want, err := referenceRun(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("md=%d: mismatch:\n calendar: %+v\n reference: %+v", cfg.Timing.MD, got, want)
		}
	}
}

// TestSimRunsAreIdentical asserts the documented determinism guarantee
// at full Result granularity: two runs of the same program and
// configuration — on fresh and on warm scratch — are bit-identical.
func TestSimRunsAreIdentical(t *testing.T) {
	p := twoUnitProgram(100)
	cfg := Config{Timing: tm(30), Cores: []isa.CoreConfig{{Window: 8, IssueWidth: 4}, {Window: 8, IssueWidth: 5}}, CollectESW: true}
	fresh, err := NewSim().Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	// Warm the scratch on a different program and config first.
	if _, err := sim.Run(intChain(300), Config{Timing: tm(5), Cores: oneCore(4, 2), RetireInOrder: true}); err != nil {
		t.Fatal(err)
	}
	warm, err := sim.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Fatalf("warm scratch changed the result:\n fresh: %+v\n warm: %+v", fresh, warm)
	}
}

// TestSimReuseAllocs pins the zero-allocation property of the reused
// scratch path: after warm-up, a run allocates only the Result it
// returns (Result, Cores slice, per-core IssueHist).
func TestSimReuseAllocs(t *testing.T) {
	p := twoUnitProgram(200)
	cfg := Config{Timing: tm(60), Cores: []isa.CoreConfig{{Window: 64, IssueWidth: 4}, {Window: 64, IssueWidth: 5}}}
	sim := NewSim()
	avg := testing.AllocsPerRun(20, func() {
		if _, err := sim.Run(p, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 4 = Result + Cores + 2 IssueHist; allow a little headroom for
	// runtime-internal noise.
	if avg > 8 {
		t.Fatalf("reused-scratch run allocates %.0f objects, want <= 8", avg)
	}
}

// TestPooledRunAllocs asserts the compatibility wrapper inherits the
// reuse through the pool.
func TestPooledRunAllocs(t *testing.T) {
	p := twoUnitProgram(200)
	cfg := Config{Timing: tm(60), Cores: []isa.CoreConfig{{Window: 64, IssueWidth: 4}, {Window: 64, IssueWidth: 5}}}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := Run(p, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 10 {
		t.Fatalf("pooled run allocates %.0f objects, want <= 10", avg)
	}
}
