package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
)

// resultsEqual is the oracle comparison every differential test funnels
// through. It must stay structural over whole Results (daelint's
// schemaguard audits it for reflect.DeepEqual): a field added to Result
// or CoreStats is then compared by construction, with no field list to
// forget to extend.
func resultsEqual(got, want *Result) bool {
	return reflect.DeepEqual(got, want)
}

// randomConfig draws a core configuration like the quick-check property
// tests use, plus occasional engine-mode flags, so the differential test
// covers every code path of the event loop.
func randomConfig(rng *rand.Rand, units int) Config {
	cores := make([]isa.CoreConfig, units)
	for i := range cores {
		w := rng.Intn(20) // 0 = unlimited
		width := 1 + rng.Intn(6)
		if rng.Intn(4) == 0 {
			// Effectively unlimited width: exercises the wide fast path
			// (unordered ready list drained whole) against the reference's
			// heap-ordered issue.
			width = 1 << 20
		}
		cores[i] = isa.CoreConfig{Window: w, IssueWidth: width}
		if rng.Intn(4) == 0 {
			cores[i].DispatchWidth = 1 + rng.Intn(6)
		}
	}
	cfg := Config{
		Timing:        tm(rng.Intn(70)),
		Cores:         cores,
		CollectESW:    rng.Intn(2) == 0,
		HoldSendSlots: rng.Intn(3) == 0,
		RetireInOrder: rng.Intn(3) == 0,
	}
	if rng.Intn(3) == 0 {
		cfg.Mem = &delayMem{md: int64(rng.Intn(40))}
	}
	return cfg
}

// TestCalendarQueueMatchesReference differentially tests the
// calendar-queue engine against the seed's map-and-heap implementation:
// every field of the Result must be bit-identical across random
// programs, configurations and memory models.
func TestCalendarQueueMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(2)
		p := randomProgram(rng, 20+rng.Intn(180), units)
		cfg := randomConfig(rng, units)
		got, gotErr := Run(p, cfg)
		// The reference must see the same memory-model state; Run resets
		// the model, and ReferenceRun resets it again before use.
		want, wantErr := ReferenceRun(p, cfg)
		if (gotErr == nil) != (wantErr == nil) {
			t.Logf("seed=%d: error mismatch: %v vs %v", seed, gotErr, wantErr)
			return false
		}
		if gotErr != nil {
			return true
		}
		if !resultsEqual(got, want) {
			t.Logf("seed=%d: result mismatch:\n calendar: %+v\n reference: %+v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFarEventOverflow drives events far beyond the wheel horizon (huge
// MD, and a memory model that delays arrivals past any horizon) through
// both engines.
func TestFarEventOverflow(t *testing.T) {
	p := twoUnitProgram(40)
	cores := []isa.CoreConfig{{Window: 6, IssueWidth: 4}, {Window: 6, IssueWidth: 5}}
	for _, cfg := range []Config{
		{Timing: isa.Timing{MD: 100_000, FPLat: 3, CopyLat: 1}, Cores: cores},
		{Timing: tm(30), Cores: cores, Mem: &delayMem{md: 50_000}},
		{Timing: isa.Timing{MD: 9000, FPLat: 3, CopyLat: 1}, Cores: cores, HoldSendSlots: true},
	} {
		got := mustRun(t, p, cfg)
		want, err := ReferenceRun(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("md=%d: mismatch:\n calendar: %+v\n reference: %+v", cfg.Timing.MD, got, want)
		}
	}
}

// TestWidePathMatchesReference pins the wide (unlimited-issue-width) fast
// path differentially on deterministic configurations: batched drain of
// the unordered ready list must match the reference's heap-ordered issue
// bit for bit, including under in-order retirement, finite windows with
// width above the window (wide by the window bound), and a stateful
// custom memory model.
func TestWidePathMatchesReference(t *testing.T) {
	progs := []*Program{twoUnitProgram(60), randomProgram(rand.New(rand.NewSource(42)), 200, 2)}
	cores := func(w, width int) []isa.CoreConfig {
		return []isa.CoreConfig{{Window: w, IssueWidth: width}, {Window: w, IssueWidth: width}}
	}
	cfgs := []Config{
		// Unlimited window and width: pure batched dataflow issue.
		{Timing: tm(60), Cores: cores(0, 1<<20)},
		// Finite window, width >= window: wide by the window bound.
		{Timing: tm(30), Cores: cores(8, 8)},
		// Wide plus in-order retirement.
		{Timing: tm(60), Cores: cores(16, 1<<20), RetireInOrder: true},
		// Wide plus a stateful memory model and ESW sampling.
		{Timing: tm(20), Cores: cores(12, 64), Mem: &delayMem{md: 35}, CollectESW: true},
		// Wide core next to a narrow core (mixed heap/list paths).
		{Timing: tm(40), Cores: []isa.CoreConfig{{Window: 10, IssueWidth: 1 << 20}, {Window: 10, IssueWidth: 2}}},
		// Narrow everything, as a control for the harness itself.
		{Timing: tm(50), Cores: cores(6, 2), RetireInOrder: true},
	}
	for _, p := range progs {
		for ci, cfg := range cfgs {
			got := mustRun(t, p, cfg)
			want, err := ReferenceRun(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(got, want) {
				t.Errorf("%s cfg %d: mismatch:\n engine:    %+v\n reference: %+v", p.Name, ci, got, want)
			}
		}
	}
}

// TestSimRunsAreIdentical asserts the documented determinism guarantee
// at full Result granularity: two runs of the same program and
// configuration — on fresh and on warm scratch — are bit-identical.
func TestSimRunsAreIdentical(t *testing.T) {
	p := twoUnitProgram(100)
	cfg := Config{Timing: tm(30), Cores: []isa.CoreConfig{{Window: 8, IssueWidth: 4}, {Window: 8, IssueWidth: 5}}, CollectESW: true}
	fresh, err := NewSim().Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	// Warm the scratch on a different program and config first.
	if _, err := sim.Run(intChain(300), Config{Timing: tm(5), Cores: oneCore(4, 2), RetireInOrder: true}); err != nil {
		t.Fatal(err)
	}
	warm, err := sim.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(fresh, warm) {
		t.Fatalf("warm scratch changed the result:\n fresh: %+v\n warm: %+v", fresh, warm)
	}
}

// TestSimReuseAllocs pins the zero-allocation property of the reused
// scratch path: after warm-up, a run allocates only the Result it
// returns (Result, Cores slice, per-core IssueHist).
func TestSimReuseAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	p := twoUnitProgram(200)
	cfg := Config{Timing: tm(60), Cores: []isa.CoreConfig{{Window: 64, IssueWidth: 4}, {Window: 64, IssueWidth: 5}}}
	sim := NewSim()
	avg := testing.AllocsPerRun(20, func() {
		if _, err := sim.Run(p, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 4 = Result + Cores + 2 IssueHist; allow a little headroom for
	// runtime-internal noise.
	if avg > 8 {
		t.Fatalf("reused-scratch run allocates %.0f objects, want <= 8", avg)
	}
}

// TestPooledRunAllocs asserts the compatibility wrapper inherits the
// reuse through the pool.
func TestPooledRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	p := twoUnitProgram(200)
	cfg := Config{Timing: tm(60), Cores: []isa.CoreConfig{{Window: 64, IssueWidth: 4}, {Window: 64, IssueWidth: 5}}}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := Run(p, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 10 {
		t.Fatalf("pooled run allocates %.0f objects, want <= 10", avg)
	}
}
