//go:build race

package engine

// raceEnabled reports whether the race detector is active; the
// alloc-count regression tests skip under it (the race runtime
// instruments allocations and inflates the counts).
const raceEnabled = true
