package engine

import (
	"fmt"
	"math/bits"
	"slices"

	"daesim/internal/isa"
)

// Sim is a reusable simulation context: the per-run scratch state (op
// lifecycle, dependence counters, per-core window state, ready heaps and
// the calendar event queue) survives between runs, so repeated Run calls
// on warm scratch allocate almost nothing beyond the returned Result.
//
// A Sim is not safe for concurrent use; give each worker goroutine its
// own (see sweep.Runner.RunAll). The package-level Run function draws
// from a shared pool and is safe from any goroutine.
type Sim struct {
	state   []uint8
	pending []int32
	cores   []coreRun
	cq      calQueue
	// lat caches cfg.Timing.Latency per op kind for the current run.
	lat [isa.NumOpKinds]int64
}

// NewSim returns an empty simulation context. Scratch buffers grow on
// first use and are retained for subsequent runs.
func NewSim() *Sim { return &Sim{} }

type coreRun struct {
	cfg    isa.CoreConfig
	stream []int32
	next   int // dispatch frontier within stream
	occ    int
	window int // effective window (large number when unlimited)
	// wide marks a core whose issue width can never bind (width >= every
	// possible ready-set size). Its ready structure is then a plain
	// unordered list drained whole each cycle — no ordering work at all.
	wide bool
	// readyList is the wide-core ready set (insertion order).
	readyList []int32
	// readyBits is the narrow-core ready set: one bit per stream
	// position. Oldest-first selection is a TrailingZeros64 scan from
	// issueFrontier — within one core's stream, position order equals op
	// index order, so the scan pops exactly what a min-heap would,
	// without sift traffic.
	readyBits  []uint64
	readyCount int
	// issueFrontier is the oldest stream position whose bit could still
	// be set (everything below is issued or done); it only advances.
	issueFrontier int
	oldestPtr     int // lazy pointer to oldest possibly-in-flight stream position
	retirePtr     int // in-order retirement frontier (RetireInOrder only)
	lastOrig      int32
	stats         CoreStats
	lastTouch     int64
}

// touch accrues window occupancy up to cycle (ESW integral).
//
//daelint:hotpath
func (c *coreRun) touch(cycle int64) {
	c.stats.OccIntegral += int64(c.occ) * (cycle - c.lastTouch)
	c.lastTouch = cycle
}

// enqueue marks the op at stream position pos ready for issue.
//
//daelint:hotpath
func (c *coreRun) enqueue(i int32, pos int32) {
	if c.wide {
		c.readyList = append(c.readyList, i)
		return
	}
	c.readyBits[pos>>6] |= 1 << uint(pos&63)
	c.readyCount++
}

// readyEmpty reports whether no op is ready to issue.
//
//daelint:hotpath
func (c *coreRun) readyEmpty() bool {
	if c.wide {
		return len(c.readyList) == 0
	}
	return c.readyCount == 0
}

const histCap = 32

// reset sizes the scratch for program p under cfg and clears it.
func (s *Sim) reset(p *Program, cfg Config) {
	n := len(p.Ops)
	if cap(s.state) < n {
		s.state = make([]uint8, n)
	} else {
		s.state = s.state[:n]
		clear(s.state)
	}
	if cap(s.pending) < n {
		s.pending = make([]int32, n)
	} else {
		s.pending = s.pending[:n]
	}
	copy(s.pending, p.nDeps)

	if cap(s.cores) < p.NumUnits {
		s.cores = make([]coreRun, p.NumUnits)
	} else {
		s.cores = s.cores[:p.NumUnits]
	}
	for u := range s.cores {
		cc := cfg.Cores[u]
		window := cc.Window
		if cc.Unlimited() {
			window = n + 1
		}
		hist := cc.IssueWidth + 1
		if hist > histCap {
			hist = histCap
		}
		c := &s.cores[u]
		readyList := c.readyList[:0]
		readyBits := c.readyBits
		stream := p.Stream(isa.Unit(u))
		// The ready set can never exceed min(window occupancy, stream
		// length), so a width at or above that bound issues every ready
		// op every cycle and ordering becomes irrelevant.
		wide := cc.IssueWidth >= window || cc.IssueWidth >= len(stream)
		if !wide {
			words := (len(stream) + 63) / 64
			if cap(readyBits) < words {
				readyBits = make([]uint64, words)
			} else {
				readyBits = readyBits[:words]
				clear(readyBits)
			}
		}
		// IssueHist escapes with the Result, so it must be fresh each run.
		*c = coreRun{
			cfg:       cc,
			stream:    stream,
			window:    window,
			wide:      wide,
			readyList: readyList,
			readyBits: readyBits,
			lastOrig:  -1,
		}
		c.stats.IssueHist = make([]int64, hist)
	}

	maxLat := 1
	if cfg.Timing.FPLat > maxLat {
		maxLat = cfg.Timing.FPLat
	}
	if cfg.Timing.CopyLat > maxLat {
		maxLat = cfg.Timing.CopyLat
	}
	// +2 covers the completion cycle and the fill's sent->arrive hop.
	s.cq.reset(int64(maxLat) + int64(cfg.Timing.MD) + 2)

	for k := range s.lat {
		s.lat[k] = int64(cfg.Timing.Latency(isa.OpKind(k)))
	}
}

// wake delivers one dependence edge to op i.
//
//daelint:hotpath
func (s *Sim) wake(p *Program, i int32) {
	s.pending[i]--
	if s.pending[i] == 0 && s.state[i] == stInWindow {
		s.cores[p.units[i]].enqueue(i, p.posInStream[i])
	}
}

// Run executes the program under the configuration and returns
// statistics. Runs are deterministic: identical inputs produce identical
// results, regardless of which (or how warm a) Sim executes them.
//
// The cycle loop is: fire due events; dispatch in program order per
// core; issue oldest-first per core; sample ESW/slippage; advance time,
// jumping over idle stretches via the calendar queue. Event order within
// a cycle never affects the outcome: completions and fills only
// decrement dependence counters and push onto the ready min-heaps, and
// the heaps order issue by op index alone. Wide cores (issue width never
// binding) drain an unordered ready list instead — every ready op issues
// that cycle, so order is again irrelevant.
//
//daelint:hotpath
func (s *Sim) Run(p *Program, cfg Config) (*Result, error) {
	if err := cfg.Validate(p); err != nil { //daelint:hotpath-ok one validation pass before the cycle loop starts
		return nil, err
	}
	n := len(p.Ops)
	// The returned Result and its Cores slice are 2 of the run's pinned
	// allocations (TestSimReuseAllocs): caller-owned, so they cannot live
	// in scratch.
	//daelint:hotpath-ok caller-owned Result and Cores slice, allocated once per run
	res := &Result{Ops: n, TraceLen: p.TraceLen, Cores: make([]CoreStats, p.NumUnits)}
	if n == 0 {
		return res, nil
	}
	if cfg.Mem != nil {
		cfg.Mem.Reset() //daelint:hotpath-ok once per run; MemModel is an external interface, not auditable
	}
	md := int64(cfg.Timing.MD)
	memOrdered := cfg.Mem != nil
	s.reset(p, cfg) //daelint:hotpath-ok setup: scratch (re)allocation happens once, before the cycle loop
	cores := s.cores

	completed := 0
	var cycle int64
	var inflight, maxInflight int
	var eswSamples, slipSamples int64
	var eswSum, slipSum int64

	for completed < n {
		// 1. Fire events due now.
		s.cq.drain(cycle)
		if b := s.cq.fire(cycle); b != nil {
			for _, i := range b.comps {
				s.state[i] = stDone
				completed++
				if !cfg.RetireInOrder {
					c := &cores[p.units[i]]
					c.touch(cycle)
					c.occ--
				}
				for _, consumer := range p.plainConsumers(i) {
					s.wake(p, consumer)
				}
			}
			if cfg.RetireInOrder && len(b.comps) > 0 {
				// Reclaim slots in program order up to the oldest
				// incomplete op of each core.
				for u := range cores {
					c := &cores[u]
					for c.retirePtr < c.next && s.state[c.stream[c.retirePtr]] == stDone {
						c.retirePtr++
						c.touch(cycle)
						c.occ--
					}
				}
			}
			for _, i := range b.fills {
				inflight--
				for _, consumer := range p.fillConsumers(i) {
					s.wake(p, consumer)
				}
			}
			s.cq.clearBucket(b)
		}

		// 2. Dispatch in program order, per core (batched: the admission
		// count is known up front, so the window/stream bounds are checked
		// once instead of per op).
		for u := range cores {
			c := &cores[u]
			k := c.cfg.EffectiveDispatch()
			if avail := c.window - c.occ; k > avail {
				k = avail
			}
			if rem := len(c.stream) - c.next; k > rem {
				k = rem
			}
			if k <= 0 {
				continue
			}
			c.touch(cycle)
			base := c.next
			for j := 0; j < k; j++ {
				i := c.stream[base+j]
				s.state[i] = stInWindow
				if s.pending[i] == 0 {
					c.enqueue(i, int32(base+j))
				}
			}
			c.next = base + k
			c.occ += k
			if c.occ > c.stats.MaxOcc {
				c.stats.MaxOcc = c.occ
			}
			c.lastOrig = p.origs[c.stream[c.next-1]]
		}

		// 3. Issue oldest-first, per core. Wide cores drain the whole
		// ready list (issued can index it because the width bound
		// guarantees the loop never stops early); narrow cores scan the
		// ready bitmap upward from the issue frontier, which pops ready
		// ops in ascending position — identical to heap order.
		for u := range cores {
			c := &cores[u]
			if c.wide && memOrdered && len(c.readyList) > 1 {
				// A stateful memory model observes RequestFill/Consume call
				// order, so the drain must visit ops in index order. (With
				// the fixed differential every per-op effect depends only on
				// the op and the cycle, so the unordered drain is already
				// equivalent.)
				slices.Sort(c.readyList)
			}
			scan := 0
			if !c.wide && c.readyCount > 0 {
				// Advance the frontier past ops that can never become ready
				// again; amortized O(stream) over the whole run.
				fr := c.issueFrontier
				for fr < c.next && s.state[c.stream[fr]] >= stIssued {
					fr++
				}
				c.issueFrontier = fr
				scan = fr
			}
			issued := 0
			for issued < c.cfg.IssueWidth {
				var i int32
				if c.wide {
					if issued == len(c.readyList) {
						break
					}
					i = c.readyList[issued]
				} else {
					if c.readyCount == 0 {
						break
					}
					// Next set bit at position >= scan; one exists because
					// readyCount > 0 and all set bits are >= the frontier,
					// ascending past prior pops (no bits are set mid-loop).
					w := scan >> 6
					word := c.readyBits[w] &^ (1<<uint(scan&63) - 1)
					for word == 0 {
						w++
						word = c.readyBits[w]
					}
					pos := w<<6 + bits.TrailingZeros64(word)
					c.readyBits[w] &^= 1 << uint(pos&63)
					c.readyCount--
					scan = pos + 1
					i = c.stream[pos]
				}
				issued++
				s.state[i] = stIssued
				kind := p.kinds[i]
				flag := p.flags[i]
				c.stats.Issued++
				c.stats.IssuedByKind[kind]++
				done := cycle + s.lat[kind]
				if flag&opFlagSend != 0 {
					arrive := done + md
					if cfg.Mem != nil {
						arrive = cfg.Mem.RequestFill(p.addrs[i], done) //daelint:hotpath-ok MemModel is an external interface; custom models opt out of the alloc pin
						if arrive < done {
							//daelint:hotpath-ok cold exit: a broken memory model aborts the run
							return nil, fmt.Errorf("engine: memory model returned arrival %d before send %d", arrive, done)
						}
					}
					res.Fills++
					if flag&opFlagFillCons != 0 || cfg.Mem != nil {
						inflight++
						if inflight > maxInflight {
							maxInflight = inflight
						}
						s.cq.schedule(cycle, arrive, i, true)
					}
					if cfg.HoldSendSlots {
						// The send occupies its slot until the fill returns.
						done = arrive
					}
				}
				s.cq.schedule(cycle, done, i, false)
				if flag&opFlagConsume != 0 && cfg.Mem != nil {
					cfg.Mem.Consume(p.addrs[i], cycle) //daelint:hotpath-ok MemModel is an external interface; custom models opt out of the alloc pin
				}
			}
			if c.wide {
				c.readyList = c.readyList[:0]
			}
			if issued > 0 {
				c.stats.BusyCycles++
				h := issued
				if h >= len(c.stats.IssueHist) {
					h = len(c.stats.IssueHist) - 1
				}
				c.stats.IssueHist[h]++
			}
		}

		// 4. ESW and slippage sampling.
		if cfg.CollectESW {
			var youngest int32 = -1
			oldest := int32(-1)
			for u := range cores {
				c := &cores[u]
				if c.lastOrig > youngest {
					youngest = c.lastOrig
				}
				for c.oldestPtr < c.next && s.state[c.stream[c.oldestPtr]] == stDone {
					c.oldestPtr++
				}
				if c.oldestPtr < c.next {
					o := p.origs[c.stream[c.oldestPtr]]
					if oldest == -1 || o < oldest {
						oldest = o
					}
				}
			}
			if oldest >= 0 && youngest >= oldest {
				esw := int64(youngest-oldest) + 1
				eswSum += esw
				eswSamples++
				if esw > res.MaxESW {
					res.MaxESW = esw
				}
			}
			if len(cores) == 2 && cores[0].lastOrig >= 0 && cores[1].lastOrig >= 0 {
				slip := int64(cores[0].lastOrig - cores[1].lastOrig)
				slipSum += slip
				slipSamples++
				if slip > res.MaxSlip {
					res.MaxSlip = slip
				}
			}
		}

		// 5. Advance time, fast-forwarding idle stretches.
		progressNext := false
		for u := range cores {
			c := &cores[u]
			if !c.readyEmpty() || (c.next < len(c.stream) && c.occ < c.window) {
				progressNext = true
				break
			}
		}
		if progressNext {
			cycle++
			continue
		}
		if completed == n {
			break
		}
		// Jump to the next event; one must exist or the program deadlocked.
		next := s.cq.nextAfter(cycle)
		if next < 0 {
			//daelint:hotpath-ok cold exit: deadlock aborts the run
			return nil, fmt.Errorf("engine: deadlock at cycle %d with %d/%d ops complete", cycle, completed, n)
		}
		cycle = next
	}

	// Final cycle count: the last completion time.
	res.Cycles = cycle
	for u := range cores {
		c := &cores[u]
		c.touch(cycle)
		res.Cores[u] = c.stats
	}
	res.MaxFillsInFlight = maxInflight
	if eswSamples > 0 {
		res.AvgESW = float64(eswSum) / float64(eswSamples)
	}
	if slipSamples > 0 {
		res.AvgSlip = float64(slipSum) / float64(slipSamples)
	}
	return res, nil
}
