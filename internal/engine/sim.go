package engine

import (
	"fmt"

	"daesim/internal/isa"
)

// Sim is a reusable simulation context: the per-run scratch state (op
// lifecycle, dependence counters, per-core window state, ready heaps and
// the calendar event queue) survives between runs, so repeated Run calls
// on warm scratch allocate almost nothing beyond the returned Result.
//
// A Sim is not safe for concurrent use; give each worker goroutine its
// own (see sweep.Runner.RunAll). The package-level Run function draws
// from a shared pool and is safe from any goroutine.
type Sim struct {
	state   []uint8
	pending []int32
	cores   []coreRun
	cq      calQueue
}

// NewSim returns an empty simulation context. Scratch buffers grow on
// first use and are retained for subsequent runs.
func NewSim() *Sim { return &Sim{} }

type coreRun struct {
	cfg       isa.CoreConfig
	stream    []int32
	next      int // dispatch frontier within stream
	occ       int
	window    int // effective window (large number when unlimited)
	ready     i32Heap
	oldestPtr int // lazy pointer to oldest possibly-in-flight stream position
	retirePtr int // in-order retirement frontier (RetireInOrder only)
	lastOrig  int32
	stats     CoreStats
	lastTouch int64
}

func (c *coreRun) touch(cycle int64) {
	c.stats.OccIntegral += int64(c.occ) * (cycle - c.lastTouch)
	c.lastTouch = cycle
}

const histCap = 32

// reset sizes the scratch for program p under cfg and clears it.
func (s *Sim) reset(p *Program, cfg Config) {
	n := len(p.Ops)
	if cap(s.state) < n {
		s.state = make([]uint8, n)
	} else {
		s.state = s.state[:n]
		clear(s.state)
	}
	if cap(s.pending) < n {
		s.pending = make([]int32, n)
	} else {
		s.pending = s.pending[:n]
	}
	copy(s.pending, p.nDeps)

	if cap(s.cores) < p.NumUnits {
		s.cores = make([]coreRun, p.NumUnits)
	} else {
		s.cores = s.cores[:p.NumUnits]
	}
	for u := range s.cores {
		cc := cfg.Cores[u]
		window := cc.Window
		if cc.Unlimited() {
			window = n + 1
		}
		hist := cc.IssueWidth + 1
		if hist > histCap {
			hist = histCap
		}
		c := &s.cores[u]
		ready := c.ready
		ready.reset()
		// IssueHist escapes with the Result, so it must be fresh each run.
		*c = coreRun{
			cfg:      cc,
			stream:   p.streams[u],
			window:   window,
			ready:    ready,
			lastOrig: -1,
		}
		c.stats.IssueHist = make([]int64, hist)
	}

	maxLat := 1
	if cfg.Timing.FPLat > maxLat {
		maxLat = cfg.Timing.FPLat
	}
	if cfg.Timing.CopyLat > maxLat {
		maxLat = cfg.Timing.CopyLat
	}
	// +2 covers the completion cycle and the fill's sent->arrive hop.
	s.cq.reset(int64(maxLat) + int64(cfg.Timing.MD) + 2)
}

// wake delivers one dependence edge to op i.
func (s *Sim) wake(p *Program, i int32) {
	s.pending[i]--
	if s.pending[i] == 0 && s.state[i] == stInWindow {
		s.cores[p.Ops[i].Unit].ready.push(i)
	}
}

// Run executes the program under the configuration and returns
// statistics. Runs are deterministic: identical inputs produce identical
// results, regardless of which (or how warm a) Sim executes them.
//
// The cycle loop is: fire due events; dispatch in program order per
// core; issue oldest-first per core; sample ESW/slippage; advance time,
// jumping over idle stretches via the calendar queue. Event order within
// a cycle never affects the outcome: completions and fills only
// decrement dependence counters and push onto the ready min-heaps, and
// the heaps order issue by op index alone.
func (s *Sim) Run(p *Program, cfg Config) (*Result, error) {
	if err := cfg.Validate(p); err != nil {
		return nil, err
	}
	n := len(p.Ops)
	res := &Result{Ops: n, TraceLen: p.TraceLen, Cores: make([]CoreStats, p.NumUnits)}
	if n == 0 {
		return res, nil
	}
	if cfg.Mem != nil {
		cfg.Mem.Reset()
	}
	md := int64(cfg.Timing.MD)
	s.reset(p, cfg)
	cores := s.cores

	completed := 0
	var cycle int64
	var inflight, maxInflight int
	var eswSamples, slipSamples int64
	var eswSum, slipSum int64

	for completed < n {
		// 1. Fire events due now.
		s.cq.drain(cycle)
		if b := s.cq.fire(cycle); b != nil {
			for _, i := range b.comps {
				s.state[i] = stDone
				completed++
				if !cfg.RetireInOrder {
					c := &cores[p.Ops[i].Unit]
					c.touch(cycle)
					c.occ--
				}
				for _, consumer := range p.consPlain[i] {
					s.wake(p, consumer)
				}
			}
			if cfg.RetireInOrder && len(b.comps) > 0 {
				// Reclaim slots in program order up to the oldest
				// incomplete op of each core.
				for u := range cores {
					c := &cores[u]
					for c.retirePtr < c.next && s.state[c.stream[c.retirePtr]] == stDone {
						c.retirePtr++
						c.touch(cycle)
						c.occ--
					}
				}
			}
			for _, i := range b.fills {
				inflight--
				for _, consumer := range p.consFill[i] {
					s.wake(p, consumer)
				}
			}
			clearBucket(b)
		}

		// 2. Dispatch in program order, per core.
		for u := range cores {
			c := &cores[u]
			dw := c.cfg.EffectiveDispatch()
			for k := 0; k < dw && c.occ < c.window && c.next < len(c.stream); k++ {
				i := c.stream[c.next]
				c.next++
				c.touch(cycle)
				c.occ++
				if c.occ > c.stats.MaxOcc {
					c.stats.MaxOcc = c.occ
				}
				s.state[i] = stInWindow
				c.lastOrig = p.Ops[i].Orig
				if s.pending[i] == 0 {
					c.ready.push(i)
				}
			}
		}

		// 3. Issue oldest-first, per core.
		for u := range cores {
			c := &cores[u]
			issued := 0
			for issued < c.cfg.IssueWidth && !c.ready.empty() {
				i := c.ready.pop()
				issued++
				s.state[i] = stIssued
				op := &p.Ops[i]
				c.stats.Issued++
				c.stats.IssuedByKind[op.Kind]++
				lat := int64(cfg.Timing.Latency(op.Kind))
				done := cycle + lat
				if op.Kind.IsSend() {
					arrive := done + md
					if cfg.Mem != nil {
						arrive = cfg.Mem.RequestFill(op.Addr, done)
						if arrive < done {
							return nil, fmt.Errorf("engine: memory model returned arrival %d before send %d", arrive, done)
						}
					}
					res.Fills++
					if len(p.consFill[i]) > 0 || cfg.Mem != nil {
						inflight++
						if inflight > maxInflight {
							maxInflight = inflight
						}
						s.cq.schedule(cycle, arrive, i, true)
					}
					if cfg.HoldSendSlots {
						// The send occupies its slot until the fill returns.
						done = arrive
					}
				}
				s.cq.schedule(cycle, done, i, false)
				if op.Kind.IsConsume() && cfg.Mem != nil {
					cfg.Mem.Consume(op.Addr, cycle)
				}
			}
			if issued > 0 {
				c.stats.BusyCycles++
				h := issued
				if h >= len(c.stats.IssueHist) {
					h = len(c.stats.IssueHist) - 1
				}
				c.stats.IssueHist[h]++
			}
		}

		// 4. ESW and slippage sampling.
		if cfg.CollectESW {
			var youngest int32 = -1
			oldest := int32(-1)
			for u := range cores {
				c := &cores[u]
				if c.lastOrig > youngest {
					youngest = c.lastOrig
				}
				for c.oldestPtr < c.next && s.state[c.stream[c.oldestPtr]] == stDone {
					c.oldestPtr++
				}
				if c.oldestPtr < c.next {
					o := p.Ops[c.stream[c.oldestPtr]].Orig
					if oldest == -1 || o < oldest {
						oldest = o
					}
				}
			}
			if oldest >= 0 && youngest >= oldest {
				esw := int64(youngest-oldest) + 1
				eswSum += esw
				eswSamples++
				if esw > res.MaxESW {
					res.MaxESW = esw
				}
			}
			if len(cores) == 2 && cores[0].lastOrig >= 0 && cores[1].lastOrig >= 0 {
				slip := int64(cores[0].lastOrig - cores[1].lastOrig)
				slipSum += slip
				slipSamples++
				if slip > res.MaxSlip {
					res.MaxSlip = slip
				}
			}
		}

		// 5. Advance time, fast-forwarding idle stretches.
		progressNext := false
		for u := range cores {
			c := &cores[u]
			if !c.ready.empty() || (c.next < len(c.stream) && c.occ < c.window) {
				progressNext = true
				break
			}
		}
		if progressNext {
			cycle++
			continue
		}
		if completed == n {
			break
		}
		// Jump to the next event; one must exist or the program deadlocked.
		next := s.cq.nextAfter(cycle)
		if next < 0 {
			return nil, fmt.Errorf("engine: deadlock at cycle %d with %d/%d ops complete", cycle, completed, n)
		}
		cycle = next
	}

	// Final cycle count: the last completion time.
	res.Cycles = cycle
	for u := range cores {
		c := &cores[u]
		c.touch(cycle)
		res.Cores[u] = c.stats
	}
	res.MaxFillsInFlight = maxInflight
	if eswSamples > 0 {
		res.AvgESW = float64(eswSum) / float64(eswSamples)
	}
	if slipSamples > 0 {
		res.AvgSlip = float64(slipSum) / float64(slipSamples)
	}
	return res, nil
}
