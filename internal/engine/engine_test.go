package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
)

func tm(md int) isa.Timing { return isa.Timing{MD: md, FPLat: 3, CopyLat: 1} }

func oneCore(window, width int) []isa.CoreConfig {
	return []isa.CoreConfig{{Window: window, IssueWidth: width}}
}

func mustRun(t *testing.T, p *Program, cfg Config) *Result {
	t.Helper()
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestEmptyProgram(t *testing.T) {
	p := MustProgram("empty", nil, 1, 0)
	r := mustRun(t, p, Config{Timing: tm(0), Cores: oneCore(8, 2)})
	if r.Cycles != 0 || r.Ops != 0 {
		t.Fatalf("empty program: %+v", r)
	}
}

func TestSingleOp(t *testing.T) {
	p := MustProgram("one", []Op{{Kind: isa.OpInt, MemSrc: NoDep}}, 1, 1)
	r := mustRun(t, p, Config{Timing: tm(0), Cores: oneCore(8, 2)})
	if r.Cycles != 1 {
		t.Fatalf("cycles = %d, want 1", r.Cycles)
	}
	if r.Cores[0].Issued != 1 || r.Cores[0].IssuedByKind[isa.OpInt] != 1 {
		t.Fatalf("issue stats wrong: %+v", r.Cores[0])
	}
}

// intChain builds a serial chain of n int ops on one core.
func intChain(n int) *Program {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: isa.OpInt, MemSrc: NoDep, Orig: int32(i)}
		if i > 0 {
			ops[i].Srcs = []int32{int32(i - 1)}
		}
	}
	return MustProgram("chain", ops, 1, n)
}

func TestDependentChainIsSerial(t *testing.T) {
	p := intChain(10)
	r := mustRun(t, p, Config{Timing: tm(0), Cores: oneCore(64, 4)})
	if r.Cycles != 10 {
		t.Fatalf("cycles = %d, want 10 (1 IPC dependent chain)", r.Cycles)
	}
}

func TestIndependentOpsLimitedByWidth(t *testing.T) {
	n := 24
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: isa.OpInt, MemSrc: NoDep, Orig: int32(i)}
	}
	p := MustProgram("indep", ops, 1, n)
	for _, width := range []int{1, 2, 3, 4, 8} {
		r := mustRun(t, p, Config{Timing: tm(0), Cores: oneCore(0, width)})
		want := int64((n + width - 1) / width)
		if r.Cycles != want {
			t.Errorf("width %d: cycles = %d, want %d", width, r.Cycles, want)
		}
	}
}

func TestWindowOneSerializes(t *testing.T) {
	// int -> load(send,recv) -> fp, window 1: every op must complete before
	// the next dispatches.
	ops := []Op{
		{Kind: isa.OpInt, MemSrc: NoDep},
		{Kind: isa.OpLoadSend, Srcs: []int32{0}, MemSrc: NoDep},
		{Kind: isa.OpLoadRecv, MemSrc: 1},
		{Kind: isa.OpFP, Srcs: []int32{2}, MemSrc: NoDep},
	}
	p := MustProgram("serial", ops, 1, 4)
	md := 10
	r := mustRun(t, p, Config{Timing: tm(md), Cores: oneCore(1, 4)})
	// int: 0->1; send dispatched at 1, completes 2; fill at 2+10=12;
	// recv dispatched at 2 but not ready until 12, completes 13;
	// fp dispatched 13, completes 16.
	if r.Cycles != 16 {
		t.Fatalf("cycles = %d, want 16", r.Cycles)
	}
}

func TestLoadUseLatency(t *testing.T) {
	// addr -> send -> recv -> fp with ample resources: md+6 cycles total.
	ops := []Op{
		{Kind: isa.OpInt, MemSrc: NoDep},
		{Kind: isa.OpLoadSend, Srcs: []int32{0}, MemSrc: NoDep},
		{Kind: isa.OpLoadRecv, MemSrc: 1},
		{Kind: isa.OpFP, Srcs: []int32{2}, MemSrc: NoDep},
	}
	p := MustProgram("loaduse", ops, 1, 4)
	for _, md := range []int{0, 10, 60} {
		r := mustRun(t, p, Config{Timing: tm(md), Cores: oneCore(0, 9)})
		want := int64(md + 6)
		if r.Cycles != want {
			t.Errorf("md=%d: cycles = %d, want %d", md, r.Cycles, want)
		}
		if df := p.DataflowTime(tm(md)); df != want {
			t.Errorf("md=%d: dataflow time = %d, want %d", md, df, want)
		}
	}
}

func TestMaxOccupancyRespectsWindow(t *testing.T) {
	// Many independent sends+recvs with md large: window should fill.
	var ops []Op
	for i := 0; i < 40; i++ {
		ops = append(ops, Op{Kind: isa.OpLoadSend, MemSrc: NoDep, Orig: int32(i)})
		ops = append(ops, Op{Kind: isa.OpLoadRecv, MemSrc: int32(len(ops) - 1), Orig: int32(i)})
	}
	p := MustProgram("mem", ops, 1, 40)
	r := mustRun(t, p, Config{Timing: tm(30), Cores: oneCore(8, 4)})
	if r.Cores[0].MaxOcc > 8 {
		t.Fatalf("occupancy %d exceeded window 8", r.Cores[0].MaxOcc)
	}
	if r.Cores[0].MaxOcc != 8 {
		t.Fatalf("window should saturate: max occ %d", r.Cores[0].MaxOcc)
	}
}

// twoUnitProgram: AU sends n loads, DU receives and chains FP ops.
func twoUnitProgram(n int) *Program {
	var ops []Op
	prevFP := int32(-1)
	for i := 0; i < n; i++ {
		send := int32(len(ops))
		ops = append(ops, Op{Kind: isa.OpLoadSend, Unit: isa.AU, MemSrc: NoDep, Orig: int32(2 * i)})
		ops = append(ops, Op{Kind: isa.OpLoadRecv, Unit: isa.DU, MemSrc: send, Orig: int32(2 * i)})
		recv := int32(len(ops) - 1)
		fp := Op{Kind: isa.OpFP, Unit: isa.DU, Srcs: []int32{recv}, MemSrc: NoDep, Orig: int32(2*i + 1)}
		if prevFP >= 0 {
			fp.Srcs = append(fp.Srcs, prevFP)
		}
		ops = append(ops, fp)
		prevFP = int32(len(ops) - 1)
	}
	return MustProgram("twounit", ops, 2, 2*n)
}

func TestTwoUnitSlippageHidesLatency(t *testing.T) {
	n := 200
	p := twoUnitProgram(n)
	cores := []isa.CoreConfig{
		{Window: 16, IssueWidth: 4},
		{Window: 16, IssueWidth: 5},
	}
	r0 := mustRun(t, p, Config{Timing: tm(0), Cores: cores, CollectESW: true})
	r60 := mustRun(t, p, Config{Timing: tm(60), Cores: cores, CollectESW: true})
	// The FP chain is the critical path (3 cycles per link). With
	// decoupling, md=60 should cost only the startup transient, not
	// 60 cycles per load.
	if r60.Cycles > r0.Cycles+100 {
		t.Fatalf("decoupling failed to hide latency: md0=%d md60=%d", r0.Cycles, r60.Cycles)
	}
	// AU must run ahead under load: slippage and ESW should exceed the
	// window size at md=60.
	if r60.MaxSlip <= 16 {
		t.Errorf("max slip %d should exceed window 16", r60.MaxSlip)
	}
	if r60.MaxESW <= 32 {
		t.Errorf("max ESW %d should exceed the summed windows", r60.MaxESW)
	}
	if r60.MaxESW < r60.MaxSlip {
		t.Errorf("ESW %d < slip %d", r60.MaxESW, r60.MaxSlip)
	}
}

func TestDeterminism(t *testing.T) {
	p := twoUnitProgram(100)
	cfg := Config{Timing: tm(30), Cores: []isa.CoreConfig{{Window: 8, IssueWidth: 4}, {Window: 8, IssueWidth: 5}}, CollectESW: true}
	a := mustRun(t, p, cfg)
	b := mustRun(t, p, cfg)
	if a.Cycles != b.Cycles || a.MaxESW != b.MaxESW || a.AvgSlip != b.AvgSlip {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// randomProgram builds a valid random program spanning the given units.
func randomProgram(rng *rand.Rand, n, units int) *Program {
	var ops []Op
	var producers []int32 // ops usable as plain deps
	for len(ops) < n {
		u := isa.Unit(rng.Intn(units))
		pick := func() []int32 {
			if len(producers) == 0 || rng.Intn(3) == 0 {
				return nil
			}
			return []int32{producers[rng.Intn(len(producers))]}
		}
		switch rng.Intn(6) {
		case 0, 1:
			ops = append(ops, Op{Kind: isa.OpInt, Unit: u, Srcs: pick(), MemSrc: NoDep, Orig: int32(len(ops))})
			producers = append(producers, int32(len(ops)-1))
		case 2:
			ops = append(ops, Op{Kind: isa.OpFP, Unit: u, Srcs: pick(), MemSrc: NoDep, Orig: int32(len(ops))})
			producers = append(producers, int32(len(ops)-1))
		case 3:
			send := int32(len(ops))
			ops = append(ops, Op{Kind: isa.OpLoadSend, Unit: u, Srcs: pick(), MemSrc: NoDep, Orig: int32(len(ops))})
			ru := isa.Unit(rng.Intn(units))
			ops = append(ops, Op{Kind: isa.OpLoadRecv, Unit: ru, MemSrc: send, Orig: int32(len(ops))})
			producers = append(producers, int32(len(ops)-1))
		case 4:
			ops = append(ops, Op{Kind: isa.OpStoreAddr, Unit: u, Srcs: pick(), MemSrc: NoDep, Orig: int32(len(ops))})
		default:
			ops = append(ops, Op{Kind: isa.OpCopy, Unit: u, Srcs: pick(), MemSrc: NoDep, Orig: int32(len(ops))})
			producers = append(producers, int32(len(ops)-1))
		}
	}
	return MustProgram("random", ops, units, len(ops))
}

func TestUnlimitedResourcesMatchDataflowTime(t *testing.T) {
	f := func(seed int64, sz uint8, mdSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(2)
		p := randomProgram(rng, int(sz)+2, units)
		md := int(mdSel % 61)
		cores := make([]isa.CoreConfig, units)
		for i := range cores {
			cores[i] = isa.CoreConfig{Window: 0, IssueWidth: 1 << 20}
		}
		r, err := Run(p, Config{Timing: tm(md), Cores: cores})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		want := p.DataflowTime(tm(md))
		if r.Cycles != want {
			t.Logf("seed=%d md=%d: engine %d != dataflow %d", seed, md, r.Cycles, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInWindow(t *testing.T) {
	// Oldest-first issue is greedy list scheduling, so enlarging the
	// window can produce small Graham anomalies; require monotonicity up
	// to a 2% slack.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(2)
		p := randomProgram(rng, 120, units)
		prev := int64(-1)
		for _, w := range []int{2, 4, 8, 16, 64, 0} {
			cores := make([]isa.CoreConfig, units)
			for i := range cores {
				cores[i] = isa.CoreConfig{Window: w, IssueWidth: 3}
			}
			r, err := Run(p, Config{Timing: tm(20), Cores: cores})
			if err != nil {
				return false
			}
			if prev >= 0 && float64(r.Cycles) > 1.02*float64(prev)+2 {
				t.Logf("seed=%d: window %d slower than smaller window: %d > %d", seed, w, r.Cycles, prev)
				return false
			}
			prev = r.Cycles
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInMD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, 150, 2)
		cores := []isa.CoreConfig{{Window: 12, IssueWidth: 4}, {Window: 12, IssueWidth: 5}}
		prev := int64(-1)
		for md := 0; md <= 60; md += 15 {
			r, err := Run(p, Config{Timing: tm(md), Cores: cores})
			if err != nil {
				return false
			}
			if r.Cycles < prev {
				t.Logf("seed=%d: md=%d faster than lower md: %d < %d", seed, md, r.Cycles, prev)
				return false
			}
			prev = r.Cycles
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIssueNeverExceedsWidth(t *testing.T) {
	p := randomProgram(rand.New(rand.NewSource(7)), 300, 2)
	cores := []isa.CoreConfig{{Window: 16, IssueWidth: 3}, {Window: 16, IssueWidth: 2}}
	r := mustRun(t, p, Config{Timing: tm(10), Cores: cores})
	for u, cs := range r.Cores {
		width := cores[u].IssueWidth
		for k, cnt := range cs.IssueHist {
			if k > width && cnt > 0 {
				t.Errorf("core %d issued %d ops in a cycle (width %d)", u, k, width)
			}
		}
		var histSum int64
		for k := 1; k < len(cs.IssueHist); k++ {
			histSum += int64(k) * cs.IssueHist[k]
		}
		if histSum != cs.Issued {
			t.Errorf("core %d: histogram sums to %d, issued %d", u, histSum, cs.Issued)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	p := twoUnitProgram(50)
	r := mustRun(t, p, Config{Timing: tm(25), Cores: []isa.CoreConfig{{Window: 8, IssueWidth: 4}, {Window: 8, IssueWidth: 5}}})
	var issued int64
	for _, cs := range r.Cores {
		issued += cs.Issued
	}
	if issued != int64(r.Ops) {
		t.Fatalf("issued %d != ops %d", issued, r.Ops)
	}
	if r.Fills != 50 {
		t.Fatalf("fills = %d, want 50", r.Fills)
	}
	if r.MaxFillsInFlight < 1 {
		t.Fatal("no fills in flight recorded")
	}
	if r.IPC() <= 0 || r.OpsPerCycle() <= 0 {
		t.Fatalf("rates not positive: %v %v", r.IPC(), r.OpsPerCycle())
	}
}

func TestConfigValidation(t *testing.T) {
	p := intChain(3)
	if _, err := Run(p, Config{Timing: tm(0), Cores: nil}); err == nil {
		t.Error("missing cores accepted")
	}
	if _, err := Run(p, Config{Timing: isa.Timing{MD: -1, FPLat: 3, CopyLat: 1}, Cores: oneCore(4, 2)}); err == nil {
		t.Error("negative md accepted")
	}
	if _, err := Run(p, Config{Timing: tm(0), Cores: oneCore(4, 0)}); err == nil {
		t.Error("zero width accepted")
	}
}

func TestProgramValidation(t *testing.T) {
	cases := []struct {
		name  string
		ops   []Op
		units int
	}{
		{"bad unit", []Op{{Kind: isa.OpInt, Unit: 5, MemSrc: NoDep}}, 1},
		{"forward src", []Op{{Kind: isa.OpInt, Srcs: []int32{0}, MemSrc: NoDep}}, 1},
		{"consume without memsrc", []Op{{Kind: isa.OpLoadRecv, MemSrc: NoDep}}, 1},
		{"memsrc not a send", []Op{{Kind: isa.OpInt, MemSrc: NoDep}, {Kind: isa.OpLoadRecv, MemSrc: 0}}, 1},
		{"memsrc on plain op", []Op{{Kind: isa.OpLoadSend, MemSrc: NoDep}, {Kind: isa.OpInt, MemSrc: 0}}, 1},
		{"bad kind", []Op{{Kind: isa.OpKind(99), MemSrc: NoDep}}, 1},
	}
	for _, tc := range cases {
		if _, err := NewProgram(tc.name, tc.ops, tc.units, len(tc.ops)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewProgram("no units", nil, 0, 0); err == nil {
		t.Error("zero units accepted")
	}
}

// delayMem doubles the differential for every other request.
type delayMem struct {
	md    int64
	calls int
}

func (m *delayMem) RequestFill(addr uint64, sent int64) int64 {
	m.calls++
	if m.calls%2 == 0 {
		return sent + 2*m.md
	}
	return sent + m.md
}
func (m *delayMem) Consume(addr uint64, cycle int64) {}
func (m *delayMem) Reset()                           { m.calls = 0 }

func TestCustomMemModel(t *testing.T) {
	p := twoUnitProgram(20)
	cores := []isa.CoreConfig{{Window: 64, IssueWidth: 4}, {Window: 64, IssueWidth: 5}}
	base := mustRun(t, p, Config{Timing: tm(30), Cores: cores})
	slow := mustRun(t, p, Config{Timing: tm(30), Cores: cores, Mem: &delayMem{md: 30}})
	if slow.Cycles < base.Cycles {
		t.Fatalf("slower memory model finished earlier: %d < %d", slow.Cycles, base.Cycles)
	}
}

// badMem returns an arrival before the send to exercise engine checking.
type badMem struct{}

func (badMem) RequestFill(addr uint64, sent int64) int64 { return sent - 1 }
func (badMem) Consume(addr uint64, cycle int64)          {}
func (badMem) Reset()                                    {}

func TestBadMemModelRejected(t *testing.T) {
	p := twoUnitProgram(2)
	cores := []isa.CoreConfig{{Window: 4, IssueWidth: 4}, {Window: 4, IssueWidth: 5}}
	if _, err := Run(p, Config{Timing: tm(10), Cores: cores, Mem: badMem{}}); err == nil {
		t.Fatal("bad memory model accepted")
	}
}

func TestKindCountsAndStream(t *testing.T) {
	p := twoUnitProgram(10)
	c := p.KindCounts()
	if c[isa.OpLoadSend] != 10 || c[isa.OpLoadRecv] != 10 || c[isa.OpFP] != 10 {
		t.Fatalf("kind counts wrong: %v", c)
	}
	if len(p.Stream(isa.AU)) != 10 || len(p.Stream(isa.DU)) != 20 {
		t.Fatalf("streams wrong: %d %d", len(p.Stream(isa.AU)), len(p.Stream(isa.DU)))
	}
}

func TestFastForwardLongStall(t *testing.T) {
	// A single load with huge md: the engine must jump, not iterate.
	ops := []Op{
		{Kind: isa.OpLoadSend, MemSrc: NoDep},
		{Kind: isa.OpLoadRecv, MemSrc: 0},
	}
	p := MustProgram("stall", ops, 1, 2)
	r := mustRun(t, p, Config{Timing: isa.Timing{MD: 1_000_000, FPLat: 3, CopyLat: 1}, Cores: oneCore(4, 2)})
	if r.Cycles != 1_000_002 {
		t.Fatalf("cycles = %d, want 1000002", r.Cycles)
	}
}
