package engine

// ReferenceRun is the seed engine's map-and-heap event loop, kept
// verbatim as a differential-testing oracle for the calendar-queue,
// structure-of-arrays engine in sim.go. Its per-run allocation behaviour
// is terrible — that is why it was replaced — but its semantics define
// the engine: Sim.Run must produce bit-identical Results (see
// TestCalendarQueueMatchesReference, and FuzzWorkgenDifferential in
// internal/workgen, which drives both machines over generated workloads
// against it). It deliberately shares no derived program state with the
// SoA engine: the dependence adjacency is rebuilt here from the authored
// Op structs, so a mistake in the CSR flattening cannot cancel out of
// the comparison. It is exported for differential harnesses only; no
// production path calls it (it is not reachable from Sim.Run, so the
// versioned semantics surface does not include it).

import (
	"fmt"

	"daesim/internal/isa"
)

// refAdjacency is the seed engine's array-of-slices dependence structure,
// rebuilt from p.Ops independently of the Program's CSR slabs.
type refAdjacency struct {
	streams   [][]int32 // per-unit op indices, program order
	consPlain [][]int32 // completion-edge consumers per op
	consFill  [][]int32 // fill-edge consumers per op (sends only)
	nDeps     []int32   // static dependence count per op
}

func refAdjacencyOf(p *Program) *refAdjacency {
	a := &refAdjacency{
		streams:   make([][]int32, p.NumUnits),
		consPlain: make([][]int32, len(p.Ops)),
		consFill:  make([][]int32, len(p.Ops)),
		nDeps:     make([]int32, len(p.Ops)),
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		for _, s := range op.Srcs {
			a.consPlain[s] = append(a.consPlain[s], int32(i))
			a.nDeps[i]++
		}
		if op.Kind.IsConsume() {
			a.consFill[op.MemSrc] = append(a.consFill[op.MemSrc], int32(i))
			a.nDeps[i]++
		}
		a.streams[op.Unit] = append(a.streams[op.Unit], int32(i))
	}
	return a
}

// refBucket collects the events that fire at one cycle.
type refBucket struct {
	comps []int32 // ops completing (free slot, wake plain consumers)
	fills []int32 // send ops whose fill arrives (wake fill consumers)
}

type refCoreRun struct {
	cfg       isa.CoreConfig
	stream    []int32
	next      int
	occ       int
	window    int
	ready     i32Heap
	oldestPtr int
	retirePtr int
	lastOrig  int32
	stats     CoreStats
	lastTouch int64
}

func (c *refCoreRun) touch(cycle int64) {
	c.stats.OccIntegral += int64(c.occ) * (cycle - c.lastTouch)
	c.lastTouch = cycle
}

// ReferenceRun executes the program exactly as the seed engine did.
func ReferenceRun(p *Program, cfg Config) (*Result, error) {
	if err := cfg.Validate(p); err != nil {
		return nil, err
	}
	n := len(p.Ops)
	res := &Result{Ops: n, TraceLen: p.TraceLen, Cores: make([]CoreStats, p.NumUnits)}
	if n == 0 {
		return res, nil
	}
	if cfg.Mem != nil {
		cfg.Mem.Reset()
	}
	md := int64(cfg.Timing.MD)

	adj := refAdjacencyOf(p)
	state := make([]uint8, n)
	pending := make([]int32, n)
	copy(pending, adj.nDeps)

	cores := make([]*refCoreRun, p.NumUnits)
	for u := range cores {
		cc := cfg.Cores[u]
		window := cc.Window
		if cc.Unlimited() {
			window = n + 1
		}
		hist := cc.IssueWidth + 1
		if hist > histCap {
			hist = histCap
		}
		cores[u] = &refCoreRun{
			cfg:      cc,
			stream:   adj.streams[u],
			window:   window,
			lastOrig: -1,
		}
		cores[u].stats.IssueHist = make([]int64, hist)
	}

	events := map[int64]*refBucket{}
	var eventTimes int64Heap
	bucketAt := func(t int64) *refBucket {
		b := events[t]
		if b == nil {
			b = &refBucket{}
			events[t] = b
			eventTimes.push(t)
		}
		return b
	}

	completed := 0
	var cycle int64
	var inflight, maxInflight int
	var eswSamples, slipSamples int64
	var eswSum, slipSum int64

	wake := func(i int32) {
		pending[i]--
		if pending[i] == 0 && state[i] == stInWindow {
			cores[p.Ops[i].Unit].ready.push(i)
		}
	}

	for completed < n {
		// 1. Fire events due now.
		if b, ok := events[cycle]; ok {
			for _, i := range b.comps {
				state[i] = stDone
				completed++
				if !cfg.RetireInOrder {
					c := cores[p.Ops[i].Unit]
					c.touch(cycle)
					c.occ--
				}
				for _, consumer := range adj.consPlain[i] {
					wake(consumer)
				}
			}
			if cfg.RetireInOrder && len(b.comps) > 0 {
				for _, c := range cores {
					for c.retirePtr < c.next && state[c.stream[c.retirePtr]] == stDone {
						c.retirePtr++
						c.touch(cycle)
						c.occ--
					}
				}
			}
			for _, i := range b.fills {
				inflight--
				for _, consumer := range adj.consFill[i] {
					wake(consumer)
				}
			}
			delete(events, cycle)
		}

		// 2. Dispatch in program order, per core.
		for _, c := range cores {
			dw := c.cfg.EffectiveDispatch()
			for k := 0; k < dw && c.occ < c.window && c.next < len(c.stream); k++ {
				i := c.stream[c.next]
				c.next++
				c.touch(cycle)
				c.occ++
				if c.occ > c.stats.MaxOcc {
					c.stats.MaxOcc = c.occ
				}
				state[i] = stInWindow
				c.lastOrig = p.Ops[i].Orig
				if pending[i] == 0 {
					c.ready.push(i)
				}
			}
		}

		// 3. Issue oldest-first, per core.
		for _, c := range cores {
			issued := 0
			for issued < c.cfg.IssueWidth && !c.ready.empty() {
				i := c.ready.pop()
				issued++
				state[i] = stIssued
				op := &p.Ops[i]
				c.stats.Issued++
				c.stats.IssuedByKind[op.Kind]++
				lat := int64(cfg.Timing.Latency(op.Kind))
				done := cycle + lat
				if op.Kind.IsSend() {
					arrive := done + md
					if cfg.Mem != nil {
						arrive = cfg.Mem.RequestFill(op.Addr, done)
						if arrive < done {
							return nil, fmt.Errorf("engine: memory model returned arrival %d before send %d", arrive, done)
						}
					}
					res.Fills++
					if len(adj.consFill[i]) > 0 || cfg.Mem != nil {
						inflight++
						if inflight > maxInflight {
							maxInflight = inflight
						}
						fb := bucketAt(arrive)
						fb.fills = append(fb.fills, i)
					}
					if cfg.HoldSendSlots {
						done = arrive
					}
				}
				cb := bucketAt(done)
				cb.comps = append(cb.comps, i)
				if op.Kind.IsConsume() && cfg.Mem != nil {
					cfg.Mem.Consume(op.Addr, cycle)
				}
			}
			if issued > 0 {
				c.stats.BusyCycles++
				h := issued
				if h >= len(c.stats.IssueHist) {
					h = len(c.stats.IssueHist) - 1
				}
				c.stats.IssueHist[h]++
			}
		}

		// 4. ESW and slippage sampling.
		if cfg.CollectESW {
			var youngest int32 = -1
			oldest := int32(-1)
			for _, c := range cores {
				if c.lastOrig > youngest {
					youngest = c.lastOrig
				}
				for c.oldestPtr < c.next && state[c.stream[c.oldestPtr]] == stDone {
					c.oldestPtr++
				}
				if c.oldestPtr < c.next {
					o := p.Ops[c.stream[c.oldestPtr]].Orig
					if oldest == -1 || o < oldest {
						oldest = o
					}
				}
			}
			if oldest >= 0 && youngest >= oldest {
				esw := int64(youngest-oldest) + 1
				eswSum += esw
				eswSamples++
				if esw > res.MaxESW {
					res.MaxESW = esw
				}
			}
			if len(cores) == 2 && cores[0].lastOrig >= 0 && cores[1].lastOrig >= 0 {
				slip := int64(cores[0].lastOrig - cores[1].lastOrig)
				slipSum += slip
				slipSamples++
				if slip > res.MaxSlip {
					res.MaxSlip = slip
				}
			}
		}

		// 5. Advance time, fast-forwarding idle stretches.
		progressNext := false
		for _, c := range cores {
			if !c.ready.empty() || (c.next < len(c.stream) && c.occ < c.window) {
				progressNext = true
				break
			}
		}
		if progressNext {
			cycle++
			continue
		}
		if completed == n {
			break
		}
		next := int64(-1)
		for !eventTimes.empty() {
			t := eventTimes.pop()
			if _, ok := events[t]; ok && t > cycle {
				next = t
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("engine: deadlock at cycle %d with %d/%d ops complete", cycle, completed, n)
		}
		cycle = next
	}

	res.Cycles = cycle
	for u, c := range cores {
		c.touch(cycle)
		res.Cores[u] = c.stats
	}
	res.MaxFillsInFlight = maxInflight
	if eswSamples > 0 {
		res.AvgESW = float64(eswSum) / float64(eswSamples)
	}
	if slipSamples > 0 {
		res.AvgSlip = float64(slipSum) / float64(slipSamples)
	}
	return res, nil
}
