package engine

import "math/bits"

// The event queue is an indexed calendar queue (timing wheel): a
// power-of-two ring of per-cycle buckets covering [now, now+len) plus a
// min-heap overflow for events beyond the horizon. Scheduling and firing
// an in-horizon event are O(1) array operations — no map hashing, no
// per-bucket allocation after warm-up — which is what makes the engine's
// inner loop allocation-free when a Sim is reused. Far events (huge
// memory differentials, queueing memory models that delay arrivals
// arbitrarily) spill to the overflow heap and migrate into the wheel as
// time advances.
//
// Nonempty slots are tracked in a bitmap (one bit per slot). The idle
// fast-forward scans the bitmap in ring order with TrailingZeros64 —
// a handful of word reads for the whole wheel — replacing the earlier
// candidate-time min-heap whose push/pop dominated the advance path.
//
// Invariants:
//   - every scheduled time is strictly in the future of the cycle that
//     scheduled it, and the wheel only holds times in (now, now+len), so
//     a nonempty bucket's time is unambiguous (no wrap-around aliasing);
//   - a slot's bit is set iff its bucket is nonempty;
//   - drain(now) has been called before fire/nextAfter at cycle `now`,
//     so the overflow heap's minimum is always >= now+len and every
//     in-horizon event is in the wheel.

// evBucket collects the events that fire at one cycle. comps are ops
// completing (free slot, wake plain consumers); fills are send ops whose
// memory fill arrives (wake fill consumers). Slices keep their capacity
// across runs.
type evBucket struct {
	time  int64
	comps []int32
	fills []int32
}

//daelint:hotpath
func (b *evBucket) empty() bool { return len(b.comps) == 0 && len(b.fills) == 0 }

// farEvent is an event beyond the wheel horizon.
type farEvent struct {
	time int64
	op   int32
	fill bool
}

// farHeap is a binary min-heap of far events keyed by time. Events that
// tie on time may pop in any order; bucket-internal event order is
// semantically irrelevant (see the determinism note in sim.go).
type farHeap struct{ a []farEvent }

//daelint:hotpath
func (h *farHeap) empty() bool { return len(h.a) == 0 }
func (h *farHeap) reset()      { h.a = h.a[:0] }

//daelint:hotpath
func (h *farHeap) min() int64 { return h.a[0].time }

//daelint:hotpath
func (h *farHeap) push(v farEvent) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].time <= h.a[i].time {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

//daelint:hotpath
func (h *farHeap) pop() farEvent {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.a[l].time < h.a[smallest].time {
			smallest = l
		}
		if r < last && h.a[r].time < h.a[smallest].time {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

// Wheel size bounds. The size is chosen per run from the timing so the
// fixed-differential fast path (latency + MD offsets) stays in-wheel;
// sweeps over MD 0..60 all land on the minimum size, so a reused Sim
// never reallocates its slots.
const (
	minWheelSize = 256
	maxWheelSize = 8192
)

type calQueue struct {
	slots []evBucket
	mask  int64
	// bits[w] bit b set iff slots[w*64+b] is nonempty.
	bits []uint64
	far  farHeap
}

// reset prepares the queue for a run whose in-wheel events span at most
// `horizon` cycles ahead of their scheduling cycle.
func (q *calQueue) reset(horizon int64) {
	size := int64(minWheelSize)
	for size < horizon && size < maxWheelSize {
		size <<= 1
	}
	if int64(len(q.slots)) != size {
		q.slots = make([]evBucket, size)
		q.bits = make([]uint64, size/64)
	} else {
		for i := range q.slots {
			q.slots[i].comps = q.slots[i].comps[:0]
			q.slots[i].fills = q.slots[i].fills[:0]
		}
		clear(q.bits)
	}
	q.mask = size - 1
	q.far.reset()
}

// put inserts op i into the in-horizon bucket at time t.
//
//daelint:hotpath
func (q *calQueue) put(t int64, i int32, fill bool) {
	slot := t & q.mask
	b := &q.slots[slot]
	if b.empty() {
		b.time = t
		q.bits[slot>>6] |= 1 << uint(slot&63)
	}
	if fill {
		b.fills = append(b.fills, i)
	} else {
		b.comps = append(b.comps, i)
	}
}

// schedule inserts op i at time t (> now); fill selects the fill list.
//
//daelint:hotpath
func (q *calQueue) schedule(now, t int64, i int32, fill bool) {
	if t-now < int64(len(q.slots)) {
		q.put(t, i, fill)
		return
	}
	q.far.push(farEvent{time: t, op: i, fill: fill})
}

// drain migrates far events that have come within the horizon of `now`
// into the wheel. Call once per simulated cycle, before fire.
//
//daelint:hotpath
func (q *calQueue) drain(now int64) {
	horizon := now + int64(len(q.slots))
	for !q.far.empty() && q.far.min() < horizon {
		ev := q.far.pop()
		q.put(ev.time, ev.op, ev.fill)
	}
}

// fire returns the bucket due at `now`, or nil if none. The caller must
// process and then release it with clearBucket.
//
//daelint:hotpath
func (q *calQueue) fire(now int64) *evBucket {
	b := &q.slots[now&q.mask]
	if b.time == now && !b.empty() {
		return b
	}
	return nil
}

// clearBucket empties a fired bucket and clears its nonempty bit.
//
//daelint:hotpath
func (q *calQueue) clearBucket(b *evBucket) {
	b.comps = b.comps[:0]
	b.fills = b.fills[:0]
	slot := b.time & q.mask
	q.bits[slot>>6] &^= 1 << uint(slot&63)
}

// nextAfter returns the earliest pending event time strictly after `now`,
// or -1 if no events are pending. drain(now) must have run, so any valid
// wheel time is closer than the overflow minimum. The bitmap scan visits
// slots in ring order starting just after `now`; because every wheel time
// lies in (now, now+len), ring distance equals time distance and the
// first set bit is the earliest event.
//
//daelint:hotpath
func (q *calQueue) nextAfter(now int64) int64 {
	words := len(q.bits)
	start := int((now + 1) & q.mask)
	w := start >> 6
	// Mask off bits below the start slot; they wrap to the end of the
	// scan and are re-examined in the final full-word pass.
	word := q.bits[w] &^ (1<<uint(start&63) - 1)
	for k := 0; k <= words; k++ {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			return q.slots[slot].time
		}
		w++
		if w == words {
			w = 0
		}
		word = q.bits[w]
	}
	if !q.far.empty() {
		return q.far.min()
	}
	return -1
}
