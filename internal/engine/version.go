package engine

// Version tags the engine's observable semantics for persistent result
// caches. Any change that can alter a Result for the same (program,
// config) — issue/dispatch ordering, retirement accounting, event-queue
// semantics, new statistics — must bump this string, which invalidates
// every on-disk cache entry (sweep.Store folds it into the entry key).
// Pure performance work that provably preserves Results (the differential
// reference tests gate this) does not bump it.
//
// History:
//
//	v1 — seed map/heap engine
//	v2 — calendar queue + SoA hot path (bit-identical to v1 by test)
//	v3 — machine-level retirement defaults resolved by the caller; the
//	     SWSM now retires in order (see machine.RetirePolicy), so cached
//	     points carry the resolved policy in their key
const Version = "engine-v3"
