package engine

// i32Heap is a binary min-heap of op indices. Oldest-first issue selection
// pops the minimum index, which is the oldest op in program order.
// A hand-rolled heap avoids container/heap interface overhead in the
// simulator's hottest loop.
type i32Heap struct{ a []int32 }

func (h *i32Heap) len() int    { return len(h.a) }
func (h *i32Heap) empty() bool { return len(h.a) == 0 }
func (h *i32Heap) peek() int32 { return h.a[0] }
func (h *i32Heap) reset()      { h.a = h.a[:0] }

func (h *i32Heap) push(v int32) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent] <= h.a[i] {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *i32Heap) pop() int32 {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.a[l] < h.a[smallest] {
			smallest = l
		}
		if r < last && h.a[r] < h.a[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

// int64Heap is a binary min-heap of cycle numbers for the event queue.
type int64Heap struct{ a []int64 }

func (h *int64Heap) len() int    { return len(h.a) }
func (h *int64Heap) empty() bool { return len(h.a) == 0 }
func (h *int64Heap) peek() int64 { return h.a[0] }
func (h *int64Heap) reset()      { h.a = h.a[:0] }

func (h *int64Heap) push(v int64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent] <= h.a[i] {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *int64Heap) pop() int64 {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.a[l] < h.a[smallest] {
			smallest = l
		}
		if r < last && h.a[r] < h.a[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}
