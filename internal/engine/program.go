// Package engine simulates out-of-order instruction windows. It executes
// machine programs (streams of unit-bound operations with true-dependence
// and memory-fill edges) under the paper's idealized timing model:
// in-order dispatch into a bounded window, oldest-first issue of up to
// IssueWidth ready operations per cycle per core, fixed operation
// latencies, and memory fills that arrive a configurable number of cycles
// after the address is sent.
package engine

import (
	"fmt"

	"daesim/internal/isa"
)

// NoDep marks an absent dependence reference in an Op.
const NoDep int32 = -1

// Op is one machine operation. Operations appear in a Program in global
// program order; each is bound to one core (unit) and dispatches in order
// within that core's stream.
type Op struct {
	// Kind selects latency and memory behaviour.
	Kind isa.OpKind
	// Unit is the core that executes the op.
	Unit isa.Unit
	// Srcs are true-dependence producers: this op becomes ready only after
	// each producer completes.
	Srcs []int32
	// MemSrc, for consume ops (LoadRecv/Access), is the matching send op;
	// the edge delay is the memory fill time rather than the producer
	// latency.
	MemSrc int32
	// Addr is the byte address for memory ops (sends and consumes); used
	// only by locality-aware memory models.
	Addr uint64
	// Orig is the index of the originating trace instruction, used for
	// effective-single-window and slippage measurement.
	Orig int32
}

// Program is an immutable lowered program plus precomputed dependence
// structure. Build one with NewProgram and reuse it across many Run calls.
type Program struct {
	// Name identifies the program (workload + machine lowering).
	Name string
	// Ops is the operation stream in global program order.
	Ops []Op
	// NumUnits is the number of cores the ops reference (1 or 2).
	NumUnits int
	// TraceLen is the length of the originating trace (for IPC reporting).
	TraceLen int

	streams   [][]int32 // per-unit op indices, program order
	consPlain [][]int32 // completion-edge consumers per op
	consFill  [][]int32 // fill-edge consumers per op (sends only)
	nDeps     []int32   // static dependence count per op
}

// NewProgram validates ops and precomputes dependence structure.
func NewProgram(name string, ops []Op, numUnits, traceLen int) (*Program, error) {
	if numUnits < 1 {
		return nil, fmt.Errorf("engine: program %s: numUnits %d < 1", name, numUnits)
	}
	p := &Program{Name: name, Ops: ops, NumUnits: numUnits, TraceLen: traceLen}
	p.streams = make([][]int32, numUnits)
	p.consPlain = make([][]int32, len(ops))
	p.consFill = make([][]int32, len(ops))
	p.nDeps = make([]int32, len(ops))
	for i := range ops {
		op := &ops[i]
		if !op.Kind.Valid() {
			return nil, fmt.Errorf("engine: program %s: op %d: invalid kind %d", name, i, op.Kind)
		}
		if int(op.Unit) >= numUnits {
			return nil, fmt.Errorf("engine: program %s: op %d: unit %v out of range (%d units)", name, i, op.Unit, numUnits)
		}
		for _, s := range op.Srcs {
			if s < 0 || s >= int32(i) {
				return nil, fmt.Errorf("engine: program %s: op %d: src %d not strictly backwards", name, i, s)
			}
			p.consPlain[s] = append(p.consPlain[s], int32(i))
			p.nDeps[i]++
		}
		switch {
		case op.Kind.IsConsume():
			if op.MemSrc < 0 || op.MemSrc >= int32(i) {
				return nil, fmt.Errorf("engine: program %s: op %d: consume without valid MemSrc", name, i)
			}
			if !ops[op.MemSrc].Kind.IsSend() {
				return nil, fmt.Errorf("engine: program %s: op %d: MemSrc %d is %v, not a send", name, i, op.MemSrc, ops[op.MemSrc].Kind)
			}
			p.consFill[op.MemSrc] = append(p.consFill[op.MemSrc], int32(i))
			p.nDeps[i]++
		case op.MemSrc != NoDep:
			return nil, fmt.Errorf("engine: program %s: op %d: MemSrc on non-consume op %v", name, i, op.Kind)
		}
		p.streams[op.Unit] = append(p.streams[op.Unit], int32(i))
	}
	return p, nil
}

// MustProgram is NewProgram but panics on error; used by lowerings that
// are correct by construction.
func MustProgram(name string, ops []Op, numUnits, traceLen int) *Program {
	p, err := NewProgram(name, ops, numUnits, traceLen)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of machine operations.
func (p *Program) Len() int { return len(p.Ops) }

// Stream returns the op indices executed by the given unit, program order.
func (p *Program) Stream(u isa.Unit) []int32 { return p.streams[u] }

// KindCounts returns the number of ops of each kind.
func (p *Program) KindCounts() [isa.NumOpKinds]int {
	var c [isa.NumOpKinds]int
	for i := range p.Ops {
		c[p.Ops[i].Kind]++
	}
	return c
}

// DataflowTime returns the resource-free execution time of the program:
// the longest dependence path with the given timing and the fixed-
// differential memory model. The engine must reach exactly this time when
// windows and widths are unlimited; tests rely on that.
func (p *Program) DataflowTime(tm isa.Timing) int64 {
	done := make([]int64, len(p.Ops))
	fill := make([]int64, len(p.Ops))
	var max int64
	for i := range p.Ops {
		op := &p.Ops[i]
		var ready int64
		for _, s := range op.Srcs {
			if done[s] > ready {
				ready = done[s]
			}
		}
		if op.Kind.IsConsume() {
			if f := fill[op.MemSrc]; f > ready {
				ready = f
			}
		}
		done[i] = ready + int64(tm.Latency(op.Kind))
		if op.Kind.IsSend() {
			fill[i] = done[i] + int64(tm.MD)
		}
		if done[i] > max {
			max = done[i]
		}
	}
	return max
}
