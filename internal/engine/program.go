// Package engine simulates out-of-order instruction windows. It executes
// machine programs (streams of unit-bound operations with true-dependence
// and memory-fill edges) under the paper's idealized timing model:
// in-order dispatch into a bounded window, oldest-first issue of up to
// IssueWidth ready operations per cycle per core, fixed operation
// latencies, and memory fills that arrive a configurable number of cycles
// after the address is sent.
package engine

import (
	"fmt"

	"daesim/internal/isa"
)

// NoDep marks an absent dependence reference in an Op.
const NoDep int32 = -1

// Program.flags bits.
const (
	opFlagSend     uint8 = 1 << iota // dispatches an address to memory
	opFlagConsume                    // waits on a memory fill
	opFlagFillCons                   // has fill-edge consumers
)

// Op is one machine operation. Operations appear in a Program in global
// program order; each is bound to one core (unit) and dispatches in order
// within that core's stream.
//
// Op is the authoring format only: NewProgram repacks the op stream into
// structure-of-arrays slabs (see Program) and the simulator never touches
// the Op structs again, so lowerings are free to build them incrementally
// with per-op Srcs slices.
type Op struct {
	// Kind selects latency and memory behaviour.
	Kind isa.OpKind
	// Unit is the core that executes the op.
	Unit isa.Unit
	// Srcs are true-dependence producers: this op becomes ready only after
	// each producer completes.
	Srcs []int32
	// MemSrc, for consume ops (LoadRecv/Access), is the matching send op;
	// the edge delay is the memory fill time rather than the producer
	// latency.
	MemSrc int32
	// Addr is the byte address for memory ops (sends and consumes); used
	// only by locality-aware memory models.
	Addr uint64
	// Orig is the index of the originating trace instruction, used for
	// effective-single-window and slippage measurement.
	Orig int32
}

// Program is an immutable lowered program plus precomputed dependence
// structure. Build one with NewProgram and reuse it across many Run calls.
//
// Internally the op stream is repacked as structure-of-arrays: the hot
// per-op scalars (kind, unit, orig, addr) live in dense parallel arrays,
// and the variable-length adjacency (dependence sources, completion-edge
// and fill-edge consumers, per-unit streams) is CSR-flattened into
// offset+data slab pairs. The simulator's inner loops read only these
// slabs, never the Op structs, so an issue touches a few contiguous
// cache lines instead of striding across 64-byte Op records whose cold
// fields (Srcs headers, MemSrc) pollute the cache.
type Program struct {
	// Name identifies the program (workload + machine lowering).
	Name string
	// Ops is the operation stream in global program order (authoring
	// format; the simulator reads the SoA slabs below instead).
	Ops []Op
	// NumUnits is the number of cores the ops reference (1 or 2).
	NumUnits int
	// TraceLen is the length of the originating trace (for IPC reporting).
	TraceLen int

	// SoA scalar slabs, indexed by op.
	kinds []isa.OpKind
	units []uint8
	origs []int32
	addrs []uint64
	// flags packs the per-op predicates the issue loop branches on
	// (send/consume/has-fill-consumers) into one byte.
	flags []uint8

	// CSR slabs: xxxOff has len(ops)+1 entries; the data for op i is
	// xxxDat[xxxOff[i]:xxxOff[i+1]].
	srcOff []int32 // true-dependence producers (Srcs)
	srcDat []int32
	cpOff  []int32 // completion-edge consumers
	cpDat  []int32
	cfOff  []int32 // fill-edge consumers (sends only)
	cfDat  []int32

	memSrcs []int32 // matching send per consume op (NoDep otherwise)
	nDeps   []int32 // static dependence count per op

	// Per-unit op streams, CSR over units; posInStream[i] is op i's
	// position within its unit's stream (the ready-bitmap index).
	streamOff   []int32
	streamDat   []int32
	posInStream []int32
}

// NewProgram validates ops and precomputes the SoA dependence structure.
func NewProgram(name string, ops []Op, numUnits, traceLen int) (*Program, error) {
	if numUnits < 1 {
		return nil, fmt.Errorf("engine: program %s: numUnits %d < 1", name, numUnits)
	}
	n := len(ops)
	p := &Program{Name: name, Ops: ops, NumUnits: numUnits, TraceLen: traceLen}
	p.kinds = make([]isa.OpKind, n)
	p.units = make([]uint8, n)
	p.flags = make([]uint8, n)
	p.origs = make([]int32, n)
	p.addrs = make([]uint64, n)
	p.memSrcs = make([]int32, n)
	p.nDeps = make([]int32, n)
	p.posInStream = make([]int32, n)
	p.srcOff = make([]int32, n+1)
	p.cpOff = make([]int32, n+1)
	p.cfOff = make([]int32, n+1)
	p.streamOff = make([]int32, numUnits+1)

	// Pass 1: validate and count edges; offsets temporarily hold counts
	// shifted one slot right so the prefix sum turns them into offsets.
	nSrcs := 0
	for i := range ops {
		op := &ops[i]
		if !op.Kind.Valid() {
			return nil, fmt.Errorf("engine: program %s: op %d: invalid kind %d", name, i, op.Kind)
		}
		if int(op.Unit) >= numUnits {
			return nil, fmt.Errorf("engine: program %s: op %d: unit %v out of range (%d units)", name, i, op.Unit, numUnits)
		}
		for _, s := range op.Srcs {
			if s < 0 || s >= int32(i) {
				return nil, fmt.Errorf("engine: program %s: op %d: src %d not strictly backwards", name, i, s)
			}
			p.cpOff[s+1]++
			p.nDeps[i]++
		}
		nSrcs += len(op.Srcs)
		switch {
		case op.Kind.IsConsume():
			if op.MemSrc < 0 || op.MemSrc >= int32(i) {
				return nil, fmt.Errorf("engine: program %s: op %d: consume without valid MemSrc", name, i)
			}
			if !ops[op.MemSrc].Kind.IsSend() {
				return nil, fmt.Errorf("engine: program %s: op %d: MemSrc %d is %v, not a send", name, i, op.MemSrc, ops[op.MemSrc].Kind)
			}
			p.cfOff[op.MemSrc+1]++
			p.nDeps[i]++
		case op.MemSrc != NoDep:
			return nil, fmt.Errorf("engine: program %s: op %d: MemSrc on non-consume op %v", name, i, op.Kind)
		}
		p.streamOff[int(op.Unit)+1]++
	}
	for i := 0; i < n; i++ {
		p.cpOff[i+1] += p.cpOff[i]
		p.cfOff[i+1] += p.cfOff[i]
	}
	for u := 0; u < numUnits; u++ {
		p.streamOff[u+1] += p.streamOff[u]
	}
	p.srcDat = make([]int32, nSrcs)
	p.cpDat = make([]int32, p.cpOff[n])
	p.cfDat = make([]int32, p.cfOff[n])
	p.streamDat = make([]int32, n)

	// Pass 2: fill the slabs. Consumer and stream lists are appended in
	// ascending op order, matching the order the old [][]int32 layout
	// produced; fill cursors reuse scratch counters.
	cpNext := make([]int32, n)
	cfNext := make([]int32, n)
	streamNext := make([]int32, numUnits)
	copy(cpNext, p.cpOff[:n])
	copy(cfNext, p.cfOff[:n])
	copy(streamNext, p.streamOff[:numUnits])
	srcPos := int32(0)
	for i := range ops {
		op := &ops[i]
		p.kinds[i] = op.Kind
		p.units[i] = uint8(op.Unit)
		p.origs[i] = op.Orig
		p.addrs[i] = op.Addr
		p.memSrcs[i] = NoDep
		p.srcOff[i] = srcPos
		for _, s := range op.Srcs {
			p.srcDat[srcPos] = s
			srcPos++
			p.cpDat[cpNext[s]] = int32(i)
			cpNext[s]++
		}
		if op.Kind.IsConsume() {
			p.memSrcs[i] = op.MemSrc
			p.cfDat[cfNext[op.MemSrc]] = int32(i)
			cfNext[op.MemSrc]++
		}
		u := int(op.Unit)
		p.posInStream[i] = streamNext[u] - p.streamOff[u]
		p.streamDat[streamNext[u]] = int32(i)
		streamNext[u]++
	}
	p.srcOff[n] = srcPos
	for i := range ops {
		var f uint8
		if p.kinds[i].IsSend() {
			f |= opFlagSend
		}
		if p.kinds[i].IsConsume() {
			f |= opFlagConsume
		}
		if p.cfOff[i+1] > p.cfOff[i] {
			f |= opFlagFillCons
		}
		p.flags[i] = f
	}
	return p, nil
}

// MustProgram is NewProgram but panics on error; used by lowerings that
// are correct by construction.
func MustProgram(name string, ops []Op, numUnits, traceLen int) *Program {
	p, err := NewProgram(name, ops, numUnits, traceLen)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of machine operations.
func (p *Program) Len() int { return len(p.Ops) }

// Stream returns the op indices executed by the given unit, program order.
//
//daelint:hotpath
func (p *Program) Stream(u isa.Unit) []int32 {
	return p.streamDat[p.streamOff[u]:p.streamOff[u+1]]
}

// srcs returns op i's true-dependence producers.
//
//daelint:hotpath
func (p *Program) srcs(i int32) []int32 { return p.srcDat[p.srcOff[i]:p.srcOff[i+1]] }

// plainConsumers returns the ops woken by op i's completion.
//
//daelint:hotpath
func (p *Program) plainConsumers(i int32) []int32 { return p.cpDat[p.cpOff[i]:p.cpOff[i+1]] }

// fillConsumers returns the ops woken by send op i's fill arrival.
//
//daelint:hotpath
func (p *Program) fillConsumers(i int32) []int32 { return p.cfDat[p.cfOff[i]:p.cfOff[i+1]] }

// KindCounts returns the number of ops of each kind.
func (p *Program) KindCounts() [isa.NumOpKinds]int {
	var c [isa.NumOpKinds]int
	for _, k := range p.kinds {
		c[k]++
	}
	return c
}

// DataflowTime returns the resource-free execution time of the program:
// the longest dependence path with the given timing and the fixed-
// differential memory model. The engine must reach exactly this time when
// windows and widths are unlimited; tests rely on that.
func (p *Program) DataflowTime(tm isa.Timing) int64 {
	n := len(p.kinds)
	done := make([]int64, n)
	fill := make([]int64, n)
	var max int64
	for i := 0; i < n; i++ {
		var ready int64
		for _, s := range p.srcs(int32(i)) {
			if done[s] > ready {
				ready = done[s]
			}
		}
		k := p.kinds[i]
		if k.IsConsume() {
			if f := fill[p.memSrcs[i]]; f > ready {
				ready = f
			}
		}
		done[i] = ready + int64(tm.Latency(k))
		if k.IsSend() {
			fill[i] = done[i] + int64(tm.MD)
		}
		if done[i] > max {
			max = done[i]
		}
	}
	return max
}
