package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
)

// retireProgram: a load followed by independent ints; under in-order
// retirement the ints pile up behind the waiting receive.
func retireProgram() *Program {
	ops := []Op{
		{Kind: isa.OpLoadSend, MemSrc: NoDep, Orig: 0},
		{Kind: isa.OpLoadRecv, MemSrc: 0, Orig: 0},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 1},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 2},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 3},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 4},
	}
	return MustProgram("retire", ops, 1, 5)
}

func TestRetireInOrderBlocksBehindLoads(t *testing.T) {
	p := retireProgram()
	base := Config{Timing: tm(10), Cores: []isa.CoreConfig{{Window: 2, IssueWidth: 2}}}
	def := mustRun(t, p, base)
	if def.Cycles != 12 {
		t.Fatalf("default cycles = %d, want 12", def.Cycles)
	}
	inorder := base
	inorder.RetireInOrder = true
	rob := mustRun(t, p, inorder)
	if rob.Cycles != 14 {
		t.Fatalf("in-order retire cycles = %d, want 14", rob.Cycles)
	}
}

// TestRetireInOrderNeverFaster checks that in-order retirement cannot
// beat retire-at-completion — but only with unlimited IssueWidth. With a
// finite issue width the property is false: greedy oldest-first issue is
// list scheduling, and relaxing a resource constraint (retiring slots
// earlier lets the core dispatch further ahead) can make a greedy
// schedule *worse* — a Graham scheduling anomaly, not engine corruption.
// The seed asserted the property for finite widths too, which failed on
// roughly one random program in a few thousand (the anomaly is pinned
// deterministically in TestRetireInOrderAnomalyWithFiniteWidth). With
// unlimited width the issue stage never arbitrates, so extra lookahead
// can only wake operations earlier, and monotonicity holds.
func TestRetireInOrderNeverFaster(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(2)
		p := randomProgram(rng, 150, units)
		cores := make([]isa.CoreConfig, units)
		for i := range cores {
			cores[i] = isa.CoreConfig{Window: 4 + rng.Intn(12), IssueWidth: 1 << 20}
		}
		md := rng.Intn(40)
		def, err := Run(p, Config{Timing: tm(md), Cores: cores})
		if err != nil {
			return false
		}
		rob, err := Run(p, Config{Timing: tm(md), Cores: cores, RetireInOrder: true})
		if err != nil {
			return false
		}
		if rob.Cycles < def.Cycles {
			t.Logf("seed=%d: in-order retire faster: %d < %d", seed, rob.Cycles, def.Cycles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRetireInOrderAnomalyWithFiniteWidth pins the Graham anomaly that
// made the seed's finite-width version of the property above flaky: on
// this program (randomProgram seed 2259, the seed test's own generator)
// the default mode's deeper dispatch lookahead lets an off-critical-path
// op win an issue slot over a critical-path op, and the nominally
// *worse* in-order retirement policy finishes two cycles earlier. The
// engine is deterministic, so the exact cycle counts are asserted: if
// this test fails, issue-arbitration semantics changed.
func TestRetireInOrderAnomalyWithFiniteWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(2259))
	units := 1 + rng.Intn(2) // 2
	p := randomProgram(rng, 150, units)
	cores := make([]isa.CoreConfig, units)
	for i := range cores {
		cores[i] = isa.CoreConfig{Window: 4 + rng.Intn(12), IssueWidth: 1 + rng.Intn(4)}
	}
	md := rng.Intn(40) // cores {9,4} {15,1}, md=5
	def := mustRun(t, p, Config{Timing: tm(md), Cores: cores})
	rob := mustRun(t, p, Config{Timing: tm(md), Cores: cores, RetireInOrder: true})
	if def.Cycles != 78 || rob.Cycles != 76 {
		t.Fatalf("anomaly shifted: default=%d (want 78), in-order=%d (want 76)", def.Cycles, rob.Cycles)
	}
	if rob.Cycles >= def.Cycles {
		t.Fatalf("anomaly vanished: in-order %d >= default %d", rob.Cycles, def.Cycles)
	}
}

func TestRetireInOrderMatchesWithUnlimitedWindow(t *testing.T) {
	// With an unlimited window, slot reclamation policy cannot matter.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, 120, 2)
		cores := []isa.CoreConfig{{Window: 0, IssueWidth: 4}, {Window: 0, IssueWidth: 5}}
		def, err := Run(p, Config{Timing: tm(25), Cores: cores})
		if err != nil {
			return false
		}
		rob, err := Run(p, Config{Timing: tm(25), Cores: cores, RetireInOrder: true})
		if err != nil {
			return false
		}
		return def.Cycles == rob.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRetireInOrderOccupancyAccounting(t *testing.T) {
	p := retireProgram()
	cfg := Config{Timing: tm(10), Cores: []isa.CoreConfig{{Window: 2, IssueWidth: 2}}, RetireInOrder: true}
	r := mustRun(t, p, cfg)
	if r.Cores[0].MaxOcc != 2 {
		t.Fatalf("max occupancy = %d, want 2", r.Cores[0].MaxOcc)
	}
	// Occupancy integral must be positive and bounded by window*cycles.
	if r.Cores[0].OccIntegral <= 0 || r.Cores[0].OccIntegral > 2*r.Cycles {
		t.Fatalf("occupancy integral %d out of range", r.Cores[0].OccIntegral)
	}
}
