package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
)

// retireProgram: a load followed by independent ints; under in-order
// retirement the ints pile up behind the waiting receive.
func retireProgram() *Program {
	ops := []Op{
		{Kind: isa.OpLoadSend, MemSrc: NoDep, Orig: 0},
		{Kind: isa.OpLoadRecv, MemSrc: 0, Orig: 0},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 1},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 2},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 3},
		{Kind: isa.OpInt, MemSrc: NoDep, Orig: 4},
	}
	return MustProgram("retire", ops, 1, 5)
}

func TestRetireInOrderBlocksBehindLoads(t *testing.T) {
	p := retireProgram()
	base := Config{Timing: tm(10), Cores: []isa.CoreConfig{{Window: 2, IssueWidth: 2}}}
	def := mustRun(t, p, base)
	if def.Cycles != 12 {
		t.Fatalf("default cycles = %d, want 12", def.Cycles)
	}
	inorder := base
	inorder.RetireInOrder = true
	rob := mustRun(t, p, inorder)
	if rob.Cycles != 14 {
		t.Fatalf("in-order retire cycles = %d, want 14", rob.Cycles)
	}
}

func TestRetireInOrderNeverFaster(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(2)
		p := randomProgram(rng, 150, units)
		cores := make([]isa.CoreConfig, units)
		for i := range cores {
			cores[i] = isa.CoreConfig{Window: 4 + rng.Intn(12), IssueWidth: 1 + rng.Intn(4)}
		}
		md := rng.Intn(40)
		def, err := Run(p, Config{Timing: tm(md), Cores: cores})
		if err != nil {
			return false
		}
		rob, err := Run(p, Config{Timing: tm(md), Cores: cores, RetireInOrder: true})
		if err != nil {
			return false
		}
		if rob.Cycles < def.Cycles {
			t.Logf("seed=%d: in-order retire faster: %d < %d", seed, rob.Cycles, def.Cycles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRetireInOrderMatchesWithUnlimitedWindow(t *testing.T) {
	// With an unlimited window, slot reclamation policy cannot matter.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, 120, 2)
		cores := []isa.CoreConfig{{Window: 0, IssueWidth: 4}, {Window: 0, IssueWidth: 5}}
		def, err := Run(p, Config{Timing: tm(25), Cores: cores})
		if err != nil {
			return false
		}
		rob, err := Run(p, Config{Timing: tm(25), Cores: cores, RetireInOrder: true})
		if err != nil {
			return false
		}
		return def.Cycles == rob.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRetireInOrderOccupancyAccounting(t *testing.T) {
	p := retireProgram()
	cfg := Config{Timing: tm(10), Cores: []isa.CoreConfig{{Window: 2, IssueWidth: 2}}, RetireInOrder: true}
	r := mustRun(t, p, cfg)
	if r.Cores[0].MaxOcc != 2 {
		t.Fatalf("max occupancy = %d, want 2", r.Cores[0].MaxOcc)
	}
	// Occupancy integral must be positive and bounded by window*cycles.
	if r.Cores[0].OccIntegral <= 0 || r.Cores[0].OccIntegral > 2*r.Cycles {
		t.Fatalf("occupancy integral %d out of range", r.Cores[0].OccIntegral)
	}
}
