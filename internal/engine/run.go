package engine

import (
	"fmt"
	"sync"

	"daesim/internal/isa"
)

// MemModel abstracts the memory system seen by send/consume operations.
// The engine calls RequestFill when a send op completes (in nondecreasing
// cycle order) and Consume when the matching consume op issues. The
// paper's fixed-differential model is built in; locality-aware models
// live in internal/memsys.
type MemModel interface {
	// RequestFill reports when the fill for addr arrives, given that the
	// address reached the memory system at cycle sent. Must return a value
	// >= sent.
	RequestFill(addr uint64, sent int64) int64
	// Consume notifies the model that the buffered value for addr was
	// consumed at the given cycle.
	Consume(addr uint64, cycle int64)
	// Reset prepares the model for a fresh run.
	Reset()
}

// Config parameterizes one simulation run.
type Config struct {
	// Timing holds the latency parameters.
	Timing isa.Timing
	// Cores configures each core; its length must equal the program's
	// NumUnits.
	Cores []isa.CoreConfig
	// Mem is the memory model; nil selects the paper's fixed-differential
	// model (fill arrives Timing.MD cycles after the send completes).
	Mem MemModel
	// CollectESW enables effective-single-window and slippage statistics
	// (slightly more work per cycle).
	CollectESW bool
	// HoldSendSlots makes send operations occupy their window slot until
	// the fill returns instead of completing in one cycle. Fill timing is
	// unchanged; only window pressure differs. This removes the
	// fire-and-forget property that gives the decoupled machine its
	// slippage (ablation A3 in DESIGN.md).
	HoldSendSlots bool
	// RetireInOrder frees window slots in program order (reorder-buffer
	// style): a completed op's slot is reclaimed only once every older op
	// in the same core has completed. The default reclaims slots at
	// completion. In-order retirement models mid-90s RUU/ROB machines and
	// increases window pressure behind long-latency operations (ablation
	// A6 in DESIGN.md).
	RetireInOrder bool
}

// Validate reports configuration errors against the program.
func (c *Config) Validate(p *Program) error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if len(c.Cores) != p.NumUnits {
		return fmt.Errorf("engine: %d core configs for %d units", len(c.Cores), p.NumUnits)
	}
	for i, cc := range c.Cores {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("engine: core %d: %w", i, err)
		}
	}
	return nil
}

// CoreStats reports per-core execution statistics.
type CoreStats struct {
	// Issued is the number of operations issued.
	Issued int64
	// IssuedByKind breaks Issued down by operation kind.
	IssuedByKind [isa.NumOpKinds]int64
	// BusyCycles counts cycles in which the core issued at least one op.
	BusyCycles int64
	// IssueHist[k] counts busy cycles that issued exactly k ops
	// (k capped at the histogram length minus one).
	IssueHist []int64
	// OccIntegral is the time integral of window occupancy (slot-cycles).
	OccIntegral int64
	// MaxOcc is the peak window occupancy observed.
	MaxOcc int
}

// AvgOcc returns mean window occupancy over the run.
func (s *CoreStats) AvgOcc(cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(s.OccIntegral) / float64(cycles)
}

// Result reports the outcome of a run.
type Result struct {
	// Cycles is the total execution time.
	Cycles int64
	// Ops is the number of machine operations executed.
	Ops int
	// TraceLen is the originating trace length (architecture-neutral
	// instructions), for IPC computation.
	TraceLen int
	// Cores holds per-core statistics.
	Cores []CoreStats
	// MaxESW and AvgESW measure the effective single window: the span, in
	// trace instructions, from the oldest in-flight op to the youngest
	// dispatched op. Collected only when Config.CollectESW is set.
	MaxESW int64
	AvgESW float64
	// MaxSlip and AvgSlip measure AU run-ahead: the distance, in trace
	// instructions, between the AU and DU dispatch frontiers (two-unit
	// programs only).
	MaxSlip int64
	AvgSlip float64
	// Fills is the number of memory fills requested.
	Fills int64
	// MaxFillsInFlight is the peak number of outstanding fills.
	MaxFillsInFlight int
}

// Clone returns a deep copy of the result. Shared caches (sweep.Runner,
// sweep.Store) hold one canonical Result per point and hand clones to
// callers, so a caller scribbling on a returned Result cannot poison
// later hits.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := *r
	if r.Cores != nil {
		out.Cores = make([]CoreStats, len(r.Cores))
		copy(out.Cores, r.Cores)
		for i := range out.Cores {
			if h := r.Cores[i].IssueHist; h != nil {
				out.Cores[i].IssueHist = append([]int64(nil), h...)
			}
		}
	}
	return &out
}

// IPC returns trace instructions completed per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TraceLen) / float64(r.Cycles)
}

// OpsPerCycle returns machine operations issued per cycle.
func (r *Result) OpsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Cycles)
}

// op lifecycle states
const (
	stWaiting  uint8 = iota // not yet dispatched
	stInWindow              // dispatched, not issued
	stIssued                // issued, completion pending
	stDone                  // completed
)

// simPool backs the compatibility Run wrapper so callers that do not
// manage a Sim themselves still reuse scratch state across runs.
var simPool = sync.Pool{New: func() any { return NewSim() }}

// Run executes the program under the configuration and returns
// statistics. Runs are deterministic: identical inputs produce identical
// results. Run draws a reusable Sim from a shared pool; callers running
// many simulations on dedicated goroutines should hold their own Sim
// (see NewSim) to skip the pool round-trip.
func Run(p *Program, cfg Config) (*Result, error) {
	s := simPool.Get().(*Sim)
	res, err := s.Run(p, cfg)
	simPool.Put(s)
	return res, err
}
