package engine

import (
	"fmt"

	"daesim/internal/isa"
)

// MemModel abstracts the memory system seen by send/consume operations.
// The engine calls RequestFill when a send op completes (in nondecreasing
// cycle order) and Consume when the matching consume op issues. The
// paper's fixed-differential model is built in; locality-aware models
// live in internal/memsys.
type MemModel interface {
	// RequestFill reports when the fill for addr arrives, given that the
	// address reached the memory system at cycle sent. Must return a value
	// >= sent.
	RequestFill(addr uint64, sent int64) int64
	// Consume notifies the model that the buffered value for addr was
	// consumed at the given cycle.
	Consume(addr uint64, cycle int64)
	// Reset prepares the model for a fresh run.
	Reset()
}

// Config parameterizes one simulation run.
type Config struct {
	// Timing holds the latency parameters.
	Timing isa.Timing
	// Cores configures each core; its length must equal the program's
	// NumUnits.
	Cores []isa.CoreConfig
	// Mem is the memory model; nil selects the paper's fixed-differential
	// model (fill arrives Timing.MD cycles after the send completes).
	Mem MemModel
	// CollectESW enables effective-single-window and slippage statistics
	// (slightly more work per cycle).
	CollectESW bool
	// HoldSendSlots makes send operations occupy their window slot until
	// the fill returns instead of completing in one cycle. Fill timing is
	// unchanged; only window pressure differs. This removes the
	// fire-and-forget property that gives the decoupled machine its
	// slippage (ablation A3 in DESIGN.md).
	HoldSendSlots bool
	// RetireInOrder frees window slots in program order (reorder-buffer
	// style): a completed op's slot is reclaimed only once every older op
	// in the same core has completed. The default reclaims slots at
	// completion. In-order retirement models mid-90s RUU/ROB machines and
	// increases window pressure behind long-latency operations (ablation
	// A6 in DESIGN.md).
	RetireInOrder bool
}

// Validate reports configuration errors against the program.
func (c *Config) Validate(p *Program) error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if len(c.Cores) != p.NumUnits {
		return fmt.Errorf("engine: %d core configs for %d units", len(c.Cores), p.NumUnits)
	}
	for i, cc := range c.Cores {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("engine: core %d: %w", i, err)
		}
	}
	return nil
}

// CoreStats reports per-core execution statistics.
type CoreStats struct {
	// Issued is the number of operations issued.
	Issued int64
	// IssuedByKind breaks Issued down by operation kind.
	IssuedByKind [isa.NumOpKinds]int64
	// BusyCycles counts cycles in which the core issued at least one op.
	BusyCycles int64
	// IssueHist[k] counts busy cycles that issued exactly k ops
	// (k capped at the histogram length minus one).
	IssueHist []int64
	// OccIntegral is the time integral of window occupancy (slot-cycles).
	OccIntegral int64
	// MaxOcc is the peak window occupancy observed.
	MaxOcc int
}

// AvgOcc returns mean window occupancy over the run.
func (s *CoreStats) AvgOcc(cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(s.OccIntegral) / float64(cycles)
}

// Result reports the outcome of a run.
type Result struct {
	// Cycles is the total execution time.
	Cycles int64
	// Ops is the number of machine operations executed.
	Ops int
	// TraceLen is the originating trace length (architecture-neutral
	// instructions), for IPC computation.
	TraceLen int
	// Cores holds per-core statistics.
	Cores []CoreStats
	// MaxESW and AvgESW measure the effective single window: the span, in
	// trace instructions, from the oldest in-flight op to the youngest
	// dispatched op. Collected only when Config.CollectESW is set.
	MaxESW int64
	AvgESW float64
	// MaxSlip and AvgSlip measure AU run-ahead: the distance, in trace
	// instructions, between the AU and DU dispatch frontiers (two-unit
	// programs only).
	MaxSlip int64
	AvgSlip float64
	// Fills is the number of memory fills requested.
	Fills int64
	// MaxFillsInFlight is the peak number of outstanding fills.
	MaxFillsInFlight int
}

// IPC returns trace instructions completed per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TraceLen) / float64(r.Cycles)
}

// OpsPerCycle returns machine operations issued per cycle.
func (r *Result) OpsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Cycles)
}

// op lifecycle states
const (
	stWaiting  uint8 = iota // not yet dispatched
	stInWindow              // dispatched, not issued
	stIssued                // issued, completion pending
	stDone                  // completed
)

// eventBucket collects the events that fire at one cycle.
type eventBucket struct {
	comps []int32 // ops completing (free slot, wake plain consumers)
	fills []int32 // send ops whose fill arrives (wake fill consumers)
}

type coreRun struct {
	cfg       isa.CoreConfig
	stream    []int32
	next      int // dispatch frontier within stream
	occ       int
	window    int // effective window (large number when unlimited)
	ready     i32Heap
	oldestPtr int // lazy pointer to oldest possibly-in-flight stream position
	retirePtr int // in-order retirement frontier (RetireInOrder only)
	lastOrig  int32
	stats     CoreStats
	lastTouch int64
}

func (c *coreRun) touch(cycle int64) {
	c.stats.OccIntegral += int64(c.occ) * (cycle - c.lastTouch)
	c.lastTouch = cycle
}

const histCap = 32

// Run executes the program under the configuration and returns statistics.
// Runs are deterministic: identical inputs produce identical results.
func Run(p *Program, cfg Config) (*Result, error) {
	if err := cfg.Validate(p); err != nil {
		return nil, err
	}
	n := len(p.Ops)
	res := &Result{Ops: n, TraceLen: p.TraceLen, Cores: make([]CoreStats, p.NumUnits)}
	if n == 0 {
		return res, nil
	}
	if cfg.Mem != nil {
		cfg.Mem.Reset()
	}
	md := int64(cfg.Timing.MD)

	state := make([]uint8, n)
	pending := make([]int32, n)
	copy(pending, p.nDeps)

	cores := make([]*coreRun, p.NumUnits)
	for u := range cores {
		cc := cfg.Cores[u]
		window := cc.Window
		if cc.Unlimited() {
			window = n + 1
		}
		hist := cc.IssueWidth + 1
		if hist > histCap {
			hist = histCap
		}
		cores[u] = &coreRun{
			cfg:      cc,
			stream:   p.streams[u],
			window:   window,
			lastOrig: -1,
		}
		cores[u].stats.IssueHist = make([]int64, hist)
	}

	// Event buckets are created at most once per cycle number: schedules
	// always target the future and fired buckets are never revisited, so a
	// single heap push per bucket suffices.
	events := map[int64]*eventBucket{}
	var eventTimes int64Heap
	bucketAt := func(t int64) *eventBucket {
		b := events[t]
		if b == nil {
			b = &eventBucket{}
			events[t] = b
			eventTimes.push(t)
		}
		return b
	}

	completed := 0
	var cycle int64
	var inflight, maxInflight int
	var eswSamples, slipSamples int64
	var eswSum, slipSum int64

	wake := func(i int32) {
		pending[i]--
		if pending[i] == 0 && state[i] == stInWindow {
			cores[p.Ops[i].Unit].ready.push(i)
		}
	}

	for completed < n {
		// 1. Fire events due now.
		if b, ok := events[cycle]; ok {
			for _, i := range b.comps {
				state[i] = stDone
				completed++
				if !cfg.RetireInOrder {
					c := cores[p.Ops[i].Unit]
					c.touch(cycle)
					c.occ--
				}
				for _, consumer := range p.consPlain[i] {
					wake(consumer)
				}
			}
			if cfg.RetireInOrder && len(b.comps) > 0 {
				// Reclaim slots in program order up to the oldest
				// incomplete op of each core.
				for _, c := range cores {
					for c.retirePtr < c.next && state[c.stream[c.retirePtr]] == stDone {
						c.retirePtr++
						c.touch(cycle)
						c.occ--
					}
				}
			}
			for _, i := range b.fills {
				inflight--
				for _, consumer := range p.consFill[i] {
					wake(consumer)
				}
			}
			delete(events, cycle)
		}

		// 2. Dispatch in program order, per core.
		for _, c := range cores {
			dw := c.cfg.EffectiveDispatch()
			for k := 0; k < dw && c.occ < c.window && c.next < len(c.stream); k++ {
				i := c.stream[c.next]
				c.next++
				c.touch(cycle)
				c.occ++
				if c.occ > c.stats.MaxOcc {
					c.stats.MaxOcc = c.occ
				}
				state[i] = stInWindow
				c.lastOrig = p.Ops[i].Orig
				if pending[i] == 0 {
					c.ready.push(i)
				}
			}
		}

		// 3. Issue oldest-first, per core.
		for _, c := range cores {
			issued := 0
			for issued < c.cfg.IssueWidth && !c.ready.empty() {
				i := c.ready.pop()
				issued++
				state[i] = stIssued
				op := &p.Ops[i]
				c.stats.Issued++
				c.stats.IssuedByKind[op.Kind]++
				lat := int64(cfg.Timing.Latency(op.Kind))
				done := cycle + lat
				if op.Kind.IsSend() {
					arrive := done + md
					if cfg.Mem != nil {
						arrive = cfg.Mem.RequestFill(op.Addr, done)
						if arrive < done {
							return nil, fmt.Errorf("engine: memory model returned arrival %d before send %d", arrive, done)
						}
					}
					res.Fills++
					if len(p.consFill[i]) > 0 || cfg.Mem != nil {
						inflight++
						if inflight > maxInflight {
							maxInflight = inflight
						}
						fb := bucketAt(arrive)
						fb.fills = append(fb.fills, i)
					}
					if cfg.HoldSendSlots {
						// The send occupies its slot until the fill returns.
						done = arrive
					}
				}
				cb := bucketAt(done)
				cb.comps = append(cb.comps, i)
				if op.Kind.IsConsume() && cfg.Mem != nil {
					cfg.Mem.Consume(op.Addr, cycle)
				}
			}
			if issued > 0 {
				c.stats.BusyCycles++
				h := issued
				if h >= len(c.stats.IssueHist) {
					h = len(c.stats.IssueHist) - 1
				}
				c.stats.IssueHist[h]++
			}
		}

		// 4. ESW and slippage sampling.
		if cfg.CollectESW {
			var youngest int32 = -1
			oldest := int32(-1)
			for _, c := range cores {
				if c.lastOrig > youngest {
					youngest = c.lastOrig
				}
				for c.oldestPtr < c.next && state[c.stream[c.oldestPtr]] == stDone {
					c.oldestPtr++
				}
				if c.oldestPtr < c.next {
					o := p.Ops[c.stream[c.oldestPtr]].Orig
					if oldest == -1 || o < oldest {
						oldest = o
					}
				}
			}
			if oldest >= 0 && youngest >= oldest {
				esw := int64(youngest-oldest) + 1
				eswSum += esw
				eswSamples++
				if esw > res.MaxESW {
					res.MaxESW = esw
				}
			}
			if len(cores) == 2 && cores[0].lastOrig >= 0 && cores[1].lastOrig >= 0 {
				slip := int64(cores[0].lastOrig - cores[1].lastOrig)
				slipSum += slip
				slipSamples++
				if slip > res.MaxSlip {
					res.MaxSlip = slip
				}
			}
		}

		// 5. Advance time, fast-forwarding idle stretches.
		progressNext := false
		for _, c := range cores {
			if !c.ready.empty() || (c.next < len(c.stream) && c.occ < c.window) {
				progressNext = true
				break
			}
		}
		if progressNext {
			cycle++
			continue
		}
		if completed == n {
			break
		}
		// Jump to the next event; one must exist or the program deadlocked.
		next := int64(-1)
		for !eventTimes.empty() {
			t := eventTimes.pop()
			if _, ok := events[t]; ok && t > cycle {
				next = t
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("engine: deadlock at cycle %d with %d/%d ops complete", cycle, completed, n)
		}
		cycle = next
	}

	// Final cycle count: the last completion time.
	res.Cycles = cycle
	for u, c := range cores {
		c.touch(cycle)
		res.Cores[u] = c.stats
	}
	res.MaxFillsInFlight = maxInflight
	if eswSamples > 0 {
		res.AvgESW = float64(eswSum) / float64(eswSamples)
	}
	if slipSamples > 0 {
		res.AvgSlip = float64(slipSum) / float64(slipSamples)
	}
	return res, nil
}
