package engine

import (
	"reflect"
	"testing"
)

// TestCloneCoversAllResultFields pins the field counts of Result and
// CoreStats. If this fails you added (or removed) a field: extend
// Result.Clone to deep-copy any new reference-typed field first, then
// update the counts. A shallow-aliased slice would silently break the
// defensive-copy contract of the result caches (sweep.Runner/Store).
func TestCloneCoversAllResultFields(t *testing.T) {
	if n := reflect.TypeOf(Result{}).NumField(); n != 10 {
		t.Fatalf("Result has %d fields, Clone deep-copies for 10: audit Clone first", n)
	}
	if n := reflect.TypeOf(CoreStats{}).NumField(); n != 6 {
		t.Fatalf("CoreStats has %d fields, Clone deep-copies for 6: audit Clone first", n)
	}
}

// TestCloneIsDeep proves no reference state is shared between a Result
// and its clone.
func TestCloneIsDeep(t *testing.T) {
	orig := &Result{
		Cycles: 7, Ops: 3, TraceLen: 2,
		Cores: []CoreStats{
			{Issued: 1, IssueHist: []int64{4, 5}},
			{Issued: 2, IssueHist: nil},
		},
		MaxESW: 9, AvgESW: 1.5, Fills: 4,
	}
	c := orig.Clone()
	if !reflect.DeepEqual(orig, c) {
		t.Fatalf("clone differs: %+v vs %+v", orig, c)
	}
	c.Cores[0].Issued = -1
	c.Cores[0].IssueHist[0] = -1
	if orig.Cores[0].Issued != 1 || orig.Cores[0].IssueHist[0] != 4 {
		t.Fatal("clone shares state with the original")
	}
	if (*Result)(nil).Clone() != nil {
		t.Fatal("nil clone must be nil")
	}
}
