package engine

import (
	"reflect"
	"testing"
)

// TestCloneCoversAllResultFields pins the field lists of Result and
// CoreStats by name (daelint's schemaguard proves the deep-copy
// coverage statically; this is the runtime backstop). If this fails you
// added, removed or renamed a field: extend Result.Clone to deep-copy
// any new reference-typed field first, then update the list here. A
// shallow-aliased slice would silently break the defensive-copy
// contract of the result caches (sweep.Runner/Store).
func TestCloneCoversAllResultFields(t *testing.T) {
	auditField(t, reflect.TypeOf(Result{}), []string{
		"Cycles", "Ops", "TraceLen", "Cores",
		"MaxESW", "AvgESW", "MaxSlip", "AvgSlip",
		"Fills", "MaxFillsInFlight",
	})
	auditField(t, reflect.TypeOf(CoreStats{}), []string{
		"Issued", "IssuedByKind", "BusyCycles", "IssueHist",
		"OccIntegral", "MaxOcc",
	})
}

// auditField fails naming the exact fields that drifted from the
// audited list.
func auditField(t *testing.T, typ reflect.Type, known []string) {
	t.Helper()
	have := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		have[typ.Field(i).Name] = true
	}
	audited := map[string]bool{}
	for _, n := range known {
		audited[n] = true
		if !have[n] {
			t.Errorf("%s.%s was audited but is no longer declared: update the audit list", typ.Name(), n)
		}
	}
	for i := 0; i < typ.NumField(); i++ {
		if n := typ.Field(i).Name; !audited[n] {
			t.Errorf("%s.%s is not in the audited field list: audit Clone for it, then add it here", typ.Name(), n)
		}
	}
}

// TestCloneIsDeep proves no reference state is shared between a Result
// and its clone.
func TestCloneIsDeep(t *testing.T) {
	orig := &Result{
		Cycles: 7, Ops: 3, TraceLen: 2,
		Cores: []CoreStats{
			{Issued: 1, IssueHist: []int64{4, 5}},
			{Issued: 2, IssueHist: nil},
		},
		MaxESW: 9, AvgESW: 1.5, Fills: 4,
	}
	c := orig.Clone()
	if !reflect.DeepEqual(orig, c) {
		t.Fatalf("clone differs: %+v vs %+v", orig, c)
	}
	c.Cores[0].Issued = -1
	c.Cores[0].IssueHist[0] = -1
	if orig.Cores[0].Issued != 1 || orig.Cores[0].IssueHist[0] != 4 {
		t.Fatal("clone shares state with the original")
	}
	if (*Result)(nil).Clone() != nil {
		t.Fatal("nil clone must be nil")
	}
}
