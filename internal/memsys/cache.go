package memsys

import (
	"fmt"

	"daesim/internal/isa"
)

// CacheLevel configures one level of a cache hierarchy.
type CacheLevel struct {
	// Sets and Ways define the geometry; capacity = Sets*Ways lines.
	Sets, Ways int
	// HitLat is the extra cycles a hit at this level costs beyond the
	// buffer-request cycle the consume op already pays (0 = as fast as a
	// register-file access).
	HitLat int64
}

// Validate reports geometry errors.
func (l CacheLevel) Validate() error {
	if l.Sets < 1 || l.Sets&(l.Sets-1) != 0 {
		return fmt.Errorf("memsys: cache sets %d must be a positive power of two", l.Sets)
	}
	if l.Ways < 1 {
		return fmt.Errorf("memsys: cache ways %d < 1", l.Ways)
	}
	if l.HitLat < 0 {
		return fmt.Errorf("memsys: hit latency %d < 0", l.HitLat)
	}
	return nil
}

// Hierarchy is a multi-level LRU cache model implementing
// engine.MemModel. The paper abstracts the memory system as a fixed
// differential ("the cost of a second level cache miss"); Hierarchy
// refines that: a fill that hits level i arrives after that level's hit
// latency, and only full misses pay the differential MD. Lines are
// isa.CacheLineBytes wide. Fills are inclusive: a miss installs the line
// at every level.
type Hierarchy struct {
	// MD is the full-miss (memory) differential in cycles.
	MD int64
	// Levels orders the hierarchy from closest (L1) to farthest.
	Levels []CacheLevel

	sets [][]cacheSet
	// Hits[i] counts hits at level i; Misses counts full misses.
	Hits   []int64
	Misses int64
}

type cacheSet struct {
	// ways holds line tags in LRU order: most recently used last.
	ways []uint64
}

// NewHierarchy returns a cache hierarchy model.
func NewHierarchy(md int64, levels ...CacheLevel) (*Hierarchy, error) {
	if md < 0 {
		return nil, fmt.Errorf("memsys: md %d < 0", md)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("memsys: hierarchy needs at least one level")
	}
	for i, l := range levels {
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("memsys: level %d: %w", i+1, err)
		}
	}
	h := &Hierarchy{MD: md, Levels: levels}
	h.Reset()
	return h, nil
}

// Reset implements engine.MemModel.
func (h *Hierarchy) Reset() {
	h.sets = make([][]cacheSet, len(h.Levels))
	for i, l := range h.Levels {
		h.sets[i] = make([]cacheSet, l.Sets)
	}
	h.Hits = make([]int64, len(h.Levels))
	h.Misses = 0
}

// lookup probes level i and, on hit, refreshes LRU order.
func (h *Hierarchy) lookup(level int, line uint64) bool {
	set := &h.sets[level][line&uint64(h.Levels[level].Sets-1)]
	for k, tag := range set.ways {
		if tag == line {
			set.ways = append(append(set.ways[:k], set.ways[k+1:]...), line)
			return true
		}
	}
	return false
}

// install places the line at level i, evicting LRU on overflow.
func (h *Hierarchy) install(level int, line uint64) {
	set := &h.sets[level][line&uint64(h.Levels[level].Sets-1)]
	set.ways = append(set.ways, line)
	if len(set.ways) > h.Levels[level].Ways {
		set.ways = set.ways[1:]
	}
}

// RequestFill implements engine.MemModel.
func (h *Hierarchy) RequestFill(addr uint64, sent int64) int64 {
	line := isa.LineOf(addr)
	for i := range h.Levels {
		if h.lookup(i, line) {
			h.Hits[i]++
			// Refill the closer levels.
			for j := 0; j < i; j++ {
				h.install(j, line)
			}
			return sent + h.Levels[i].HitLat
		}
	}
	h.Misses++
	for i := range h.Levels {
		h.install(i, line)
	}
	return sent + h.MD
}

// Consume implements engine.MemModel.
func (h *Hierarchy) Consume(addr uint64, cycle int64) {}

// Accesses returns the total number of fills requested.
func (h *Hierarchy) Accesses() int64 {
	total := h.Misses
	for _, v := range h.Hits {
		total += v
	}
	return total
}

// MissRate returns the fraction of fills that reached memory.
func (h *Hierarchy) MissRate() float64 {
	total := h.Accesses()
	if total == 0 {
		return 0
	}
	return float64(h.Misses) / float64(total)
}

// DefaultHierarchy returns a Pentium-Pro-flavoured two-level hierarchy:
// an 8KB 2-way L1 (2-cycle hits) and a 256KB 4-way L2 (8-cycle hits),
// with full misses paying md — the paper's MD=60 is "comparable to the
// cost of a second level cache miss".
func DefaultHierarchy(md int64) (*Hierarchy, error) {
	return NewHierarchy(md,
		CacheLevel{Sets: 64, Ways: 2, HitLat: 2},
		CacheLevel{Sets: 1024, Ways: 4, HitLat: 8},
	)
}
