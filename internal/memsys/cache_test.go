package memsys

import (
	"testing"
	"testing/quick"

	"daesim/internal/engine"
	"daesim/internal/isa"
)

var _ engine.MemModel = (*Hierarchy)(nil)

func line(n uint64) uint64 { return n * isa.CacheLineBytes }

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(60); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(-1, CacheLevel{Sets: 4, Ways: 1}); err == nil {
		t.Error("negative md accepted")
	}
	bad := []CacheLevel{
		{Sets: 0, Ways: 1},
		{Sets: 3, Ways: 1}, // not a power of two
		{Sets: 4, Ways: 0},
		{Sets: 4, Ways: 1, HitLat: -1},
	}
	for _, l := range bad {
		if _, err := NewHierarchy(60, l); err == nil {
			t.Errorf("bad level %+v accepted", l)
		}
	}
}

func TestHierarchyHitAndMiss(t *testing.T) {
	h, err := NewHierarchy(60, CacheLevel{Sets: 4, Ways: 2, HitLat: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a := h.RequestFill(line(1), 0); a != 60 {
		t.Fatalf("cold miss arrival = %d, want 60", a)
	}
	if a := h.RequestFill(line(1)+8, 100); a != 102 {
		t.Fatalf("hit arrival = %d, want 102", a)
	}
	if h.Hits[0] != 1 || h.Misses != 1 {
		t.Fatalf("counters wrong: hits=%v misses=%d", h.Hits, h.Misses)
	}
	if h.Accesses() != 2 || h.MissRate() != 0.5 {
		t.Fatalf("rates wrong: %d %.2f", h.Accesses(), h.MissRate())
	}
}

func TestHierarchyLRUWithinSet(t *testing.T) {
	// One set, two ways: the third distinct line evicts the LRU.
	h, _ := NewHierarchy(30, CacheLevel{Sets: 1, Ways: 2, HitLat: 1})
	h.RequestFill(line(1), 0) // miss; set = {1}
	h.RequestFill(line(2), 1) // miss; set = {1,2}
	h.RequestFill(line(1), 2) // hit;  set = {2,1}
	h.RequestFill(line(3), 3) // miss; evicts 2
	if a := h.RequestFill(line(2), 10); a != 40 {
		t.Fatalf("evicted line should miss: %d, want 40", a)
	}
	// The refetch of line 2 evicted line 1 (LRU after line 3's install);
	// line 3 remains resident.
	if a := h.RequestFill(line(3), 50); a != 51 {
		t.Fatalf("line 3 should still hit: %d, want 51", a)
	}
	if a := h.RequestFill(line(1), 60); a != 90 {
		t.Fatalf("line 1 should have been evicted: %d, want 90", a)
	}
}

func TestHierarchyTwoLevels(t *testing.T) {
	h, _ := NewHierarchy(60,
		CacheLevel{Sets: 1, Ways: 1, HitLat: 2},
		CacheLevel{Sets: 1, Ways: 4, HitLat: 8},
	)
	h.RequestFill(line(1), 0) // miss -> installed in L1 and L2
	h.RequestFill(line(2), 1) // miss -> L1 now {2}; L2 {1,2}
	// Line 1 is out of L1 but in L2.
	if a := h.RequestFill(line(1), 10); a != 18 {
		t.Fatalf("L2 hit arrival = %d, want 18", a)
	}
	if h.Hits[0] != 0 || h.Hits[1] != 1 || h.Misses != 2 {
		t.Fatalf("level counters wrong: %v %d", h.Hits, h.Misses)
	}
	// The L2 hit refills L1: the next access hits L1.
	if a := h.RequestFill(line(1), 20); a != 22 {
		t.Fatalf("refilled L1 hit arrival = %d, want 22", a)
	}
}

func TestHierarchySetIndexing(t *testing.T) {
	// Lines mapping to different sets must not evict each other.
	h, _ := NewHierarchy(60, CacheLevel{Sets: 4, Ways: 1, HitLat: 1})
	for i := uint64(0); i < 4; i++ {
		h.RequestFill(line(i), int64(i))
	}
	for i := uint64(0); i < 4; i++ {
		if a := h.RequestFill(line(i), 100); a != 101 {
			t.Fatalf("line %d should still be resident: %d", i, a)
		}
	}
}

func TestDefaultHierarchy(t *testing.T) {
	h, err := DefaultHierarchy(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 2 {
		t.Fatal("default should have two levels")
	}
	h.RequestFill(0x1000, 0)
	h.Reset()
	if h.Accesses() != 0 {
		t.Fatal("reset should clear counters")
	}
}

func TestHierarchyContract(t *testing.T) {
	f := func(addrs []uint16, deltas []uint8) bool {
		h, _ := NewHierarchy(13,
			CacheLevel{Sets: 8, Ways: 2, HitLat: 1},
			CacheLevel{Sets: 32, Ways: 2, HitLat: 5},
		)
		var sent int64
		for i, a := range addrs {
			if i < len(deltas) {
				sent += int64(deltas[i] % 4)
			}
			got := h.RequestFill(uint64(a)*8, sent)
			if got < sent || got > sent+13 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
