package memsys

import (
	"testing"
	"testing/quick"

	"daesim/internal/engine"
	"daesim/internal/isa"
)

// All models must satisfy engine.MemModel.
var (
	_ engine.MemModel = (*Fixed)(nil)
	_ engine.MemModel = (*Ports)(nil)
	_ engine.MemModel = (*Outstanding)(nil)
	_ engine.MemModel = (*Bypass)(nil)
)

func TestFixed(t *testing.T) {
	m := &Fixed{MD: 60}
	if got := m.RequestFill(0x100, 10); got != 70 {
		t.Fatalf("arrival = %d, want 70", got)
	}
	m.Consume(0x100, 71)
	m.Reset()
	if got := m.RequestFill(0x200, 0); got != 60 {
		t.Fatalf("after reset: %d, want 60", got)
	}
}

func TestPortsSerializesWithinCycle(t *testing.T) {
	m, err := NewPorts(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three requests in cycle 5: two start at 5, one at 6.
	if a := m.RequestFill(1, 5); a != 15 {
		t.Errorf("first: %d, want 15", a)
	}
	if a := m.RequestFill(2, 5); a != 15 {
		t.Errorf("second: %d, want 15", a)
	}
	if a := m.RequestFill(3, 5); a != 16 {
		t.Errorf("third: %d, want 16", a)
	}
	// A later request is unaffected once bandwidth frees.
	if a := m.RequestFill(4, 20); a != 30 {
		t.Errorf("later: %d, want 30", a)
	}
}

func TestPortsBacklogCarries(t *testing.T) {
	m, _ := NewPorts(0, 1)
	// Port rate 1/cycle: requests at the same cycle pile up one per cycle.
	for i := int64(0); i < 5; i++ {
		if a := m.RequestFill(uint64(i), 0); a != i {
			t.Fatalf("request %d: arrival %d, want %d", i, a, i)
		}
	}
	// Next request at cycle 2 is behind the backlog (backlog ends at 4).
	if a := m.RequestFill(99, 2); a != 5 {
		t.Fatalf("backlogged request: %d, want 5", a)
	}
}

func TestPortsValidation(t *testing.T) {
	if _, err := NewPorts(10, 0); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := NewPorts(-1, 1); err == nil {
		t.Error("negative md accepted")
	}
}

func TestOutstandingCapacity(t *testing.T) {
	m, err := NewOutstanding(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two fills in flight from cycle 0: arrivals 10, 10.
	if a := m.RequestFill(1, 0); a != 10 {
		t.Errorf("first: %d", a)
	}
	if a := m.RequestFill(2, 0); a != 10 {
		t.Errorf("second: %d", a)
	}
	// Third must wait for the first to complete: starts at 10, arrives 20.
	if a := m.RequestFill(3, 0); a != 20 {
		t.Errorf("third: %d, want 20", a)
	}
	// After time passes, capacity frees.
	if a := m.RequestFill(4, 100); a != 110 {
		t.Errorf("late: %d, want 110", a)
	}
}

func TestOutstandingNondecreasing(t *testing.T) {
	f := func(seeds []uint8) bool {
		m, _ := NewOutstanding(7, 3)
		var sent, prev int64
		for _, s := range seeds {
			sent += int64(s % 4)
			a := m.RequestFill(uint64(s), sent)
			if a < sent+7 || a < prev {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOutstandingValidation(t *testing.T) {
	if _, err := NewOutstanding(10, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewOutstanding(-2, 4); err == nil {
		t.Error("negative md accepted")
	}
}

func TestBypassHitAndMiss(t *testing.T) {
	m, err := NewBypass(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	a1 := m.RequestFill(0x1000, 0)
	if a1 != 50 {
		t.Fatalf("miss arrival = %d, want 50", a1)
	}
	// Same line, later: hit at HitLat once resident.
	if a := m.RequestFill(0x1008, 100); a != 101 {
		t.Fatalf("hit arrival = %d, want 101", a)
	}
	// Same line while fill in flight: coalesced to the original arrival.
	if a := m.RequestFill(0x1010, 10); a != 50 {
		t.Fatalf("coalesced arrival = %d, want 50", a)
	}
	if m.Hits != 2 || m.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", m.Hits, m.Misses)
	}
	if hr := m.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestBypassLRUEviction(t *testing.T) {
	m, _ := NewBypass(30, 2)
	m.RequestFill(0*isa.CacheLineBytes, 0) // line 0
	m.RequestFill(1*isa.CacheLineBytes, 1) // line 1
	m.RequestFill(0*isa.CacheLineBytes, 2) // touch line 0 (hit)
	m.RequestFill(2*isa.CacheLineBytes, 3) // line 2: evicts line 1 (LRU)
	if a := m.RequestFill(1*isa.CacheLineBytes, 100); a != 130 {
		t.Fatalf("evicted line should miss: %d, want 130", a)
	}
	// The refetch of line 1 evicted line 0; line 2 is still resident.
	if a := m.RequestFill(2*isa.CacheLineBytes, 200); a != 201 {
		t.Fatalf("retained line should hit: %d, want 201", a)
	}
	if a := m.RequestFill(0*isa.CacheLineBytes, 300); a != 330 {
		t.Fatalf("evicted line 0 should miss: %d, want 330", a)
	}
}

func TestBypassReset(t *testing.T) {
	m, _ := NewBypass(10, 2)
	m.RequestFill(0x40, 0)
	m.Reset()
	if m.Hits != 0 || m.Misses != 0 {
		t.Fatal("counters survive reset")
	}
	if a := m.RequestFill(0x40, 0); a != 10 {
		t.Fatalf("table survives reset: %d", a)
	}
}

func TestBypassValidation(t *testing.T) {
	if _, err := NewBypass(10, 0); err == nil {
		t.Error("zero lines accepted")
	}
	if _, err := NewBypass(-1, 4); err == nil {
		t.Error("negative md accepted")
	}
}

// Property: all models respect the engine contract arrival >= sent.
func TestModelsRespectContract(t *testing.T) {
	mk := func() []engine.MemModel {
		p, _ := NewPorts(13, 2)
		o, _ := NewOutstanding(13, 3)
		b, _ := NewBypass(13, 8)
		return []engine.MemModel{&Fixed{MD: 13}, p, o, b}
	}
	f := func(addrs []uint16, deltas []uint8) bool {
		models := mk()
		for _, m := range models {
			var sent int64
			for i, a := range addrs {
				if i < len(deltas) {
					sent += int64(deltas[i] % 8)
				}
				if got := m.RequestFill(uint64(a)*8, sent); got < sent {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
