// Package memsys provides memory-system models beyond the paper's fixed
// differential. All models implement engine.MemModel. The paper
// deliberately idealizes the memory system ("we model its execution by
// considering every access to have a fixed cost"); these models support
// the ablations in DESIGN.md §6: finite bandwidth, bounded outstanding
// fills (which bounds AU slip), and the bypass buffer the paper proposes
// as future work to exploit the temporal locality exposed by decoupling.
package memsys

import (
	"fmt"

	"daesim/internal/isa"
)

// Fixed is the paper's memory model: every fill arrives exactly MD cycles
// after the address reaches the memory system. It is the explicit form of
// the engine's built-in default, useful for composing and testing.
type Fixed struct {
	// MD is the memory differential in cycles.
	MD int64
}

// RequestFill implements engine.MemModel.
func (m *Fixed) RequestFill(addr uint64, sent int64) int64 { return sent + m.MD }

// Consume implements engine.MemModel.
func (m *Fixed) Consume(addr uint64, cycle int64) {}

// Reset implements engine.MemModel.
func (m *Fixed) Reset() {}

// Ports models finite memory bandwidth: at most Ports new fills may start
// per cycle; excess requests queue in arrival order. Each fill takes MD
// cycles once started.
type Ports struct {
	// MD is the memory differential in cycles.
	MD int64
	// Ports is the number of fills that may start per cycle (>= 1).
	Ports int

	lastCycle int64
	used      int
}

// NewPorts returns a bandwidth-limited model.
func NewPorts(md int64, ports int) (*Ports, error) {
	if ports < 1 {
		return nil, fmt.Errorf("memsys: ports %d < 1", ports)
	}
	if md < 0 {
		return nil, fmt.Errorf("memsys: md %d < 0", md)
	}
	return &Ports{MD: md, Ports: ports}, nil
}

// RequestFill implements engine.MemModel. Requests arrive in
// nondecreasing sent order (the engine guarantees this).
func (m *Ports) RequestFill(addr uint64, sent int64) int64 {
	if sent > m.lastCycle {
		m.lastCycle = sent
		m.used = 0
	}
	if m.used == m.Ports {
		m.lastCycle++
		m.used = 0
	}
	m.used++
	return m.lastCycle + m.MD
}

// Consume implements engine.MemModel.
func (m *Ports) Consume(addr uint64, cycle int64) {}

// Reset implements engine.MemModel.
func (m *Ports) Reset() { m.lastCycle = 0; m.used = 0 }

// Outstanding bounds the number of fills in flight (MSHR-style): at most
// Cap fills may be outstanding; further requests queue until the oldest
// completes. On the decoupled machine this bounds how far the AU can
// usefully slip ahead; on the superscalar machine it bounds the prefetch
// buffer's outstanding prefetches. (True buffered-until-consumed capacity
// would require the memory model to see the future consume times; the
// in-flight bound is the standard implementable approximation.)
type Outstanding struct {
	// MD is the memory differential in cycles.
	MD int64
	// Cap is the maximum number of outstanding fills (>= 1).
	Cap int

	// completion times of in-flight fills, as a ring-buffered min-queue:
	// starts are nondecreasing so completions are too.
	ring []int64
	head int
	n    int
}

// NewOutstanding returns a capacity-limited model.
func NewOutstanding(md int64, capacity int) (*Outstanding, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("memsys: capacity %d < 1", capacity)
	}
	if md < 0 {
		return nil, fmt.Errorf("memsys: md %d < 0", md)
	}
	return &Outstanding{MD: md, Cap: capacity, ring: make([]int64, capacity)}, nil
}

// RequestFill implements engine.MemModel.
func (m *Outstanding) RequestFill(addr uint64, sent int64) int64 {
	start := sent
	head, n := m.head, m.n
	// Retire fills that completed by now. Conditional wrap instead of
	// modulo: this runs once per send on the simulator's hot path.
	for n > 0 && m.ring[head] <= start {
		if head++; head == m.Cap {
			head = 0
		}
		n--
	}
	if n == m.Cap {
		// Wait for the oldest in-flight fill.
		start = m.ring[head]
		if head++; head == m.Cap {
			head = 0
		}
		n--
	}
	done := start + m.MD
	tail := head + n
	if tail >= m.Cap {
		tail -= m.Cap
	}
	m.ring[tail] = done
	m.head, m.n = head, n+1
	return done
}

// Consume implements engine.MemModel.
func (m *Outstanding) Consume(addr uint64, cycle int64) {}

// Reset implements engine.MemModel.
func (m *Outstanding) Reset() { m.head = 0; m.n = 0 }

// Bypass models the paper's future-work bypass buffer: a line-grain LRU
// buffer inside the decoupled memory that captures the temporal locality
// exposed by decoupling. A request whose line is resident (fetched
// recently and not evicted) is satisfied in HitLat cycles; an in-flight
// line is coalesced. Misses cost the full differential.
type Bypass struct {
	// MD is the memory differential in cycles.
	MD int64
	// Lines is the buffer capacity in cache lines (>= 1).
	Lines int
	// HitLat is the bypass hit latency (>= 0; default 1 via NewBypass).
	HitLat int64

	table map[uint64]*bypassEntry
	// LRU list: most recently used at tail.
	lruHead, lruTail *bypassEntry

	// Hits and Misses count bypass outcomes for reporting.
	Hits, Misses int64
}

type bypassEntry struct {
	line       uint64
	arrival    int64
	prev, next *bypassEntry
}

// NewBypass returns a bypass-buffer model with hit latency 1.
func NewBypass(md int64, lines int) (*Bypass, error) {
	if lines < 1 {
		return nil, fmt.Errorf("memsys: bypass lines %d < 1", lines)
	}
	if md < 0 {
		return nil, fmt.Errorf("memsys: md %d < 0", md)
	}
	return &Bypass{MD: md, Lines: lines, HitLat: 1, table: make(map[uint64]*bypassEntry)}, nil
}

func (m *Bypass) detach(e *bypassEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *Bypass) pushTail(e *bypassEntry) {
	e.prev = m.lruTail
	if m.lruTail != nil {
		m.lruTail.next = e
	}
	m.lruTail = e
	if m.lruHead == nil {
		m.lruHead = e
	}
}

// RequestFill implements engine.MemModel.
func (m *Bypass) RequestFill(addr uint64, sent int64) int64 {
	line := isa.LineOf(addr)
	if e, ok := m.table[line]; ok {
		m.Hits++
		m.detach(e)
		m.pushTail(e)
		// Hit: available after the original fill arrives, at bypass
		// latency once resident.
		arr := sent + m.HitLat
		if e.arrival > arr {
			arr = e.arrival
		}
		return arr
	}
	m.Misses++
	arrival := sent + m.MD
	e := &bypassEntry{line: line, arrival: arrival}
	m.table[line] = e
	m.pushTail(e)
	if len(m.table) > m.Lines {
		victim := m.lruHead
		m.detach(victim)
		delete(m.table, victim.line)
	}
	return arrival
}

// Consume implements engine.MemModel.
func (m *Bypass) Consume(addr uint64, cycle int64) {}

// Reset implements engine.MemModel.
func (m *Bypass) Reset() {
	m.table = make(map[uint64]*bypassEntry)
	m.lruHead, m.lruTail = nil, nil
	m.Hits, m.Misses = 0, 0
}

// HitRate returns the fraction of requests satisfied by the bypass.
func (m *Bypass) HitRate() float64 {
	total := m.Hits + m.Misses
	if total == 0 {
		return 0
	}
	return float64(m.Hits) / float64(total)
}
