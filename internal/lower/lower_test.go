package lower

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daesim/internal/engine"
	"daesim/internal/isa"
	"daesim/internal/kernel"
	"daesim/internal/partition"
	"daesim/internal/trace"
)

func tm(md int) isa.Timing { return isa.Timing{MD: md, FPLat: 3, CopyLat: 1} }

func simpleTrace() *trace.Trace {
	return &trace.Trace{Name: "t", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x1000},
		{Class: isa.FPALU, Args: []int32{1}},
		{Class: isa.Store, Addr: []int32{0}, Args: []int32{2}, MemAddr: 0x2000},
	}}
}

func TestDMOpShapes(t *testing.T) {
	res, err := DM(simpleTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Program.KindCounts()
	if c[isa.OpLoadSend] != 1 || c[isa.OpLoadRecv] != 1 {
		t.Errorf("load lowering wrong: %v", c)
	}
	if c[isa.OpStoreAddr] != 1 || c[isa.OpStoreData] != 1 {
		t.Errorf("store lowering wrong: %v", c)
	}
	if c[isa.OpInt] != 1 || c[isa.OpFP] != 1 {
		t.Errorf("compute lowering wrong: %v", c)
	}
	if c[isa.OpCopy] != 0 {
		t.Errorf("no copies expected, got %d", c[isa.OpCopy])
	}
	// Memory halves: send on AU, recv on DU.
	for _, op := range res.Program.Ops {
		switch op.Kind {
		case isa.OpLoadSend, isa.OpStoreAddr:
			if op.Unit != isa.AU {
				t.Errorf("%v on %v", op.Kind, op.Unit)
			}
		case isa.OpLoadRecv, isa.OpFP, isa.OpStoreData:
			if op.Unit != isa.DU {
				t.Errorf("%v on %v", op.Kind, op.Unit)
			}
		}
	}
}

func TestSWSMOpShapes(t *testing.T) {
	p, err := SWSM(simpleTrace())
	if err != nil {
		t.Fatal(err)
	}
	c := p.KindCounts()
	if c[isa.OpPrefetch] != 2 || c[isa.OpAccess] != 1 || c[isa.OpStoreAcc] != 1 {
		t.Errorf("memory lowering wrong: %v", c)
	}
	if p.NumUnits != 1 {
		t.Errorf("numUnits = %d", p.NumUnits)
	}
	// Every memory operation is exactly two machine ops.
	if got := c[isa.OpPrefetch] + c[isa.OpAccess] + c[isa.OpStoreAcc]; got != 4 {
		t.Errorf("mem ops = %d, want 4 (2 per memory instruction)", got)
	}
}

func TestLossOfDecouplingCopy(t *testing.T) {
	// fp; int(fp); load(addr=int); fp(load): the int on the AU consumes a
	// DU value, forcing a DU→AU copy.
	tr := &trace.Trace{Name: "lod", Instrs: []trace.Instr{
		{Class: isa.FPALU},
		{Class: isa.IntALU, Args: []int32{0}},
		{Class: isa.Load, Addr: []int32{1}, MemAddr: 0x100},
		{Class: isa.FPALU, Args: []int32{2}},
	}}
	res, err := DM(tr, partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesDUAU != 1 {
		t.Errorf("DU→AU copies = %d, want 1", res.CopiesDUAU)
	}
	if res.CopiesAUDU != 0 {
		t.Errorf("AU→DU copies = %d, want 0", res.CopiesAUDU)
	}
}

func TestAUtoDUCopy(t *testing.T) {
	// int; fp(int): FP consumes an AU integer value.
	tr := &trace.Trace{Name: "audu", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.FPALU, Args: []int32{0}},
	}}
	res, err := DM(tr, partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesAUDU != 1 || res.CopiesDUAU != 0 {
		t.Errorf("copies = %d/%d, want 1/0", res.CopiesAUDU, res.CopiesDUAU)
	}
}

func TestCopyMemoized(t *testing.T) {
	// One AU value consumed by two FP ops: only one copy.
	tr := &trace.Trace{Name: "memo", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.FPALU, Args: []int32{0}},
		{Class: isa.FPALU, Args: []int32{0}},
	}}
	res, err := DM(tr, partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesAUDU != 1 {
		t.Errorf("copies = %d, want 1 (memoized)", res.CopiesAUDU)
	}
}

func TestDualDeliveryLoad(t *testing.T) {
	// A load consumed both as an address (AU) and by FP (DU).
	tr := &trace.Trace{Name: "dual", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x100},
		{Class: isa.IntALU, Args: []int32{1}},
		{Class: isa.Load, Addr: []int32{2}, MemAddr: 0x200},
		{Class: isa.FPALU, Args: []int32{1}},
	}}
	res, err := DM(tr, partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Program.KindCounts()
	if c[isa.OpLoadRecv] != 3 { // load1 delivered twice, load3 once
		t.Errorf("receives = %d, want 3", c[isa.OpLoadRecv])
	}
}

func TestLoweredProgramsRun(t *testing.T) {
	b := kernel.New("k")
	arr := b.Array("a", 128, 8)
	var carry kernel.Val
	for i := 0; i < 16; i++ {
		idx := b.Int()
		v := b.Load(arr, i, idx)
		f := b.FP(v)
		if carry.Valid() {
			f = b.FP(f, carry)
		}
		carry = f
		b.Store(arr, i+16, f, idx)
	}
	tr := b.MustTrace()

	dm, err := DM(tr, partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := SWSM(tr)
	if err != nil {
		t.Fatal(err)
	}
	dmCfg := engine.Config{Timing: tm(30), Cores: []isa.CoreConfig{{Window: 16, IssueWidth: 4}, {Window: 16, IssueWidth: 5}}}
	swCfg := engine.Config{Timing: tm(30), Cores: []isa.CoreConfig{{Window: 16, IssueWidth: 9}}}
	rd, err := engine.Run(dm.Program, dmCfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := engine.Run(sw, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Cycles <= 0 || rs.Cycles <= 0 {
		t.Fatalf("degenerate cycles: dm=%d swsm=%d", rd.Cycles, rs.Cycles)
	}
	// Lower bound: neither machine can beat the dataflow limit.
	if rd.Cycles < dm.Program.DataflowTime(tm(30)) {
		t.Error("DM beat its dataflow limit")
	}
	if rs.Cycles < sw.DataflowTime(tm(30)) {
		t.Error("SWSM beat its dataflow limit")
	}
}

// randomKernel emits a random but well-formed kernel trace.
func randomKernel(rng *rand.Rand, steps int) *trace.Trace {
	b := kernel.New("prop")
	arr := b.Array("a", 1024, 8)
	ints := []kernel.Val{b.Int()}
	fps := []kernel.Val{}
	pickInt := func() kernel.Val { return ints[rng.Intn(len(ints))] }
	for i := 0; i < steps; i++ {
		switch rng.Intn(6) {
		case 0:
			ints = append(ints, b.Int(pickInt()))
		case 1:
			if len(fps) > 0 {
				// data-dependent address computation (loss of decoupling)
				ints = append(ints, b.Int(fps[rng.Intn(len(fps))]))
			}
		case 2:
			v := b.Load(arr, rng.Intn(1024), pickInt())
			if rng.Intn(2) == 0 {
				fps = append(fps, b.FP(v))
			} else {
				ints = append(ints, b.Int(v)) // self-load
			}
		case 3:
			if len(fps) > 0 {
				fps = append(fps, b.FP(fps[rng.Intn(len(fps))]))
			} else {
				fps = append(fps, b.FP(pickInt()))
			}
		case 4:
			if len(fps) > 0 {
				b.Store(arr, rng.Intn(1024), fps[rng.Intn(len(fps))], pickInt())
			}
		default:
			b.Store(arr, rng.Intn(1024), pickInt(), pickInt())
		}
	}
	return b.MustTrace()
}

// Property: lowering always yields valid programs on every policy, and
// both machines respect the dataflow bound.
func TestLoweringProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomKernel(rng, int(sz)+5)
		sw, err := SWSM(tr)
		if err != nil {
			t.Logf("swsm: %v", err)
			return false
		}
		for _, pol := range partition.Policies() {
			dm, err := DM(tr, pol)
			if err != nil {
				t.Logf("dm(%v): %v", pol, err)
				return false
			}
			// Conservation: every trace instruction appears; compute ops map
			// one-to-one plus copies; memory ops lower to >= 2 ops.
			st := tr.Stats()
			c := dm.Program.KindCounts()
			if c[isa.OpInt] != st.ByClass[isa.IntALU] || c[isa.OpFP] != st.ByClass[isa.FPALU] {
				t.Logf("dm(%v): compute op mismatch", pol)
				return false
			}
			if c[isa.OpLoadSend] != st.ByClass[isa.Load] || c[isa.OpStoreAddr] != st.ByClass[isa.Store] {
				t.Logf("dm(%v): memory op mismatch", pol)
				return false
			}
			if c[isa.OpLoadRecv] < st.ByClass[isa.Load] {
				t.Logf("dm(%v): missing receives", pol)
				return false
			}
			if c[isa.OpCopy] != dm.CopiesAUDU+dm.CopiesDUAU {
				t.Logf("dm(%v): copy count mismatch", pol)
				return false
			}
		}
		cs := sw.KindCounts()
		st := tr.Stats()
		if cs[isa.OpPrefetch] != st.MemRefs || cs[isa.OpAccess] != st.ByClass[isa.Load] || cs[isa.OpStoreAcc] != st.ByClass[isa.Store] {
			t.Log("swsm: memory op mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with unlimited resources the DM and SWSM reach their dataflow
// limits, and those limits differ only by copy latencies on the critical
// path.
func TestUnlimitedLoweredRuns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomKernel(rng, 60)
		dm, err1 := DM(tr, partition.Classic)
		sw, err2 := SWSM(tr)
		if err1 != nil || err2 != nil {
			return false
		}
		big := []isa.CoreConfig{{Window: 0, IssueWidth: 1 << 20}, {Window: 0, IssueWidth: 1 << 20}}
		rd, err := engine.Run(dm.Program, engine.Config{Timing: tm(20), Cores: big})
		if err != nil {
			return false
		}
		rs, err := engine.Run(sw, engine.Config{Timing: tm(20), Cores: big[:1]})
		if err != nil {
			return false
		}
		if rd.Cycles != dm.Program.DataflowTime(tm(20)) || rs.Cycles != sw.DataflowTime(tm(20)) {
			return false
		}
		// The SWSM dataflow limit can never exceed the DM's: the DM program
		// is the SWSM program plus copy ops on paths.
		if rs.Cycles > rd.Cycles {
			t.Logf("seed %d: swsm dataflow %d > dm %d", seed, rs.Cycles, rd.Cycles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
