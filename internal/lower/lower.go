// Package lower translates architecture-neutral traces into machine
// programs for the two machine models of the paper.
//
// Decoupled machine (DM): every load becomes a LoadSend on the AU plus a
// LoadRecv on each unit that consumes the value; every store becomes a
// StoreAddr on the AU plus a StoreData on the unit producing the data;
// values crossing between units are moved by Copy ops executed on the
// producing unit. Both halves of a memory operation are "one instruction
// on each of the units", as in the paper.
//
// Superscalar machine (SWSM): every memory operation becomes two
// instructions, a Prefetch that dispatches the address to the memory
// system as soon as run-time resources allow, and an Access that consumes
// the value from the prefetch buffer (loads) or commits the store.
package lower

import (
	"fmt"

	"daesim/internal/engine"
	"daesim/internal/isa"
	"daesim/internal/partition"
	"daesim/internal/trace"
)

// DMResult is a lowered decoupled-machine program with lowering metadata.
type DMResult struct {
	// Program is the two-unit machine program (unit 0 = AU, unit 1 = DU).
	Program *engine.Program
	// CopiesAUDU counts AU→DU register copies.
	CopiesAUDU int
	// CopiesDUAU counts DU→AU register copies (loss-of-decoupling events).
	CopiesDUAU int
	// Assignment is the partition used.
	Assignment *partition.Assignment
}

// DM lowers tr for the decoupled machine under the given partition policy.
func DM(tr *trace.Trace, pol partition.Policy) (*DMResult, error) {
	asg, err := partition.Partition(tr, pol)
	if err != nil {
		return nil, err
	}
	n := tr.Len()
	res := &DMResult{Assignment: asg}
	ops := make([]engine.Op, 0, n*2)
	// avail[u][v] is the machine op producing trace value v on unit u, or
	// engine.NoDep when the value is not (yet) available there.
	avail := [2][]int32{make([]int32, n), make([]int32, n)}
	for u := 0; u < 2; u++ {
		for i := range avail[u] {
			avail[u][i] = engine.NoDep
		}
	}
	emit := func(op engine.Op) int32 {
		ops = append(ops, op)
		return int32(len(ops) - 1)
	}
	// resolve returns the op producing trace value v on unit u, inserting
	// a copy from the other unit if needed.
	resolve := func(v int32, u isa.Unit, orig int32) int32 {
		if got := avail[u][v]; got != engine.NoDep {
			return got
		}
		other := isa.DU
		if u == isa.DU {
			other = isa.AU
		}
		src := avail[other][v]
		if src == engine.NoDep {
			panic(fmt.Sprintf("lower: trace %s: value %d unavailable on both units at %d", tr.Name, v, orig))
		}
		cp := emit(engine.Op{Kind: isa.OpCopy, Unit: other, Srcs: []int32{src}, MemSrc: engine.NoDep, Orig: orig})
		avail[u][v] = cp
		if other == isa.AU {
			res.CopiesAUDU++
		} else {
			res.CopiesDUAU++
		}
		return cp
	}
	resolveAll := func(vals []int32, u isa.Unit, orig int32) []int32 {
		if len(vals) == 0 {
			return nil
		}
		out := make([]int32, len(vals))
		for i, v := range vals {
			out[i] = resolve(v, u, orig)
		}
		return out
	}

	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		orig := int32(i)
		switch in.Class {
		case isa.IntALU, isa.FPALU:
			u := asg.Unit[i]
			kind := isa.OpInt
			if in.Class == isa.FPALU {
				kind = isa.OpFP
			}
			idx := emit(engine.Op{Kind: kind, Unit: u, Srcs: resolveAll(in.Args, u, orig), MemSrc: engine.NoDep, Orig: orig})
			avail[u][i] = idx
		case isa.Load:
			send := emit(engine.Op{
				Kind: isa.OpLoadSend, Unit: isa.AU,
				Srcs: resolveAll(in.Addr, isa.AU, orig), MemSrc: engine.NoDep,
				Addr: in.MemAddr, Orig: orig,
			})
			if asg.RecvAU[i] {
				avail[isa.AU][i] = emit(engine.Op{Kind: isa.OpLoadRecv, Unit: isa.AU, MemSrc: send, Addr: in.MemAddr, Orig: orig})
			}
			if asg.RecvDU[i] {
				avail[isa.DU][i] = emit(engine.Op{Kind: isa.OpLoadRecv, Unit: isa.DU, MemSrc: send, Addr: in.MemAddr, Orig: orig})
			}
		case isa.Store:
			emit(engine.Op{
				Kind: isa.OpStoreAddr, Unit: isa.AU,
				Srcs: resolveAll(in.Addr, isa.AU, orig), MemSrc: engine.NoDep,
				Addr: in.MemAddr, Orig: orig,
			})
			data := in.Args[0]
			// The data half executes on whichever unit already holds the
			// value, preferring the DU (the paper's data side).
			du := isa.DU
			if avail[isa.DU][data] == engine.NoDep {
				du = isa.AU
			}
			emit(engine.Op{
				Kind: isa.OpStoreData, Unit: du,
				Srcs: []int32{resolve(data, du, orig)}, MemSrc: engine.NoDep,
				Addr: in.MemAddr, Orig: orig,
			})
		}
	}
	p, err := engine.NewProgram(tr.Name+"/dm", ops, 2, n)
	if err != nil {
		return nil, err
	}
	res.Program = p
	return res, nil
}

// SWSM lowers tr for the single-window superscalar machine.
func SWSM(tr *trace.Trace) (*engine.Program, error) {
	n := tr.Len()
	ops := make([]engine.Op, 0, n+n/4)
	avail := make([]int32, n)
	for i := range avail {
		avail[i] = engine.NoDep
	}
	resolveAll := func(vals []int32) []int32 {
		if len(vals) == 0 {
			return nil
		}
		out := make([]int32, len(vals))
		for i, v := range vals {
			if avail[v] == engine.NoDep {
				panic(fmt.Sprintf("lower: trace %s: value %d unavailable", tr.Name, v))
			}
			out[i] = avail[v]
		}
		return out
	}
	emit := func(op engine.Op) int32 {
		ops = append(ops, op)
		return int32(len(ops) - 1)
	}
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		orig := int32(i)
		switch in.Class {
		case isa.IntALU:
			avail[i] = emit(engine.Op{Kind: isa.OpInt, Unit: isa.AU, Srcs: resolveAll(in.Args), MemSrc: engine.NoDep, Orig: orig})
		case isa.FPALU:
			avail[i] = emit(engine.Op{Kind: isa.OpFP, Unit: isa.AU, Srcs: resolveAll(in.Args), MemSrc: engine.NoDep, Orig: orig})
		case isa.Load:
			pf := emit(engine.Op{Kind: isa.OpPrefetch, Unit: isa.AU, Srcs: resolveAll(in.Addr), MemSrc: engine.NoDep, Addr: in.MemAddr, Orig: orig})
			// The access's fill edge subsumes the address dependencies: the
			// fill cannot arrive before the prefetch issued.
			avail[i] = emit(engine.Op{Kind: isa.OpAccess, Unit: isa.AU, MemSrc: pf, Addr: in.MemAddr, Orig: orig})
		case isa.Store:
			emit(engine.Op{Kind: isa.OpPrefetch, Unit: isa.AU, Srcs: resolveAll(in.Addr), MemSrc: engine.NoDep, Addr: in.MemAddr, Orig: orig})
			srcs := resolveAll(append(append([]int32(nil), in.Addr...), in.Args...))
			emit(engine.Op{Kind: isa.OpStoreAcc, Unit: isa.AU, Srcs: srcs, MemSrc: engine.NoDep, Addr: in.MemAddr, Orig: orig})
		}
	}
	return engine.NewProgram(tr.Name+"/swsm", ops, 1, n)
}
