// Package kernel provides an SSA-style builder for authoring workload
// traces. Kernels are written as plain Go functions: loops are Go loops,
// loop-carried values are Go variables holding Val handles, and the
// builder emits one trace instruction per operation. This realizes the
// paper's idealized environment directly — the emitted trace has perfect
// renaming (SSA) and no loop-closing branches.
//
// Loads and stores carry concrete synthetic addresses derived from Array
// handles, so locality-aware memory models (bypass buffer, finite prefetch
// buffer) see realistic reference streams even though the paper's
// fixed-differential model ignores addresses.
package kernel

import (
	"fmt"

	"daesim/internal/isa"
	"daesim/internal/trace"
)

// Val is a handle to the value produced by an emitted instruction.
// The zero Val is "no value" (a compile-time constant): operations accept
// it and simply omit the dependence edge, modelling immediate operands.
type Val struct {
	idx int32 // trace index + 1, so the zero value means "constant"
}

// Const is the canonical constant/immediate value handle.
var Const = Val{}

// Valid reports whether v refers to an emitted instruction.
func (v Val) Valid() bool { return v.idx != 0 }

// Index returns the trace index of the producing instruction, or
// trace.None for constants.
func (v Val) Index() int32 {
	if v.idx == 0 {
		return trace.None
	}
	return v.idx - 1
}

// Array is a named region of the synthetic address space used to derive
// load/store addresses.
type Array struct {
	name string
	base uint64
	elem uint64
}

// Name returns the array's name.
func (a Array) Name() string { return a.name }

// At returns the byte address of element i.
func (a Array) At(i int) uint64 { return a.base + uint64(i)*a.elem }

// Builder accumulates a trace. The zero value is not ready for use; call
// New.
type Builder struct {
	name   string
	instrs []trace.Instr
	nextAd uint64
}

// New returns a Builder for a workload with the given name.
func New(name string) *Builder {
	// Leave a low guard region so that address 0 is never a valid element.
	return &Builder{name: name, nextAd: 1 << 12}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Array reserves an address region for n elements of elemSize bytes.
func (b *Builder) Array(name string, n, elemSize int) Array {
	if n <= 0 || elemSize <= 0 {
		panic(fmt.Sprintf("kernel: array %s: non-positive shape %d x %d", name, n, elemSize))
	}
	a := Array{name: name, base: b.nextAd, elem: uint64(elemSize)}
	b.nextAd += uint64(n) * uint64(elemSize)
	// Pad to a line boundary so arrays never share a cache line.
	if rem := b.nextAd % isa.CacheLineBytes; rem != 0 {
		b.nextAd += isa.CacheLineBytes - rem
	}
	return a
}

func (b *Builder) emit(in trace.Instr) Val {
	b.instrs = append(b.instrs, in)
	return Val{idx: int32(len(b.instrs))}
}

func refs(vals []Val) []int32 {
	var out []int32
	for _, v := range vals {
		if v.Valid() {
			out = append(out, v.Index())
		}
	}
	return out
}

// Int emits an integer/address operation consuming the given values.
// Constant (zero) operands are dropped; an all-constant Int models loading
// an immediate or a loop-invariant base address.
func (b *Builder) Int(args ...Val) Val {
	return b.emit(trace.Instr{Class: isa.IntALU, Args: refs(args)})
}

// FP emits a floating-point operation consuming the given values.
func (b *Builder) FP(args ...Val) Val {
	return b.emit(trace.Instr{Class: isa.FPALU, Args: refs(args)})
}

// IntChain emits a dependent chain of n integer operations seeded by the
// given values, returning the final value. n must be >= 1.
func (b *Builder) IntChain(n int, args ...Val) Val {
	v := b.Int(args...)
	for i := 1; i < n; i++ {
		v = b.Int(v)
	}
	return v
}

// FPChain emits a dependent chain of n floating-point operations seeded by
// the given values, returning the final value. n must be >= 1.
func (b *Builder) FPChain(n int, args ...Val) Val {
	v := b.FP(args...)
	for i := 1; i < n; i++ {
		v = b.FP(v)
	}
	return v
}

// Load emits a load of arr[i] whose address depends on the given values.
func (b *Builder) Load(arr Array, i int, addr ...Val) Val {
	return b.emit(trace.Instr{Class: isa.Load, Addr: refs(addr), MemAddr: arr.At(i)})
}

// Store emits a store of data to arr[i] whose address depends on the given
// values. Constant data is not meaningful: data must be a real value.
func (b *Builder) Store(arr Array, i int, data Val, addr ...Val) {
	if !data.Valid() {
		panic("kernel: store of constant data")
	}
	b.emit(trace.Instr{Class: isa.Store, Addr: refs(addr), Args: []int32{data.Index()}, MemAddr: arr.At(i)})
}

// Trace finalizes the builder, validates the trace and returns it.
// The builder can keep being used; later Trace calls include the new
// instructions.
func (b *Builder) Trace() (*trace.Trace, error) {
	t := &trace.Trace{Name: b.name, Instrs: b.instrs}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustTrace is Trace but panics on error; kernels constructed purely with
// Builder methods are valid by construction, so workload code uses this.
func (b *Builder) MustTrace() *trace.Trace {
	t, err := b.Trace()
	if err != nil {
		panic(err)
	}
	return t
}
