package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
	"daesim/internal/trace"
)

func TestConstVal(t *testing.T) {
	if Const.Valid() {
		t.Fatal("Const must be invalid")
	}
	if Const.Index() != trace.None {
		t.Fatalf("Const.Index() = %d, want None", Const.Index())
	}
}

func TestArrayAddressing(t *testing.T) {
	b := New("t")
	a := b.Array("a", 10, 8)
	c := b.Array("c", 4, 8)
	if a.At(1)-a.At(0) != 8 {
		t.Fatalf("element stride wrong: %d", a.At(1)-a.At(0))
	}
	if a.Name() != "a" {
		t.Fatalf("name wrong: %s", a.Name())
	}
	// Arrays must not overlap and must be line-aligned apart.
	if c.At(0) < a.At(9)+8 {
		t.Fatalf("arrays overlap: c@%#x a-end@%#x", c.At(0), a.At(9)+8)
	}
	if c.At(0)%isa.CacheLineBytes != a.At(0)%isa.CacheLineBytes && c.At(0)%isa.CacheLineBytes != 0 {
		// base region starts at 1<<12, arrays are padded to line boundaries
		t.Fatalf("array base not line aligned: %#x", c.At(0))
	}
	if a.At(0) == 0 {
		t.Fatal("address 0 must not be used")
	}
}

func TestArrayPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("t").Array("bad", 0, 8)
}

func TestEmitBasics(t *testing.T) {
	b := New("t")
	base := b.Int()
	if !base.Valid() {
		t.Fatal("Int should produce a value")
	}
	arr := b.Array("x", 16, 8)
	v := b.Load(arr, 3, base)
	f := b.FP(v, Const)
	b.Store(arr, 4, f, base)
	tr := b.MustTrace()
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Instrs[1].MemAddr != arr.At(3) {
		t.Fatalf("load address wrong: %#x", tr.Instrs[1].MemAddr)
	}
	// FP should depend only on the load (Const dropped).
	if len(tr.Instrs[2].Args) != 1 || tr.Instrs[2].Args[0] != 1 {
		t.Fatalf("fp args wrong: %v", tr.Instrs[2].Args)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConstPanics(t *testing.T) {
	b := New("t")
	arr := b.Array("x", 4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Store(arr, 0, Const)
}

func TestChains(t *testing.T) {
	b := New("t")
	seed := b.Int()
	v := b.FPChain(5, seed)
	_ = v
	w := b.IntChain(3, seed)
	_ = w
	tr := b.MustTrace()
	if tr.Len() != 1+5+3 {
		t.Fatalf("len = %d, want 9", tr.Len())
	}
	// The FP chain should be serial: depth of last FP is 5.
	tm := isa.Timing{MD: 0, FPLat: 3, CopyLat: 1}
	// critical path: int(1) + 5*fp(3) = 16
	if cp := tr.CriticalPath(tm); cp != 16 {
		t.Fatalf("critical path = %d, want 16", cp)
	}
}

func TestLoopCarriedValues(t *testing.T) {
	b := New("t")
	arr := b.Array("a", 64, 8)
	carry := b.FP()
	for i := 0; i < 8; i++ {
		x := b.Load(arr, i)
		carry = b.FP(x, carry)
	}
	tr := b.MustTrace()
	// Chain: fp0 -> fp1 -> ... -> fp8 = 9 FP ops serial; loads feed in.
	tm := isa.Timing{MD: 0, FPLat: 3, CopyLat: 1}
	// loads are independent (MD+2=2); chain = 3 + 8*3 = 27; first link also
	// waits for load: max(3, 2) + ... = 27.
	if cp := tr.CriticalPath(tm); cp != 27 {
		t.Fatalf("critical path = %d, want 27", cp)
	}
}

// Property: any program emitted via Builder methods validates.
func TestBuilderAlwaysValid(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New("prop")
		arr := b.Array("a", 256, 8)
		vals := []Val{b.Int()}
		for i := 0; i < int(steps); i++ {
			pick := func() Val { return vals[rng.Intn(len(vals))] }
			switch rng.Intn(4) {
			case 0:
				vals = append(vals, b.Int(pick(), pick()))
			case 1:
				vals = append(vals, b.FP(pick()))
			case 2:
				vals = append(vals, b.Load(arr, rng.Intn(256), pick()))
			case 3:
				b.Store(arr, rng.Intn(256), pick(), pick())
			}
		}
		_, err := b.Trace()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSnapshotGrows(t *testing.T) {
	b := New("grow")
	b.Int()
	t1 := b.MustTrace()
	b.Int()
	t2 := b.MustTrace()
	if t1.Len() != 1 || t2.Len() != 2 {
		t.Fatalf("snapshot lengths: %d then %d", t1.Len(), t2.Len())
	}
}
