package lint

// Fixture harness in the spirit of golang.org/x/tools' analysistest,
// rebuilt on the dependency-free loader: fixture packages live under
// testdata/src/<path> (invisible to `go list ./...`), import each other
// by that relative path, and pull stdlib dependencies from the build
// cache's export data. Expectations are written in the source as
//
//	code // want `regexp` `another regexp`
//
// every diagnostic on that line must match one expectation and every
// expectation must be matched by one diagnostic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// stdExportDeps are the stdlib roots fixture packages may import; their
// transitive closure is resolved from build-cache export data.
var stdExportDeps = []string{"fmt", "time", "runtime", "math/rand", "sync", "sync/atomic", "reflect", "strconv", "errors", "context", "net/http"}

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

func stdExportData(t *testing.T) map[string]string {
	t.Helper()
	stdExportsOnce.Do(func() {
		args := append([]string{"list", "-e", "-json=ImportPath,Export", "-deps", "-export"}, stdExportDeps...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			stdExportsErr = fmt.Errorf("go list std deps: %v", err)
			return
		}
		stdExports = map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdExportsErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdExportsErr != nil {
		t.Fatal(stdExportsErr)
	}
	return stdExports
}

// fixtureImporter loads fixture packages from source on demand and
// everything else from export data.
type fixtureImporter struct {
	w        *World
	root     string
	fallback types.Importer
	loading  map[string]bool
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(fi.root, filepath.FromSlash(path)); dirExists(dir) {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.fallback.Import(path)
}

func (fi *fixtureImporter) load(path string) (*Package, error) {
	if pkg, ok := fi.w.Pkgs[path]; ok {
		return pkg, nil
	}
	if fi.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %s", path)
	}
	fi.loading[path] = true
	defer delete(fi.loading, path)

	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	pkg, err := checkPackage(fi.w.Fset, fi, path, dir, files, len(files))
	if err != nil {
		return nil, err
	}
	fi.w.Pkgs[path] = pkg
	fi.w.Paths = append(fi.w.Paths, path)
	return pkg, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// loadFixture builds a World over testdata-style fixture packages rooted
// at root.
func loadFixture(t *testing.T, root string, paths ...string) *World {
	t.Helper()
	exports := stdExportData(t)
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no fixture export data for %q (add its root to stdExportDeps)", path)
		}
		return os.Open(f)
	}
	w := &World{Fset: fset, Pkgs: map[string]*Package{}, Module: "fixture", Tests: true, IncludeTests: true}
	fi := &fixtureImporter{w: w, root: root, fallback: importer.ForCompiler(fset, "gc", lookup), loading: map[string]bool{}}
	for _, p := range paths {
		if _, err := fi.load(p); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

var wantArgRe = regexp.MustCompile("`([^`]*)`")

type wantExp struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// runFixture executes the analyzers over the world and diffs the
// diagnostics against the // want expectations in the fixture sources.
func runFixture(t *testing.T, w *World, analyzers []*Analyzer) {
	t.Helper()
	wants := map[string][]*wantExp{} // "file:line" -> expectations
	for _, path := range w.Paths {
		pkg := w.Pkgs[path]
		for name, src := range pkg.Src {
			for i, line := range strings.Split(string(src), "\n") {
				_, tail, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				key := fmt.Sprintf("%s:%d", name, i+1)
				for _, m := range wantArgRe.FindAllStringSubmatch(tail, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &wantExp{re: re, raw: m[1]})
				}
			}
		}
	}

	for _, d := range RunAnalyzers(w, analyzers) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, exp.raw)
			}
		}
	}
}

// copyFixtureTree duplicates a fixture subtree into a temp dir so tests
// can mutate sources and write lock files without dirtying testdata.
func copyFixtureTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
