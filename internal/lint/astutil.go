package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses root calling fn with each node and the stack of
// its ancestors (innermost last, root excluded). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// calleeFunc resolves a call expression to its static callee, or nil for
// builtins, conversions, function-typed variables and method values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcKey names a function object portably across type-checking
// universes: "path.Name" for functions, "path.(Recv).Name" for methods.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		name := recv.String()
		if named, ok := recv.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return path + ".(" + name + ")." + fn.Name()
	}
	return path + "." + fn.Name()
}

// declKey names a declared function the same way funcKey names its
// object, so directive indexes can be consulted across packages.
func declKey(pkgPath string, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return pkgPath + "." + decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return pkgPath + ".(" + id.Name + ")." + decl.Name.Name
	}
	return pkgPath + "." + decl.Name.Name
}

// rootObject follows an expression leftward to the object of its root
// identifier: a.b[i].c roots at a. Returns nil when the root is not a
// simple identifier (call results, literals).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// hasPathPrefix reports whether path is pkg or a subpackage/test
// extension of one of the prefixes.
func hasPathPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") || path == p+"_test" {
			return true
		}
	}
	return false
}

// isInterface reports whether t is an interface type (including any).
func isInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// namedStruct resolves the named type's underlying struct in pkg, or nil.
func namedStruct(pkg *Package, name string) (*types.Named, *types.Struct) {
	if pkg == nil {
		return nil, nil
	}
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// isNamedType reports whether t (after stripping one pointer) is the
// named type path.Name.
func isNamedType(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (value or
// pointer).
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// isHTTPRequestPtr reports whether t is *net/http.Request — functions
// holding a request already have a context (r.Context()), so ctxflow
// treats them as rooted.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamedType(p.Elem(), "net/http", "Request")
}

// isAtomicType reports whether t is declared in sync/atomic
// (atomic.Int64, atomic.Bool, ...).
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errIface != nil && types.Implements(t, errIface)
}

// receiverNamed resolves fd's receiver base type (stripping pointers),
// or nil for plain functions — the method-set resolution lockguard and
// errclass use to tie an alias like b := &f.breakers[i] back to the
// declaring struct.
func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil {
		return nil
	}
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// eachScopedFile calls fn for every non-test file of every non-test
// package whose import path matches one of the prefixes. The concurrency
// and error-discipline analyzers use it: production files carry the
// invariants, test files are the race detector's and oracle's job.
func eachScopedFile(w *World, prefixes []string, fn func(pkg *Package, f *ast.File)) {
	for _, path := range w.Paths {
		pkg := w.Pkgs[path]
		if strings.HasSuffix(pkg.Path, "_test") || !hasPathPrefix(pkg.Path, prefixes) {
			continue
		}
		for i, f := range pkg.Files {
			if i >= pkg.NumNonTest {
				continue
			}
			fn(pkg, f)
		}
	}
}

// funcDecls indexes a package's function declarations by funcKey.
func funcDecls(pkg *Package) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out[declKey(pkg.Path, fd)] = fd
			}
		}
	}
	return out
}
