package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses root calling fn with each node and the stack of
// its ancestors (innermost last, root excluded). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// calleeFunc resolves a call expression to its static callee, or nil for
// builtins, conversions, function-typed variables and method values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcKey names a function object portably across type-checking
// universes: "path.Name" for functions, "path.(Recv).Name" for methods.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		name := recv.String()
		if named, ok := recv.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return path + ".(" + name + ")." + fn.Name()
	}
	return path + "." + fn.Name()
}

// declKey names a declared function the same way funcKey names its
// object, so directive indexes can be consulted across packages.
func declKey(pkgPath string, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return pkgPath + "." + decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return pkgPath + ".(" + id.Name + ")." + decl.Name.Name
	}
	return pkgPath + "." + decl.Name.Name
}

// rootObject follows an expression leftward to the object of its root
// identifier: a.b[i].c roots at a. Returns nil when the root is not a
// simple identifier (call results, literals).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// hasPathPrefix reports whether path is pkg or a subpackage/test
// extension of one of the prefixes.
func hasPathPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") || path == p+"_test" {
			return true
		}
	}
	return false
}

// isInterface reports whether t is an interface type (including any).
func isInterface(t types.Type) bool {
	return t != nil && types.IsInterface(t)
}

// namedStruct resolves the named type's underlying struct in pkg, or nil.
func namedStruct(pkg *Package, name string) (*types.Named, *types.Struct) {
	if pkg == nil {
		return nil, nil
	}
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// funcDecls indexes a package's function declarations by funcKey.
func funcDecls(pkg *Package) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out[declKey(pkg.Path, fd)] = fd
			}
		}
	}
	return out
}
