package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockguardConfig scopes the lockguard analyzer to the concurrency-dense
// packages whose lock discipline must hold under fleet failures.
type LockguardConfig struct {
	// Paths are import-path prefixes in scope.
	Paths []string
}

// DefaultConcurrencyPaths are the packages the failure ladder made
// concurrency-dense: the fleet client/server, the single-flight runner
// and store, and the fault injector. lockguard, ctxflow and errclass all
// audit this set; test files are exempt by design — the race detector
// and the chaos soak own those.
var DefaultConcurrencyPaths = []string{
	"daesim/internal/daemon",
	"daesim/internal/sweep",
	"daesim/internal/faultinject",
}

// NewLockguard builds the lockguard analyzer. Struct fields annotated
// //daelint:guardedby <mutex field> must only be read or written while
// that sibling mutex is held (positionally: between base.mu.Lock() and
// the matching Unlock, or after Lock with a deferred Unlock). The
// analyzer additionally flags mixing sync/atomic operations with mutex
// guarding on one field, lock-acquisition-order cycles across the
// package set, and — by inference — unannotated fields that are written
// under a struct's mutex in one place but accessed without it in
// another.
func NewLockguard(cfg LockguardConfig) *Analyzer {
	return &Analyzer{
		Name: "lockguard",
		Doc:  "enforces //daelint:guardedby mutex discipline, atomic/mutex separation and a cycle-free lock order",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			st := &lockguardState{
				guarded:   map[string]guardEntry{},
				mutexes:   map[string][]string{},
				annotated: map[string]bool{},
				edges:     map[lockEdge]token.Pos{},
				access:    map[string][]guardAccess{},
			}
			eachScopedFile(w, cfg.Paths, func(pkg *Package, f *ast.File) {
				indexGuardedFields(pkg, f, st, report)
			})
			eachScopedFile(w, cfg.Paths, func(pkg *Package, f *ast.File) {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
						checkLockguardFunc(pkg, fd, st, report)
					}
				}
			})
			reportInferred(st, report)
			reportLockCycles(st, report)
		},
	}
}

// guardEntry records one //daelint:guardedby annotation: the full field
// id of the guarding mutex and the display names used in diagnostics.
type guardEntry struct {
	mutexID   string
	mutexName string
	typeName  string
}

// lockEdge is one observed acquisition order: to was locked while from
// was held.
type lockEdge struct{ from, to string }

// guardAccess is one access to an inference-candidate field.
type guardAccess struct {
	pos       token.Pos
	write     bool
	held      []string // mutex field ids of the same base held at pos
	typeName  string
	fieldName string
}

type lockguardState struct {
	guarded   map[string]guardEntry // field id -> annotation
	mutexes   map[string][]string   // "pkg.Type" -> mutex field ids
	annotated map[string]bool       // field ids carrying any guardedby (even malformed)
	edges     map[lockEdge]token.Pos
	access    map[string][]guardAccess // inference candidates
}

// fieldID names a struct field portably across type-checking universes:
// "pkgpath.Type.field". Export-data objects carry no usable positions,
// so identity is by name, not by types.Object.
func fieldID(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// fieldShort renders a field id as Type.field for diagnostics.
func fieldShort(id string) string {
	parts := strings.Split(id, ".")
	if len(parts) < 2 {
		return id
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

// selectionField resolves a selector expression to the struct field it
// reads, with the owning named type, or ("", nil) when the selector is
// not a field access on a named struct.
func selectionField(info *types.Info, sel *ast.SelectorExpr) (*types.Var, string) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil, ""
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return v, named.Obj().Name()
}

// indexGuardedFields reads the //daelint:guardedby annotations off one
// file's struct declarations, validating the grammar: the argument must
// name a sibling sync.Mutex/RWMutex field, at most one annotation per
// field, and the guarded field must not itself be atomic (two disciplines
// on one field guarantee neither).
func indexGuardedFields(pkg *Package, f *ast.File, st *lockguardState, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			stype, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			typeKey := pkg.Path + "." + ts.Name.Name

			// First pass: the struct's mutex fields, by name.
			mutexFields := map[string]string{} // name -> field id
			for _, field := range stype.Fields.List {
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
						id := fieldID(pkg.Path, ts.Name.Name, name.Name)
						mutexFields[name.Name] = id
						st.mutexes[typeKey] = append(st.mutexes[typeKey], id)
					}
				}
			}

			for _, field := range stype.Fields.List {
				var args []string
				for _, a := range fieldDirectives(field, "guardedby") {
					if a != "" { // empty args were already reported as malformed
						args = append(args, a)
					}
				}
				if len(args) == 0 {
					continue
				}
				for _, name := range field.Names {
					st.annotated[fieldID(pkg.Path, ts.Name.Name, name.Name)] = true
				}
				if len(args) > 1 {
					report(field.Pos(), "duplicate //daelint:guardedby on field %s: a field has exactly one guarding mutex", fieldName(field))
					continue
				}
				// Only the first word is the mutex name; prose may follow.
				mutexName, _, _ := strings.Cut(args[0], " ")
				mutexID, ok := mutexFields[mutexName]
				if !ok {
					report(field.Pos(), "//daelint:guardedby %s on field %s: %s names no sibling sync.Mutex/RWMutex field of %s", mutexName, fieldName(field), mutexName, ts.Name.Name)
					continue
				}
				if len(field.Names) > 0 {
					if obj := pkg.Info.Defs[field.Names[0]]; obj != nil && isAtomicType(obj.Type()) {
						report(field.Pos(), "field %s is a sync/atomic type annotated //daelint:guardedby %s: mixing atomic and mutex discipline on one field guarantees neither; pick one", fieldName(field), mutexName)
						continue
					}
				}
				for _, name := range field.Names {
					st.guarded[fieldID(pkg.Path, ts.Name.Name, name.Name)] = guardEntry{
						mutexID: mutexID, mutexName: mutexName, typeName: ts.Name.Name,
					}
				}
			}
		}
	}
}

func fieldName(field *ast.Field) string {
	if len(field.Names) == 0 {
		return "(embedded)"
	}
	names := make([]string, len(field.Names))
	for i, n := range field.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}

// mutexRef is one mutex instance: a base object (receiver, parameter or
// local) and the mutex field reached from it. f.breakers[i].mu and
// b.mu (with b := &f.breakers[i]) are different refs — the span tracking
// is per-alias, which matches how the code under audit actually locks.
type mutexRef struct {
	base    types.Object
	mutexID string
}

type lockSpan struct{ from, to token.Pos }

type lockEvent struct {
	pos      token.Pos
	ref      mutexRef
	unlock   bool
	deferred bool
}

// checkLockguardFunc audits one function body: guarded accesses must sit
// inside their mutex's Lock/Unlock span, atomic calls must not touch
// guarded fields, every Lock taken while another mutex is held records a
// lock-order edge, and unannotated field accesses are collected for
// inference.
func checkLockguardFunc(pkg *Package, fd *ast.FuncDecl, st *lockguardState, report func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	var events []lockEvent
	type fieldUse struct {
		sel   *ast.SelectorExpr
		obj   *types.Var
		tname string
		base  types.Object
		write bool
	}
	var uses []fieldUse
	atomicUse := map[token.Pos]string{} // selector pos -> atomic func name
	fresh := freshLocals(pkg, fd)

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isMutexMethod(sel.Sel.Name) && isMutexType(info.TypeOf(sel.X)) {
				if msel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if mobj, tname := selectionField(info, msel); mobj != nil && isMutexType(mobj.Type()) {
						if base := rootObject(info, msel.X); base != nil {
							deferred := false
							if len(stack) > 0 {
								if ds, ok := stack[len(stack)-1].(*ast.DeferStmt); ok && ds.Call == n {
									deferred = true
								}
							}
							events = append(events, lockEvent{
								pos:      n.Pos(),
								ref:      mutexRef{base: base, mutexID: fieldID(mobj.Pkg().Path(), tname, mobj.Name())},
								unlock:   strings.HasSuffix(sel.Sel.Name, "Unlock"),
								deferred: deferred,
							})
						}
					}
				}
			}
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				for _, arg := range n.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					if s, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
						atomicUse[s.Pos()] = fn.Name()
					}
				}
			}
		case *ast.SelectorExpr:
			if fobj, tname := selectionField(info, n); fobj != nil && !isMutexType(fobj.Type()) {
				uses = append(uses, fieldUse{
					sel: n, obj: fobj, tname: tname,
					base:  rootObject(info, n.X),
					write: isWriteAccess(n, stack),
				})
			}
		}
		return true
	})

	spans := buildLockSpans(events, fd.Body.End())
	heldFor := func(base types.Object, pos token.Pos) []string {
		var held []string
		for ref, ss := range spans {
			if ref.base != base {
				continue
			}
			for _, s := range ss {
				if s.from <= pos && pos < s.to {
					held = append(held, ref.mutexID)
					break
				}
			}
		}
		sort.Strings(held)
		return held
	}

	// Lock-order edges: a non-deferred Lock taken while any other mutex
	// (any base) is held orders the two mutex declarations.
	for _, e := range events {
		if e.unlock || e.deferred {
			continue
		}
		for ref, ss := range spans {
			if ref == e.ref {
				continue
			}
			for _, s := range ss {
				if s.from < e.pos && e.pos < s.to {
					edge := lockEdge{from: ref.mutexID, to: e.ref.mutexID}
					if prev, ok := st.edges[edge]; !ok || e.pos < prev {
						st.edges[edge] = e.pos
					}
					break
				}
			}
		}
	}

	for _, u := range uses {
		id := fieldID(u.obj.Pkg().Path(), u.tname, u.obj.Name())
		if g, ok := st.guarded[id]; ok {
			if fname := atomicUse[u.sel.Pos()]; fname != "" {
				report(u.sel.Pos(), "field %s.%s is //daelint:guardedby %s but passed to atomic.%s; mixing atomic and mutex access on one field guarantees neither discipline", g.typeName, u.obj.Name(), g.mutexName, fname)
				continue
			}
			if u.base == nil || fresh[u.base] {
				continue // unpublished object under construction
			}
			held := heldFor(u.base, u.sel.Pos())
			if !containsStr(held, g.mutexID) {
				verb := "read"
				if u.write {
					verb = "write"
				}
				report(u.sel.Pos(), "%s of %s.%s outside %s.Lock/Unlock span (field is //daelint:guardedby %s); hold the mutex, or annotate //daelint:lockguard-ok <reason>", verb, g.typeName, u.obj.Name(), g.mutexName, g.mutexName)
			}
			continue
		}
		// Inference candidates: unannotated plain fields of structs that
		// do have a mutex, accessed through a shared (parameter/receiver)
		// base. Locals are presumed unpublished unless aliased from a
		// parameter — and aliases root at the parameter anyway.
		if st.annotated[id] || isAtomicType(u.obj.Type()) {
			continue
		}
		if len(st.mutexes[u.obj.Pkg().Path()+"."+u.tname]) == 0 {
			continue
		}
		if u.base == nil || !isParamOrRecv(fd, u.base) {
			continue
		}
		st.access[id] = append(st.access[id], guardAccess{
			pos: u.sel.Pos(), write: u.write, held: heldFor(u.base, u.sel.Pos()),
			typeName: u.tname, fieldName: u.obj.Name(),
		})
	}
}

func isMutexMethod(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return true
	}
	return false
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// buildLockSpans turns per-ref Lock/Unlock events into held intervals.
// A deferred Unlock (and a Lock never unlocked) holds to the end of the
// body. A span extends to the LAST consecutive Unlock before the next
// Lock: the lock-then-branch idiom (unlock early on the hit path, later
// on the miss path) unlocks once per branch, and closing at the first
// Unlock would flag the other branch's guarded code. Overapproximating
// the held region can only miss violations in the already-returned
// branch, never invent them.
func buildLockSpans(events []lockEvent, bodyEnd token.Pos) map[mutexRef][]lockSpan {
	byRef := map[mutexRef][]lockEvent{}
	for _, e := range events {
		byRef[e.ref] = append(byRef[e.ref], e)
	}
	spans := map[mutexRef][]lockSpan{}
	for ref, evs := range byRef {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		open, last := token.NoPos, token.NoPos
		for _, e := range evs {
			switch {
			case !e.unlock && !e.deferred:
				if open == token.NoPos {
					open = e.pos
				} else if last != token.NoPos {
					spans[ref] = append(spans[ref], lockSpan{from: open, to: last})
					open, last = e.pos, token.NoPos
				}
			case e.unlock && e.deferred:
				if open != token.NoPos {
					spans[ref] = append(spans[ref], lockSpan{from: open, to: bodyEnd})
					open, last = token.NoPos, token.NoPos
				}
			case e.unlock:
				if open != token.NoPos {
					last = e.pos
				}
			}
		}
		if open != token.NoPos {
			to := bodyEnd
			if last != token.NoPos {
				to = last
			}
			spans[ref] = append(spans[ref], lockSpan{from: open, to: to})
		}
	}
	return spans
}

// isWriteAccess reports whether the selector is the target of an
// assignment, an IncDec, or has its address taken — climbing through
// index/star/paren wrappers (s.cache[k] = v writes through the cache
// field).
func isWriteAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var cur ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				return false // the selector is the key, not the target
			}
			cur = p
		case *ast.StarExpr:
			cur = p
		case *ast.SelectorExpr:
			if p.X == cur {
				cur = p
				continue
			}
			return false
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.IncDecStmt:
			return true
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == cur {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// freshLocals finds locals bound to freshly constructed values
// (composite literals, new, make): objects under construction are not
// yet shared, so guarded-field writes during initialization are exempt.
func freshLocals(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	mark := func(id *ast.Ident, value ast.Expr) {
		if value != nil && !isFreshExpr(pkg.Info, value) {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					mark(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if len(n.Values) == 0 {
					mark(id, nil) // var b breaker — zero value, unpublished
				} else if i < len(n.Values) {
					mark(id, n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if tv, ok := info.Types[id]; ok && tv.IsBuiltin() {
				return id.Name == "new" || id.Name == "make"
			}
		}
	}
	return false
}

// isParamOrRecv reports whether obj is declared in fd's receiver or
// parameter list — a base the caller shares, unlike function locals.
func isParamOrRecv(fd *ast.FuncDecl, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	p := v.Pos()
	if fd.Recv != nil && p >= fd.Recv.Pos() && p < fd.Recv.End() {
		return true
	}
	if fd.Type.Params != nil && p >= fd.Type.Params.Pos() && p < fd.Type.Params.End() {
		return true
	}
	return false
}

// reportInferred applies the inference rule: an unannotated field
// written at least once with its struct's mutex held, yet accessed
// elsewhere with no mutex held, is a finding at each unlocked site.
func reportInferred(st *lockguardState, report func(pos token.Pos, format string, args ...any)) {
	var ids []string
	for id := range st.access {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		recs := st.access[id]
		structKey := id[:strings.LastIndex(id, ".")]
		structMutexes := st.mutexes[structKey]
		lockedMutex := ""
		for _, r := range recs {
			if !r.write {
				continue
			}
			for _, m := range structMutexes {
				if containsStr(r.held, m) && (lockedMutex == "" || m < lockedMutex) {
					lockedMutex = m
				}
			}
		}
		if lockedMutex == "" {
			continue
		}
		for _, r := range recs {
			unlocked := true
			for _, m := range structMutexes {
				if containsStr(r.held, m) {
					unlocked = false
					break
				}
			}
			if unlocked {
				report(r.pos, "field %s.%s is written under %s elsewhere but accessed here with no lock held; hold the mutex and annotate //daelint:guardedby %s, or suppress //daelint:lockguard-ok <reason>", r.typeName, r.fieldName, fieldShort(lockedMutex), lastDot(lockedMutex))
			}
		}
	}
}

func lastDot(id string) string {
	if i := strings.LastIndex(id, "."); i >= 0 {
		return id[i+1:]
	}
	return id
}

// reportLockCycles flags every acquisition edge that closes a cycle in
// the lock-order graph, at the acquisition site that creates it.
func reportLockCycles(st *lockguardState, report func(pos token.Pos, format string, args ...any)) {
	adj := map[string][]string{}
	for e := range st.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	var edges []lockEdge
	for e := range st.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if path := lockPath(adj, e.to, e.from); path != nil {
			cycle := []string{fieldShort(e.from)}
			for _, n := range path {
				cycle = append(cycle, fieldShort(n))
			}
			report(st.edges[e], "acquiring %s while holding %s closes a lock-order cycle (%s); acquire mutexes in one global order", fieldShort(e.to), fieldShort(e.from), strings.Join(cycle, " -> "))
		}
	}
}

// lockPath finds a path from -> to in the acquisition graph (DFS over
// sorted adjacency, so the reported cycle is deterministic).
func lockPath(adj map[string][]string, from, to string) []string {
	seen := map[string]bool{}
	var dfs func(n string, path []string) []string
	dfs = func(n string, path []string) []string {
		if n == to {
			return append(path, n)
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		for _, next := range adj[n] {
			if r := dfs(next, append(path, n)); r != nil {
				return r
			}
		}
		return nil
	}
	return dfs(from, nil)
}
