// Package badly holds directives that must be rejected as malformed:
// an unknown name and a suppression with no justification. The test
// asserts on the parsed Malformed list directly, because a missing
// reason cannot share its line with a want comment (trailing text would
// become the reason).
package badly

// Answer carries a typo'd directive name.
func Answer() int {
	return 42 //daelint:nondeterministc-ok typo in the directive name
}

// Reasonless carries a suppression with no reason.
func Reasonless() int {
	//daelint:hotpath-ok
	return 7
}
