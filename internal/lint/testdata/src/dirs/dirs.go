// Package dirs exercises the directive-parsing edge cases: a duplicate
// guardedby, a guardedby naming a missing mutex, and a reasonless
// suppression that therefore suppresses nothing.
package dirs

import "sync"

type T struct {
	mu sync.Mutex
	//daelint:guardedby mu
	dup int //daelint:guardedby mu
	bad int //daelint:guardedby missing
	n   int //daelint:guardedby mu
}

func (t *T) Leak() int {
	return t.n //daelint:lockguard-ok
}
