// Package wire is the schemaguard fixture's wire schema: A and B match
// the machine params, X and Y are protocol surface with no counterpart,
// and Y also lacks a json tag.
package wire

import "schema/machine"

// Params is the wire form of machine.Params.
type Params struct {
	A int    `json:"a"`
	B string `json:"b"`
	X int    `json:"x"` // want `wire field X has no counterpart in machine.Params` `Machine does not read wire field X`
	Y int    // want `wire field Y has no counterpart in machine.Params` `wire field Y has no json tag` `Machine does not read wire field Y`
}

// ToParams converts the wire form to machine params.
func (w Params) ToParams() machine.Params {
	var p machine.Params
	p.A = w.A
	p.B = w.B
	return p
}

// Machine decodes the wire struct field by field.
func (w Params) Machine() machine.Params {
	var p machine.Params
	p.A = w.A
	p.B = w.B
	return p
}
