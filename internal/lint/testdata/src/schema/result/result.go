// Package result is the schemaguard fixture's result schema: Clone
// forgets two reference-typed fields and the oracle comparison is
// field-by-field instead of structural.
package result

// CoreStats is per-core state with a reference-typed field.
type CoreStats struct {
	Retired int64
	Occ     map[int]int64 // want `reference-typed field CoreStats.Occ is not deep-copied by Clone`
}

// Result is the top-level result.
type Result struct {
	Cycles int64
	Cores  []CoreStats
	Hist   []int64 // want `reference-typed field Result.Hist is not deep-copied by Clone`
}

// Clone deep-copies a Result — except it forgot Hist and Occ.
func (r *Result) Clone() *Result {
	c := *r
	c.Cores = make([]CoreStats, len(r.Cores))
	copy(c.Cores, r.Cores)
	return &c
}

// resultsEqual compares field by field, which schemaguard rejects: a
// new Result field would be silently ignored.
func resultsEqual(a, b *Result) bool { // want `resultsEqual must compare whole Results with reflect.DeepEqual`
	return a.Cycles == b.Cycles && len(a.Cores) == len(b.Cores)
}
