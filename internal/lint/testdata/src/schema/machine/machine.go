// Package machine is the schemaguard fixture's parameter schema: A and
// B are fully plumbed, C is the field someone forgot everywhere, D is
// consciously exempted with annotations.
package machine

import "strconv"

// Params mirrors the real machine.Params shape.
type Params struct {
	A int
	B string
	C int // want `field C added to machine.Params but not encoded in CacheKey` `field C added to machine.Params but missing from the wire struct wire.Params` `ToParams does not read Params.C`
	// D is in-process state.
	//daelint:unkeyed fixture: not part of cache identity
	//daelint:unwired fixture: not serializable
	D func()
}

// Op mirrors the real engine.Op for the fingerprint check.
type Op struct {
	Code int
	Addr int // want `field Addr added to machine.Op but not hashed by Fingerprint`
}

// CacheKey encodes the cache identity of p.
func (p Params) CacheKey() string {
	return strconv.Itoa(p.A) + "|" + p.B
}

// Fingerprint hashes an op stream.
func Fingerprint(ops []Op) uint64 {
	var h uint64 = 1469598103934665603
	for i := range ops {
		h ^= uint64(ops[i].Code)
		h *= 1099511628211
	}
	return h
}
