// Package store keys its entries by the engine version, satisfying the
// versionkey analyzer's RequireVersionUse check.
package store

import "version/engine"

// Key builds a cache key embedding the engine version.
func Key(name string) string {
	return engine.Version + "/" + name
}
