// Package engine is the versionkey fixture: a tiny Sim with a version
// constant, a semantics root and a surface struct. The lifecycle test
// copies this tree to a temp dir, writes the lock, edits the surface
// and asserts each ratchet stage.
package engine

// Version tags the semantics of Run.
const Version = "engine-v1"

// Config is a surface struct.
type Config struct {
	Width int
}

// Sim is the fixture engine.
type Sim struct{}

// step advances one cycle.
func (s *Sim) step(w int) int {
	return w + 1
}

// Run is the semantic root.
func (s *Sim) Run(cfg Config) int {
	t := 0
	for i := 0; i < cfg.Width; i++ {
		t = s.step(t)
	}
	return t
}
