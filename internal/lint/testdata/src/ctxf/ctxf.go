// Package ctxf exercises the ctxflow analyzer: blocking without a
// context parameter, ctx-first placement, fresh-context manufacture,
// unthreaded http.NewRequest, and retry loops that sleep without
// consulting cancellation.
package ctxf

import (
	"context"
	"net/http"
	"time"
)

type Pool struct {
	ch chan int
}

func (p *Pool) WaitBad() int {
	return <-p.ch // want `WaitBad blocks on a channel receive but has no context.Context parameter`
}

func (p *Pool) WaitGood(ctx context.Context) int {
	return <-p.ch
}

func (p *Pool) SendBad(v int) {
	p.ch <- v // want `SendBad blocks on a channel send but has no context.Context parameter`
}

//daelint:ctx-root fixture: the pool drains itself at shutdown, nothing upstream to cancel
func (p *Pool) Drain() {
	for range p.ch {
	}
}

// ServeHTTP is rooted by its *http.Request.
func (p *Pool) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	<-p.ch
}

func PollBad(ch chan int) int {
	select { // want `PollBad blocks on a select but has no context.Context parameter`
	case v := <-ch:
		return v
	}
	panic("unreachable")
}

func run(ctx context.Context) {}

func Spawn() {
	run(context.Background()) // want `context.Background manufactures a fresh context in Spawn`
}

//daelint:ctx-root fixture: process entry point for the worker
func Entry() {
	run(context.Background())
}

func Misplaced(name string, ctx context.Context) { // want `context.Context must be the first parameter of Misplaced, not parameter 2`
	_ = name
	run(ctx)
}

func Request(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `net/http.NewRequest drops the caller's context; use http.NewRequestWithContext`
}

func RetryBad(ctx context.Context, f func() error) error {
	var err error
	for i := 0; i < 3; i++ { // want `retry loop sleeps between rounds without consulting ctx`
		if err = f(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

func RetryGood(ctx context.Context, f func() error) error {
	var err error
	for i := 0; i < 3; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = f(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

func RetrySuppressed(ctx context.Context, f func() error) error {
	var err error
	//daelint:ctxflow-ok fixture: the sleep is sub-millisecond and the loop is bounded at 3 rounds
	for i := 0; i < 3; i++ {
		if err = f(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// Backoff retries through an injectable sleep hook; the hook's
// func(time.Duration) signature counts as sleeping.
type Backoff struct {
	sleep func(time.Duration)
}

func (b *Backoff) RetryHook(ctx context.Context, f func() error) error {
	var err error
	for i := 0; i < 3; i++ { // want `retry loop sleeps between rounds without consulting ctx`
		if err = f(); err == nil {
			return nil
		}
		b.sleep(time.Millisecond)
	}
	return err
}
