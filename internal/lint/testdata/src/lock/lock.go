// Package lock exercises the lockguard analyzer: guardedby grammar,
// span tracking (early unlock, deferred unlock), atomic/mutex mixing,
// inference, and lock-order cycles.
package lock

import (
	"sync"
	"sync/atomic"
)

// Counter is the well-annotated case.
type Counter struct {
	mu sync.Mutex
	n  int //daelint:guardedby mu
}

// NewCounter writes the guarded field during construction: the local is
// unpublished, so no lock is required yet.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// HitOrFill unlocks early on one branch and late on the other; the span
// must cover both arms.
func (c *Counter) HitOrFill() int {
	c.mu.Lock()
	if c.n > 0 {
		v := c.n
		c.mu.Unlock()
		return v
	}
	c.n = 1
	c.mu.Unlock()
	return 1
}

func (c *Counter) Peek() int {
	return c.n // want `read of Counter.n outside mu.Lock/Unlock span`
}

func (c *Counter) Bump() {
	c.n++ // want `write of Counter.n outside mu.Lock/Unlock span`
}

func (c *Counter) Racy() int {
	return c.n //daelint:lockguard-ok fixture: demonstrates a justified suppression
}

func (c *Counter) Fine() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n //daelint:lockguard-ok unnecessary // want `unused //daelint:lockguard-ok annotation`
}

// Mixed has a mutex-guarded field fed to sync/atomic.
type Mixed struct {
	mu sync.Mutex
	v  int64 //daelint:guardedby mu
}

func (m *Mixed) Bad() {
	atomic.AddInt64(&m.v, 1) // want `field Mixed.v is //daelint:guardedby mu but passed to atomic.AddInt64`
}

// AtomicAnnotated annotates a sync/atomic field with a mutex.
type AtomicAnnotated struct {
	mu sync.Mutex
	n  atomic.Int64 //daelint:guardedby mu // want `field n is a sync/atomic type annotated //daelint:guardedby mu`
}

// Orphan names a mutex that does not exist.
type Orphan struct {
	mu sync.Mutex
	n  int //daelint:guardedby lock // want `lock names no sibling sync.Mutex/RWMutex field of Orphan`
}

// Dup annotates one field twice.
type Dup struct {
	mu sync.Mutex
	//daelint:guardedby mu
	n int //daelint:guardedby mu // want `duplicate //daelint:guardedby on field n`
}

// Inferred has no annotations; the analyzer infers the discipline from
// the locked writer.
type Inferred struct {
	mu    sync.Mutex
	count int
}

func (s *Inferred) Add() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *Inferred) Read() int {
	return s.count // want `field Inferred.count is written under Inferred.mu elsewhere but accessed here with no lock held`
}

// A and B seed a lock-order cycle: f1 acquires A then B, f2 acquires B
// then A. Both closing edges are reported, at the acquisition that
// creates each.
type A struct {
	mu sync.Mutex
}

type B struct {
	mu sync.Mutex
}

func f1(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring B.mu while holding A.mu closes a lock-order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func f2(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `acquiring A.mu while holding B.mu closes a lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}
