// Package hot exercises the hotpath analyzer: annotated functions are
// audited for allocation, boxing and map traffic, and calls must stay
// inside the annotated set.
package hot

import "fmt"

type state struct {
	seen map[int]bool
}

// Sum is allocation-free: clean.
//
//daelint:hotpath
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Grow allocates per call.
//
//daelint:hotpath
func Grow(n int) []int {
	return make([]int, n) // want `make in hot path allocates`
}

// Lookup hits a map on the hot path.
//
//daelint:hotpath
func (s *state) Lookup(k int) bool {
	return s.seen[k] // want `map access in hot path hashes per operation`
}

// Close builds a closure per call.
//
//daelint:hotpath
func Close(x int) func() int {
	return func() int { return x } // want `closure in hot path`
}

// Spawn escapes a struct literal.
//
//daelint:hotpath
func Spawn() *state {
	return &state{} // want `&composite literal in hot path escapes to the heap`
}

// Pair allocates a slice literal and returns it.
//
//daelint:hotpath
func Pair(a, b int) []int {
	return []int{a, b} // want `slice literal in hot path allocates its backing store` `returning a composite literal from a hot path escapes it`
}

func helper(x int) int { return x + 1 }

// Calls reaches a same-package function outside the audited set.
//
//daelint:hotpath
func Calls(x int) int {
	return helper(x) // want `hot path calls helper, which is not annotated //daelint:hotpath`
}

// Format boxes its argument into fmt's variadic interface parameter.
//
//daelint:hotpath
func Format(x int) string {
	return fmt.Sprint(x) // want `argument boxes a concrete value into an interface parameter`
}

// ColdExit justifies its error-path allocation with a suppression.
//
//daelint:hotpath
func ColdExit(x int) (int, error) {
	if x < 0 {
		return 0, fmt.Errorf("negative input %d", x) //daelint:hotpath-ok cold exit: invalid input aborts the run
	}
	return x * 2, nil
}
