// Package det exercises the determinism analyzer: each banned construct
// sits next to its sanctioned replacement, and the suppression fixtures
// prove an annotation silences exactly the line it governs.
package det

import (
	"math/rand"
	"runtime"
	"time"
)

// SumMap aggregates over a map in iteration order.
func SumMap(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order is nondeterministic`
		out = append(out, v)
	}
	return out
}

// SumSorted is the sanctioned form: the caller supplies the key order.
func SumSorted(m map[string]int, keys []string) []int {
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want `time.Now reads wall-clock time`
}

// StampPair proves a suppression absorbs only the line it governs: the
// first read is annotated, the second still fires.
func StampPair() (int64, int64) {
	a := time.Now().Unix() //daelint:nondeterministic-ok fixture: sanctioned wall-clock read
	b := time.Now().Unix() // want `time.Now reads wall-clock time`
	return a, b
}

// Width reads host parallelism.
func Width() int {
	return runtime.GOMAXPROCS(0) // want `runtime.GOMAXPROCS reads host parallelism`
}

// Draw pulls from the auto-seeded global source.
func Draw(n int) int {
	return rand.Intn(n) // want `math/rand.Intn draws from the auto-seeded global source`
}

// SeededDraw is the sanctioned pattern: an explicit source seeded from
// the inputs is a pure function of the seed.
func SeededDraw(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Constant carries an annotation with nothing to suppress, which is a
// finding itself.
func Constant() int {
	return 42 //daelint:nondeterministic-ok fixture: suppresses nothing // want `unused //daelint:nondeterministic-ok annotation`
}

// First returns whichever channel delivers first.
func First(a, b chan int) int {
	select { // want `select arbitration is scheduling-dependent`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Scatter places each goroutine's result at its shard's slot: clean.
func Scatter(xs []int) []int {
	out := make([]int, len(xs))
	done := make(chan struct{})
	for i, x := range xs {
		go func() {
			out[i] = x * x
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return out
}

// Gather accumulates results in completion order.
func Gather(xs []int) []int {
	var out []int
	done := make(chan struct{})
	for _, x := range xs {
		go func() {
			out = append(out, x*x) // want `goroutine appends to captured out`
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return out
}

// Tally writes a shared map under a key that is not the shard's.
func Tally(xs []int) map[string]int {
	counts := map[string]int{}
	done := make(chan struct{})
	for _, x := range xs {
		go func() {
			counts["total"] += x // want `goroutine writes shared map through counts`
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return counts
}

// forEach runs fn(i) for each i in [0, n) on worker goroutines.
//
//daelint:concurrent-callback
func forEach(n int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// ParSquares shards by index through the concurrent callback: clean.
func ParSquares(xs []int) []int {
	out := make([]int, len(xs))
	forEach(len(xs), func(i int) {
		out[i] = xs[i] * xs[i]
	})
	return out
}

// ParCollect accumulates through the concurrent callback.
func ParCollect(xs []int) []int {
	var out []int
	forEach(len(xs), func(i int) {
		out = append(out, xs[i]) // want `goroutine appends to captured out`
	})
	return out
}
