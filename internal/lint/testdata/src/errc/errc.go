// Package errc exercises the errclass analyzer: sentinel comparisons,
// %w wrapping, and retryability classification on the Client boundary
// type.
package errc

import (
	"errors"
	"fmt"
)

// ErrGone is the package's classified sentinel.
var ErrGone = errors.New("errc: gone")

func IsGone(err error) bool {
	return err == ErrGone // want `sentinel comparison with ==: use errors.Is\(err, ErrGone\)`
}

func StillThere(err error) bool {
	return err != ErrGone // want `sentinel comparison with !=: use errors.Is\(err, ErrGone\)`
}

func IsGoneRight(err error) bool {
	return errors.Is(err, ErrGone)
}

func WrapBad(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `fmt.Errorf passes an error without %w in WrapBad`
}

func WrapGood(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// Helper is not a boundary method: minting a leaf error is fine here.
func Helper() error {
	return errors.New("helper failed")
}

// StatusError carries retryability in its code.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string { return e.Msg }

// Client is the fixture's fleet boundary: every error its methods mint
// must carry a classification.
type Client struct {
	url string
}

func (c *Client) Fetch() error {
	return fmt.Errorf("fetch %s failed", c.url) // want `unclassified error minted in fleet-boundary method \(Client\).Fetch of errc`
}

func (c *Client) Probe() error {
	return errors.New("probe failed") // want `unclassified error minted in fleet-boundary method \(Client\).Probe of errc: errors.New carries no retryability`
}

func (c *Client) Classified() error {
	return fmt.Errorf("fetch %s: %w", c.url, ErrGone)
}

func (c *Client) Status() error {
	return &StatusError{Code: 503, Msg: "overloaded"}
}

func (c *Client) Suppressed() error {
	return errors.New("fixture") //daelint:errclass-ok fixture: demonstrates a justified suppression
}
