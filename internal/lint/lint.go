// Package lint implements daelint, the repo's static-analysis suite: a
// dependency-free go/analysis-style framework (loader, directive grammar,
// fixture runner) plus seven analyzers that move the project's
// determinism, schema-parity, hot-path, version-bump, lock-discipline,
// context-flow and error-classification invariants from hand-pinned
// tests into the build. DESIGN.md §12 documents each analyzer and the
// invariant it encodes; cmd/daelint is the CLI driver CI runs.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned in the world's FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a loaded World. Run reports findings
// through report; the driver owns suppression, so analyzers report every
// raw finding and annotated ones are filtered (and their annotations
// marked used) centrally.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(w *World, report func(pos token.Pos, format string, args ...any))
}

// RunAnalyzers executes the analyzers over the world and returns the
// surviving findings sorted by position: suppressed findings are dropped,
// malformed directives and suppressions that silenced nothing are
// findings themselves (an annotation must both parse and earn its keep).
func RunAnalyzers(w *World, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		a.Run(w, func(pos token.Pos, format string, args ...any) {
			p := w.Fset.Position(pos)
			if supps := suppressionsAt(w, p, a.Name); len(supps) > 0 {
				for _, s := range supps {
					s.Used = true
				}
				return
			}
			diags = append(diags, Diagnostic{Pos: p, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)})
		})
	}
	for _, path := range w.Paths {
		pkg := w.Pkgs[path]
		diags = append(diags, pkg.Directives.Malformed...)
		for _, dir := range pkg.Directives.All {
			if dir.Analyzer == "" || dir.Used || !ran[dir.Analyzer] {
				continue
			}
			// A suppression in a file the per-file analyzers skipped (test
			// files without -tests) had no chance to fire; only the -tests
			// run can judge it unused.
			if !w.analyzedFileNamed(pkg, dir.Pos.Filename) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: dir.Pos, Analyzer: "directive",
				Message: fmt.Sprintf("unused //daelint:%s annotation: no %s finding on line %d to suppress", dir.Name, dir.Analyzer, dir.Line),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// SuppressDirective returns the //daelint: suppression name that silences
// findings of the named analyzer ("" for pseudo-analyzers like
// "directive" that have none).
func SuppressDirective(analyzer string) string {
	for name, an := range suppressionCategories {
		if an == analyzer {
			return name
		}
	}
	return ""
}

// suppressionsAt finds the suppression directives governing pos for the
// named analyzer, searching the package owning the file.
func suppressionsAt(w *World, pos token.Position, analyzer string) []*Directive {
	for _, path := range w.Paths {
		pkg := w.Pkgs[path]
		if _, ok := pkg.Src[pos.Filename]; !ok {
			continue
		}
		return pkg.Directives.Suppressions(pos, analyzer)
	}
	return nil
}
