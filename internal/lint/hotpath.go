package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotpath builds the hotpath analyzer: for every function annotated
// //daelint:hotpath it reports the constructs that allocate or box on the
// hot loop — composite literals that can escape, make/new, closures, map
// operations, implicit conversions to interface types, string
// concatenation — plus calls to unannotated same-package functions, so
// the audited set is closed under the call graph. Together with the
// suppressions this turns the engine's "7 allocs/run" benchmark pin into
// a structural property: every allocation site in the hot path is
// enumerated and justified with //daelint:hotpath-ok <reason>, and a new
// unannotated site fails the build gate rather than a benchmark diff.
func NewHotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "audits //daelint:hotpath functions for allocation, boxing and map traffic",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			for _, path := range w.Paths {
				pkg := w.Pkgs[path]
				if !w.analyzePkg(pkg) {
					continue
				}
				hot := map[string]bool{}
				var hotFns []*ast.FuncDecl
				for i, f := range pkg.Files {
					if !w.analyzeFile(pkg, i) {
						continue
					}
					for _, d := range f.Decls {
						fd, ok := d.(*ast.FuncDecl)
						if !ok {
							continue
						}
						if _, ok := funcDirective(fd, "hotpath"); ok {
							hot[declKey(pkg.Path, fd)] = true
							hotFns = append(hotFns, fd)
						}
					}
				}
				for _, fd := range hotFns {
					checkHotFunc(pkg, fd, hot, report)
				}
			}
		},
	}
}

func checkHotFunc(pkg *Package, fd *ast.FuncDecl, hot map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	if fd.Body == nil {
		return
	}
	info := pkg.Info
	resultIfaces := funcResultInterfaces(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure in hot path: the func value and its captures can allocate; hoist it, or annotate //daelint:hotpath-ok <reason>")
			return false // the closure body runs on its own budget
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal in hot path escapes to the heap; reuse scratch storage, or annotate //daelint:hotpath-ok <reason>")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "%s literal in hot path allocates its backing store; reuse scratch storage, or annotate //daelint:hotpath-ok <reason>", kindName(t))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if _, ok := ast.Unparen(r).(*ast.CompositeLit); ok {
					report(r.Pos(), "returning a composite literal from a hot path escapes it to the heap; fill caller-owned storage, or annotate //daelint:hotpath-ok <reason>")
				}
			}
			for i, r := range n.Results {
				if i < len(resultIfaces) && resultIfaces[i] && boxes(info, r) {
					report(r.Pos(), "returning a concrete value as interface boxes it on the heap; annotate //daelint:hotpath-ok <reason> if this is a cold exit")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pkg, n, hot, report)
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(n.X)) {
				report(n.Range, "map iteration in hot path: hashing and bucket walks on the hot loop; use slice-indexed state, or annotate //daelint:hotpath-ok <reason>")
			}
		case *ast.IndexExpr:
			if isMapType(info.TypeOf(n.X)) {
				report(n.Pos(), "map access in hot path hashes per operation; use slice-indexed state, or annotate //daelint:hotpath-ok <reason>")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation in hot path allocates; annotate //daelint:hotpath-ok <reason> if this is a cold exit")
					}
				}
			}
		case *ast.DeferStmt:
			report(n.Pos(), "defer in hot path adds per-call bookkeeping; restructure, or annotate //daelint:hotpath-ok <reason>")
		case *ast.GoStmt:
			report(n.Pos(), "goroutine launch in hot path allocates a stack; move concurrency to the caller, or annotate //daelint:hotpath-ok <reason>")
		}
		return true
	})
}

// checkHotCall audits one call in a hot function: make/new, implicit
// interface boxing of arguments, and same-package callees missing their
// own //daelint:hotpath annotation.
func checkHotCall(pkg *Package, call *ast.CallExpr, hot map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.Types[id].IsBuiltin() {
		switch id.Name {
		case "make":
			report(call.Pos(), "make in hot path allocates; size scratch in reset/setup and reuse it, or annotate //daelint:hotpath-ok <reason>")
		case "new":
			report(call.Pos(), "new in hot path allocates; reuse scratch storage, or annotate //daelint:hotpath-ok <reason>")
		case "delete":
			report(call.Pos(), "map delete in hot path hashes per operation; use slice-indexed state, or annotate //daelint:hotpath-ok <reason>")
		}
		return
	}
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		// Conversion: flag the allocating ones.
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if isInterface(to) && !isInterface(from) && from != nil {
				report(call.Pos(), "conversion to interface boxes the value on the heap; annotate //daelint:hotpath-ok <reason> if this is a cold exit")
			}
			if isStringByteConv(to, from) {
				report(call.Pos(), "string/[]byte conversion in hot path copies and allocates; annotate //daelint:hotpath-ok <reason> if this is a cold exit")
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkg.Path {
		if !hot[funcKey(fn)] {
			report(call.Pos(), "hot path calls %s, which is not annotated //daelint:hotpath; annotate it so its body is audited too, or annotate this call //daelint:hotpath-ok <reason>", fn.Name())
		}
	}
	// Implicit boxing: concrete arguments passed to interface parameters.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if isInterface(param) && boxes(info, arg) {
			report(arg.Pos(), "argument boxes a concrete value into an interface parameter (heap allocation); annotate //daelint:hotpath-ok <reason> if this is a cold exit")
		}
	}
}

// boxes reports whether passing e to an interface slot heap-boxes it: a
// typed, non-interface, non-nil value.
func boxes(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil || isInterface(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func isStringByteConv(to, from types.Type) bool {
	if from == nil {
		return false
	}
	toStr := isStringType(to)
	fromStr := isStringType(from)
	toBytes := isByteSlice(to)
	fromBytes := isByteSlice(from)
	return (toStr && fromBytes) || (toBytes && fromStr)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "composite"
	}
}

// funcResultInterfaces records which results of fd are interface-typed.
func funcResultInterfaces(info *types.Info, fd *ast.FuncDecl) []bool {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	out := make([]bool, sig.Results().Len())
	for i := range out {
		out[i] = isInterface(sig.Results().At(i).Type())
	}
	return out
}
