package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrclassConfig scopes the errclass analyzer.
type ErrclassConfig struct {
	// Paths are import-path prefixes in scope for the errors.Is and %w
	// rules.
	Paths []string
	// Boundary lists (import path, type name) pairs whose method sets
	// form the fleet boundary: every error they construct must carry a
	// retryability classification.
	Boundary [][2]string
}

// DefaultErrclassConfig audits the failure-ladder packages, with the
// daemon clients as the fleet boundary: a retry ladder keyed on
// Retryable()/errors.Is only works if every error that reaches it is a
// *StatusError or wraps a classified sentinel.
var DefaultErrclassConfig = ErrclassConfig{
	Paths: DefaultConcurrencyPaths,
	Boundary: [][2]string{
		{"daesim/internal/daemon", "Client"},
		{"daesim/internal/daemon", "FleetClient"},
	},
}

// NewErrclass builds the errclass analyzer: sentinel comparisons must go
// through errors.Is (== misses wrapped chains), errors passed to
// fmt.Errorf must be wrapped with %w (else Is/As lose the chain), and
// fleet-boundary methods must not mint unclassified leaf errors
// (errors.New / fmt.Errorf with neither %w nor a classified
// construction) — those defeat the retry ladder's retryability test.
func NewErrclass(cfg ErrclassConfig) *Analyzer {
	boundary := map[string]bool{}
	for _, b := range cfg.Boundary {
		boundary[b[0]+"."+b[1]] = true
	}
	return &Analyzer{
		Name: "errclass",
		Doc:  "enforces errors.Is comparisons, %w wrapping, and retryability classification at the fleet boundary",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			eachScopedFile(w, cfg.Paths, func(pkg *Package, f *ast.File) {
				checkErrclassFile(pkg, f, boundary, report)
			})
		},
	}
}

func checkErrclassFile(pkg *Package, f *ast.File, boundary map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		inBoundary := false
		if named := receiverNamed(info, fd); named != nil && named.Obj().Pkg() != nil {
			inBoundary = boundary[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pkg, n, report)
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil {
					return true
				}
				switch funcKey(fn) {
				case "fmt.Errorf":
					wraps, errArgs := errorfShape(info, n)
					if errArgs > wraps {
						report(n.Pos(), "fmt.Errorf passes an error without %%w in %s; wrap with %%w so errors.Is/As can classify the chain, or suppress //daelint:errclass-ok <reason>", fd.Name.Name)
					} else if inBoundary && wraps == 0 && errArgs == 0 {
						report(n.Pos(), "unclassified error minted in fleet-boundary method (%s).%s of %s: fmt.Errorf without %%w carries no retryability; wrap a classified sentinel or return a *StatusError, or suppress //daelint:errclass-ok <reason>", boundaryRecv(info, fd), fd.Name.Name, pkg.Path)
					}
				case "errors.New":
					if inBoundary {
						report(n.Pos(), "unclassified error minted in fleet-boundary method (%s).%s of %s: errors.New carries no retryability; wrap a classified sentinel with %%w or return a *StatusError, or suppress //daelint:errclass-ok <reason>", boundaryRecv(info, fd), fd.Name.Name, pkg.Path)
					}
				}
			}
			return true
		})
	}
}

func boundaryRecv(info *types.Info, fd *ast.FuncDecl) string {
	if named := receiverNamed(info, fd); named != nil {
		return named.Obj().Name()
	}
	return "?"
}

// checkSentinelCompare flags ==/!= between an error value and a
// package-level sentinel: identity comparison misses wrapped chains.
func checkSentinelCompare(pkg *Package, n *ast.BinaryExpr, report func(pos token.Pos, format string, args ...any)) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	info := pkg.Info
	if isNilExpr(info, n.X) || isNilExpr(info, n.Y) {
		return
	}
	if !isErrorType(info.TypeOf(n.X)) || !isErrorType(info.TypeOf(n.Y)) {
		return
	}
	for _, side := range []ast.Expr{n.X, n.Y} {
		if name, ok := sentinelName(pkg, side); ok {
			report(n.Pos(), "sentinel comparison with %s: use errors.Is(err, %s), not ==/!= — wrapped errors slip past identity, or suppress //daelint:errclass-ok <reason>", n.Op, name)
			return
		}
	}
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// sentinelName resolves an expression to a package-level error variable,
// rendered as it would be written at the comparison site.
func sentinelName(pkg *Package, e ast.Expr) (string, bool) {
	var id *ast.Ident
	qualifier := ""
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[x].(*types.PkgName); isPkg {
				id = e.Sel
				qualifier = x.Name + "."
			}
		}
	}
	if id == nil {
		return "", false
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return qualifier + v.Name(), true
}

// errorfShape counts %w verbs in a fmt.Errorf call's literal format and
// error-typed arguments following it.
func errorfShape(info *types.Info, call *ast.CallExpr) (wraps, errArgs int) {
	if len(call.Args) == 0 {
		return 0, 0
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if format, err := strconv.Unquote(lit.Value); err == nil {
			wraps = countWrapVerbs(format)
		}
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(info.TypeOf(arg)) {
			errArgs++
		}
	}
	return wraps, errArgs
}

// countWrapVerbs counts %w verbs, skipping %% escapes and flag/width
// characters between the percent and the verb.
func countWrapVerbs(format string) int {
	count := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# .0123456789[]*", rune(format[j])) {
			j++
		}
		if j < len(format) {
			if format[j] == '%' {
				i = j
				continue
			}
			if format[j] == 'w' {
				count++
			}
		}
		i = j
	}
	return count
}
