package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxflowConfig scopes the ctxflow analyzer.
type CtxflowConfig struct {
	// Paths are import-path prefixes in scope.
	Paths []string
}

// unthreadedVariants maps calls that silently drop context to the
// variant that threads it.
var unthreadedVariants = map[string]string{
	"net/http.NewRequest": "http.NewRequestWithContext",
}

// NewCtxflow builds the ctxflow analyzer: on the daemon/fleet/store call
// graph, every function that blocks (channel operations, select,
// time.Sleep, WaitGroup/Cond waits) must accept context.Context as its
// first parameter so cancellation reaches it; retry/backoff loops that
// sleep must consult ctx.Err()/ctx.Done() every round; and
// context.Background()/TODO() may only be manufactured in package main,
// tests, and functions annotated //daelint:ctx-root <reason>. Handlers
// holding an *http.Request are rooted by r.Context().
func NewCtxflow(cfg CtxflowConfig) *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "enforces context threading, per-round cancellation checks, and no fresh contexts outside roots",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			eachScopedFile(w, cfg.Paths, func(pkg *Package, f *ast.File) {
				if pkg.Types.Name() == "main" {
					return
				}
				checkCtxflowFile(pkg, f, report)
			})
		},
	}
}

func checkCtxflowFile(pkg *Package, f *ast.File, report func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	blocked := map[*ast.FuncDecl]bool{} // already reported for blocking

	blocking := func(pos token.Pos, what string, stack []ast.Node) {
		fd, rooted := ctxflowOwner(pkg, stack)
		if rooted || fd == nil || blocked[fd] {
			return
		}
		blocked[fd] = true
		report(pos, "%s blocks on %s but has no context.Context parameter; accept ctx first and thread it to callees, or annotate //daelint:ctx-root <reason>", fd.Name.Name, what)
	}

	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkCtxPosition(pkg, n, report)
		case *ast.SendStmt:
			blocking(n.Pos(), "a channel send", stack)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking(n.Pos(), "a channel receive", stack)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					blocking(n.Pos(), "a channel range", stack)
				}
			}
			checkRetryLoop(pkg, n.Body, n.Pos(), stack, report)
		case *ast.ForStmt:
			checkRetryLoop(pkg, n.Body, n.Pos(), stack, report)
		case *ast.SelectStmt:
			if selectBlocks(n) {
				blocking(n.Pos(), "a select", stack)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				switch key := funcKey(fn); key {
				case "time.Sleep", "sync.(WaitGroup).Wait", "sync.(Cond).Wait":
					blocking(n.Pos(), key, stack)
				case "context.Background", "context.TODO":
					if fd, _ := enclosingDecl(stack); fd != nil {
						if _, ok := funcDirective(fd, "ctx-root"); !ok {
							report(n.Pos(), "%s manufactures a fresh context in %s; thread the caller's ctx, mark the function //daelint:ctx-root <reason>, or suppress //daelint:ctxflow-ok <reason>", key, fd.Name.Name)
						}
					}
				default:
					if variant, ok := unthreadedVariants[key]; ok {
						report(n.Pos(), "%s drops the caller's context; use %s", key, variant)
					}
				}
			}
		}
		return true
	})
}

// ctxflowOwner resolves the function a blocking construct belongs to and
// whether that function is already rooted: a func literal with its own
// ctx or *http.Request parameter owns its blocking; otherwise the
// enclosing declaration does.
func ctxflowOwner(pkg *Package, stack []ast.Node) (*ast.FuncDecl, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if fieldsHaveCtx(pkg, fn.Type.Params) {
				return nil, true
			}
		case *ast.FuncDecl:
			if _, ok := funcDirective(fn, "ctx-root"); ok {
				return fn, true
			}
			return fn, fieldsHaveCtx(pkg, fn.Type.Params)
		}
	}
	return nil, false
}

// fieldsHaveCtx reports whether a parameter list carries a
// context.Context or *http.Request anywhere.
func fieldsHaveCtx(pkg *Package, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		t := pkg.Info.TypeOf(field.Type)
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

// enclosingDecl finds the nearest enclosing function declaration.
func enclosingDecl(stack []ast.Node) (*ast.FuncDecl, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd, true
		}
	}
	return nil, false
}

// checkCtxPosition enforces ctx-first: a declaration taking
// context.Context anywhere but first (after the receiver) is a finding.
func checkCtxPosition(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	if fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pkg.Info.TypeOf(field.Type)) && idx > 0 {
			report(field.Pos(), "context.Context must be the first parameter of %s, not parameter %d", fd.Name.Name, idx+1)
		}
		idx += n
	}
}

// checkRetryLoop flags a loop that sleeps between rounds (time.Sleep or
// a func(time.Duration) backoff hook) without consulting ctx.Err() or
// ctx.Done(): a cancelled caller would keep retrying. Only applies where
// a ctx is actually in scope — rootless functions are rule-A territory.
func checkRetryLoop(pkg *Package, body *ast.BlockStmt, pos token.Pos, stack []ast.Node, report func(pos token.Pos, format string, args ...any)) {
	if !ctxInScope(pkg, stack) {
		return
	}
	info := pkg.Info
	sleeps, checks := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false // nested loops and literals are judged on their own
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && funcKey(fn) == "time.Sleep" {
				sleeps = true
			} else if fn == nil && isSleepSignature(info.TypeOf(n.Fun)) {
				sleeps = true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextType(info.TypeOf(sel.X)) {
					checks = true
				}
			}
		}
		return true
	})
	if sleeps && !checks {
		report(pos, "retry loop sleeps between rounds without consulting ctx; check ctx.Err() (or select on ctx.Done()) each round so a cancelled caller stops retrying, or annotate //daelint:ctxflow-ok <reason>")
	}
}

// ctxInScope reports whether some enclosing function (declaration or
// literal) binds a context.Context parameter.
func ctxInScope(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if fieldsHaveCtx(pkg, fn.Type.Params) {
				return true
			}
		case *ast.FuncDecl:
			return fieldsHaveCtx(pkg, fn.Type.Params)
		}
	}
	return false
}

// isSleepSignature matches backoff hooks: func(time.Duration) with no
// results (the repo's injectable f.sleep).
func isSleepSignature(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Variadic() || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	return isNamedType(sig.Params().At(0).Type(), "time", "Duration")
}

// selectBlocks reports whether a select can park the goroutine: at
// least one communication case and no default.
func selectBlocks(sel *ast.SelectStmt) bool {
	cases := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			if cc.Comm == nil {
				return false // default present: non-blocking poll
			}
			cases++
		}
	}
	return cases > 0
}
