package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package: parsed syntax, type
// information and the raw source of every file (analyzers consult the
// source to decide whether a directive comment trails code on its line).
type Package struct {
	// Path is the import path ("daesim/internal/engine"). External test
	// packages carry their real path with the "_test" suffix.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Files holds the parsed non-test files, then — when the world was
	// loaded with Tests — the in-package _test.go files. NumNonTest
	// counts the leading non-test files.
	Files      []*ast.File
	NumNonTest int
	// Types and Info are the go/types results for Files as one unit.
	Types *types.Package
	Info  *types.Info
	// Src maps file names (as recorded in the FileSet) to their bytes.
	Src map[string][]byte
	// Directives indexes the //daelint: comments of every file.
	Directives *Directives
	// fields caches the struct-field index built by FieldDecl.
	fields map[types.Object]FieldDecl
}

// FieldDecl locates one named struct field's declaration: the ast.Field
// carrying its directives and the name of the struct type that owns it.
type FieldDecl struct {
	TypeName string
	Field    *ast.Field
}

// FieldDecl resolves a field object (as produced by types.Selection.Obj)
// of one of this package's top-level named structs back to its
// declaration site. This is how lockguard reads //daelint:guardedby off
// a field reached through any alias or selector chain.
func (p *Package) FieldDecl(obj types.Object) (FieldDecl, bool) {
	if p.fields == nil {
		p.fields = map[types.Object]FieldDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if def := p.Info.Defs[name]; def != nil {
								p.fields[def] = FieldDecl{TypeName: ts.Name.Name, Field: field}
							}
						}
					}
				}
			}
		}
	}
	fd, ok := p.fields[obj]
	return fd, ok
}

// IsTestFile reports whether f was loaded as a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	for i, g := range p.Files {
		if g == f {
			return i >= p.NumNonTest
		}
	}
	return false
}

// World is the set of packages one daelint run analyzes, sharing a
// FileSet so positions are comparable across packages.
type World struct {
	Fset *token.FileSet
	// Pkgs maps import path to the loaded package, iterated via Paths.
	Pkgs map[string]*Package
	// Paths lists the package paths in load (deterministic) order.
	Paths []string
	// Module is the module path ("daesim"); empty for fixture worlds.
	Module string
	// Tests reports whether _test.go files were loaded.
	Tests bool
	// IncludeTests makes the per-file analyzers (determinism, hotpath)
	// report findings in loaded _test.go files; schemaguard always uses
	// them (the oracle comparison lives in one).
	IncludeTests bool
}

// analyzeFile reports whether findings in f should be reported for pkg.
func (w *World) analyzeFile(pkg *Package, f int) bool {
	if w.IncludeTests {
		return true
	}
	return f < pkg.NumNonTest
}

// analyzePkg reports whether an external-test package is in scope.
func (w *World) analyzePkg(pkg *Package) bool {
	return w.IncludeTests || !strings.HasSuffix(pkg.Path, "_test")
}

// analyzedFileNamed reports whether the named file of pkg was in scope
// for the per-file analyzers this run.
func (w *World) analyzedFileNamed(pkg *Package, filename string) bool {
	if w.IncludeTests {
		return true
	}
	if !w.analyzePkg(pkg) {
		return false
	}
	for i, f := range pkg.Files {
		if w.Fset.Position(f.Pos()).Filename == filename {
			return w.analyzeFile(pkg, i)
		}
	}
	return false
}

// Pkg returns the loaded package with the given import path, or nil.
func (w *World) Pkg(path string) *Package {
	return w.Pkgs[path]
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath     string
	Dir            string
	Name           string
	Export         string
	DepOnly        bool
	ForTest        string
	GoFiles        []string
	CgoFiles       []string
	TestGoFiles    []string
	XTestGoFiles   []string
	Module         *struct{ Path string }
	Error          *struct{ Err string }
	IgnoredGoFiles []string
}

// Load type-checks the packages matching patterns (relative to dir, the
// module root) and every import they need, using export data produced by
// the go command — no network, no third-party deps. With tests set,
// in-package _test.go files are type-checked together with their package
// and external _test packages become their own entries.
func Load(dir string, patterns []string, tests bool) (*World, error) {
	args := []string{"list", "-e", "-json=ImportPath,Dir,Name,Export,DepOnly,ForTest,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Module,Error", "-deps", "-export"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPkg
	module := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Test variants ("p [p.test]", "p.test") only contribute export
		// data for their clean-path imports, which the -test listing
		// already includes as ordinary entries.
		if strings.ContainsAny(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" && exports[p.ImportPath] == "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.ForTest == "" && p.Name != "" {
			targets = append(targets, p)
			if module == "" && p.Module != nil {
				module = p.Module.Path
			}
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	w := &World{Fset: fset, Pkgs: map[string]*Package{}, Module: module, Tests: tests}
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the loader does not support", t.ImportPath)
		}
		files := append([]string(nil), t.GoFiles...)
		numNonTest := len(files)
		if tests {
			files = append(files, t.TestGoFiles...)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, files, numNonTest)
		if err != nil {
			return nil, err
		}
		w.Pkgs[t.ImportPath] = pkg
		w.Paths = append(w.Paths, t.ImportPath)

		if tests && len(t.XTestGoFiles) > 0 {
			xpath := t.ImportPath + "_test"
			xpkg, err := checkPackage(fset, imp, xpath, t.Dir, t.XTestGoFiles, 0)
			if err != nil {
				return nil, err
			}
			w.Pkgs[xpath] = xpkg
			w.Paths = append(w.Paths, xpath)
		}
	}
	return w, nil
}

// checkPackage parses and type-checks one package from source. The
// importer resolves every import from export data, so only the target
// package itself is type-checked syntactically.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string, numNonTest int) (*Package, error) {
	pkg := &Package{
		Path:       path,
		Dir:        dir,
		NumNonTest: numNonTest,
		Src:        map[string][]byte{},
		Info:       newInfo(),
	}
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Src[full] = src
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	var derr error
	pkg.Directives, derr = parseDirectives(fset, pkg)
	if derr != nil {
		return nil, derr
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
