package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SchemaConfig names the declarations the schemaguard analyzer proves
// field-coverage invariants over. Zero-valued entries disable the
// corresponding check, and checks whose packages are not in the loaded
// world are skipped, so partial runs (daelint ./internal/engine) stay
// quiet rather than wrong.
type SchemaConfig struct {
	// ParamsPkg.ParamsType is the simulation-parameter struct; every
	// field not annotated //daelint:unkeyed must be read — directly or
	// through same-package calls — by CacheKeyFunc.
	ParamsPkg, ParamsType, CacheKeyFunc string
	// WirePkg.WireType is the wire form of ParamsType: field names must
	// match 1:1 with ParamsType minus //daelint:unwired fields, every
	// wire field needs a json tag, and the To/From converters must read
	// every field they translate.
	WirePkg, WireType, WireTo, WireFrom string
	// ResultPkg holds ResultTypes, whose reference-typed fields must
	// each be named inside CloneFunc (value fields ride the struct copy).
	ResultPkg   string
	ResultTypes []string
	CloneFunc   string
	// OracleFunc is the differential-oracle comparison (a test in
	// ResultPkg): it must compare whole Results structurally
	// (reflect.DeepEqual or ==), not field-by-field, so new Result
	// fields are covered by construction.
	OracleFunc string
	// OpPkg.OpType is hashed field-by-field by FingerprintPkg's
	// FingerprintFunc; every Op field must be read there.
	OpPkg, OpType, FingerprintPkg, FingerprintFunc string
}

// DefaultSchemaConfig encodes this repo's schema invariants (DESIGN.md
// §9: cache identity; §10: wire protocol).
var DefaultSchemaConfig = SchemaConfig{
	ParamsPkg: "daesim/internal/machine", ParamsType: "Params", CacheKeyFunc: "CacheKey",
	WirePkg: "daesim/internal/daemon", WireType: "Params", WireTo: "ToParams", WireFrom: "Machine",
	ResultPkg:   "daesim/internal/engine",
	ResultTypes: []string{"Result", "CoreStats"},
	CloneFunc:   "Clone",
	OracleFunc:  "resultsEqual",
	OpPkg:       "daesim/internal/engine", OpType: "Op",
	FingerprintPkg: "daesim/internal/machine", FingerprintFunc: "Fingerprint",
}

// NewSchemaGuard builds the schemaguard analyzer: the static form of the
// field-coverage invariants the repo previously pinned with
// reflect.NumField counts — every Params field reaches the cache-key
// encoding and the wire schema, every reference-typed Result field is
// deep-copied by Clone, every Op field is hashed by Fingerprint — with
// diagnostics that name the missing field.
func NewSchemaGuard(cfg SchemaConfig) *Analyzer {
	return &Analyzer{
		Name: "schemaguard",
		Doc:  "proves cache-key, wire-schema, clone and fingerprint field coverage",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			checkCacheKey(w, cfg, report)
			checkWireParity(w, cfg, report)
			checkClone(w, cfg, report)
			checkOracle(w, cfg, report)
			checkFingerprint(w, cfg, report)
		},
	}
}

// structFields returns the declared fields of pkg's named struct and the
// AST field nodes carrying their comments, in declaration order.
func structFields(pkg *Package, typeName string) (*types.Named, []*types.Var, map[string]*ast.Field) {
	named, st := namedStruct(pkg, typeName)
	if named == nil {
		return nil, nil, nil
	}
	var fields []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i))
	}
	astFields := map[string]*ast.Field{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != typeName {
				return true
			}
			if stl, ok := ts.Type.(*ast.StructType); ok {
				for _, fld := range stl.Fields.List {
					for _, name := range fld.Names {
						astFields[name.Name] = fld
					}
				}
			}
			return false
		})
	}
	return named, fields, astFields
}

// checkCacheKey: every Params field is read, transitively through
// same-package calls, by the cache-key encoder.
func checkCacheKey(w *World, cfg SchemaConfig, report func(pos token.Pos, format string, args ...any)) {
	if cfg.ParamsPkg == "" || cfg.CacheKeyFunc == "" {
		return
	}
	pkg := w.Pkg(cfg.ParamsPkg)
	if pkg == nil {
		return
	}
	_, fields, astFields := structFields(pkg, cfg.ParamsType)
	if fields == nil {
		report(token.NoPos, "schema config names %s.%s, which does not exist", cfg.ParamsPkg, cfg.ParamsType)
		return
	}
	enc := findFunc(pkg, cfg.CacheKeyFunc, cfg.ParamsType)
	if enc == nil {
		report(token.NoPos, "schema config names encoder %s on %s.%s, which does not exist", cfg.CacheKeyFunc, cfg.ParamsPkg, cfg.ParamsType)
		return
	}
	read := fieldsRead(pkg, enc, cfg.ParamsPkg, cfg.ParamsType)
	for _, fld := range fields {
		if read[fld.Name()] {
			continue
		}
		if _, ok := fieldDirective(astFields[fld.Name()], "unkeyed"); ok {
			continue
		}
		report(fld.Pos(), "field %s added to %s.%s but not encoded in %s: distinct configurations would alias in the persistent result cache; extend the canonical encoding, or annotate //daelint:unkeyed <reason>", fld.Name(), pkgBase(cfg.ParamsPkg), cfg.ParamsType, cfg.CacheKeyFunc)
	}
}

// checkWireParity: machine params and wire params must declare the same
// field names (minus //daelint:unwired), wire fields must carry json
// tags, and the converters must read every field they translate.
func checkWireParity(w *World, cfg SchemaConfig, report func(pos token.Pos, format string, args ...any)) {
	if cfg.ParamsPkg == "" || cfg.WirePkg == "" {
		return
	}
	ppkg, wpkg := w.Pkg(cfg.ParamsPkg), w.Pkg(cfg.WirePkg)
	if ppkg == nil || wpkg == nil {
		return
	}
	_, pFields, pAst := structFields(ppkg, cfg.ParamsType)
	wNamed, wFields, wAst := structFields(wpkg, cfg.WireType)
	if pFields == nil || wFields == nil {
		return
	}
	wireSet := map[string]bool{}
	for _, f := range wFields {
		wireSet[f.Name()] = true
	}
	machineSet := map[string]bool{}
	for _, f := range pFields {
		if _, unwired := fieldDirective(pAst[f.Name()], "unwired"); unwired {
			continue
		}
		machineSet[f.Name()] = true
		if !wireSet[f.Name()] {
			report(f.Pos(), "field %s added to %s.%s but missing from the wire struct %s.%s: a daemon would silently simulate the default value; extend the protocol, or annotate //daelint:unwired <reason>", f.Name(), pkgBase(cfg.ParamsPkg), cfg.ParamsType, pkgBase(cfg.WirePkg), cfg.WireType)
		}
	}
	for _, f := range wFields {
		if !machineSet[f.Name()] {
			report(f.Pos(), "wire field %s has no counterpart in %s.%s: dead protocol surface, or a rename that forgot one side", f.Name(), pkgBase(cfg.ParamsPkg), cfg.ParamsType)
		}
		if tag, ok := wireJSONTag(wNamed, f.Name()); !ok || tag == "" {
			report(f.Pos(), "wire field %s has no json tag: the field name would leak into the protocol and silently change on a rename", f.Name())
		}
	}
	// Converter coverage: To must read every wired machine field, From
	// every wire field, or a new field round-trips as the zero value.
	if cfg.WireTo != "" {
		if to := findFunc(wpkg, cfg.WireTo, ""); to != nil {
			read := fieldsRead(wpkg, to, cfg.ParamsPkg, cfg.ParamsType)
			for _, f := range pFields {
				if machineSet[f.Name()] && !read[f.Name()] {
					report(f.Pos(), "%s does not read %s.%s, so the wire form drops field %s", cfg.WireTo, cfg.ParamsType, f.Name(), f.Name())
				}
			}
		}
	}
	if cfg.WireFrom != "" {
		if from := findFunc(wpkg, cfg.WireFrom, cfg.WireType); from != nil {
			read := fieldsRead(wpkg, from, cfg.WirePkg, cfg.WireType)
			for _, f := range wFields {
				if !read[f.Name()] {
					report(f.Pos(), "%s does not read wire field %s, so the daemon drops it on decode", cfg.WireFrom, f.Name())
				}
			}
		}
	}
	_ = wAst
}

// checkClone: every reference-typed field of the result structs must be
// named inside Clone, which deep-copies on top of a struct copy.
func checkClone(w *World, cfg SchemaConfig, report func(pos token.Pos, format string, args ...any)) {
	if cfg.ResultPkg == "" || cfg.CloneFunc == "" {
		return
	}
	pkg := w.Pkg(cfg.ResultPkg)
	if pkg == nil || len(cfg.ResultTypes) == 0 {
		return
	}
	clone := findFunc(pkg, cfg.CloneFunc, cfg.ResultTypes[0])
	if clone == nil {
		report(token.NoPos, "schema config names %s on %s.%s, which does not exist", cfg.CloneFunc, cfg.ResultPkg, cfg.ResultTypes[0])
		return
	}
	for _, typeName := range cfg.ResultTypes {
		_, fields, _ := structFields(pkg, typeName)
		if fields == nil {
			report(token.NoPos, "schema config names %s.%s, which does not exist", cfg.ResultPkg, typeName)
			continue
		}
		mentioned := fieldsRead(pkg, clone, cfg.ResultPkg, typeName)
		for _, f := range fields {
			if !isReferenceType(f.Type()) || mentioned[f.Name()] {
				continue
			}
			report(f.Pos(), "reference-typed field %s.%s is not deep-copied by %s: a clone would alias the original's %s and cached Results could be scribbled on; extend %s", typeName, f.Name(), cfg.CloneFunc, f.Name(), cfg.CloneFunc)
		}
	}
}

// checkOracle: the differential-oracle comparison must be structural
// (reflect.DeepEqual / ==) over whole Results so new fields cannot be
// forgotten. A field-by-field comparison would need this analyzer to
// track coverage; requiring DeepEqual is simpler and stronger.
func checkOracle(w *World, cfg SchemaConfig, report func(pos token.Pos, format string, args ...any)) {
	if cfg.ResultPkg == "" || cfg.OracleFunc == "" {
		return
	}
	pkg := w.Pkg(cfg.ResultPkg)
	if pkg == nil {
		return
	}
	oracle := findFunc(pkg, cfg.OracleFunc, "")
	if oracle == nil {
		if w.Tests {
			// The helper lives in a test file, so only a test-loaded
			// world can miss it meaningfully.
			report(token.NoPos, "oracle comparison %s.%s not found: the reference-oracle tests no longer compare Results through the audited helper", pkgBase(cfg.ResultPkg), cfg.OracleFunc)
		}
		return
	}
	usesDeepEqual := false
	ast.Inspect(oracle.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil && funcKey(fn) == "reflect.DeepEqual" {
			usesDeepEqual = true
		}
		return true
	})
	if !usesDeepEqual {
		report(oracle.Pos(), "%s must compare whole Results with reflect.DeepEqual so a new Result field is covered by construction, not by remembering to extend a field list", cfg.OracleFunc)
	}
}

// checkFingerprint: every Op field must be read by the workload
// fingerprint hash.
func checkFingerprint(w *World, cfg SchemaConfig, report func(pos token.Pos, format string, args ...any)) {
	if cfg.OpPkg == "" || cfg.FingerprintPkg == "" {
		return
	}
	opPkg, fpPkg := w.Pkg(cfg.OpPkg), w.Pkg(cfg.FingerprintPkg)
	if opPkg == nil || fpPkg == nil {
		return
	}
	_, fields, astFields := structFields(opPkg, cfg.OpType)
	if fields == nil {
		return
	}
	fp := findFunc(fpPkg, cfg.FingerprintFunc, "")
	if fp == nil {
		report(token.NoPos, "schema config names %s in %s, which does not exist", cfg.FingerprintFunc, cfg.FingerprintPkg)
		return
	}
	read := fieldsRead(fpPkg, fp, cfg.OpPkg, cfg.OpType)
	for _, f := range fields {
		if read[f.Name()] {
			continue
		}
		if _, ok := fieldDirective(astFields[f.Name()], "unkeyed"); ok {
			continue
		}
		report(f.Pos(), "field %s added to %s.%s but not hashed by %s: suites differing only in %s would alias in the persistent store; extend the hash, or annotate //daelint:unkeyed <reason>", f.Name(), pkgBase(cfg.OpPkg), cfg.OpType, cfg.FingerprintFunc, f.Name())
	}
}

// findFunc locates a function or method declaration: recv "" matches
// plain functions and any method with that name when no plain function
// exists.
func findFunc(pkg *Package, name, recv string) *ast.FuncDecl {
	var anyMethod *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				if recv == "" {
					return fd
				}
				continue
			}
			if recv == "" {
				anyMethod = fd
				continue
			}
			if declKey(pkg.Path, fd) == pkg.Path+".("+recv+")."+name {
				return fd
			}
		}
	}
	return anyMethod
}

// fieldsRead collects the fields of (structPkg, structName) selected
// anywhere in fn's body or in same-package functions it calls,
// transitively. Matching is by receiver type name and package path, so
// it works across type-checking universes (the struct may come from
// export data).
func fieldsRead(pkg *Package, fn *ast.FuncDecl, structPkg, structName string) map[string]bool {
	read := map[string]bool{}
	decls := funcDecls(pkg)
	visited := map[*ast.FuncDecl]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if owner, field := fieldOwner(sel); owner == structPkg+"."+structName {
						read[field] = true
					}
				}
			case *ast.CallExpr:
				if callee := calleeFunc(pkg.Info, n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == pkg.Path {
					visit(decls[funcKey(callee)])
				}
			}
			return true
		})
	}
	visit(fn)
	return read
}

// fieldOwner resolves the struct type a field selection reads from,
// walking the selection's index path so embedded accesses attribute to
// the declaring struct.
func fieldOwner(sel *types.Selection) (owner, field string) {
	obj, ok := sel.Obj().(*types.Var)
	if !ok {
		return "", ""
	}
	// The declaring struct is the field object's parent type; recover it
	// by walking from the receiver through the index path.
	t := sel.Recv()
	for _, idx := range sel.Index() {
		for {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return "", ""
		}
		f := st.Field(idx)
		if f.Name() == obj.Name() && named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name(), f.Name()
		}
		t = f.Type()
	}
	return "", ""
}

// isReferenceType reports whether a value of type t can share state with
// a shallow copy of itself.
func isReferenceType(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
			return true
		case *types.Array:
			return walk(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		}
		return false
	}
	return walk(t)
}

// wireJSONTag extracts the json tag of the named field.
func wireJSONTag(named *types.Named, field string) (string, bool) {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			tag := st.Tag(i)
			return reflectStructTagGet(tag, "json"), true
		}
	}
	return "", false
}

// reflectStructTagGet is reflect.StructTag.Get without importing reflect
// for one call; the format is the conventional key:"value" list.
func reflectStructTagGet(tag, key string) string {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' && tag[i] != 0x7f {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		value := tag[1:i]
		tag = tag[i+1:]
		if name == key {
			return value
		}
	}
	return ""
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
