package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// VersionKeyConfig names the engine-version discipline the versionkey
// analyzer enforces: the declarations whose change can alter a Result
// for the same inputs (the "semantics surface" of Sim.Run) are recorded
// in a lock file keyed by the engine version string, so editing the
// surface without either bumping the version or consciously regenerating
// the lock (a reviewable diff) fails the build gate.
type VersionKeyConfig struct {
	// EnginePkg declares VersionConst and the root functions.
	EnginePkg    string
	VersionConst string
	// VersionPattern constrains the version string's shape.
	VersionPattern string
	// Roots are function keys within EnginePkg ("(Sim).Run", "Run");
	// every same-package function reachable from them is surface.
	Roots []string
	// Structs are {package path, type name} pairs whose field lists and
	// types are surface (config knobs reaching the engine).
	Structs [][2]string
	// ConstPkgs are packages whose exported constant values are surface
	// (calibrated latencies, queue factors).
	ConstPkgs []string
	// LockFile is the lock file name, relative to EnginePkg's directory.
	LockFile string
	// RequireVersionUse lists packages that must reference VersionConst
	// in non-test code (cache-entry key builders, skew guards).
	RequireVersionUse []string
}

// DefaultVersionKeyConfig encodes this repo's discipline: engine.Version
// tags Sim.Run semantics, sweep folds it into store keys and daemon into
// skew guards, and internal/engine/semantics.lock pins the surface.
var DefaultVersionKeyConfig = VersionKeyConfig{
	EnginePkg:      "daesim/internal/engine",
	VersionConst:   "Version",
	VersionPattern: `^engine-v\d+$`,
	Roots:          []string{"(Sim).Run", "Run"},
	Structs: [][2]string{
		{"daesim/internal/engine", "Config"},
		{"daesim/internal/engine", "Op"},
		{"daesim/internal/machine", "Params"},
	},
	ConstPkgs: []string{
		"daesim/internal/engine",
		"daesim/internal/machine",
		"daesim/internal/isa",
	},
	LockFile:          "semantics.lock",
	RequireVersionUse: []string{"daesim/internal/sweep", "daesim/internal/daemon"},
}

// NewVersionKey builds the versionkey analyzer.
func NewVersionKey(cfg VersionKeyConfig) *Analyzer {
	return &Analyzer{
		Name: "versionkey",
		Doc:  "pins Sim.Run's semantics surface to engine.Version via a lock file",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			checkVersionKey(w, cfg, report)
		},
	}
}

func checkVersionKey(w *World, cfg VersionKeyConfig, report func(pos token.Pos, format string, args ...any)) {
	pkg := w.Pkg(cfg.EnginePkg)
	if pkg == nil {
		return
	}
	version, vpos, ok := versionValue(pkg, cfg.VersionConst)
	if !ok {
		report(token.NoPos, "%s.%s not found: the engine must declare its semantics version for persistent caches", pkgBase(cfg.EnginePkg), cfg.VersionConst)
		return
	}
	if cfg.VersionPattern != "" {
		if re, err := regexp.Compile(cfg.VersionPattern); err == nil && !re.MatchString(version) {
			report(vpos, "%s.%s = %q does not match %s: cache keys embed this string, keep it canonical", pkgBase(cfg.EnginePkg), cfg.VersionConst, version, cfg.VersionPattern)
		}
	}

	// Cache-identity plumbing: the packages that build persistent keys
	// must fold the version in, or a semantics bump would not invalidate
	// their entries.
	for _, path := range cfg.RequireVersionUse {
		p := w.Pkg(path)
		if p == nil {
			continue
		}
		if !usesObject(p, cfg.EnginePkg, cfg.VersionConst) {
			report(token.NoPos, "package %s never references %s.%s: its persistent keys or skew guards would survive a semantics bump", path, pkgBase(cfg.EnginePkg), cfg.VersionConst)
		}
	}

	surface, err := ComputeSemanticsSurface(w, cfg)
	if err != nil {
		report(token.NoPos, "versionkey: %v", err)
		return
	}
	lockPath := filepath.Join(pkg.Dir, cfg.LockFile)
	lock, err := os.ReadFile(lockPath)
	if err != nil {
		report(vpos, "semantics lock %s missing: run `go run ./cmd/daelint -update-semantics ./...` to pin the surface reachable from %s", cfg.LockFile, strings.Join(cfg.Roots, ", "))
		return
	}
	lockVersion, lockLines := parseLock(string(lock))
	if lockVersion != version {
		report(vpos, "%s.%s is %q but %s records %q: regenerate the lock with `go run ./cmd/daelint -update-semantics ./...` so the bump and its surface land in one reviewable diff", pkgBase(cfg.EnginePkg), cfg.VersionConst, version, cfg.LockFile, lockVersion)
		return
	}
	added, removed := diffLines(lockLines, surface)
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	var parts []string
	if len(added) > 0 {
		parts = append(parts, "added: "+strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		parts = append(parts, "removed: "+strings.Join(removed, ", "))
	}
	report(vpos, "declarations reachable from %s changed (%s) while %s.%s stayed %q: if Results can change, bump the version; either way regenerate with `go run ./cmd/daelint -update-semantics ./...` (the reference-oracle tests gate Result-preserving refactors)", strings.Join(cfg.Roots, "/"), strings.Join(parts, "; "), pkgBase(cfg.EnginePkg), cfg.VersionConst, version)
}

// ComputeSemanticsSurface renders the current surface as sorted lock
// lines (without the version header).
func ComputeSemanticsSurface(w *World, cfg VersionKeyConfig) ([]string, error) {
	pkg := w.Pkg(cfg.EnginePkg)
	if pkg == nil {
		return nil, fmt.Errorf("package %s not loaded", cfg.EnginePkg)
	}
	qual := func(p *types.Package) string { return p.Path() }
	var lines []string

	// Reachable functions from the roots, same-package closure.
	decls := funcDecls(pkg)
	visited := map[string]bool{}
	var visit func(key string)
	visit = func(key string) {
		if visited[key] {
			return
		}
		visited[key] = true
		fd := decls[key]
		if fd == nil {
			return
		}
		if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			// The body hash is over the printed AST: editing code trips the
			// ratchet, editing comments or formatting does not.
			lines = append(lines, fmt.Sprintf("func %s %s body:%s", key, types.TypeString(obj.Type(), qual), bodyHash(w.Fset, fd)))
		}
		if fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pkg.Info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == pkg.Path {
					visit(funcKey(callee))
				}
			}
			return true
		})
	}
	for _, root := range cfg.Roots {
		key := pkg.Path + "." + root
		if decls[key] == nil {
			return nil, fmt.Errorf("root %s not found in %s", root, cfg.EnginePkg)
		}
		visit(key)
	}

	// Struct field surfaces.
	for _, s := range cfg.Structs {
		sp := w.Pkg(s[0])
		if sp == nil {
			return nil, fmt.Errorf("surface package %s not loaded", s[0])
		}
		_, st := namedStruct(sp, s[1])
		if st == nil {
			return nil, fmt.Errorf("surface struct %s.%s not found", s[0], s[1])
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			lines = append(lines, fmt.Sprintf("field %s.%s.%s %s", s[0], s[1], f.Name(), types.TypeString(f.Type(), qual)))
		}
	}

	// Exported constant values (calibration knobs).
	for _, path := range cfg.ConstPkgs {
		cp := w.Pkg(path)
		if cp == nil {
			return nil, fmt.Errorf("const package %s not loaded", path)
		}
		scope := cp.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !c.Exported() {
				continue
			}
			lines = append(lines, fmt.Sprintf("const %s.%s = %s", path, name, constString(c.Val())))
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// WriteSemanticsLock regenerates the lock file for the current world.
func WriteSemanticsLock(w *World, cfg VersionKeyConfig) (string, error) {
	pkg := w.Pkg(cfg.EnginePkg)
	if pkg == nil {
		return "", fmt.Errorf("lint: package %s not loaded; include it in the patterns", cfg.EnginePkg)
	}
	version, _, ok := versionValue(pkg, cfg.VersionConst)
	if !ok {
		return "", fmt.Errorf("lint: %s.%s not found", cfg.EnginePkg, cfg.VersionConst)
	}
	surface, err := ComputeSemanticsSurface(w, cfg)
	if err != nil {
		return "", fmt.Errorf("lint: %v", err)
	}
	var b strings.Builder
	b.WriteString("# daelint:versionkey semantics surface.\n")
	b.WriteString("# Declarations reachable from the engine's semantic roots, keyed by the\n")
	b.WriteString("# engine version. Regenerate (after auditing whether Results can change\n")
	b.WriteString("# and bumping the version if so) with:\n")
	b.WriteString("#\n")
	b.WriteString("#   go run ./cmd/daelint -update-semantics ./...\n")
	b.WriteString("version " + version + "\n")
	for _, l := range surface {
		b.WriteString(l + "\n")
	}
	path := filepath.Join(pkg.Dir, cfg.LockFile)
	return path, os.WriteFile(path, []byte(b.String()), 0o644)
}

func versionValue(pkg *Package, name string) (string, token.Pos, bool) {
	obj, ok := pkg.Types.Scope().Lookup(name).(*types.Const)
	if !ok || obj.Val().Kind() != constant.String {
		return "", token.NoPos, false
	}
	return constant.StringVal(obj.Val()), obj.Pos(), true
}

// usesObject reports whether pkg's non-test files reference the named
// object of another package.
func usesObject(pkg *Package, objPkg, objName string) bool {
	for i, f := range pkg.Files {
		if i >= pkg.NumNonTest {
			break
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != objName {
				return true
			}
			if obj := pkg.Info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == objPkg {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func parseLock(content string) (version string, lines []string) {
	for _, l := range strings.Split(content, "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		if v, ok := strings.CutPrefix(l, "version "); ok {
			version = v
			continue
		}
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return version, lines
}

// diffLines returns the lines only in want (added) and only in got
// (removed), summarized by their identity prefix (first two tokens) so
// a signature change reads as one entry, not an add/remove pair.
func diffLines(got, want []string) (added, removed []string) {
	gotSet := map[string]bool{}
	for _, l := range got {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range want {
		wantSet[l] = true
	}
	ident := func(l string) string {
		parts := strings.SplitN(l, " ", 3)
		if len(parts) >= 2 {
			return parts[0] + " " + parts[1]
		}
		return l
	}
	gotIdent := map[string]bool{}
	for _, l := range got {
		gotIdent[ident(l)] = true
	}
	wantIdent := map[string]bool{}
	for _, l := range want {
		wantIdent[ident(l)] = true
	}
	seen := map[string]bool{}
	for _, l := range want {
		if !gotSet[l] && !seen[ident(l)] {
			seen[ident(l)] = true
			if gotIdent[ident(l)] {
				added = append(added, ident(l)+" (changed)")
			} else {
				added = append(added, ident(l))
			}
		}
	}
	for _, l := range got {
		if !wantSet[l] && !seen[ident(l)] {
			seen[ident(l)] = true
			removed = append(removed, ident(l))
		}
	}
	return added, removed
}

// constString renders a constant value stably.
func constString(v constant.Value) string {
	return v.ExactString()
}

// bodyHash fingerprints a function body through go/printer, which emits
// the syntax without comments: semantics-bearing edits change the hash,
// comment and whitespace churn does not.
func bodyHash(fset *token.FileSet, fd *ast.FuncDecl) string {
	if fd.Body == nil {
		return "none"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, fd.Body); err != nil {
		return "unprintable"
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}
