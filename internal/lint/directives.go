package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //daelint: directive grammar (documented in DESIGN.md §12):
//
//	//daelint:nondeterministic-ok <reason>   suppress one determinism finding
//	//daelint:hotpath-ok <reason>            suppress one hotpath finding
//	//daelint:lockguard-ok <reason>          suppress one lockguard finding
//	//daelint:ctxflow-ok <reason>            suppress one ctxflow finding
//	//daelint:errclass-ok <reason>           suppress one errclass finding
//	//daelint:hotpath                        (func doc) audit this function's body
//	//daelint:concurrent-callback            (func doc) func-typed args run on goroutines
//	//daelint:ctx-root <reason>              (func doc) context flow starts here
//	//daelint:unkeyed <reason>               (struct field) exempt from cache-key coverage
//	//daelint:unwired <reason>               (struct field) exempt from wire-schema parity
//	//daelint:guardedby <mutex field>        (struct field) accesses require the mutex
//
// A *-ok suppression written on a code line applies to findings on that
// line; written alone on a line, it applies to the next line. Reasons are
// mandatory: an annotation that cannot say why it is safe is a finding
// itself. guardedby's argument names the sibling mutex field (only its
// first word is read, so a trailing comment may follow it).

// suppressionCategories are the line-scoped directives, keyed to the
// analyzer whose findings they silence.
var suppressionCategories = map[string]string{
	"nondeterministic-ok": "determinism",
	"hotpath-ok":          "hotpath",
	"lockguard-ok":        "lockguard",
	"ctxflow-ok":          "ctxflow",
	"errclass-ok":         "errclass",
}

// markerCategories are the declaration-scoped directives.
var markerCategories = map[string]bool{
	"hotpath":             true,
	"concurrent-callback": true,
	"ctx-root":            true,
	"unkeyed":             true,
	"unwired":             true,
	"guardedby":           true,
}

// reasonRequired lists directives whose argument (a justification, or
// for guardedby the guarding mutex's field name) is mandatory.
var reasonRequired = map[string]bool{
	"nondeterministic-ok": true,
	"hotpath-ok":          true,
	"lockguard-ok":        true,
	"ctxflow-ok":          true,
	"errclass-ok":         true,
	"ctx-root":            true,
	"unkeyed":             true,
	"unwired":             true,
	"guardedby":           true,
}

// Directive is one parsed //daelint: comment.
type Directive struct {
	Pos      token.Position
	Name     string // "nondeterministic-ok", "hotpath", ...
	Reason   string
	Line     int    // line the directive governs (suppressions only)
	Used     bool   // set when a suppression absorbs a finding
	OwnLine  bool   // the comment stands alone on its source line
	Analyzer string // analyzer silenced (suppressions only)
}

// Directives indexes one package's //daelint: comments.
type Directives struct {
	// All lists every directive in file/position order.
	All []*Directive
	// byLine maps "file:line" of the governed line to the suppressions
	// active there.
	byLine map[string][]*Directive
	// Malformed collects unknown names and missing reasons; the driver
	// reports them as findings of the pseudo-analyzer "directive".
	Malformed []Diagnostic
}

// Suppressions returns the suppression directives governing the given
// position for the given analyzer.
func (d *Directives) Suppressions(pos token.Position, analyzer string) []*Directive {
	var out []*Directive
	for _, dir := range d.byLine[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] {
		if dir.Analyzer == analyzer {
			out = append(out, dir)
		}
	}
	return out
}

const directivePrefix = "daelint:"

// parseDirectives scans every comment of the package.
func parseDirectives(fset *token.FileSet, pkg *Package) (*Directives, error) {
	d := &Directives{byLine: map[string][]*Directive{}}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				reason = strings.TrimSpace(reason)
				dir := &Directive{Pos: pos, Name: name, Reason: reason}
				if _, isSupp := suppressionCategories[name]; !isSupp && !markerCategories[name] {
					d.Malformed = append(d.Malformed, Diagnostic{
						Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown directive //daelint:%s", name),
					})
					continue
				}
				if reasonRequired[name] && reason == "" {
					d.Malformed = append(d.Malformed, Diagnostic{
						Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("//daelint:%s needs a reason: //daelint:%s <why this is safe>", name, name),
					})
					continue
				}
				if an, isSupp := suppressionCategories[name]; isSupp {
					dir.Analyzer = an
					dir.OwnLine = ownLine(pkg.Src[pos.Filename], pos)
					dir.Line = pos.Line
					if dir.OwnLine {
						dir.Line = pos.Line + 1
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, dir.Line)
					d.byLine[key] = append(d.byLine[key], dir)
				}
				d.All = append(d.All, dir)
			}
		}
	}
	return d, nil
}

// ownLine reports whether the comment at pos is the first non-blank text
// on its source line.
func ownLine(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// funcDirective reports whether fn's doc comment carries the named
// marker directive, returning its reason.
func funcDirective(fn *ast.FuncDecl, name string) (string, bool) {
	return docDirective(fn.Doc, name)
}

// docDirective scans a comment group for a marker directive.
func docDirective(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
		if !ok {
			continue
		}
		n, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
		if n == name {
			return strings.TrimSpace(reason), true
		}
	}
	return "", false
}

// fieldDirective scans a struct field's doc and trailing comment for a
// marker directive.
func fieldDirective(field *ast.Field, name string) (string, bool) {
	if r, ok := docDirective(field.Doc, name); ok {
		return r, true
	}
	return docDirective(field.Comment, name)
}

// fieldDirectives collects every occurrence of the named marker on a
// field (doc and trailing comments), so duplicates can be diagnosed.
func fieldDirectives(field *ast.Field, name string) []string {
	var out []string
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
			if !ok {
				continue
			}
			n, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
			if n == name {
				out = append(out, strings.TrimSpace(reason))
			}
		}
	}
	return out
}
