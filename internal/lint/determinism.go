package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismConfig scopes the determinism analyzer to the packages
// whose code can reach a Result or figure value.
type DeterminismConfig struct {
	// Paths are import-path prefixes in scope.
	Paths []string
}

// DefaultDeterminismPaths are the result-affecting packages: everything
// between a trace and a rendered figure. The serving layer (daemon) and
// offline tooling (benchparse) are deliberately out of scope — wall-clock
// time there is operational, not result-affecting.
var DefaultDeterminismPaths = []string{
	"daesim/cmd/repro",
	"daesim/cmd/decsim",
	"daesim/internal/engine",
	"daesim/internal/machine",
	"daesim/internal/metrics",
	"daesim/internal/sweep",
	"daesim/internal/experiments",
	"daesim/internal/lower",
	"daesim/internal/partition",
	"daesim/internal/isa",
	"daesim/internal/kernel",
	"daesim/internal/workloads",
	// workgen's whole contract is determinism: a spec plus a seed must
	// regenerate the identical trace on every host (the fleet and the
	// cache fingerprint both depend on it).
	"daesim/internal/workgen",
	"daesim/internal/trace",
	"daesim/internal/memsys",
	"daesim/internal/plot",
	// faultinject's whole contract is determinism: a chaos schedule must
	// replay identically from its seed, so the package is held to the
	// same standard as the result-affecting pipeline.
	"daesim/internal/faultinject",
}

// nondetCalls are functions whose results depend on the host, the clock
// or the scheduler — anything reading one inside a result-affecting
// package can make figure values differ across hosts and runs.
var nondetCalls = map[string]string{
	"time.Now":             "wall-clock time",
	"time.Since":           "wall-clock time",
	"time.Until":           "wall-clock time",
	"runtime.GOMAXPROCS":   "host parallelism",
	"runtime.NumCPU":       "host parallelism",
	"runtime.NumGoroutine": "scheduler state",
}

// randPkgs are the packages whose package-level functions draw from an
// auto-seeded global source. Methods on an explicitly constructed
// *rand.Rand and the New*/Source constructors are pure functions of the
// seed — the repo's sanctioned randomness pattern — so only the
// package-level draws are flagged.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// autoSeededRand reports whether fn is a package-level draw from a rand
// package's global source.
func autoSeededRand(fn *types.Func) bool {
	if fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // method on an explicitly seeded source
	}
	return !strings.HasPrefix(fn.Name(), "New")
}

// NewDeterminism builds the determinism analyzer: in result-affecting
// packages it flags map-range iteration, clock/host/scheduler reads, and
// goroutine result aggregation not funneled through the wave-deterministic
// ladder (index- or shard-key-addressed placement). Legitimate uses carry
// //daelint:nondeterministic-ok <reason>.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flags scheduling-, clock- and host-dependent constructs in result-affecting packages",
		Run: func(w *World, report func(pos token.Pos, format string, args ...any)) {
			concurrent := concurrentCallbackIndex(w)
			for _, path := range w.Paths {
				pkg := w.Pkgs[path]
				if !hasPathPrefix(pkg.Path, cfg.Paths) || !w.analyzePkg(pkg) {
					continue
				}
				for i, f := range pkg.Files {
					if !w.analyzeFile(pkg, i) {
						continue
					}
					checkDeterminismFile(pkg, f, concurrent, report)
				}
			}
		},
	}
}

// concurrentCallbackIndex collects the funcKeys of functions annotated
// //daelint:concurrent-callback across the world, so callers in any
// package treat func literals passed to them as goroutine bodies.
func concurrentCallbackIndex(w *World) map[string]bool {
	idx := map[string]bool{}
	for _, path := range w.Paths {
		pkg := w.Pkgs[path]
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, ok := funcDirective(fd, "concurrent-callback"); ok {
					idx[declKey(pkg.Path, fd)] = true
				}
			}
		}
	}
	return idx
}

func checkDeterminismFile(pkg *Package, f *ast.File, concurrent map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(n.X)) {
				report(n.Range, "map iteration order is nondeterministic and can reach a Result or figure value; iterate a sorted key slice, or annotate //daelint:nondeterministic-ok <reason>")
			}
		case *ast.SelectStmt:
			if selectIsRacy(n) {
				report(n.Select, "select arbitration is scheduling-dependent; funnel results through deterministic placement, or annotate //daelint:nondeterministic-ok <reason>")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				key := funcKey(fn)
				if what, ok := nondetCalls[key]; ok {
					report(n.Pos(), "%s reads %s, which is not a function of the inputs; derive the value from the trace/params, or annotate //daelint:nondeterministic-ok <reason>", key, what)
				} else if autoSeededRand(fn) {
					report(n.Pos(), "%s.%s draws from the auto-seeded global source; use rand.New(rand.NewSource(seed)) with a seed threaded through params, or annotate //daelint:nondeterministic-ok <reason>", fn.Pkg().Path(), fn.Name())
				}
				if concurrent[funcKey(fn)] {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							checkConcurrentBody(pkg, lit, stack, report)
						}
					}
				}
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkConcurrentBody(pkg, lit, stack, report)
			}
		}
		return true
	})
}

// selectIsRacy reports whether a select has a scheduling-dependent
// outcome: more than one communication case, or a case racing a default.
func selectIsRacy(sel *ast.SelectStmt) bool {
	cases := 0
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			if cc.Comm == nil {
				hasDefault = true
			} else {
				cases++
			}
		}
	}
	return cases > 1 || (cases >= 1 && hasDefault)
}

// checkConcurrentBody audits a function literal that runs on its own
// goroutine. Aggregation into captured state is deterministic only when
// each goroutine's writes land at a slot derived from its shard: an
// index or key mentioning a literal-local variable or an enclosing loop
// variable. Order-dependent accumulation (append to a captured slice,
// writes to a captured map under a shared key) is flagged.
func checkConcurrentBody(pkg *Package, lit *ast.FuncLit, stack []ast.Node, report func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	shard := shardObjects(pkg, lit, stack)
	captured := func(e ast.Expr) (types.Object, bool) {
		obj := rootObject(info, e)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil, false
		}
		inside := obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
		return obj, !inside
	}
	sharded := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && shard[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			obj, isCaptured := captured(lhs)
			if !isCaptured {
				continue
			}
			// Index/key-addressed placement: deterministic iff the slot
			// is a function of the goroutine's shard.
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if sharded(idx.Index) {
					continue
				}
				if isMapType(info.TypeOf(idx.X)) {
					report(as.Pos(), "goroutine writes shared map through %s with a key not derived from its shard; key by the shard index, or annotate //daelint:nondeterministic-ok <reason>", obj.Name())
				} else {
					report(as.Pos(), "goroutine writes shared %s at an index not derived from its shard, so placement depends on scheduling; index by the shard, or annotate //daelint:nondeterministic-ok <reason>", obj.Name())
				}
				continue
			}
			// Plain captured target: appends accumulate in completion
			// order, which is scheduling-dependent.
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && info.Types[id].IsBuiltin() {
					report(as.Pos(), "goroutine appends to captured %s, making element order scheduling-dependent; place results by shard index (results[i] = v), or annotate //daelint:nondeterministic-ok <reason>", obj.Name())
				}
			}
		}
		return true
	})
}

// shardObjects collects the identifiers that partition work between
// goroutines: the literal's own parameters and locals, plus loop
// variables of the for/range statements enclosing the launch site.
func shardObjects(pkg *Package, lit *ast.FuncLit, stack []ast.Node) map[types.Object]bool {
	info := pkg.Info
	shard := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if id == nil {
			return
		}
		if obj := info.ObjectOf(id); obj != nil {
			shard[obj] = true
		}
	}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				mark(id)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				mark(id)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, l := range init.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						mark(id)
					}
				}
			}
		}
	}
	// Everything declared inside the literal (params and locals) is
	// goroutine-local by construction.
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				shard[obj] = true
			}
		}
		return true
	})
	return shard
}
