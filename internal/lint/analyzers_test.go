package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeterminismFixture(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "det")
	runFixture(t, w, []*Analyzer{NewDeterminism(DeterminismConfig{Paths: []string{"det"}})})
}

func TestHotpathFixture(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "hot")
	runFixture(t, w, []*Analyzer{NewHotpath()})
}

// fixtureSchemaConfig mirrors DefaultSchemaConfig over the fixture tree.
var fixtureSchemaConfig = SchemaConfig{
	ParamsPkg: "schema/machine", ParamsType: "Params", CacheKeyFunc: "CacheKey",
	WirePkg: "schema/wire", WireType: "Params", WireTo: "ToParams", WireFrom: "Machine",
	ResultPkg:   "schema/result",
	ResultTypes: []string{"Result", "CoreStats"},
	CloneFunc:   "Clone",
	OracleFunc:  "resultsEqual",
	OpPkg:       "schema/machine", OpType: "Op",
	FingerprintPkg: "schema/machine", FingerprintFunc: "Fingerprint",
}

func TestSchemaGuardFixture(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "schema/machine", "schema/wire", "schema/result")
	runFixture(t, w, []*Analyzer{NewSchemaGuard(fixtureSchemaConfig)})
}

func TestLockguardFixture(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "lock")
	runFixture(t, w, []*Analyzer{NewLockguard(LockguardConfig{Paths: []string{"lock"}})})
}

func TestCtxflowFixture(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "ctxf")
	runFixture(t, w, []*Analyzer{NewCtxflow(CtxflowConfig{Paths: []string{"ctxf"}})})
}

func TestErrclassFixture(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "errc")
	runFixture(t, w, []*Analyzer{NewErrclass(ErrclassConfig{
		Paths:    []string{"errc"},
		Boundary: [][2]string{{"errc", "Client"}},
	})})
}

// TestDirectiveEdgeCases pins the directive-grammar corners: a duplicate
// //daelint:guardedby, a guardedby naming a mutex that does not exist,
// and a reasonless suppression — which is malformed AND leaves the
// underlying finding unsuppressed.
func TestDirectiveEdgeCases(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "dirs")
	diags := RunAnalyzers(w, []*Analyzer{NewLockguard(LockguardConfig{Paths: []string{"dirs"}})})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wantSubstrs := []string{
		"lockguard: duplicate //daelint:guardedby on field dup",
		"lockguard: //daelint:guardedby missing on field bad: missing names no sibling sync.Mutex/RWMutex field of T",
		"directive: //daelint:lockguard-ok needs a reason",
		"lockguard: read of T.n outside mu.Lock/Unlock span",
	}
	if len(got) != len(wantSubstrs) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(wantSubstrs), strings.Join(got, "\n"))
	}
	for _, want := range wantSubstrs {
		found := false
		for _, g := range got {
			if strings.Contains(g, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding contains %q; got:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

func TestMalformedDirectives(t *testing.T) {
	w := loadFixture(t, filepath.Join("testdata", "src"), "badly")
	mal := w.Pkg("badly").Directives.Malformed
	if len(mal) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %v", len(mal), mal)
	}
	if !strings.Contains(mal[0].Message, "unknown directive //daelint:nondeterministc-ok") {
		t.Errorf("first malformed = %q, want unknown-directive complaint", mal[0].Message)
	}
	if !strings.Contains(mal[1].Message, "//daelint:hotpath-ok needs a reason") {
		t.Errorf("second malformed = %q, want missing-reason complaint", mal[1].Message)
	}
	// Malformed directives surface as findings of the "directive" analyzer.
	diags := RunAnalyzers(w, nil)
	if len(diags) != 2 {
		t.Fatalf("RunAnalyzers returned %d findings, want the 2 malformed directives: %v", len(diags), diags)
	}
}

// fixtureVersionKeyConfig mirrors DefaultVersionKeyConfig over the
// fixture tree rooted at a (possibly temp-copied) directory.
var fixtureVersionKeyConfig = VersionKeyConfig{
	EnginePkg:         "version/engine",
	VersionConst:      "Version",
	VersionPattern:    `^engine-v\d+$`,
	Roots:             []string{"(Sim).Run"},
	Structs:           [][2]string{{"version/engine", "Config"}},
	ConstPkgs:         []string{"version/engine"},
	LockFile:          "semantics.lock",
	RequireVersionUse: []string{"version/store"},
}

func TestVersionKeyLifecycle(t *testing.T) {
	tmp := t.TempDir()
	copyFixtureTree(t, filepath.Join("testdata", "src", "version"), filepath.Join(tmp, "version"))
	cfg := fixtureVersionKeyConfig

	run := func() []Diagnostic {
		w := loadFixture(t, tmp, "version/engine", "version/store")
		return RunAnalyzers(w, []*Analyzer{NewVersionKey(cfg)})
	}
	wantOne := func(stage, substr string) {
		t.Helper()
		diags := run()
		if len(diags) != 1 || !strings.Contains(diags[0].Message, substr) {
			t.Fatalf("%s: got %v, want one finding containing %q", stage, diags, substr)
		}
	}
	wantClean := func(stage string) {
		t.Helper()
		if diags := run(); len(diags) != 0 {
			t.Fatalf("%s: got %v, want no findings", stage, diags)
		}
	}
	edit := func(old, new string) {
		t.Helper()
		path := filepath.Join(tmp, "version", "engine", "engine.go")
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), old) {
			t.Fatalf("edit: %q not found in fixture", old)
		}
		if err := os.WriteFile(path, []byte(strings.Replace(string(src), old, new, 1)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeLock := func() {
		t.Helper()
		w := loadFixture(t, tmp, "version/engine", "version/store")
		if _, err := WriteSemanticsLock(w, cfg); err != nil {
			t.Fatal(err)
		}
	}

	// No lock yet: the analyzer demands one.
	wantOne("missing lock", "semantics lock semantics.lock missing")

	// Generating the lock pins the surface.
	writeLock()
	wantClean("fresh lock")

	// A package that must fold the version into its keys but doesn't.
	cfg.RequireVersionUse = []string{"version/engine"}
	wantOne("version use", "package version/engine never references engine.Version")
	cfg.RequireVersionUse = fixtureVersionKeyConfig.RequireVersionUse

	// A version string off the canonical shape.
	cfg.VersionPattern = `^sim-v\d+$`
	wantOne("version pattern", "does not match")
	cfg.VersionPattern = fixtureVersionKeyConfig.VersionPattern

	// Editing a reachable function's body trips the ratchet even though
	// its signature is unchanged.
	edit("return w + 1", "return w + 2")
	wantOne("body edit", `func version/engine.(Sim).step (changed)`)

	// Regenerating the lock (the reviewable way to accept the change)
	// settles it again.
	writeLock()
	wantClean("regenerated lock")

	// Bumping the version without regenerating the lock is also a finding.
	edit(`Version = "engine-v1"`, `Version = "engine-v2"`)
	wantOne("version bump", `records "engine-v1"`)
}

// TestRepoIsClean is the self-hosting gate: the seven production
// analyzers over the whole module must report nothing, in both the
// plain and the -tests configuration.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	w, err := Load("../..", []string{"./..."}, true)
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{
		NewDeterminism(DeterminismConfig{Paths: DefaultDeterminismPaths}),
		NewSchemaGuard(DefaultSchemaConfig),
		NewHotpath(),
		NewVersionKey(DefaultVersionKeyConfig),
		NewLockguard(LockguardConfig{Paths: DefaultConcurrencyPaths}),
		NewCtxflow(CtxflowConfig{Paths: DefaultConcurrencyPaths}),
		NewErrclass(DefaultErrclassConfig),
	}
	for _, includeTests := range []bool{false, true} {
		w.IncludeTests = includeTests
		for _, d := range RunAnalyzers(w, analyzers) {
			t.Errorf("IncludeTests=%v: %s", includeTests, d)
		}
	}
}
