package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"daesim/internal/isa"
)

// Binary trace format:
//
//	magic "DAET" | u32 version | u16 name length | name bytes |
//	u32 instruction count | per instruction:
//	    u8 class | u8 nAddr | u8 nArgs | varint addr refs | varint arg refs |
//	    uvarint memAddr (memory classes only)
//
// Operand references are delta-encoded against the instruction index so
// that tight loops compress well.

const (
	magic   = "DAET"
	version = 1
)

var errBadMagic = errors.New("trace: bad magic")

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	if err := put32(version); err != nil {
		return err
	}
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(t.Name)))
	if _, err := bw.Write(scratch[:2]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := put32(uint32(len(t.Instrs))); err != nil {
		return err
	}
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if len(in.Addr) > 0xff || len(in.Args) > 0xff {
			return fmt.Errorf("trace: instr %d has too many operands", i)
		}
		hdr := [3]byte{byte(in.Class), byte(len(in.Addr)), byte(len(in.Args))}
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		for _, ref := range append(append([]int32(nil), in.Addr...), in.Args...) {
			// Delta against own index; always positive for valid traces.
			if err := putUvarint(uint64(int64(i) - int64(ref))); err != nil {
				return err
			}
		}
		if in.Class == isa.Load || in.Class == isa.Store {
			if err := putUvarint(in.MemAddr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:]) != magic {
		return nil, errBadMagic
	}
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	if _, err := io.ReadFull(br, hdr[:2]); err != nil {
		return nil, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(hdr[:2]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	// Grow incrementally with a capped initial allocation: the header's
	// count is untrusted, and a 3-byte instruction record means a short
	// input claiming 4G instructions must fail on read, not allocate
	// hundreds of gigabytes up front (FuzzTraceDecode's oversized-count
	// case).
	prealloc := n
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &Trace{Name: string(name), Instrs: make([]Instr, 0, prealloc)}
	for i := 0; i < n; i++ {
		var h [3]byte
		if _, err := io.ReadFull(br, h[:]); err != nil {
			return nil, err
		}
		t.Instrs = append(t.Instrs, Instr{})
		in := &t.Instrs[i]
		in.Class = isa.Class(h[0])
		nAddr, nArgs := int(h[1]), int(h[2])
		readRefs := func(n int) ([]int32, error) {
			if n == 0 {
				return nil, nil
			}
			refs := make([]int32, n)
			for j := range refs {
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				refs[j] = int32(int64(i) - int64(d))
			}
			return refs, nil
		}
		var err error
		if in.Addr, err = readRefs(nAddr); err != nil {
			return nil, err
		}
		if in.Args, err = readRefs(nArgs); err != nil {
			return nil, err
		}
		if in.Class == isa.Load || in.Class == isa.Store {
			if in.MemAddr, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded trace invalid: %w", err)
	}
	return t, nil
}

// Dump writes a human-readable listing of up to max instructions to w
// (max <= 0 dumps everything).
func Dump(w io.Writer, t *Trace, max int) error {
	if max <= 0 || max > len(t.Instrs) {
		max = len(t.Instrs)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s: %d instructions (showing %d)\n", t.Name, len(t.Instrs), max)
	for i := 0; i < max; i++ {
		in := &t.Instrs[i]
		fmt.Fprintf(bw, "%7d  %-6s", i, in.Class)
		if len(in.Addr) > 0 {
			fmt.Fprintf(bw, " addr=%v", in.Addr)
		}
		if len(in.Args) > 0 {
			fmt.Fprintf(bw, " args=%v", in.Args)
		}
		if in.Class == isa.Load || in.Class == isa.Store {
			fmt.Fprintf(bw, " @%#x", in.MemAddr)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
