package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"daesim/internal/isa"
)

// ReuseProfile summarizes the line-grain temporal locality of a trace's
// memory reference stream. Distance is measured in distinct lines touched
// between successive references to the same line (LRU stack distance), so
// a fully associative buffer of capacity C captures exactly the
// references with distance < C.
type ReuseProfile struct {
	// Refs is the number of memory references (loads + stores).
	Refs int
	// Lines is the number of distinct cache lines touched.
	Lines int
	// ColdMisses equals Lines (first touches).
	ColdMisses int
	// Distances holds the stack distance of every reuse, ascending.
	Distances []int
}

// HitRate returns the fraction of references a fully associative LRU
// buffer of the given line capacity would capture.
func (p *ReuseProfile) HitRate(capacity int) float64 {
	if p.Refs == 0 {
		return 0
	}
	idx := sort.SearchInts(p.Distances, capacity)
	return float64(idx) / float64(p.Refs)
}

// MedianDistance returns the median reuse distance, or -1 when the trace
// has no reuse at all.
func (p *ReuseProfile) MedianDistance() int {
	if len(p.Distances) == 0 {
		return -1
	}
	return p.Distances[len(p.Distances)/2]
}

// Reuse computes the line-grain LRU stack-distance profile of t's memory
// reference stream in program order.
func (t *Trace) Reuse() *ReuseProfile {
	p := &ReuseProfile{}
	// LRU stack as a slice of lines, most recent last. Quadratic in the
	// worst case but the stack stays short for the locality these traces
	// exhibit; fine for analysis tooling.
	var stack []uint64
	pos := make(map[uint64]int)
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if in.Class != isa.Load && in.Class != isa.Store {
			continue
		}
		p.Refs++
		line := isa.LineOf(in.MemAddr)
		at, seen := pos[line]
		if !seen {
			p.Lines++
			pos[line] = len(stack)
			stack = append(stack, line)
			continue
		}
		// Distance = number of distinct lines above it in the stack.
		dist := len(stack) - 1 - at
		p.Distances = append(p.Distances, dist)
		// Move to top, shifting the tail down.
		copy(stack[at:], stack[at+1:])
		stack[len(stack)-1] = line
		for j := at; j < len(stack); j++ {
			pos[stack[j]] = j
		}
	}
	p.ColdMisses = p.Lines
	sort.Ints(p.Distances)
	return p
}

// WriteDot writes the dependence graph of up to max instructions as a
// Graphviz digraph: nodes are instructions labelled with class and index,
// solid edges are value dependencies and dashed edges address
// dependencies. Useful for inspecting kernel structure.
func (t *Trace) WriteDot(w io.Writer, max int) error {
	if max <= 0 || max > len(t.Instrs) {
		max = len(t.Instrs)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", t.Name)
	for i := 0; i < max; i++ {
		in := &t.Instrs[i]
		shape := ""
		switch in.Class {
		case isa.Load:
			shape = ", style=filled, fillcolor=lightblue"
		case isa.Store:
			shape = ", style=filled, fillcolor=lightgrey"
		case isa.FPALU:
			shape = ", style=filled, fillcolor=lightyellow"
		}
		fmt.Fprintf(bw, "  n%d [label=\"%d %s\"%s];\n", i, i, in.Class, shape)
		for _, p := range in.Addr {
			if p < int32(max) {
				fmt.Fprintf(bw, "  n%d -> n%d [style=dashed];\n", p, i)
			}
		}
		for _, p := range in.Args {
			if p < int32(max) {
				fmt.Fprintf(bw, "  n%d -> n%d;\n", p, i)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// OccupancyDemand estimates, per unit-latency dataflow level, how many
// instructions must be simultaneously in flight to sustain the trace's
// full parallelism — a resource-free proxy for the window size a machine
// needs. It returns the maximum over a sliding window of depth levels.
func (t *Trace) OccupancyDemand(depth int) int {
	if depth < 1 {
		depth = 1
	}
	prof := t.ILPProfile()
	max, sum := 0, 0
	for i, n := range prof {
		sum += n
		if i >= depth {
			sum -= prof[i-depth]
		}
		if sum > max {
			max = sum
		}
	}
	return max
}
