// Package trace represents machine-independent instruction traces.
//
// A trace is the paper's idealized program: a program-ordered stream of
// instructions whose only constraints are true data dependencies (perfect
// renaming removes false dependencies, and loop-closing branches are
// assumed removed by unrolling). Each instruction names the earlier
// instructions that produce its operands, split into address operands and
// value operands so that the AU/DU partitioner can compute address slices.
//
// Loads and stores additionally carry a synthetic byte address, used only
// by the optional locality-aware memory models (bypass buffer, finite
// prefetch buffer); the paper's fixed-differential model ignores it.
package trace

import (
	"fmt"

	"daesim/internal/isa"
)

// None marks an absent operand reference.
const None int32 = -1

// Instr is one instruction of a trace. Operand references are indices of
// earlier instructions in the same trace; an instruction's "value" is the
// result it produces (loads produce the loaded value; stores produce none).
type Instr struct {
	// Class is the instruction class.
	Class isa.Class
	// Addr lists producers feeding the memory address (Load/Store only).
	Addr []int32
	// Args lists producers feeding value operands: ALU/FP inputs, or the
	// store data operand.
	Args []int32
	// MemAddr is the synthetic byte address touched by a Load/Store.
	MemAddr uint64
}

// Operands calls fn for every operand reference of in (address operands
// first), skipping None entries.
func (in *Instr) Operands(fn func(int32)) {
	for _, a := range in.Addr {
		if a != None {
			fn(a)
		}
	}
	for _, a := range in.Args {
		if a != None {
			fn(a)
		}
	}
}

// Trace is an immutable program-ordered instruction stream.
type Trace struct {
	// Name identifies the workload that produced the trace.
	Name string
	// Instrs is the instruction stream in program order.
	Instrs []Instr
}

// Len returns the number of instructions.
func (t *Trace) Len() int { return len(t.Instrs) }

// Validate checks structural well-formedness: classes are defined, every
// operand reference points strictly backwards, address operands appear
// only on memory instructions, and store data is a single operand.
func (t *Trace) Validate() error {
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if !in.Class.Valid() {
			return fmt.Errorf("trace %s: instr %d: invalid class %d", t.Name, i, in.Class)
		}
		isMem := in.Class == isa.Load || in.Class == isa.Store
		if !isMem && len(in.Addr) != 0 {
			return fmt.Errorf("trace %s: instr %d (%v): address operands on non-memory instruction", t.Name, i, in.Class)
		}
		if in.Class == isa.Load && len(in.Args) != 0 {
			return fmt.Errorf("trace %s: instr %d: load has value operands", t.Name, i)
		}
		if in.Class == isa.Store && len(in.Args) != 1 {
			return fmt.Errorf("trace %s: instr %d: store needs exactly one data operand, has %d", t.Name, i, len(in.Args))
		}
		bad := int32(-2)
		in.Operands(func(p int32) {
			if p < 0 || p >= int32(i) {
				bad = p
			}
		})
		if bad != -2 {
			return fmt.Errorf("trace %s: instr %d: operand %d does not point strictly backwards", t.Name, i, bad)
		}
		var badProducer int32 = -2
		in.Operands(func(p int32) {
			if t.Instrs[p].Class == isa.Store {
				badProducer = p
			}
		})
		if badProducer != -2 {
			return fmt.Errorf("trace %s: instr %d: operand %d is a store (stores produce no value)", t.Name, i, badProducer)
		}
	}
	return nil
}

// Stats summarizes the composition of a trace.
type Stats struct {
	Total    int
	ByClass  [isa.NumClasses]int
	MemRefs  int     // loads + stores
	MemFrac  float64 // MemRefs / Total
	AvgInDeg float64 // mean operand count
}

// Stats computes composition statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Total = len(t.Instrs)
	deg := 0
	for i := range t.Instrs {
		in := &t.Instrs[i]
		s.ByClass[in.Class]++
		in.Operands(func(int32) { deg++ })
	}
	s.MemRefs = s.ByClass[isa.Load] + s.ByClass[isa.Store]
	if s.Total > 0 {
		s.MemFrac = float64(s.MemRefs) / float64(s.Total)
		s.AvgInDeg = float64(deg) / float64(s.Total)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("total=%d int=%d fp=%d load=%d store=%d mem%%=%.1f deg=%.2f",
		s.Total, s.ByClass[isa.IntALU], s.ByClass[isa.FPALU],
		s.ByClass[isa.Load], s.ByClass[isa.Store], 100*s.MemFrac, s.AvgInDeg)
}

// CriticalPath returns the dataflow-limit execution time of the trace in
// cycles under the given timing: the longest dependence chain where int
// ops cost 1, FP ops cost FPLat, and a load costs MD+2 from address-ready
// to value-ready (send cycle + differential + buffer request), matching
// the machine models with infinite resources. Stores cost one cycle and
// terminate chains.
func (t *Trace) CriticalPath(tm isa.Timing) int64 {
	if len(t.Instrs) == 0 {
		return 0
	}
	done := make([]int64, len(t.Instrs))
	var max int64
	for i := range t.Instrs {
		in := &t.Instrs[i]
		var ready int64
		in.Operands(func(p int32) {
			if done[p] > ready {
				ready = done[p]
			}
		})
		var lat int64
		switch in.Class {
		case isa.IntALU, isa.Store:
			lat = 1
		case isa.FPALU:
			lat = int64(tm.FPLat)
		case isa.Load:
			lat = int64(tm.MD) + 2
		}
		done[i] = ready + lat
		if done[i] > max {
			max = done[i]
		}
	}
	return max
}

// ILPProfile returns, for each dataflow level (unit-latency depth), the
// number of instructions at that level. It is a resource-free measure of
// the parallelism available in the trace.
func (t *Trace) ILPProfile() []int {
	depth := make([]int32, len(t.Instrs))
	var maxd int32
	for i := range t.Instrs {
		in := &t.Instrs[i]
		var d int32
		in.Operands(func(p int32) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		})
		depth[i] = d
		if d > maxd {
			maxd = d
		}
	}
	prof := make([]int, maxd+1)
	for _, d := range depth {
		prof[d]++
	}
	return prof
}

// MeanILP returns the mean instructions per dataflow level: trace length
// divided by the number of levels.
func (t *Trace) MeanILP() float64 {
	if len(t.Instrs) == 0 {
		return 0
	}
	return float64(len(t.Instrs)) / float64(len(t.ILPProfile()))
}

// Slice returns a new trace containing the first n instructions. It
// panics if the prefix is not closed under dependencies (it always is,
// because operands point backwards).
func (t *Trace) Slice(n int) *Trace {
	if n > len(t.Instrs) {
		n = len(t.Instrs)
	}
	return &Trace{Name: t.Name, Instrs: t.Instrs[:n]}
}
