package trace

import (
	"strings"
	"testing"

	"daesim/internal/isa"
)

// refTrace builds a trace touching the given line numbers in order.
func refTrace(lines ...uint64) *Trace {
	tr := &Trace{Name: "refs", Instrs: []Instr{{Class: isa.IntALU}}}
	for _, l := range lines {
		tr.Instrs = append(tr.Instrs, Instr{
			Class: isa.Load, Addr: []int32{0},
			MemAddr: l * isa.CacheLineBytes,
		})
	}
	return tr
}

func TestReuseNoReuse(t *testing.T) {
	p := refTrace(1, 2, 3, 4).Reuse()
	if p.Refs != 4 || p.Lines != 4 || len(p.Distances) != 0 {
		t.Fatalf("streaming trace profile wrong: %+v", p)
	}
	if p.MedianDistance() != -1 {
		t.Fatal("no reuse should report -1 median")
	}
	if p.HitRate(1024) != 0 {
		t.Fatal("no reuse means zero hit rate at any capacity")
	}
}

func TestReuseStackDistances(t *testing.T) {
	// 1 2 1: reuse of 1 with one distinct line (2) in between => dist 1.
	// then 2: dist 1 (line 1 in between).
	p := refTrace(1, 2, 1, 2).Reuse()
	if p.Refs != 4 || p.Lines != 2 {
		t.Fatalf("profile wrong: %+v", p)
	}
	if len(p.Distances) != 2 || p.Distances[0] != 1 || p.Distances[1] != 1 {
		t.Fatalf("distances wrong: %v", p.Distances)
	}
	// Capacity 1 misses both (distance 1 >= 1); capacity 2 catches both.
	if p.HitRate(1) != 0 {
		t.Fatalf("capacity-1 hit rate = %v", p.HitRate(1))
	}
	if p.HitRate(2) != 0.5 {
		t.Fatalf("capacity-2 hit rate = %v, want 0.5", p.HitRate(2))
	}
}

func TestReuseImmediate(t *testing.T) {
	// Back-to-back same line: distance 0, captured by capacity 1.
	p := refTrace(7, 7, 7).Reuse()
	if len(p.Distances) != 2 || p.Distances[0] != 0 {
		t.Fatalf("distances wrong: %v", p.Distances)
	}
	if p.HitRate(1) != 2.0/3.0 {
		t.Fatalf("hit rate = %v", p.HitRate(1))
	}
	if p.MedianDistance() != 0 {
		t.Fatal("median should be 0")
	}
}

func TestReuseMatchesSameLineSubwordAccesses(t *testing.T) {
	// Two addresses within one line count as reuse.
	tr := &Trace{Instrs: []Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x100},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x108},
	}}
	p := tr.Reuse()
	if p.Lines != 1 || len(p.Distances) != 1 || p.Distances[0] != 0 {
		t.Fatalf("subword reuse wrong: %+v", p)
	}
}

func TestWriteDot(t *testing.T) {
	tr := &Trace{Name: "dot", Instrs: []Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x40},
		{Class: isa.FPALU, Args: []int32{1}},
		{Class: isa.Store, Addr: []int32{0}, Args: []int32{2}, MemAddr: 0x80},
	}}
	var b strings.Builder
	if err := tr.WriteDot(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "n0 -> n1 [style=dashed]", "n1 -> n2;", "n2 -> n3;", "lightblue"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Truncated export must not reference nodes beyond the cut.
	b.Reset()
	if err := tr.WriteDot(&b, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "n3") {
		t.Error("truncated dot references dropped nodes")
	}
}

func TestOccupancyDemand(t *testing.T) {
	// Two independent chains of length 3: profile [2 2 2].
	tr := &Trace{Instrs: []Instr{
		{Class: isa.IntALU},
		{Class: isa.IntALU},
		{Class: isa.IntALU, Args: []int32{0}},
		{Class: isa.IntALU, Args: []int32{1}},
		{Class: isa.IntALU, Args: []int32{2}},
		{Class: isa.IntALU, Args: []int32{3}},
	}}
	if d := tr.OccupancyDemand(1); d != 2 {
		t.Fatalf("depth-1 demand = %d, want 2", d)
	}
	if d := tr.OccupancyDemand(2); d != 4 {
		t.Fatalf("depth-2 demand = %d, want 4", d)
	}
	if d := tr.OccupancyDemand(0); d != 2 {
		t.Fatalf("depth clamps to 1; got %d", d)
	}
}
