package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"daesim/internal/isa"
)

// Textual address-trace interchange format — the ingestion point for
// externally recorded traces (cmd/tracedump -ingest). One instruction
// per line, program order:
//
//	# comment                     (blank lines and # lines are ignored)
//	# trace NAME                  (optional; names the trace)
//	int  [^N ...]
//	fp   [^N ...]
//	load [^N ...] @ADDR
//	store ^D [^N ...] @ADDR
//
// ^N is an operand reference N instructions back (N >= 1), matching the
// binary format's delta encoding; ADDR is the memory address (0x-prefix
// for hex). Loads treat every reference as an address producer; stores
// treat the first (^D) as the stored data and the rest as address
// producers; int/fp references are plain data operands. The parsed
// trace passes the same Validate as every other source, so a recorded
// program that breaks the operand invariants is rejected with the
// offending line number, not simulated wrongly.

// ReadText parses the textual trace format. name is used when the input
// carries no "# trace NAME" directive.
func ReadText(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# trace "); ok && len(t.Instrs) == 0 {
				t.Name = strings.TrimSpace(rest)
			}
			continue
		}
		in, err := parseTextInstr(line, len(t.Instrs))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Instrs = append(t.Instrs, in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: ingested trace invalid: %w", err)
	}
	return t, nil
}

// parseTextInstr parses one instruction line at trace index i.
func parseTextInstr(line string, i int) (Instr, error) {
	fields := strings.Fields(line)
	var in Instr
	switch fields[0] {
	case "int":
		in.Class = isa.IntALU
	case "fp":
		in.Class = isa.FPALU
	case "load":
		in.Class = isa.Load
	case "store":
		in.Class = isa.Store
	default:
		return Instr{}, fmt.Errorf("unknown class %q (want int, fp, load or store)", fields[0])
	}
	mem := in.Class == isa.Load || in.Class == isa.Store
	sawAddr := false
	var refs []int32
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "^"):
			if sawAddr {
				return Instr{}, fmt.Errorf("operand %q after the @address", f)
			}
			d, err := strconv.ParseUint(f[1:], 10, 32)
			if err != nil || d == 0 || uint64(d) > uint64(i) {
				return Instr{}, fmt.Errorf("bad operand %q (want ^N, 1 <= N <= instruction index %d)", f, i)
			}
			if len(refs) >= 0xff {
				return Instr{}, fmt.Errorf("too many operands (max %d)", 0xff)
			}
			refs = append(refs, int32(i)-int32(d))
		case strings.HasPrefix(f, "@"):
			if !mem {
				return Instr{}, fmt.Errorf("@address on a non-memory %s", in.Class)
			}
			if sawAddr {
				return Instr{}, fmt.Errorf("duplicate @address %q", f)
			}
			a, err := strconv.ParseUint(strings.TrimPrefix(f[1:], "0x"), addrBase(f[1:]), 64)
			if err != nil {
				return Instr{}, fmt.Errorf("bad address %q: %v", f, err)
			}
			in.MemAddr, sawAddr = a, true
		default:
			return Instr{}, fmt.Errorf("bad token %q (want ^N or @ADDR)", f)
		}
	}
	if mem && !sawAddr {
		return Instr{}, fmt.Errorf("%s needs an @address", in.Class)
	}
	switch in.Class {
	case isa.Load:
		in.Addr = refs
	case isa.Store:
		if len(refs) == 0 {
			return Instr{}, fmt.Errorf("store needs a ^data operand")
		}
		in.Args, in.Addr = refs[:1], refs[1:]
		if len(in.Addr) == 0 {
			in.Addr = nil
		}
	default:
		in.Args = refs
	}
	return in, nil
}

func addrBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// WriteText renders t in the format ReadText parses, closing the
// round trip (used by tracedump and its ingestion tests).
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s\n", t.Name)
	for i := range t.Instrs {
		in := &t.Instrs[i]
		switch in.Class {
		case isa.IntALU:
			bw.WriteString("int")
		case isa.FPALU:
			bw.WriteString("fp")
		case isa.Load:
			bw.WriteString("load")
		case isa.Store:
			bw.WriteString("store")
		default:
			return fmt.Errorf("trace: instr %d has unknown class %v", i, in.Class)
		}
		// Stores lead with the data operand, everything else with Args;
		// loads carry only address producers.
		for _, ref := range append(append([]int32(nil), in.Args...), in.Addr...) {
			fmt.Fprintf(bw, " ^%d", int32(i)-ref)
		}
		if in.Class == isa.Load || in.Class == isa.Store {
			fmt.Fprintf(bw, " @%#x", in.MemAddr)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
