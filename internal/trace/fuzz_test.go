package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzTraceDecode hardens both trace decoders — the binary format's
// Read and the ingestion format's ReadText — against untrusted bytes:
// malformed, truncated and oversized input must come back as an error,
// never a panic or a multi-gigabyte allocation (Read's instruction
// count is attacker-controlled; see the capped prealloc in encode.go).
// Anything either decoder accepts must be a valid trace that survives
// an encode/decode round trip bit-identically. Seed corpus under
// testdata/fuzz/FuzzTraceDecode; CI live-fuzzes it on every PR next to
// the batch-body fuzzers.
func FuzzTraceDecode(f *testing.F) {
	// A well-formed binary trace seeds the structured path.
	var good bytes.Buffer
	tr := randomTrace(rand.New(rand.NewSource(1)), 60)
	if err := Write(&good, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2]) // truncated mid-stream
	// Header claiming 4G instructions over 3 trailing bytes.
	f.Add([]byte("DAET\x01\x00\x00\x00\x00\x00\xff\xff\xff\xff\x00\x00\x00"))
	var text bytes.Buffer
	if err := WriteText(&text, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(text.Bytes())
	f.Add([]byte("# trace x\nint\nload ^1 @0xfff\nstore ^1 ^2 @16\nfp ^9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if tr, err := Read(bytes.NewReader(data)); err == nil {
			roundTrip(t, tr)
		}
		if tr, err := ReadText(bytes.NewReader(data), "fuzz"); err == nil {
			roundTrip(t, tr)
		}
	})
}

// roundTrip asserts an accepted trace is valid and encodes/decodes to
// itself.
func roundTrip(t *testing.T, tr *Trace) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("decoder accepted an invalid trace: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("re-encoding an accepted trace: %v", err)
	}
	again, err := Read(&buf)
	if err != nil {
		t.Fatalf("re-decoding an accepted trace: %v", err)
	}
	var a, b bytes.Buffer
	if err := Write(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("binary round trip is not bit-stable")
	}
}
