package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"daesim/internal/isa"
)

// chainTrace builds: int; load(addr=int); fp(load); store(fp, addr=int).
func chainTrace() *Trace {
	return &Trace{Name: "chain", Instrs: []Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x100},
		{Class: isa.FPALU, Args: []int32{1}},
		{Class: isa.Store, Addr: []int32{0}, Args: []int32{2}, MemAddr: 0x200},
	}}
}

func TestValidateAcceptsChain(t *testing.T) {
	if err := chainTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
		want string
	}{
		{"bad class", &Trace{Instrs: []Instr{{Class: isa.Class(99)}}}, "invalid class"},
		{"forward ref", &Trace{Instrs: []Instr{{Class: isa.IntALU, Args: []int32{0}}}}, "strictly backwards"},
		{"future ref", &Trace{Instrs: []Instr{{Class: isa.IntALU}, {Class: isa.IntALU, Args: []int32{5}}}}, "strictly backwards"},
		{"addr on alu", &Trace{Instrs: []Instr{{Class: isa.IntALU}, {Class: isa.FPALU, Addr: []int32{0}}}}, "non-memory"},
		{"load with args", &Trace{Instrs: []Instr{{Class: isa.IntALU}, {Class: isa.Load, Addr: []int32{0}, Args: []int32{0}}}}, "value operands"},
		{"store no data", &Trace{Instrs: []Instr{{Class: isa.IntALU}, {Class: isa.Store, Addr: []int32{0}}}}, "exactly one data"},
		{"store as producer", &Trace{Instrs: []Instr{
			{Class: isa.IntALU},
			{Class: isa.Store, Addr: []int32{0}, Args: []int32{0}},
			{Class: isa.IntALU, Args: []int32{1}},
		}}, "stores produce no value"},
	}
	for _, tc := range cases {
		err := tc.tr.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestStats(t *testing.T) {
	s := chainTrace().Stats()
	if s.Total != 4 || s.ByClass[isa.IntALU] != 1 || s.ByClass[isa.FPALU] != 1 ||
		s.ByClass[isa.Load] != 1 || s.ByClass[isa.Store] != 1 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.MemRefs != 2 || s.MemFrac != 0.5 {
		t.Fatalf("mem stats wrong: %+v", s)
	}
	// operands: load 1, fp 1, store 2 => 4/4 = 1.0
	if s.AvgInDeg != 1.0 {
		t.Fatalf("AvgInDeg = %v, want 1.0", s.AvgInDeg)
	}
	if !strings.Contains(s.String(), "total=4") {
		t.Errorf("Stats.String missing total: %s", s)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := chainTrace()
	tm := isa.Timing{MD: 10, FPLat: 3, CopyLat: 1}
	// int(1) -> load(10+2) -> fp(3) -> store(1) = 17
	if got := tr.CriticalPath(tm); got != 17 {
		t.Fatalf("critical path = %d, want 17", got)
	}
	tm.MD = 0
	// 1 + 2 + 3 + 1 = 7
	if got := tr.CriticalPath(tm); got != 7 {
		t.Fatalf("critical path md=0 = %d, want 7", got)
	}
	empty := &Trace{}
	if empty.CriticalPath(tm) != 0 {
		t.Error("empty trace should have zero critical path")
	}
}

func TestCriticalPathMonotoneInMD(t *testing.T) {
	tr := chainTrace()
	prev := int64(-1)
	for md := 0; md <= 60; md += 10 {
		cp := tr.CriticalPath(isa.Timing{MD: md, FPLat: 3, CopyLat: 1})
		if cp < prev {
			t.Fatalf("critical path decreased at md=%d: %d < %d", md, cp, prev)
		}
		prev = cp
	}
}

func TestILPProfile(t *testing.T) {
	// Two independent chains of length 2 => levels: 2 at depth 0, 2 at depth 1.
	tr := &Trace{Instrs: []Instr{
		{Class: isa.IntALU},
		{Class: isa.IntALU},
		{Class: isa.IntALU, Args: []int32{0}},
		{Class: isa.IntALU, Args: []int32{1}},
	}}
	prof := tr.ILPProfile()
	if !reflect.DeepEqual(prof, []int{2, 2}) {
		t.Fatalf("profile = %v, want [2 2]", prof)
	}
	if got := tr.MeanILP(); got != 2.0 {
		t.Fatalf("MeanILP = %v, want 2", got)
	}
}

func TestSlice(t *testing.T) {
	tr := chainTrace()
	s := tr.Slice(2)
	if s.Len() != 2 || s.Name != tr.Name {
		t.Fatalf("slice wrong: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("prefix invalid: %v", err)
	}
	if tr.Slice(100).Len() != 4 {
		t.Error("over-long slice should clamp")
	}
}

// randomTrace generates a structurally valid random trace for property tests.
func randomTrace(rng *rand.Rand, n int) *Trace {
	tr := &Trace{Name: "random"}
	// Track indices of value-producing instructions for operand selection.
	var producers []int32
	for i := 0; i < n; i++ {
		pick := func() int32 {
			return producers[rng.Intn(len(producers))]
		}
		var in Instr
		switch {
		case len(producers) == 0:
			in = Instr{Class: isa.IntALU}
		default:
			switch rng.Intn(5) {
			case 0:
				in = Instr{Class: isa.IntALU}
				for k := rng.Intn(3); k > 0; k-- {
					in.Args = append(in.Args, pick())
				}
			case 1:
				in = Instr{Class: isa.FPALU, Args: []int32{pick()}}
				if rng.Intn(2) == 0 {
					in.Args = append(in.Args, pick())
				}
			case 2:
				in = Instr{Class: isa.Load, Addr: []int32{pick()}, MemAddr: uint64(rng.Intn(1 << 20))}
			case 3:
				in = Instr{Class: isa.Store, Addr: []int32{pick()}, Args: []int32{pick()}, MemAddr: uint64(rng.Intn(1 << 20))}
			default:
				in = Instr{Class: isa.IntALU, Args: []int32{pick()}}
			}
		}
		if in.Class != isa.Store {
			producers = append(producers, int32(i))
		}
		tr.Instrs = append(tr.Instrs, in)
	}
	return tr
}

func TestRandomTracesValid(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, int(size)+1)
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, int(size)+1)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if got.Name != tr.Name || got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Instrs {
			a, b := &tr.Instrs[i], &got.Instrs[i]
			if a.Class != b.Class || a.MemAddr != b.MemAddr {
				return false
			}
			if !refsEqual(a.Addr, b.Addr) || !refsEqual(a.Args, b.Args) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func refsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, chainTrace()); err != nil {
		t.Fatal(err)
	}
	// Truncate and ensure error, not panic.
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Dump(&buf, chainTrace(), 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "showing 2") || !strings.Contains(out, "load") {
		t.Fatalf("dump output unexpected:\n%s", out)
	}
	buf.Reset()
	if err := Dump(&buf, chainTrace(), 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "store") {
		t.Fatal("full dump should include the store")
	}
}
