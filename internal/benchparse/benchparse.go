// Package benchparse parses `go test -bench` text output into a
// structured document for archiving (see cmd/benchjson).
package benchparse

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the Benchmark prefix and the
	// -GOMAXPROCS suffix stripped (BenchmarkEngineDM-8 -> EngineDM).
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost of one iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values keyed by unit
	// (e.g. "Mops/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the parsed benchmark run.
type Doc struct {
	// Goos/Goarch/Pkg/CPU echo the run header when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks holds one entry per benchmark line, in input order.
	Benchmarks []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` output and returns the structured
// document. Unrecognized lines (PASS, ok, test logs) are skipped.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}
