package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: daesim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineDM               	     541	   4455410 ns/op	        18.58 Mops/s	    1616 B/op	       7 allocs/op
BenchmarkEngineSWSM-8           	     531	   4387675 ns/op	    1432 B/op	       6 allocs/op
BenchmarkEquivalentWindowSearch 	      24	 101529290 ns/op
PASS
ok  	daesim	14.060s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "daesim" {
		t.Fatalf("header wrong: %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu wrong: %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	dm := doc.Benchmarks[0]
	if dm.Name != "EngineDM" || dm.Iterations != 541 || dm.NsPerOp != 4455410 {
		t.Fatalf("EngineDM wrong: %+v", dm)
	}
	if dm.Metrics["Mops/s"] != 18.58 {
		t.Fatalf("custom metric wrong: %+v", dm.Metrics)
	}
	if dm.AllocsPerOp == nil || *dm.AllocsPerOp != 7 || dm.BytesPerOp == nil || *dm.BytesPerOp != 1616 {
		t.Fatalf("benchmem fields wrong: %+v", dm)
	}
	sw := doc.Benchmarks[1]
	if sw.Name != "EngineSWSM" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", sw.Name)
	}
	search := doc.Benchmarks[2]
	if search.Name != "EquivalentWindowSearch" || search.AllocsPerOp != nil || len(search.Metrics) != 0 {
		t.Fatalf("plain line wrong: %+v", search)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	doc, err := Parse(strings.NewReader("hello\nBenchmarkBroken 12 abc ns/op\nBenchmarkOdd 5 1 ns/op trailing\n"))
	if err != nil {
		t.Fatal(err)
	}
	// BenchmarkBroken parses with no metrics (abc unparseable);
	// BenchmarkOdd has an odd field count and is skipped.
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "Broken" || doc.Benchmarks[0].NsPerOp != 0 {
		t.Fatalf("unexpected: %+v", doc.Benchmarks)
	}
}
