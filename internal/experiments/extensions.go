package experiments

// Extension studies beyond the paper's evaluation, implementing its
// stated future work (§7): the effect of code expansion on the DM and
// SWSM (C4) and the comparison of code partitions on the DM (P1); plus
// two model-sensitivity studies: in-order retirement (A6) and a
// two-level cache hierarchy in place of the fixed differential (A7).

import (
	"fmt"
	"io"

	"daesim/internal/engine"
	"daesim/internal/isa"
	"daesim/internal/machine"
	"daesim/internal/memsys"
	"daesim/internal/metrics"
	"daesim/internal/partition"
	"daesim/internal/plot"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// ExpansionRow reports code expansion for one workload.
type ExpansionRow struct {
	Name string
	// TraceLen is the architecture-neutral instruction count.
	TraceLen int
	// DMOps and SWSMOps are machine-operation counts after lowering.
	DMOps, SWSMOps int
	// Copies counts DM inter-unit copies (both directions).
	Copies int
	// DMCycles and SWCycles are at the standard operating point
	// (window 64, MD=60), to relate expansion to performance.
	DMCycles, SWCycles int64
}

// ExpansionResult is the code-expansion study (C4).
type ExpansionResult struct {
	Rows []ExpansionRow
}

// CodeExpansion measures how much each lowering expands the instruction
// stream, the paper's first future-work question.
func (c *Context) CodeExpansion() (*ExpansionResult, error) {
	res := &ExpansionResult{}
	for _, spec := range workloads.Catalog() {
		r, err := c.Runner(spec.Name)
		if err != nil {
			return nil, err
		}
		dm, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: ablationWindow, MD: ablationMD}})
		if err != nil {
			return nil, err
		}
		sw, err := r.Run(sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: ablationWindow, MD: ablationMD}})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExpansionRow{
			Name:     spec.Name,
			TraceLen: r.Suite.Trace.Len(),
			DMOps:    r.Suite.DM.Program.Len(),
			SWSMOps:  r.Suite.SWSM.Len(),
			Copies:   r.Suite.DM.CopiesAUDU + r.Suite.DM.CopiesDUAU,
			DMCycles: dm.Cycles,
			SWCycles: sw.Cycles,
		})
	}
	return res, nil
}

// Render writes the code-expansion study as a table.
func (e *ExpansionResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "trace", "DM ops", "DM exp", "SWSM ops", "SWSM exp", "copies", "DM cyc", "SWSM cyc"}}
	for _, r := range e.Rows {
		rows = append(rows, []string{
			r.Name, fmt.Sprintf("%d", r.TraceLen),
			fmt.Sprintf("%d", r.DMOps), fmt.Sprintf("%.2f", float64(r.DMOps)/float64(r.TraceLen)),
			fmt.Sprintf("%d", r.SWSMOps), fmt.Sprintf("%.2f", float64(r.SWSMOps)/float64(r.TraceLen)),
			fmt.Sprintf("%d", r.Copies),
			fmt.Sprintf("%d", r.DMCycles), fmt.Sprintf("%d", r.SWCycles),
		})
	}
	tbl := plot.Table{Title: "C4: code expansion (window 64, MD=60)", Rows: rows}
	return tbl.Render(w)
}

// PolicyRow reports one (workload, policy) pair.
type PolicyRow struct {
	Name     string
	Policy   partition.Policy
	AUOps    int
	DUOps    int
	Copies   int
	Cycles0  int64 // MD=0, window 64
	Cycles60 int64 // MD=60, window 64
}

// PolicyResult is the partition-policy study (P1).
type PolicyResult struct {
	Rows []PolicyRow
}

// PolicyStudy compares the classic all-integer-AU partition against the
// slice-only and balanced partitions, the paper's second future-work
// question (static vs alternative partitions of the code).
func (c *Context) PolicyStudy() (*PolicyResult, error) {
	res := &PolicyResult{}
	sim := engine.NewSim()
	for _, spec := range workloads.Catalog() {
		tr, err := workloads.Build(spec.Name, c.Scale)
		if err != nil {
			return nil, err
		}
		for _, pol := range partition.Policies() {
			suite, err := machine.NewSuite(tr, pol)
			if err != nil {
				return nil, err
			}
			// A detached runner per (workload, policy) suite: the suite
			// fingerprint covers the partition, so these points persist
			// in the shared store like the classic-policy sweeps.
			r := sweep.NewRunner(suite)
			r.Store = c.Cache
			r0, err := r.RunWith(sim, sweep.Point{Kind: machine.DM, P: machine.Params{Window: ablationWindow, MD: MDZero}})
			if err != nil {
				return nil, err
			}
			r60, err := r.RunWith(sim, sweep.Point{Kind: machine.DM, P: machine.Params{Window: ablationWindow, MD: ablationMD}})
			if err != nil {
				return nil, err
			}
			c.addStats(r.Stats())
			res.Rows = append(res.Rows, PolicyRow{
				Name: spec.Name, Policy: pol,
				AUOps: suite.DM.Assignment.OpsAU, DUOps: suite.DM.Assignment.OpsDU,
				Copies:  suite.DM.CopiesAUDU + suite.DM.CopiesDUAU,
				Cycles0: r0.Cycles, Cycles60: r60.Cycles,
			})
		}
	}
	return res, nil
}

// Render writes the policy study as a table.
func (p *PolicyResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "policy", "AU ops", "DU ops", "copies", "cycles md=0", "cycles md=60"}}
	for _, r := range p.Rows {
		rows = append(rows, []string{
			r.Name, r.Policy.String(),
			fmt.Sprintf("%d", r.AUOps), fmt.Sprintf("%d", r.DUOps), fmt.Sprintf("%d", r.Copies),
			fmt.Sprintf("%d", r.Cycles0), fmt.Sprintf("%d", r.Cycles60),
		})
	}
	tbl := plot.Table{Title: "P1: partition policies on the DM (window 64)", Rows: rows}
	return tbl.Render(w)
}

// RetireRow compares slot-reclamation policies for one configuration.
type RetireRow struct {
	Name              string
	Kind              machine.Kind
	Window            int
	Complete, InOrder int64
}

// RetireResult is the retirement-policy study (A6). The paper does not
// specify its simulator's window-slot accounting; this study bounds how
// much that choice matters. The SWSM's production default is in-order
// (machine.RetireAuto resolves it so; this is what restores the paper's
// C2 large-window ordering — see EXPERIMENTS.md), so the study forces
// both policies explicitly on both machines.
type RetireResult struct {
	MD   int
	Rows []RetireRow
}

// RetireStudy compares completion-time against in-order slot reclamation
// on both machines.
func (c *Context) RetireStudy() (*RetireResult, error) {
	res := &RetireResult{MD: ablationMD}
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
			for _, w := range []int{64, 256, 1000} {
				def, err := r.Run(sweep.Point{Kind: kind, P: machine.Params{Window: w, MD: ablationMD, Retire: machine.RetireAtComplete}})
				if err != nil {
					return nil, err
				}
				rob, err := r.Run(sweep.Point{Kind: kind, P: machine.Params{Window: w, MD: ablationMD, Retire: machine.RetireInOrder}})
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, RetireRow{
					Name: name, Kind: kind, Window: w,
					Complete: def.Cycles, InOrder: rob.Cycles,
				})
			}
		}
	}
	return res, nil
}

// Render writes the retirement study as a table.
func (r *RetireResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "machine", "window", "free-at-complete", "in-order retire", "penalty"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, row.Kind.String(), fmt.Sprintf("%d", row.Window),
			fmt.Sprintf("%d", row.Complete), fmt.Sprintf("%d", row.InOrder),
			fmt.Sprintf("%.2fx", float64(row.InOrder)/float64(row.Complete)),
		})
	}
	tbl := plot.Table{Title: fmt.Sprintf("A6: window-slot reclamation policy, MD=%d", r.MD), Rows: rows}
	return tbl.Render(w)
}

// CacheRow reports one workload under the cache hierarchy.
type CacheRow struct {
	Name     string
	Kind     machine.Kind
	Fixed    int64 // fixed-differential cycles
	Cached   int64 // two-level hierarchy cycles
	MissRate float64
}

// CacheResult is the cache-hierarchy study (A7): replacing the paper's
// fixed differential with a Pentium-Pro-flavoured two-level hierarchy
// whose full miss costs MD.
type CacheResult struct {
	Rows []CacheRow
}

// CacheStudy runs the figure workloads against the default hierarchy.
func (c *Context) CacheStudy() (*CacheResult, error) {
	res := &CacheResult{}
	sim := engine.NewSim()
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
			fixed, err := r.RunWith(sim, sweep.Point{Kind: kind, P: machine.Params{Window: ablationWindow, MD: ablationMD}})
			if err != nil {
				return nil, err
			}
			h, err := memsys.DefaultHierarchy(int64(ablationMD))
			if err != nil {
				return nil, err
			}
			// Through the runner so the run is counted (it bypasses both
			// cache layers: stateful models are uncacheable).
			cached, err := r.RunWith(sim, sweep.Point{Kind: kind, P: machine.Params{Window: ablationWindow, MD: ablationMD, Mem: h}})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, CacheRow{
				Name: name, Kind: kind,
				Fixed: fixed.Cycles, Cached: cached.Cycles, MissRate: h.MissRate(),
			})
		}
	}
	return res, nil
}

// Render writes the cache study as a table.
func (r *CacheResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "machine", "fixed-MD cycles", "cached cycles", "miss rate"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, row.Kind.String(),
			fmt.Sprintf("%d", row.Fixed), fmt.Sprintf("%d", row.Cached),
			fmt.Sprintf("%.0f%%", 100*row.MissRate),
		})
	}
	tbl := plot.Table{Title: "A7: two-level cache hierarchy vs fixed differential (window 64, MD=60)", Rows: rows}
	return tbl.Render(w)
}

// ComplexityRow combines an equivalent-window measurement with the
// Palacharla window-logic delay model.
type ComplexityRow struct {
	Name     string
	DMWindow int
	EqWindow int
	Ratio    float64
	// ClockPenalty is how much slower the SWSM must clock at its
	// equivalent window, per metrics.DefaultDelayModel.
	ClockPenalty float64
}

// ComplexityResult is the window-logic complexity study (P2): the paper's
// closing argument quantified — the SWSM needs a 2-4x window to match DM
// throughput, and that window costs clock rate quadratically.
type ComplexityResult struct {
	MD   int
	Rows []ComplexityRow
}

// ComplexityStudy evaluates clock-adjusted equivalent windows at MD=60.
func (c *Context) ComplexityStudy() (*ComplexityResult, error) {
	res := &ComplexityResult{MD: ablationMD}
	model := metrics.DefaultDelayModel
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		search := metrics.NewSearch(r)
		for _, w := range []int{32, 64, 100} {
			dm, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: ablationMD}})
			if err != nil {
				return nil, err
			}
			eq, ok, err := search.EquivalentWindow(machine.Params{Window: w, MD: ablationMD, MemQueue: machine.QueueFactor * w}, dm.Cycles)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			res.Rows = append(res.Rows, ComplexityRow{
				Name: name, DMWindow: w, EqWindow: eq,
				Ratio:        float64(eq) / float64(w),
				ClockPenalty: model.ClockAdjustedAdvantage(w, isa.DefaultDUWidth, eq, isa.DefaultSWSMWidth),
			})
		}
	}
	return res, nil
}

// Render writes the complexity study as a table.
func (r *ComplexityResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "DM window", "equiv SWSM window", "ratio", "SWSM clock penalty"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, fmt.Sprintf("%d", row.DMWindow), fmt.Sprintf("%d", row.EqWindow),
			fmt.Sprintf("%.2fx", row.Ratio), fmt.Sprintf("%.2fx", row.ClockPenalty),
		})
	}
	tbl := plot.Table{Title: fmt.Sprintf("P2: window-logic complexity (Palacharla model), MD=%d", r.MD), Rows: rows}
	return tbl.Render(w)
}
