package experiments

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) across at most par goroutines and returns the
// lowest-index error among the tasks that ran.
// It is the sharding primitive of the experiment drivers: independent
// workloads of a table and independent curves of a figure fan out across
// the worker pool instead of running serially. The first failure stops
// not-yet-started tasks (in-flight ones finish), so a bad point does not
// burn the rest of a large sweep before the error surfaces.
func forEach(par, n int, fn func(i int) error) error {
	if par <= 0 || par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if failed.Load() {
					continue
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
