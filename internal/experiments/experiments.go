// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the auxiliary claims made in its text (DESIGN.md §5).
//
// Artifacts:
//
//	Table1       — DM latency-hiding effectiveness vs window size, MD=60
//	Figure 4/5/6 — speedup vs window size for FLO52Q, MDG, TRACK
//	Figure 7/8/9 — equivalent window ratio vs DM window size
//	Cutoffs      — MD=0 windows where the SWSM overtakes the DM (C1)
//	BigWindow    — DM vs SWSM at very large windows, MD=60 (C2)
//	ESWStudy     — effective-single-window and slippage measurements (C3)
//	Ablations    — design-choice studies (A1..A5)
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"daesim/internal/engine"
	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/partition"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// Context caches workload suites and runners across experiments.
type Context struct {
	// Scale multiplies workload sizes (1 = paper-default calibration).
	Scale int
	// Policy is the AU/DU partition policy (default Classic).
	Policy partition.Policy
	// Parallelism caps each workload runner's concurrent simulations and
	// the equivalent-window search fan-out (0 = GOMAXPROCS).
	Parallelism int
	// Cache, when non-nil, is the persistent result store handed to every
	// workload runner: simulation results survive process restarts and are
	// invalidated by engine-version bumps and workload recalibrations
	// (DESIGN.md §9). Set it before the first experiment runs.
	Cache *sweep.Store
	// Remote, when non-nil, executes cacheable points that miss the local
	// cache layers — it becomes each workload runner's Remote hook, bound
	// to that workload, the context's scale, and the local suite's
	// content fingerprint (so a daemon built from different workload or
	// engine code refuses instead of answering with skewed results).
	// internal/daemon.Client.Run has this signature, so attaching a
	// daemon client routes every cacheable simulation through a running
	// sweepd (repro -remote; DESIGN.md §10). Detached runners built
	// outside the per-workload cache (the policy study's non-default
	// partitions) still simulate locally. Set it before the first
	// experiment runs.
	Remote func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error)
	// RemoteBatch, when non-nil, executes whole point sets remotely in
	// one call — it becomes each workload runner's RemoteBatch hook, so
	// figure sweeps and search probe waves travel as one request per
	// fleet replica instead of one per point (daemon.Client.RunBatch and
	// daemon.FleetClient.RunBatch have this signature; repro -remote
	// attaches it alongside Remote unless -remote-batch=false). Set it
	// before the first experiment runs.
	RemoteBatch func(workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error)
	// RemoteSearch, when non-nil, executes a whole curve of
	// equivalent-window ratio searches (the unit of Figures 7-9)
	// server-side in one call, instead of probing locally and shipping
	// each probe wave. The answers are identical either way — the search
	// probe path is a fixed function of its inputs (metrics.Search), not
	// of where it executes — but a server-side curve is one round trip
	// where even a batched local search needs several per ratio point.
	// daemon.Client.RatioBatch and daemon.FleetClient.RatioBatch have
	// this signature (repro -remote attaches it unless
	// -remote-batch=false). Set it before the first experiment runs.
	RemoteSearch func(workload string, scale int, fingerprint string, params []machine.Params) ([]RatioAnswer, error)
	// Degrade, when set, arms every runner's last-resort fallback: a
	// Remote/RemoteBatch call failing with sweep.ErrUnavailable (every
	// candidate replica down or exhausted — daemon.FleetClient reports
	// exactly that) is answered by simulating the affected points
	// locally instead of failing the experiment, counted under
	// CacheStats.Degraded. RemoteSearch curves fall back to the local
	// search path wholesale under the same condition. Results are
	// byte-identical either way — local and remote execution are the
	// same deterministic function — so repro -remote completes even
	// with the whole fleet down (repro -degrade=false to fail loudly
	// instead). Set it before the first experiment runs.
	Degrade bool

	mu         sync.Mutex
	runners    map[string]*runnerEntry
	extraStats sweep.CacheStats // detached runners' traffic (see addStats)
}

// runnerEntry is a single-flight slot for one workload's runner: the
// first caller builds the trace and lowers it outside the context lock;
// concurrent callers block on ready. Without this, sharded drivers that
// first-touch several workloads at once (Table1's construction phase)
// would serialize the expensive builds on the context mutex.
type runnerEntry struct {
	ready chan struct{}
	r     *sweep.Runner
	err   error
}

// NewContext returns a Context at scale 1 with the classic partition.
func NewContext() *Context {
	return &Context{Scale: 1, runners: make(map[string]*runnerEntry)}
}

// Runner returns the memoizing runner for a workload, building the trace
// and lowering it on first use.
func (c *Context) Runner(name string) (*sweep.Runner, error) {
	c.mu.Lock()
	if e, ok := c.runners[name]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.r, e.err
	}
	e := &runnerEntry{ready: make(chan struct{})}
	c.runners[name] = e
	c.mu.Unlock()

	e.r, e.err = c.buildRunner(name)
	if e.err != nil {
		c.mu.Lock()
		delete(c.runners, name)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.r, e.err
}

// buildRunner constructs a workload's trace, lowering and runner.
func (c *Context) buildRunner(name string) (*sweep.Runner, error) {
	tr, err := workloads.Build(name, c.Scale)
	if err != nil {
		return nil, err
	}
	suite, err := machine.NewSuite(tr, c.Policy)
	if err != nil {
		return nil, err
	}
	r := sweep.NewRunner(suite)
	r.Parallelism = c.Parallelism
	r.Store = c.Cache
	r.Degrade = c.Degrade
	if c.Remote != nil {
		remote, scale, fp := c.Remote, c.Scale, suite.Fingerprint()
		r.Remote = func(pt sweep.Point) (*engine.Result, error) {
			return remote(name, scale, fp, pt)
		}
	}
	if c.RemoteBatch != nil {
		rb, scale, fp := c.RemoteBatch, c.Scale, suite.Fingerprint()
		r.RemoteBatch = func(pts []sweep.Point) ([]*engine.Result, error) {
			return rb(name, scale, fp, pts)
		}
	}
	return r, nil
}

// par returns the effective worker-pool width.
func (c *Context) par() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0) //daelint:nondeterministic-ok worker-pool width only; every result lands in a shard indexed by input, not by completion order
}

// CacheStats aggregates cache traffic across every runner the context
// has built so far (the run summary of cmd/repro), including the
// ad-hoc runners the policy study builds for non-default partitions.
func (c *Context) CacheStats() sweep.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total sweep.CacheStats
	for _, e := range c.runners { //daelint:nondeterministic-ok commutative sum of cache counters for the run summary; not a figure value
		select { //daelint:nondeterministic-ok advisory snapshot: a runner still building contributes no traffic yet
		case <-e.ready:
			if e.r != nil {
				total.Add(e.r.Stats())
			}
		default: // still building: no traffic yet
		}
	}
	total.Add(c.extraStats)
	return total
}

// addStats folds a detached runner's counters into the context totals
// (used by drivers that build suites outside the per-workload cache).
func (c *Context) addStats(s sweep.CacheStats) {
	c.mu.Lock()
	c.extraStats.Add(s)
	c.mu.Unlock()
}

// StoreStats returns the persistent store's counters (zero value when no
// cache is attached).
func (c *Context) StoreStats() sweep.StoreStats {
	if c.Cache == nil {
		return sweep.StoreStats{}
	}
	return c.Cache.Stats()
}

// MD values used across the study.
const (
	MDZero = 0
	MDFull = 60 // the paper's headline memory differential
)

// Table1Windows are the finite DM window sizes reported in Table 1. The
// paper's column headers are lost to OCR; DESIGN.md §2 documents the
// choice of powers of two from 8 to 128 plus the unlimited column.
var Table1Windows = []int{8, 16, 32, 64, 128}

// Table1Row is one program's latency-hiding effectiveness.
type Table1Row struct {
	Name string
	Band workloads.Band
	// LHE[i] corresponds to Table1Windows[i].
	LHE []float64
	// Unlimited is the unlimited-window LHE.
	Unlimited float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	MD      int
	Windows []int
	Rows    []Table1Row
}

// Table1 measures DM latency-hiding effectiveness for all seven programs
// at MD=60 across window sizes. The table is sharded two ways: workload
// construction (trace build + lowering) fans out across the pool, then
// every (workload, window, MD) point — they are all independent — joins
// one global work list instead of running workload-serial.
func (c *Context) Table1() (*Table1Result, error) {
	specs := workloads.Catalog()
	runners := make([]*sweep.Runner, len(specs))
	if err := forEach(c.par(), len(specs), func(i int) error {
		r, err := c.Runner(specs[i].Name)
		runners[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	windows := append(append([]int(nil), Table1Windows...), 0)
	type job struct {
		workload, window int
		pt               sweep.Point
	}
	var jobs []job
	for i := range specs {
		for wi, w := range windows {
			jobs = append(jobs,
				job{i, wi, sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDFull}}},
				job{i, wi, sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDZero}}})
		}
	}
	results := make([]*engine.Result, len(jobs))
	if err := forEach(c.par(), len(jobs), func(j int) error {
		res, err := runners[jobs[j].workload].Run(jobs[j].pt)
		results[j] = res
		return err
	}); err != nil {
		return nil, err
	}
	res := &Table1Result{MD: MDFull, Windows: Table1Windows}
	res.Rows = make([]Table1Row, len(specs))
	for i, spec := range specs {
		res.Rows[i] = Table1Row{Name: spec.Name, Band: spec.Band}
	}
	for j := 0; j < len(jobs); j += 2 {
		actual, perfect := results[j], results[j+1]
		row := &res.Rows[jobs[j].workload]
		lhe := metrics.LHE(perfect.Cycles, actual.Cycles)
		if windows[jobs[j].window] == 0 {
			row.Unlimited = lhe
		} else {
			row.LHE = append(row.LHE, lhe)
		}
	}
	return res, nil
}

// FigureWindows are the window sizes swept in Figures 4-6 (the paper
// plots 0..100).
var FigureWindows = sweep.Windows(4, 100, 8)

// FigureResult reproduces one of Figures 4-6: speedup vs window size for
// the DM and SWSM at MD=0 and MD=60.
type FigureResult struct {
	Number   int
	Workload string
	// Series order: DM md=0, SWSM md=0, DM md=60, SWSM md=60 (paper's
	// legend order, with the paper's "ADM" label meaning the DM).
	Series []sweep.Series
}

// figureNumber maps workloads to the paper's figure numbering.
var figureNumber = map[string]int{"FLO52Q": 4, "MDG": 5, "TRACK": 6}

// Figure measures one of Figures 4-6 for the named workload.
func (c *Context) Figure(name string) (*FigureResult, error) {
	num, ok := figureNumber[name]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a figure workload (want one of %v)", name, workloads.FigureNames())
	}
	return c.FigureNamed(num, name)
}

// FigureNamed measures a Figure 4-6 style speedup sweep for any
// registered workload — including generated "spec:..." workloads —
// labeled with the given figure number. Figure is the paper-pinned
// special case; this is the sweepable general one (repro -workload).
func (c *Context) FigureNamed(num int, name string) (*FigureResult, error) {
	r, err := c.Runner(name)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Number: num, Workload: name}
	configs := []struct {
		kind machine.Kind
		md   int
	}{
		{machine.DM, MDZero}, {machine.SWSM, MDZero},
		{machine.DM, MDFull}, {machine.SWSM, MDFull},
	}
	// All four curves batch into one point list, so the sweep's worker
	// pool drains the whole figure at once instead of curve by curve.
	pts := make([]sweep.Point, 0, len(configs)*len(FigureWindows))
	for _, cfg := range configs {
		for _, w := range FigureWindows {
			pts = append(pts, sweep.Point{Kind: cfg.kind, P: machine.Params{Window: w, MD: cfg.md}})
		}
	}
	results, err := r.RunAll(pts)
	if err != nil {
		return nil, err
	}
	for ci, cfg := range configs {
		serial := machine.SerialCycles(r.Suite.Trace, machine.Params{MD: cfg.md}.Timing())
		s := sweep.Series{
			Name: fmt.Sprintf("%s md=%d", cfg.kind, cfg.md),
			X:    make([]float64, len(FigureWindows)),
			Y:    make([]float64, len(FigureWindows)),
		}
		for wi, w := range FigureWindows {
			s.X[wi] = float64(w)
			s.Y[wi] = metrics.Speedup(serial, results[ci*len(FigureWindows)+wi].Cycles)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RatioWindows and RatioMDs parameterize Figures 7-9.
var (
	RatioWindows = sweep.Windows(10, 100, 10)
	RatioMDs     = []int{0, 10, 20, 30, 40, 50, 60}
)

// RatioResult reproduces one of Figures 7-9: the equivalent window ratio
// (SWSM window matching DM performance, over the DM window) as a function
// of DM window size, one curve per memory differential.
type RatioResult struct {
	Number   int
	Workload string
	// Series[i] is the curve for RatioMDs[i]; points where the SWSM could
	// not match the DM within metrics.MaxEquivalentWindow are recorded in
	// Saturated.
	Series    []sweep.Series
	Saturated map[int][]int // md -> DM windows where the search saturated
}

// ratioFigureNumber maps workloads to the paper's figure numbering.
var ratioFigureNumber = map[string]int{"FLO52Q": 7, "MDG": 8, "TRACK": 9}

// RatioFigure measures one of Figures 7-9 for the named workload.
func (c *Context) RatioFigure(name string) (*RatioResult, error) {
	num, ok := ratioFigureNumber[name]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a ratio-figure workload (want one of %v)", name, workloads.FigureNames())
	}
	return c.RatioFigureNamed(num, name)
}

// RatioFigureNamed measures a Figure 7-9 style equivalent-window ratio
// curve for any registered workload — including generated "spec:..."
// workloads — labeled with the given figure number (see FigureNamed).
func (c *Context) RatioFigureNamed(num int, name string) (*RatioResult, error) {
	r, err := c.Runner(name)
	if err != nil {
		return nil, err
	}
	res := &RatioResult{Number: num, Workload: name, Saturated: map[int][]int{}}
	res.Series = make([]sweep.Series, len(RatioMDs))
	par := c.par()
	var mu sync.Mutex // guards res.Saturated
	// localCurve measures one MD curve through the local search path.
	// Every probe routes through the shared Runner, so curves share
	// memoized DM anchors and SWSM probes with each other and with
	// other sweeps. Each curve's probe fan-out gets a slice of the
	// pool; the division overcommits slightly (searches spend time
	// between waves) rather than letting finished curves idle the pool.
	searchPar := 2 * par / len(RatioMDs)
	if searchPar < 1 {
		searchPar = 1
	}
	localCurve := func(mi int) error {
		md := RatioMDs[mi]
		search := metrics.NewSearch(r)
		search.Parallelism = searchPar
		s := sweep.Series{Name: fmt.Sprintf("md=%d", md)}
		for _, w := range RatioWindows {
			ratio, ok, err := search.EquivalentWindowRatio(machine.Params{Window: w, MD: md})
			if err != nil {
				return err
			}
			if !ok {
				mu.Lock()
				res.Saturated[md] = append(res.Saturated[md], w)
				mu.Unlock()
				continue
			}
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, ratio)
		}
		res.Series[mi] = s
		return nil
	}
	// With a remote search service attached, each MD curve travels as
	// one server-side batch: the daemon runs the same deterministic
	// searches over its own shared cache, so a whole figure costs a few
	// round trips instead of one per probe wave — and the values are
	// identical to the local path by construction. A curve whose owners
	// are all unavailable falls back to localCurve wholesale when
	// Degrade is set: the probes then flow through the runner, whose
	// own Degrade fallback absorbs any remaining point-level outage.
	if c.RemoteSearch != nil {
		fp := r.Suite.Fingerprint()
		if err := forEach(par, len(RatioMDs), func(mi int) error {
			md := RatioMDs[mi]
			params := make([]machine.Params, len(RatioWindows))
			for wi, w := range RatioWindows {
				params[wi] = machine.Params{Window: w, MD: md}
			}
			answers, err := c.RemoteSearch(name, c.Scale, fp, params)
			if err != nil {
				if c.Degrade && errors.Is(err, sweep.ErrUnavailable) {
					return localCurve(mi)
				}
				return err
			}
			if len(answers) != len(params) {
				return fmt.Errorf("experiments: remote search returned %d answers for %d ratio points", len(answers), len(params))
			}
			s := sweep.Series{Name: fmt.Sprintf("md=%d", md)}
			for wi, a := range answers {
				if !a.OK {
					mu.Lock()
					res.Saturated[md] = append(res.Saturated[md], RatioWindows[wi])
					mu.Unlock()
					continue
				}
				s.X = append(s.X, float64(RatioWindows[wi]))
				s.Y = append(s.Y, a.Ratio)
			}
			res.Series[mi] = s
			c.addStats(sweep.CacheStats{RemoteSearches: int64(len(params))})
			return nil
		}); err != nil {
			return nil, err
		}
		return res, nil
	}
	// The MD curves are independent, so they fan out across the pool:
	// one goroutine and one Search per curve (a Search parallelizes
	// internally but is not safe for concurrent use).
	if err := forEach(par, len(RatioMDs), localCurve); err != nil {
		return nil, err
	}
	return res, nil
}

// RatioAnswer is one RemoteSearch result: the equivalent-window ratio
// at a DM configuration, or OK=false when the search saturated.
type RatioAnswer struct {
	Ratio float64
	OK    bool
}

// CutoffRow records the MD=0 crossover for one program.
type CutoffRow struct {
	Name string
	// Window is the smallest swept window at which the SWSM matches or
	// beats the DM; Found is false if none exists in the sweep.
	Window int
	Found  bool
}

// CutoffResult reproduces the text's claim that at MD=0 every program has
// a cutoff window beyond which the SWSM performs better (C1).
type CutoffResult struct {
	Windows []int
	Rows    []CutoffRow
}

// Cutoffs locates the MD=0 crossover window for every workload.
func (c *Context) Cutoffs() (*CutoffResult, error) {
	windows := sweep.Windows(4, 128, 4)
	res := &CutoffResult{Windows: windows}
	for _, spec := range workloads.Catalog() {
		r, err := c.Runner(spec.Name)
		if err != nil {
			return nil, err
		}
		row := CutoffRow{Name: spec.Name}
		for _, w := range windows {
			dm, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDZero}})
			if err != nil {
				return nil, err
			}
			sw, err := r.Run(sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: MDZero}})
			if err != nil {
				return nil, err
			}
			if sw.Cycles <= dm.Cycles {
				row.Window, row.Found = w, true
				break
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BigWindowRow compares the machines at one large window.
type BigWindowRow struct {
	Name     string
	Window   int
	DMCycles int64
	SWCycles int64
}

// BigWindowResult probes the text's claim that at MD=60 the DM stays
// ahead even for very large (1000-slot) windows (C2).
type BigWindowResult struct {
	MD   int
	Rows []BigWindowRow
}

// BigWindow compares DM and SWSM at large windows and MD=60.
func (c *Context) BigWindow() (*BigWindowResult, error) {
	res := &BigWindowResult{MD: MDFull}
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{256, 512, 1000} {
			dm, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDFull}})
			if err != nil {
				return nil, err
			}
			sw, err := r.Run(sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: MDFull}})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BigWindowRow{Name: name, Window: w, DMCycles: dm.Cycles, SWCycles: sw.Cycles})
		}
	}
	return res, nil
}

// ESWRow records effective-single-window statistics for one point.
type ESWRow struct {
	Name    string
	Window  int
	MD      int
	MaxESW  int64
	AvgESW  float64
	MaxSlip int64
	AvgSlip float64
}

// ESWResult quantifies the paper's §4 concept: dynamic slippage makes the
// effective single window larger than the sum of the two windows (C3).
type ESWResult struct {
	Rows []ESWRow
}

// ESWStudy measures ESW and slippage for the figure workloads. It sweeps
// MD from 10 to 60 (not 0: with a zero differential the decoupled memory
// never back-pressures the AU, so dispatch-frontier distance degenerates
// to pure rate imbalance and stops measuring latency-driven slippage).
func (c *Context) ESWStudy() (*ESWResult, error) {
	res := &ESWResult{}
	sim := engine.NewSim()
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{16, 64} {
			for _, md := range []int{10, 30, MDFull} {
				// Through the runner: CollectESW is part of the cache
				// key, so ESW points persist like any other.
				p := machine.Params{Window: w, MD: md, CollectESW: true}
				rr, err := r.RunWith(sim, sweep.Point{Kind: machine.DM, P: p})
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, ESWRow{
					Name: name, Window: w, MD: md,
					MaxESW: rr.MaxESW, AvgESW: rr.AvgESW,
					MaxSlip: rr.MaxSlip, AvgSlip: rr.AvgSlip,
				})
			}
		}
	}
	return res, nil
}
