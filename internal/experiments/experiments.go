// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the auxiliary claims made in its text (DESIGN.md §5).
//
// Artifacts:
//
//	Table1       — DM latency-hiding effectiveness vs window size, MD=60
//	Figure 4/5/6 — speedup vs window size for FLO52Q, MDG, TRACK
//	Figure 7/8/9 — equivalent window ratio vs DM window size
//	Cutoffs      — MD=0 windows where the SWSM overtakes the DM (C1)
//	BigWindow    — DM vs SWSM at very large windows, MD=60 (C2)
//	ESWStudy     — effective-single-window and slippage measurements (C3)
//	Ablations    — design-choice studies (A1..A5)
package experiments

import (
	"fmt"
	"sync"

	"daesim/internal/engine"
	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/partition"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// Context caches workload suites and runners across experiments.
type Context struct {
	// Scale multiplies workload sizes (1 = paper-default calibration).
	Scale int
	// Policy is the AU/DU partition policy (default Classic).
	Policy partition.Policy
	// Parallelism caps each workload runner's concurrent simulations and
	// the equivalent-window search fan-out (0 = GOMAXPROCS).
	Parallelism int

	mu      sync.Mutex
	runners map[string]*sweep.Runner
}

// NewContext returns a Context at scale 1 with the classic partition.
func NewContext() *Context {
	return &Context{Scale: 1, runners: make(map[string]*sweep.Runner)}
}

// Runner returns the memoizing runner for a workload, building the trace
// and lowering it on first use.
func (c *Context) Runner(name string) (*sweep.Runner, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.runners[name]; ok {
		return r, nil
	}
	tr, err := workloads.Build(name, c.Scale)
	if err != nil {
		return nil, err
	}
	suite, err := machine.NewSuite(tr, c.Policy)
	if err != nil {
		return nil, err
	}
	r := sweep.NewRunner(suite)
	r.Parallelism = c.Parallelism
	c.runners[name] = r
	return r, nil
}

// MD values used across the study.
const (
	MDZero = 0
	MDFull = 60 // the paper's headline memory differential
)

// Table1Windows are the finite DM window sizes reported in Table 1. The
// paper's column headers are lost to OCR; DESIGN.md §2 documents the
// choice of powers of two from 8 to 128 plus the unlimited column.
var Table1Windows = []int{8, 16, 32, 64, 128}

// Table1Row is one program's latency-hiding effectiveness.
type Table1Row struct {
	Name string
	Band workloads.Band
	// LHE[i] corresponds to Table1Windows[i].
	LHE []float64
	// Unlimited is the unlimited-window LHE.
	Unlimited float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	MD      int
	Windows []int
	Rows    []Table1Row
}

// Table1 measures DM latency-hiding effectiveness for all seven programs
// at MD=60 across window sizes.
func (c *Context) Table1() (*Table1Result, error) {
	res := &Table1Result{MD: MDFull, Windows: Table1Windows}
	for _, spec := range workloads.Catalog() {
		r, err := c.Runner(spec.Name)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Name: spec.Name, Band: spec.Band}
		for _, w := range append(append([]int(nil), Table1Windows...), 0) {
			actual, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDFull}})
			if err != nil {
				return nil, err
			}
			perfect, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDZero}})
			if err != nil {
				return nil, err
			}
			lhe := metrics.LHE(perfect.Cycles, actual.Cycles)
			if w == 0 {
				row.Unlimited = lhe
			} else {
				row.LHE = append(row.LHE, lhe)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FigureWindows are the window sizes swept in Figures 4-6 (the paper
// plots 0..100).
var FigureWindows = sweep.Windows(4, 100, 8)

// FigureResult reproduces one of Figures 4-6: speedup vs window size for
// the DM and SWSM at MD=0 and MD=60.
type FigureResult struct {
	Number   int
	Workload string
	// Series order: DM md=0, SWSM md=0, DM md=60, SWSM md=60 (paper's
	// legend order, with the paper's "ADM" label meaning the DM).
	Series []sweep.Series
}

// figureNumber maps workloads to the paper's figure numbering.
var figureNumber = map[string]int{"FLO52Q": 4, "MDG": 5, "TRACK": 6}

// Figure measures one of Figures 4-6 for the named workload.
func (c *Context) Figure(name string) (*FigureResult, error) {
	num, ok := figureNumber[name]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a figure workload (want one of %v)", name, workloads.FigureNames())
	}
	r, err := c.Runner(name)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Number: num, Workload: name}
	for _, cfg := range []struct {
		kind machine.Kind
		md   int
	}{
		{machine.DM, MDZero}, {machine.SWSM, MDZero},
		{machine.DM, MDFull}, {machine.SWSM, MDFull},
	} {
		serial := machine.SerialCycles(r.Suite.Trace, machine.Params{MD: cfg.md}.Timing())
		s, err := r.WindowSweep(cfg.kind, machine.Params{MD: cfg.md}, FigureWindows,
			func(_ int, res2 *engine.Result) float64 {
				return metrics.Speedup(serial, res2.Cycles)
			})
		if err != nil {
			return nil, err
		}
		s.Name = fmt.Sprintf("%s md=%d", cfg.kind, cfg.md)
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RatioWindows and RatioMDs parameterize Figures 7-9.
var (
	RatioWindows = sweep.Windows(10, 100, 10)
	RatioMDs     = []int{0, 10, 20, 30, 40, 50, 60}
)

// RatioResult reproduces one of Figures 7-9: the equivalent window ratio
// (SWSM window matching DM performance, over the DM window) as a function
// of DM window size, one curve per memory differential.
type RatioResult struct {
	Number   int
	Workload string
	// Series[i] is the curve for RatioMDs[i]; points where the SWSM could
	// not match the DM within metrics.MaxEquivalentWindow are recorded in
	// Saturated.
	Series    []sweep.Series
	Saturated map[int][]int // md -> DM windows where the search saturated
}

// ratioFigureNumber maps workloads to the paper's figure numbering.
var ratioFigureNumber = map[string]int{"FLO52Q": 7, "MDG": 8, "TRACK": 9}

// RatioFigure measures one of Figures 7-9 for the named workload.
func (c *Context) RatioFigure(name string) (*RatioResult, error) {
	num, ok := ratioFigureNumber[name]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not a ratio-figure workload (want one of %v)", name, workloads.FigureNames())
	}
	r, err := c.Runner(name)
	if err != nil {
		return nil, err
	}
	res := &RatioResult{Number: num, Workload: name, Saturated: map[int][]int{}}
	// One Search for the whole figure: its scratch pool stays warm across
	// every (md, window) point, its probes fan out across workers, and the
	// Runner memoizes the DM anchors and SWSM probes, so the points that
	// overlap other sweeps (or other curves of this figure) are free.
	search := metrics.NewSearch(r)
	for _, md := range RatioMDs {
		s := sweep.Series{Name: fmt.Sprintf("md=%d", md)}
		for _, w := range RatioWindows {
			ratio, ok, err := search.EquivalentWindowRatio(machine.Params{Window: w, MD: md})
			if err != nil {
				return nil, err
			}
			if !ok {
				res.Saturated[md] = append(res.Saturated[md], w)
				continue
			}
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, ratio)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// CutoffRow records the MD=0 crossover for one program.
type CutoffRow struct {
	Name string
	// Window is the smallest swept window at which the SWSM matches or
	// beats the DM; Found is false if none exists in the sweep.
	Window int
	Found  bool
}

// CutoffResult reproduces the text's claim that at MD=0 every program has
// a cutoff window beyond which the SWSM performs better (C1).
type CutoffResult struct {
	Windows []int
	Rows    []CutoffRow
}

// Cutoffs locates the MD=0 crossover window for every workload.
func (c *Context) Cutoffs() (*CutoffResult, error) {
	windows := sweep.Windows(4, 128, 4)
	res := &CutoffResult{Windows: windows}
	for _, spec := range workloads.Catalog() {
		r, err := c.Runner(spec.Name)
		if err != nil {
			return nil, err
		}
		row := CutoffRow{Name: spec.Name}
		for _, w := range windows {
			dm, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDZero}})
			if err != nil {
				return nil, err
			}
			sw, err := r.Run(sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: MDZero}})
			if err != nil {
				return nil, err
			}
			if sw.Cycles <= dm.Cycles {
				row.Window, row.Found = w, true
				break
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BigWindowRow compares the machines at one large window.
type BigWindowRow struct {
	Name     string
	Window   int
	DMCycles int64
	SWCycles int64
}

// BigWindowResult probes the text's claim that at MD=60 the DM stays
// ahead even for very large (1000-slot) windows (C2).
type BigWindowResult struct {
	MD   int
	Rows []BigWindowRow
}

// BigWindow compares DM and SWSM at large windows and MD=60.
func (c *Context) BigWindow() (*BigWindowResult, error) {
	res := &BigWindowResult{MD: MDFull}
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{256, 512, 1000} {
			dm, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: MDFull}})
			if err != nil {
				return nil, err
			}
			sw, err := r.Run(sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: MDFull}})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BigWindowRow{Name: name, Window: w, DMCycles: dm.Cycles, SWCycles: sw.Cycles})
		}
	}
	return res, nil
}

// ESWRow records effective-single-window statistics for one point.
type ESWRow struct {
	Name    string
	Window  int
	MD      int
	MaxESW  int64
	AvgESW  float64
	MaxSlip int64
	AvgSlip float64
}

// ESWResult quantifies the paper's §4 concept: dynamic slippage makes the
// effective single window larger than the sum of the two windows (C3).
type ESWResult struct {
	Rows []ESWRow
}

// ESWStudy measures ESW and slippage for the figure workloads. It sweeps
// MD from 10 to 60 (not 0: with a zero differential the decoupled memory
// never back-pressures the AU, so dispatch-frontier distance degenerates
// to pure rate imbalance and stops measuring latency-driven slippage).
func (c *Context) ESWStudy() (*ESWResult, error) {
	res := &ESWResult{}
	sim := engine.NewSim()
	for _, name := range workloads.FigureNames() {
		r, err := c.Runner(name)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{16, 64} {
			for _, md := range []int{10, 30, MDFull} {
				p := machine.Params{Window: w, MD: md, CollectESW: true}
				rr, err := r.Suite.RunDMWith(sim, p)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, ESWRow{
					Name: name, Window: w, MD: md,
					MaxESW: rr.MaxESW, AvgESW: rr.AvgESW,
					MaxSlip: rr.MaxSlip, AvgSlip: rr.AvgSlip,
				})
			}
		}
	}
	return res, nil
}
