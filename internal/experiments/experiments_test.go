package experiments

// Integration tests asserting the paper's qualitative findings. These are
// the fidelity gates of the reproduction: if a refactor or recalibration
// breaks one of the claims below, the reproduction no longer tells the
// paper's story. EXPERIMENTS.md records the quantitative details.

import (
	"sync"
	"testing"

	"daesim/internal/workloads"
)

// sharedCtx caches workload suites across all tests in the package.
var (
	sharedCtx  *Context
	sharedOnce sync.Once
)

func ctx() *Context {
	sharedOnce.Do(func() { sharedCtx = NewContext() })
	return sharedCtx
}

func TestTable1Bands(t *testing.T) {
	res, err := ctx().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("want 7 programs, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		var lo, hi float64
		switch row.Band {
		case workloads.Highly:
			lo, hi = 0.90, 1.0
		case workloads.Moderately:
			lo, hi = 0.55, 0.90
		case workloads.Poorly:
			lo, hi = 0.0, 0.55
		}
		if row.Unlimited < lo || row.Unlimited > hi {
			t.Errorf("%s: unlimited LHE %.3f outside %s band [%.2f, %.2f]",
				row.Name, row.Unlimited, row.Band, lo, hi)
		}
	}
	// The three selected programs fall one in each band (paper §5).
	bands := map[string]workloads.Band{}
	for _, row := range res.Rows {
		bands[row.Name] = row.Band
	}
	if bands["FLO52Q"] != workloads.Highly || bands["MDG"] != workloads.Moderately || bands["TRACK"] != workloads.Poorly {
		t.Error("figure programs must span the three bands")
	}
}

func TestTable1LHENeverExceedsOne(t *testing.T) {
	res, err := ctx().Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for i, v := range row.LHE {
			if v > 1.0+1e-9 {
				t.Errorf("%s w=%d: LHE %.4f > 1", row.Name, res.Windows[i], v)
			}
		}
		if row.Unlimited > 1.0+1e-9 {
			t.Errorf("%s unlimited: LHE %.4f > 1", row.Name, row.Unlimited)
		}
	}
}

func TestTable1DipAndRecovery(t *testing.T) {
	res, err := ctx().Table1()
	if err != nil {
		t.Fatal(err)
	}
	dips := 0
	for _, row := range res.Rows {
		// A dip: LHE falls at some point before recovering (paper §5:
		// "increasing the window size causes a reduction in the LHE").
		for i := 1; i < len(row.LHE); i++ {
			if row.LHE[i] < row.LHE[i-1]-1e-9 {
				dips++
				break
			}
		}
		// Recovery: the largest finite window beats the smallest.
		last, first := row.LHE[len(row.LHE)-1], row.LHE[0]
		if last < first-0.05 {
			t.Errorf("%s: LHE did not recover: w=%d %.3f vs w=%d %.3f",
				row.Name, res.Windows[len(res.Windows)-1], last, res.Windows[0], first)
		}
	}
	if dips < 3 {
		t.Errorf("expected a dip in at least 3 programs, found %d", dips)
	}
}

func TestTable1FiniteWindowsDoNotReachUnlimited(t *testing.T) {
	res, err := ctx().Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §5: "even with large window sizes we do not approach the LHE
	// of an DM with unlimited resources". This holds for the programs
	// whose spines need very deep run-ahead: FLO52Q and the moderate band.
	for _, row := range res.Rows {
		if row.Name == "TRFD" || row.Name == "ADM" || row.Name == "TRACK" {
			continue
		}
		last := row.LHE[len(row.LHE)-1]
		if row.Unlimited < last+0.10 {
			t.Errorf("%s: LHE(w=128)=%.3f approaches unlimited %.3f", row.Name, last, row.Unlimited)
		}
	}
}

func figureFor(t *testing.T, name string) *FigureResult {
	t.Helper()
	f, err := ctx().Figure(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("%s: want 4 curves, got %d", name, len(f.Series))
	}
	return f
}

func TestFiguresMonotoneInWindow(t *testing.T) {
	// Oldest-first issue is a greedy list schedule, so a larger window can
	// produce small scheduling anomalies (Graham); the curves must still
	// rise apart from dips of a few percent.
	const slack = 0.96
	for _, name := range workloads.FigureNames() {
		f := figureFor(t, name)
		for _, s := range f.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < slack*s.Y[i-1] {
					t.Errorf("%s %s: speedup fell from %.2f to %.2f at window %.0f",
						name, s.Name, s.Y[i-1], s.Y[i], s.X[i])
				}
			}
			if s.Y[len(s.Y)-1] < s.Y[0] {
				t.Errorf("%s %s: no overall improvement across the sweep", name, s.Name)
			}
		}
	}
}

func TestFiguresNoCrossoverAtMD60(t *testing.T) {
	// Paper §5: "once MD reaches 60 cycles there is no cutoff point when
	// the SWSM performs better than the DM" across the figures' window
	// range.
	for _, name := range workloads.FigureNames() {
		f := figureFor(t, name)
		dm, sw := f.Series[2], f.Series[3]
		for i := range dm.Y {
			if sw.Y[i] >= dm.Y[i] {
				t.Errorf("%s: SWSM (%.2f) caught DM (%.2f) at window %.0f, MD=60",
					name, sw.Y[i], dm.Y[i], dm.X[i])
			}
		}
	}
}

func TestFiguresCrossoverAtMD0(t *testing.T) {
	// Paper §5: at MD=0 the DM wins at small windows; every program has a
	// cutoff within the figure range where the SWSM takes over.
	for _, name := range workloads.FigureNames() {
		f := figureFor(t, name)
		dm, sw := f.Series[0], f.Series[1]
		if sw.Y[0] >= dm.Y[0] {
			t.Errorf("%s: SWSM should lose at the smallest window at MD=0 (%.2f vs %.2f)",
				name, sw.Y[0], dm.Y[0])
		}
		last := len(dm.Y) - 1
		if sw.Y[last] < dm.Y[last] {
			t.Errorf("%s: SWSM should win by window %.0f at MD=0 (%.2f vs %.2f)",
				name, dm.X[last], sw.Y[last], dm.Y[last])
		}
	}
}

func TestFiguresDiminishingReturns(t *testing.T) {
	// Paper §5: "the graphs show the law of diminishing returns for
	// increasing window size".
	for _, name := range workloads.FigureNames() {
		f := figureFor(t, name)
		dm60 := f.Series[2]
		n := len(dm60.Y)
		mid := n / 2
		early := (dm60.Y[mid] - dm60.Y[0]) / (dm60.X[mid] - dm60.X[0])
		late := (dm60.Y[n-1] - dm60.Y[mid]) / (dm60.X[n-1] - dm60.X[mid])
		if late >= early {
			t.Errorf("%s: no diminishing returns (early slope %.3f, late %.3f)", name, early, late)
		}
	}
}

func TestFigureGapOrdering(t *testing.T) {
	// Paper §5: the MD=60 gap is large for the highly parallel FLO52Q and
	// smallest for the serial TRACK.
	gapAtEnd := func(name string) float64 {
		f := figureFor(t, name)
		n := len(f.Series[2].Y) - 1
		return f.Series[2].Y[n] / f.Series[3].Y[n]
	}
	flo, track := gapAtEnd("FLO52Q"), gapAtEnd("TRACK")
	mdg := gapAtEnd("MDG")
	if track >= flo {
		t.Errorf("TRACK gap %.2f should be below FLO52Q gap %.2f", track, flo)
	}
	if track >= mdg {
		t.Errorf("TRACK gap %.2f should be the smallest (MDG %.2f)", track, mdg)
	}
}

func TestRatioFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalent-window searches are slow")
	}
	for _, name := range workloads.FigureNames() {
		res, err := ctx().RatioFigure(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Series) != len(RatioMDs) {
			t.Fatalf("%s: want %d curves", name, len(RatioMDs))
		}
		md0, md60 := res.Series[0], res.Series[len(res.Series)-1]
		if len(md0.Y) != len(RatioWindows) || len(md60.Y) != len(RatioWindows) {
			t.Fatalf("%s: saturated searches at md extremes: %v", name, res.Saturated)
		}
		// FLO52Q — the paper's showcase for decoupled prefetching — runs
		// above the generic plotted band under ROB slot accounting: its
		// equivalent window is pinned at the DM's bandwidth-delay product
		// (saturated issue rate x MD, ~445 slots) until the DM itself
		// saturates, so mid-window ratios exceed the 2-4x band. The
		// plateau itself is asserted below and quantified in
		// EXPERIMENTS.md ("Figures 7-9").
		plotCap := 8.0
		if name == "FLO52Q" {
			plotCap = 12.0
		}
		for i := range md60.Y {
			// Ratios stay in the plotted band.
			if md60.Y[i] < 1.0 || md60.Y[i] > plotCap {
				t.Errorf("%s: md=60 ratio %.2f at window %.0f outside [1, %.0f]", name, md60.Y[i], md60.X[i], plotCap)
			}
			// Paper §5: the ratio grows with the memory latency.
			if md60.Y[i] < md0.Y[i] {
				t.Errorf("%s: md=60 ratio %.2f below md=0 ratio %.2f at window %.0f",
					name, md60.Y[i], md0.Y[i], md60.X[i])
			}
		}
		// Paper §5: as the DM window grows the ratio falls.
		n := len(md60.Y)
		meanLo := mean(md60.Y[:n/2])
		meanHi := mean(md60.Y[n/2:])
		if meanHi >= meanLo {
			t.Errorf("%s: md=60 ratio does not fall with window size (%.2f -> %.2f)", name, meanLo, meanHi)
		}
		// Paper §6: for a realistic window and MD=60, the SWSM needs a
		// window roughly 2x-4x larger. FLO52Q asserts the band at the
		// 100-slot end of the plotted range plus the bandwidth-delay
		// plateau behind its elevated mid-window points (eq flat within
		// 25% of the 100-slot value from 40 slots on).
		eq100 := md60.Y[n-1] * md60.X[n-1]
		for i, w := range RatioWindows {
			switch {
			case name == "FLO52Q" && w >= 40:
				eq := md60.Y[i] * md60.X[i]
				if eq < 0.75*eq100 || eq > 1.25*eq100 {
					t.Errorf("FLO52Q: equivalent window %.0f at window %d off the %.0f-slot bandwidth-delay plateau",
						eq, w, eq100)
				}
			case name != "FLO52Q" && w >= 30:
				if md60.Y[i] < 1.4 || md60.Y[i] > 5.0 {
					t.Errorf("%s: md=60 ratio at window %d = %.2f outside the 2-4x band (slack [1.4, 5])",
						name, w, md60.Y[i])
				}
			}
		}
		if name == "FLO52Q" {
			if last := md60.Y[n-1]; last < 1.4 || last > 5.0 {
				t.Errorf("FLO52Q: md=60 ratio at window 100 = %.2f outside the 2-4x band (slack [1.4, 5])", last)
			}
		}
	}
}

func mean(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

func TestCutoffsExistForAllPrograms(t *testing.T) {
	res, err := ctx().Cutoffs()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Found {
			t.Errorf("%s: no MD=0 cutoff found", row.Name)
			continue
		}
		if row.Window < 8 || row.Window > 128 {
			t.Errorf("%s: cutoff %d outside tens-of-instructions range", row.Name, row.Window)
		}
	}
}

func TestBigWindows(t *testing.T) {
	res, err := ctx().BigWindow()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		ratio := float64(row.DMCycles) / float64(row.SWCycles)
		// Paper: at MD=60 the DM stays ahead even at 1000-slot windows.
		// Under the in-order (ROB) slot accounting this holds for FLO52Q
		// and MDG at every probed window, and for TRACK at 256. TRACK's
		// 512/1000-slot points carry a pinned structural residual: both
		// machines are dataflow-bound there and the DM's bound is worse —
		// loss-of-decoupling copies sit on the serial recurrence — so no
		// window accounting can restore the paper's ordering (quantified
		// in EXPERIMENTS.md §C2).
		if row.Name == "TRACK" && row.Window >= 512 {
			if ratio > 1.07 {
				t.Errorf("TRACK w=%d: DM/SWSM = %.3f exceeds the pinned 1.07 residual", row.Window, ratio)
			}
			continue
		}
		if row.DMCycles > row.SWCycles {
			t.Errorf("%s w=%d: DM %d behind SWSM %d (DM/SWSM = %.3f > 1)",
				row.Name, row.Window, row.DMCycles, row.SWCycles, ratio)
		}
	}
}

func TestESWExceedsSummedWindows(t *testing.T) {
	res, err := ctx().ESWStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Paper §4: the effective single window exceeds the sum of the
		// two units' windows.
		if row.MaxESW <= int64(2*row.Window) {
			t.Errorf("%s w=%d md=%d: max ESW %d does not exceed summed windows %d",
				row.Name, row.Window, row.MD, row.MaxESW, 2*row.Window)
		}
		if row.MaxSlip <= 0 {
			t.Errorf("%s w=%d md=%d: no positive slippage", row.Name, row.Window, row.MD)
		}
	}
	// Paper §5: slippage grows as latency grows. The comparison runs
	// md30 -> md60 (with slack where the queue bound saturates early):
	// at md10 a small-window AU whose self-load stalls amortize can
	// free-run the whole program ahead (FLO52Q at w=16 slips the entire
	// trace), which measures buffer idealization, not latency-driven
	// slippage; by md30 the AU's own receives anchor it to the window.
	byKey := map[[2]interface{}]map[int]int64{}
	for _, row := range res.Rows {
		k := [2]interface{}{row.Name, row.Window}
		if byKey[k] == nil {
			byKey[k] = map[int]int64{}
		}
		byKey[k][row.MD] = row.MaxESW
	}
	for k, m := range byKey { //daelint:nondeterministic-ok order-free per-key assertions; failures print their own key
		if float64(m[60]) < 0.85*float64(m[30]) {
			t.Errorf("%v: max ESW shrank with latency: md30=%d md60=%d", k, m[30], m[60])
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	abls, err := ctx().Ablations()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*AblationResult{}
	for _, a := range abls {
		byID[a.ID] = a
	}
	if len(byID) != 5 {
		t.Fatalf("want 5 ablations, got %d", len(byID))
	}

	// A2: copy latency hurts TRACK (copies on the critical path), not
	// FLO52Q (no copies).
	var trackFirst, trackLast, floFirst, floLast int64
	for _, p := range byID["A2"].Points {
		switch {
		case p.Workload == "TRACK" && p.Label == "copy=1":
			trackFirst = p.Cycles
		case p.Workload == "TRACK" && p.Label == "copy=8":
			trackLast = p.Cycles
		case p.Workload == "FLO52Q" && p.Label == "copy=1":
			floFirst = p.Cycles
		case p.Workload == "FLO52Q" && p.Label == "copy=8":
			floLast = p.Cycles
		}
	}
	if trackLast <= trackFirst {
		t.Errorf("A2: TRACK insensitive to copy latency (%d -> %d)", trackFirst, trackLast)
	}
	if float64(floLast) > 1.02*float64(floFirst) {
		t.Errorf("A2: FLO52Q too sensitive to copy latency (%d -> %d)", floFirst, floLast)
	}

	// A3: holding send slots destroys decoupling.
	for _, name := range []string{"FLO52Q", "MDG", "TRACK"} {
		var fire, hold int64
		for _, p := range byID["A3"].Points {
			if p.Workload != name {
				continue
			}
			if p.Label == "fire-and-forget" {
				fire = p.Cycles
			} else {
				hold = p.Cycles
			}
		}
		// TRACK is critical-path bound, so window pressure (and hence
		// slot-held sends) may cost it nothing; the others must suffer.
		// Greedy list scheduling admits sub-percent Graham anomalies
		// (DESIGN.md §3), so "never faster" carries a 1% tolerance.
		if float64(hold) < 0.99*float64(fire) {
			t.Errorf("A3 %s: slot-held sends should never be faster (%d vs %d)", name, hold, fire)
		}
		if name != "TRACK" && hold <= fire {
			t.Errorf("A3 %s: slot-held sends should be slower (%d vs %d)", name, hold, fire)
		}
		if name == "FLO52Q" && float64(hold) < 1.5*float64(fire) {
			t.Errorf("A3 FLO52Q: expected a large penalty, got %d vs %d", hold, fire)
		}
	}

	// A4: more queue capacity never hurts.
	for _, name := range []string{"FLO52Q", "MDG", "TRACK"} {
		var prev int64 = -1
		for _, p := range byID["A4"].Points {
			if p.Workload != name {
				continue
			}
			if prev >= 0 && p.Cycles > prev {
				t.Errorf("A4 %s: cycles rose with more capacity (%s: %d > %d)", name, p.Label, p.Cycles, prev)
			}
			prev = p.Cycles
		}
	}

	// A5: the bypass buffer never hurts and helps somewhere.
	helped := false
	base := map[string]int64{}
	for _, p := range byID["A5"].Points {
		if p.Label == "none" {
			base[p.Workload] = p.Cycles
		}
	}
	for _, p := range byID["A5"].Points {
		if p.Label == "none" {
			continue
		}
		if float64(p.Cycles) > 1.01*float64(base[p.Workload]) {
			t.Errorf("A5 %s %s: bypass hurt (%d vs %d)", p.Workload, p.Label, p.Cycles, base[p.Workload])
		}
		if float64(p.Cycles) < 0.95*float64(base[p.Workload]) {
			helped = true
		}
	}
	if !helped {
		t.Error("A5: bypass buffer never helped")
	}

	// A1: the paper's 4/5 split is competitive: within 50% of each
	// program's best split (programs with AU-heavy mixes, like FLO52Q's
	// mapped-coordinate arithmetic, prefer a wider AU).
	best := map[string]int64{}
	chosen := map[string]int64{}
	for _, p := range byID["A1"].Points {
		if best[p.Workload] == 0 || p.Cycles < best[p.Workload] {
			best[p.Workload] = p.Cycles
		}
		if p.Label == "AU=4/DU=5" {
			chosen[p.Workload] = p.Cycles
		}
	}
	for name, c := range chosen { //daelint:nondeterministic-ok order-free per-workload assertions; failures print their own name
		if float64(c) > 1.5*float64(best[name]) {
			t.Errorf("A1 %s: 4/5 split %d not competitive with best %d", name, c, best[name])
		}
	}
}

func TestWriteAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration is slow")
	}
	dir := t.TempDir()
	files, err := ctx().WriteAll(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 table + 3 figures x2 files + 3 ratio figures x2 + cutoffs +
	// bigwindow + esw + ablations + expansion + policies + retire +
	// cache + complexity.
	if len(files) != 22 {
		t.Errorf("want 22 artifact files, got %d", len(files))
	}
}
