package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"daesim/internal/metrics"
	"daesim/internal/plot"
	"daesim/internal/sweep"
)

func toPlotSeries(in []sweep.Series) []plot.Series {
	out := make([]plot.Series, len(in))
	for i, s := range in {
		out[i] = plot.Series{Name: s.Name, X: s.X, Y: s.Y}
	}
	return out
}

// Render writes Table 1 as an aligned text table.
func (t *Table1Result) Render(w io.Writer) error {
	header := []string{"Prog", "band"}
	for _, win := range t.Windows {
		header = append(header, fmt.Sprintf("w=%d", win))
	}
	header = append(header, "unlimited")
	rows := [][]string{header}
	for _, row := range t.Rows {
		cells := []string{row.Name, row.Band.String()}
		for _, v := range row.LHE {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		cells = append(cells, fmt.Sprintf("%.2f", row.Unlimited))
		rows = append(rows, cells)
	}
	tbl := plot.Table{
		Title: fmt.Sprintf("Table 1: DM latency hiding effectiveness, MD=%d cycles", t.MD),
		Rows:  rows,
	}
	return tbl.Render(w)
}

// Render writes the figure as an ASCII chart.
func (f *FigureResult) Render(w io.Writer) error {
	ch := plot.Chart{
		Title:  fmt.Sprintf("Figure %d: %s (CIW=9)", f.Number, f.Workload),
		XLabel: "Window Size",
		YLabel: "Speedup",
		Series: toPlotSeries(f.Series),
	}
	return ch.Render(w)
}

// Dat writes the figure's data in gnuplot format.
func (f *FigureResult) Dat(w io.Writer) error {
	return plot.WriteDat(w, fmt.Sprintf("figure %d: speedup vs window, %s", f.Number, f.Workload), toPlotSeries(f.Series))
}

// Render writes the ratio figure as an ASCII chart.
func (f *RatioResult) Render(w io.Writer) error {
	ch := plot.Chart{
		Title:  fmt.Sprintf("Figure %d: %s", f.Number, f.Workload),
		XLabel: "Access Decoupled Window Size",
		YLabel: "Equivalent window ratio",
		Series: toPlotSeries(f.Series),
	}
	if err := ch.Render(w); err != nil {
		return err
	}
	for _, md := range RatioMDs {
		if sat := f.Saturated[md]; len(sat) > 0 {
			fmt.Fprintf(w, "  (md=%d: no equivalent SWSM window within %d slots at DM windows %v)\n", md, satCap(), sat)
		}
	}
	return nil
}

func satCap() int { return metrics.MaxEquivalentWindow }

// Dat writes the ratio figure's data in gnuplot format.
func (f *RatioResult) Dat(w io.Writer) error {
	return plot.WriteDat(w, fmt.Sprintf("figure %d: equivalent window ratio, %s", f.Number, f.Workload), toPlotSeries(f.Series))
}

// Render writes the cutoff study as a table.
func (c *CutoffResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "cutoff window (SWSM >= DM at MD=0)"}}
	for _, r := range c.Rows {
		v := "none in sweep"
		if r.Found {
			v = fmt.Sprintf("%d", r.Window)
		}
		rows = append(rows, []string{r.Name, v})
	}
	tbl := plot.Table{Title: "C1: MD=0 cutoff windows", Rows: rows}
	return tbl.Render(w)
}

// Render writes the big-window study as a table.
func (b *BigWindowResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "window", "DM cycles", "SWSM cycles", "DM/SWSM"}}
	for _, r := range b.Rows {
		rows = append(rows, []string{
			r.Name, fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%d", r.DMCycles), fmt.Sprintf("%d", r.SWCycles),
			fmt.Sprintf("%.3f", float64(r.DMCycles)/float64(r.SWCycles)),
		})
	}
	tbl := plot.Table{Title: fmt.Sprintf("C2: large windows, MD=%d", b.MD), Rows: rows}
	return tbl.Render(w)
}

// Render writes the ESW study as a table.
func (e *ESWResult) Render(w io.Writer) error {
	rows := [][]string{{"Prog", "window", "MD", "max ESW", "avg ESW", "max slip", "avg slip"}}
	for _, r := range e.Rows {
		rows = append(rows, []string{
			r.Name, fmt.Sprintf("%d", r.Window), fmt.Sprintf("%d", r.MD),
			fmt.Sprintf("%d", r.MaxESW), fmt.Sprintf("%.0f", r.AvgESW),
			fmt.Sprintf("%d", r.MaxSlip), fmt.Sprintf("%.0f", r.AvgSlip),
		})
	}
	tbl := plot.Table{Title: "C3: effective single window and slippage (DM)", Rows: rows}
	return tbl.Render(w)
}

// Render writes an ablation study as a table.
func (a *AblationResult) Render(w io.Writer) error {
	rows := [][]string{{"Workload", "config", "cycles"}}
	for _, p := range a.Points {
		rows = append(rows, []string{p.Workload, p.Label, fmt.Sprintf("%d", p.Cycles)})
	}
	tbl := plot.Table{Title: fmt.Sprintf("%s: %s", a.ID, a.Description), Rows: rows}
	return tbl.Render(w)
}

// WriteAll regenerates every artifact into dir, returning the files
// written. It is the engine behind cmd/repro.
func (c *Context) WriteAll(dir string, log io.Writer) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	save := func(name string, render func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render(f); err != nil {
			return err
		}
		files = append(files, path)
		if log != nil {
			fmt.Fprintf(log, "wrote %s\n", path)
		}
		return nil
	}

	t1, err := c.Table1()
	if err != nil {
		return nil, err
	}
	if err := save("table1.txt", t1.Render); err != nil {
		return nil, err
	}
	for _, name := range []string{"FLO52Q", "MDG", "TRACK"} {
		fig, err := c.Figure(name)
		if err != nil {
			return nil, err
		}
		if err := save(fmt.Sprintf("figure%d_%s.txt", fig.Number, name), fig.Render); err != nil {
			return nil, err
		}
		if err := save(fmt.Sprintf("figure%d_%s.dat", fig.Number, name), fig.Dat); err != nil {
			return nil, err
		}
		rat, err := c.RatioFigure(name)
		if err != nil {
			return nil, err
		}
		if err := save(fmt.Sprintf("figure%d_%s.txt", rat.Number, name), rat.Render); err != nil {
			return nil, err
		}
		if err := save(fmt.Sprintf("figure%d_%s.dat", rat.Number, name), rat.Dat); err != nil {
			return nil, err
		}
	}
	cut, err := c.Cutoffs()
	if err != nil {
		return nil, err
	}
	if err := save("cutoffs.txt", cut.Render); err != nil {
		return nil, err
	}
	big, err := c.BigWindow()
	if err != nil {
		return nil, err
	}
	if err := save("bigwindow.txt", big.Render); err != nil {
		return nil, err
	}
	esw, err := c.ESWStudy()
	if err != nil {
		return nil, err
	}
	if err := save("esw.txt", esw.Render); err != nil {
		return nil, err
	}
	abls, err := c.Ablations()
	if err != nil {
		return nil, err
	}
	if err := save("ablations.txt", func(w io.Writer) error {
		for _, a := range abls {
			if err := a.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	exp, err := c.CodeExpansion()
	if err != nil {
		return nil, err
	}
	if err := save("expansion.txt", exp.Render); err != nil {
		return nil, err
	}
	pol, err := c.PolicyStudy()
	if err != nil {
		return nil, err
	}
	if err := save("policies.txt", pol.Render); err != nil {
		return nil, err
	}
	ret, err := c.RetireStudy()
	if err != nil {
		return nil, err
	}
	if err := save("retire.txt", ret.Render); err != nil {
		return nil, err
	}
	cache, err := c.CacheStudy()
	if err != nil {
		return nil, err
	}
	if err := save("cache.txt", cache.Render); err != nil {
		return nil, err
	}
	cx, err := c.ComplexityStudy()
	if err != nil {
		return nil, err
	}
	if err := save("complexity.txt", cx.Render); err != nil {
		return nil, err
	}
	return files, nil
}
