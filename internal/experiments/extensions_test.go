package experiments

import (
	"strings"
	"testing"

	"daesim/internal/machine"
)

func TestCodeExpansion(t *testing.T) {
	res, err := ctx().CodeExpansion()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("want 7 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		dmExp := float64(r.DMOps) / float64(r.TraceLen)
		swExp := float64(r.SWSMOps) / float64(r.TraceLen)
		// Memory ops double; the rest stay, so expansion lies in (1, 2).
		if dmExp <= 1.0 || dmExp >= 2.0 {
			t.Errorf("%s: DM expansion %.2f implausible", r.Name, dmExp)
		}
		if swExp <= 1.0 || swExp >= 2.0 {
			t.Errorf("%s: SWSM expansion %.2f implausible", r.Name, swExp)
		}
		// The DM expands by at least the SWSM's amount plus copies.
		if r.DMOps < r.SWSMOps {
			// Only possible via dual-delivery loads vs store prefetches;
			// copies must make up the difference for TRACK.
			if r.Name != "TRACK" {
				t.Errorf("%s: DM ops %d below SWSM ops %d", r.Name, r.DMOps, r.SWSMOps)
			}
		}
		if r.Name == "TRACK" && r.Copies == 0 {
			t.Error("TRACK must pay copies")
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "C4") || !strings.Contains(b.String(), "TRACK") {
		t.Fatal("render incomplete")
	}
}

func TestPolicyStudy(t *testing.T) {
	res, err := ctx().PolicyStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 21 { // 7 workloads x 3 policies
		t.Fatalf("want 21 rows, got %d", len(res.Rows))
	}
	// Policies must agree within 15% at MD=60 on these FP codes (the
	// address slice dominates the partition).
	byName := map[string][]PolicyRow{}
	for _, r := range res.Rows {
		byName[r.Name] = append(byName[r.Name], r)
		if r.Cycles0 <= 0 || r.Cycles60 < r.Cycles0 {
			t.Errorf("%s/%s: implausible cycles %d/%d", r.Name, r.Policy, r.Cycles0, r.Cycles60)
		}
	}
	for name, rows := range byName { //daelint:nondeterministic-ok order-free per-workload assertions; failures print their own name
		lo, hi := rows[0].Cycles60, rows[0].Cycles60
		for _, r := range rows {
			if r.Cycles60 < lo {
				lo = r.Cycles60
			}
			if r.Cycles60 > hi {
				hi = r.Cycles60
			}
		}
		if float64(hi) > 1.15*float64(lo) {
			t.Errorf("%s: policies diverge %d..%d at MD=60", name, lo, hi)
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "slice-only") {
		t.Fatal("render incomplete")
	}
}

func TestRetireStudy(t *testing.T) {
	res, err := ctx().RetireStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 { // 3 workloads x 2 machines x 3 windows
		t.Fatalf("want 18 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.InOrder < r.Complete {
			t.Errorf("%s/%s w=%d: in-order retire faster (%d < %d)",
				r.Name, r.Kind, r.Window, r.InOrder, r.Complete)
		}
	}
	// In-order retirement must hurt the SWSM more than the DM at the
	// standard window (the single window holds everything).
	penalty := func(kind machine.Kind, name string) float64 {
		for _, r := range res.Rows {
			if r.Kind == kind && r.Name == name && r.Window == 64 {
				return float64(r.InOrder) / float64(r.Complete)
			}
		}
		t.Fatalf("missing row %v %s", kind, name)
		return 0
	}
	for _, name := range []string{"FLO52Q", "MDG"} {
		if penalty(machine.SWSM, name) <= penalty(machine.DM, name) {
			t.Errorf("%s: SWSM should pay more for in-order retirement", name)
		}
	}
	// Under in-order retirement the DM wins at 1000 slots for the
	// showcase program, recovering the paper's C2 claim.
	var dm1000, sw1000 int64
	for _, r := range res.Rows {
		if r.Name == "FLO52Q" && r.Window == 1000 {
			if r.Kind == machine.DM {
				dm1000 = r.InOrder
			} else {
				sw1000 = r.InOrder
			}
		}
	}
	if dm1000 >= sw1000 {
		t.Errorf("FLO52Q w=1000 in-order: DM %d should beat SWSM %d", dm1000, sw1000)
	}
}

func TestCacheStudy(t *testing.T) {
	res, err := ctx().CacheStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(res.Rows))
	}
	byName := map[string]map[machine.Kind]CacheRow{}
	for _, r := range res.Rows {
		if byName[r.Name] == nil {
			byName[r.Name] = map[machine.Kind]CacheRow{}
		}
		byName[r.Name][r.Kind] = r
		// Caches capture locality, so the hierarchy never slows things
		// down on these workloads.
		if r.Cached > r.Fixed {
			t.Errorf("%s/%s: hierarchy slower than fixed differential (%d > %d)",
				r.Name, r.Kind, r.Cached, r.Fixed)
		}
		if r.MissRate <= 0 || r.MissRate >= 1 {
			t.Errorf("%s/%s: miss rate %.2f degenerate", r.Name, r.Kind, r.MissRate)
		}
	}
	// The DM stays ahead of the SWSM under the hierarchy too.
	for name, rows := range byName { //daelint:nondeterministic-ok order-free per-workload assertions; failures print their own name
		if rows[machine.DM].Cached >= rows[machine.SWSM].Cached {
			t.Errorf("%s: DM (%d) should beat SWSM (%d) under the hierarchy",
				name, rows[machine.DM].Cached, rows[machine.SWSM].Cached)
		}
	}
}
