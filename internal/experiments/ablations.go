package experiments

import (
	"fmt"

	"daesim/internal/machine"
	"daesim/internal/memsys"
	"daesim/internal/sweep"
)

// AblationPoint is one measured configuration of an ablation study.
type AblationPoint struct {
	Workload string
	Label    string
	Cycles   int64
}

// AblationResult is one ablation study (A1..A5 in DESIGN.md §6).
type AblationResult struct {
	ID          string
	Description string
	Points      []AblationPoint
}

// ablationWindow and ablationMD fix the operating point for ablations:
// a realistic window in the paper's range and the headline differential.
const (
	ablationWindow = 64
	ablationMD     = MDFull
)

// Ablations runs all design-choice studies on the figure workloads.
func (c *Context) Ablations() ([]*AblationResult, error) {
	out := []*AblationResult{}
	run := func(name string, kind machine.Kind, p machine.Params) (int64, error) {
		r, err := c.Runner(name)
		if err != nil {
			return 0, err
		}
		res, err := r.Run(sweep.Point{Kind: kind, P: p})
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	figNames := []string{"FLO52Q", "MDG", "TRACK"}

	// A1: issue-width split. The combined width stays 9; the split moves.
	a1 := &AblationResult{ID: "A1", Description: "DM issue-width split (combined width 9, window 64, MD=60)"}
	for _, name := range figNames {
		for _, split := range [][2]int{{2, 7}, {3, 6}, {4, 5}, {5, 4}, {6, 3}} {
			cyc, err := run(name, machine.DM, machine.Params{
				Window: ablationWindow, MD: ablationMD,
				AUWidth: split[0], DUWidth: split[1],
			})
			if err != nil {
				return nil, err
			}
			a1.Points = append(a1.Points, AblationPoint{
				Workload: name,
				Label:    fmt.Sprintf("AU=%d/DU=%d", split[0], split[1]),
				Cycles:   cyc,
			})
		}
	}
	out = append(out, a1)

	// A2: inter-unit copy latency. TRACK has copies on its critical path;
	// FLO52Q is the copy-free control.
	a2 := &AblationResult{ID: "A2", Description: "inter-unit copy latency (window 64, MD=60)"}
	for _, name := range []string{"TRACK", "FLO52Q"} {
		for _, lat := range []int{1, 2, 4, 8} {
			cyc, err := run(name, machine.DM, machine.Params{
				Window: ablationWindow, MD: ablationMD, CopyLat: lat,
			})
			if err != nil {
				return nil, err
			}
			a2.Points = append(a2.Points, AblationPoint{
				Workload: name, Label: fmt.Sprintf("copy=%d", lat), Cycles: cyc,
			})
		}
	}
	out = append(out, a2)

	// A3: fire-and-forget sends vs slot-held sends. Holding slots removes
	// the AU's ability to slip ahead — the essence of decoupling.
	a3 := &AblationResult{ID: "A3", Description: "fire-and-forget vs slot-held sends (DM, window 64, MD=60)"}
	for _, name := range figNames {
		for _, hold := range []bool{false, true} {
			label := "fire-and-forget"
			if hold {
				label = "slot-held"
			}
			cyc, err := run(name, machine.DM, machine.Params{
				Window: ablationWindow, MD: ablationMD, HoldSendSlots: hold,
			})
			if err != nil {
				return nil, err
			}
			a3.Points = append(a3.Points, AblationPoint{Workload: name, Label: label, Cycles: cyc})
		}
	}
	out = append(out, a3)

	// A4: decoupled-memory capacity. The default is QueueFactor*Window;
	// the sweep shows capacity bounding the AU's useful run-ahead.
	a4 := &AblationResult{ID: "A4", Description: "decoupled-memory capacity (DM, window 64, MD=60)"}
	for _, name := range figNames {
		for _, q := range []int{8, 16, 32, 64, 128, 256} {
			cyc, err := run(name, machine.DM, machine.Params{
				Window: ablationWindow, MD: ablationMD, MemQueue: q,
			})
			if err != nil {
				return nil, err
			}
			a4.Points = append(a4.Points, AblationPoint{
				Workload: name, Label: fmt.Sprintf("queue=%d", q), Cycles: cyc,
			})
		}
		cyc, err := run(name, machine.DM, machine.Params{
			Window: ablationWindow, MD: ablationMD, MemQueue: machine.Unbounded,
		})
		if err != nil {
			return nil, err
		}
		a4.Points = append(a4.Points, AblationPoint{Workload: name, Label: "queue=inf", Cycles: cyc})
	}
	out = append(out, a4)

	// A5: the bypass buffer (the paper's future work): a line-grain LRU
	// buffer in the decoupled memory that captures temporal/spatial
	// locality exposed by decoupling.
	a5 := &AblationResult{ID: "A5", Description: "bypass buffer in the decoupled memory (DM, window 64, MD=60)"}
	for _, name := range figNames {
		base, err := run(name, machine.DM, machine.Params{Window: ablationWindow, MD: ablationMD})
		if err != nil {
			return nil, err
		}
		a5.Points = append(a5.Points, AblationPoint{Workload: name, Label: "none", Cycles: base})
		for _, lines := range []int{16, 64, 256} {
			bp, err := memsys.NewBypass(int64(ablationMD), lines)
			if err != nil {
				return nil, err
			}
			cyc, err := run(name, machine.DM, machine.Params{
				Window: ablationWindow, MD: ablationMD, Mem: bp,
			})
			if err != nil {
				return nil, err
			}
			a5.Points = append(a5.Points, AblationPoint{
				Workload: name,
				Label:    fmt.Sprintf("bypass=%d lines (hit %.0f%%)", lines, 100*bp.HitRate()),
				Cycles:   cyc,
			})
		}
	}
	out = append(out, a5)
	return out, nil
}
