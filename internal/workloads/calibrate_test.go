package workloads

// Calibration harness: not a test of correctness but of fidelity to the
// paper. Run with -run Calibrate -v to print the key observables for all
// seven programs. The assertions live in internal/experiments tests; this
// file exists so calibration is one command during development.

import (
	"testing"

	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/partition"
	"daesim/internal/sweep"
)

func TestCalibrateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report is long")
	}
	for _, spec := range Catalog() {
		tr := spec.Build(1)
		st := tr.Stats()
		suite, err := machine.NewSuite(tr, partition.Classic)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		// LHE at unlimited window, MD=60.
		unlimited := machine.Params{Window: 0, MD: 60}
		perfect, err := suite.PerfectCycles(machine.DM, unlimited)
		if err != nil {
			t.Fatal(err)
		}
		actual, err := suite.RunDM(unlimited)
		if err != nil {
			t.Fatal(err)
		}
		lheInf := metrics.LHE(perfect, actual.Cycles)

		t.Logf("%-7s band=%-10s %v copies(AU->DU %d, DU->AU %d) selfloads=%d",
			spec.Name, spec.Band, st,
			suite.DM.CopiesAUDU, suite.DM.CopiesDUAU, suite.DM.Assignment.SelfLoads)
		t.Logf("  LHE(inf,md60)=%.3f  (perfect=%d actual=%d)", lheInf, perfect, actual.Cycles)

		for _, md := range []int{0, 60} {
			serial := machine.SerialCycles(tr, machine.Params{MD: md}.Timing())
			line := "  md=" + itoa(md) + " speedup:"
			for _, w := range []int{8, 16, 32, 64, 100, 256, 1000} {
				p := machine.Params{Window: w, MD: md}
				dm, err := suite.RunDM(p)
				if err != nil {
					t.Fatal(err)
				}
				sw, err := suite.RunSWSM(p)
				if err != nil {
					t.Fatal(err)
				}
				line += "  w" + itoa(w) + " DM=" + f1(metrics.Speedup(serial, dm.Cycles)) +
					"/SW=" + f1(metrics.Speedup(serial, sw.Cycles))
			}
			t.Log(line)
		}
		// LHE vs window at MD=60 (Table 1 shape).
		line := "  LHE(md60):"
		for _, w := range []int{8, 16, 32, 64, 128, 0} {
			p := machine.Params{Window: w, MD: 60}
			perfect, err := suite.PerfectCycles(machine.DM, p)
			if err != nil {
				t.Fatal(err)
			}
			act, err := suite.RunDM(p)
			if err != nil {
				t.Fatal(err)
			}
			line += "  w" + itoa(w) + "=" + f2(metrics.LHE(perfect, act.Cycles))
		}
		t.Log(line)
		// Equivalent window ratio at md=60 for a few DM windows.
		line = "  EWR(md60):"
		search := metrics.NewSearch(sweep.NewRunner(suite))
		for _, w := range []int{10, 30, 64, 100} {
			r, ok, err := search.EquivalentWindowRatio(machine.Params{Window: w, MD: 60})
			if err != nil {
				t.Fatal(err)
			}
			line += "  w" + itoa(w) + "=" + f2(r)
			if !ok {
				line += "+"
			}
		}
		t.Log(line)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func f1(v float64) string { return fmtFloat(v, 10) }
func f2(v float64) string { return fmtFloat(v, 100) }

func fmtFloat(v float64, scale int) string {
	scaled := int(v*float64(scale) + 0.5)
	whole := scaled / scale
	frac := scaled % scale
	if scale == 10 {
		return itoa(whole) + "." + itoa(frac)
	}
	fs := itoa(frac)
	if frac < 10 {
		fs = "0" + fs
	}
	return itoa(whole) + "." + fs
}
