// Package workloads provides the seven synthetic kernels standing in for
// the PERFECT club programs used by the paper (TRFD, ADM, FLO52Q, DYFESM,
// QCD, MDG, TRACK), plus generated workloads: any name of the form
// "spec:depth=8,ilp=4,..." resolves through internal/workgen to a
// parameterized kernel, making the whole generator space sweepable
// wherever a workload name travels (experiments, the daemon wire
// protocol, the persistent cache — whose keys fingerprint workload
// content, not names).
//
// The original Fortran benchmarks and the authors' tracing toolchain are
// not available; per DESIGN.md §2 each program is replaced by a dataflow
// kernel that models its published character along the axes the study is
// sensitive to:
//
//   - instruction-class mix (address work vs FP work vs memory refs),
//   - shape of the address slice (affine streams, index-load gathers,
//     data-dependent addresses),
//   - FP dependence-chain depth and loop-carried recurrences,
//   - cross-slice dependencies (DU→AU, the loss-of-decoupling hazard),
//   - outer-loop parallelism available to large windows.
//
// The calibration targets are the paper's three latency-hiding bands at
// MD=60 with unlimited windows (highly: TRFD, ADM, FLO52Q; moderately:
// DYFESM, QCD, MDG; poorly: TRACK), the MD=0 crossover between DM and
// SWSM at a few tens of window slots, and the shapes of Figures 4-9.
package workloads

import (
	"fmt"
	"strings"

	"daesim/internal/kernel"
	"daesim/internal/trace"
	"daesim/internal/workgen"
)

// Band classifies latency-hiding effectiveness per the paper's Table 1.
type Band uint8

const (
	// Highly effective: LHE >= 0.9 at unlimited window, MD=60.
	Highly Band = iota
	// Moderately effective: 0.55 <= LHE < 0.9.
	Moderately
	// Poorly effective: LHE < 0.55.
	Poorly
)

func (b Band) String() string {
	switch b {
	case Highly:
		return "highly"
	case Moderately:
		return "moderately"
	case Poorly:
		return "poorly"
	default:
		return fmt.Sprintf("band(%d)", uint8(b))
	}
}

// Spec describes one workload.
type Spec struct {
	// Name is the benchmark name used by the paper.
	Name string
	// Description summarizes the structural model.
	Description string
	// Band is the paper's latency-hiding band for the program.
	Band Band
	// Build constructs the trace at the given scale (1 = default size).
	Build func(scale int) *trace.Trace
}

// catalog is ordered as in the paper's Table 1.
var catalog = []Spec{
	{
		Name: "TRFD",
		Description: "two-electron integral transformation: dense blocked " +
			"dot products with affine streams and interleaved accumulators",
		Band:  Highly,
		Build: TRFD,
	},
	{
		Name: "ADM",
		Description: "pseudospectral air-quality model: independent line " +
			"sweeps with a first-order carried smoothing recurrence",
		Band:  Highly,
		Build: ADM,
	},
	{
		Name: "FLO52Q",
		Description: "transonic-flow Euler solver: 2-D stencil flux updates, " +
			"memory-dense and highly parallel across cells",
		Band:  Highly,
		Build: FLO52Q,
	},
	{
		Name: "DYFESM",
		Description: "structural-dynamics FEM: index-load gathers and " +
			"scatters around dense element updates",
		Band:  Moderately,
		Build: DYFESM,
	},
	{
		Name: "QCD",
		Description: "lattice gauge theory: deep multiply-chain link updates " +
			"with staggered neighbour gathers",
		Band:  Moderately,
		Build: QCD,
	},
	{
		Name: "MDG",
		Description: "molecular dynamics of water: neighbour-list walks with " +
			"chained index loads and carried force accumulation",
		Band:  Moderately,
		Build: MDG,
	},
	{
		Name: "TRACK",
		Description: "missile tracking: serial per-track state recurrences " +
			"with data-dependent measurement gathers (loss of decoupling)",
		Band:  Poorly,
		Build: TRACK,
	},
}

// Catalog returns all workload specs in the paper's Table 1 order.
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// Names returns the workload names in Table 1 order.
func Names() []string {
	names := make([]string, len(catalog))
	for i, s := range catalog {
		names[i] = s.Name
	}
	return names
}

// FigureNames returns the three programs the paper plots in Figures 4-9.
func FigureNames() []string { return []string{"FLO52Q", "MDG", "TRACK"} }

// Lookup returns the spec for a workload name. Names carrying the
// "spec:" prefix are generated workloads: the suffix is a workgen spec
// (e.g. "spec:depth=8,ilp=4,mem=0.4,addr=gather"), parsed and
// canonicalized here, so every spelling of a spec resolves to one
// workload identity. The unknown-name error enumerates the catalog in
// Names() order — the same order repro -list prints and the daemon's
// /v1/run validation errors surface — so every user-facing enumeration
// of the registry agrees.
func Lookup(name string) (Spec, error) {
	if rest, ok := strings.CutPrefix(name, workgen.Prefix); ok {
		gs, err := workgen.Parse(rest)
		if err != nil {
			return Spec{}, fmt.Errorf("workloads: bad generated workload %q: %w", name, err)
		}
		return Spec{
			Name:        gs.Name(),
			Description: "generated workload (internal/workgen)",
			Band:        generatedBand(gs),
			Build:       gs.Generate,
		}, nil
	}
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q (known: %v, or %sdepth=...,ilp=...; see internal/workgen)",
		name, Names(), workgen.Prefix)
}

// generatedBand predicts a generated spec's latency-hiding band from
// the knobs that drive the paper's taxonomy: DU→AU hazards put memory
// latency on the critical path (TRACK's failure mode), and
// data-dependent chases serialize the address slice (the self-load
// story of the moderate band). The prediction is advisory — a label for
// listings, not a measurement.
func generatedBand(gs workgen.Spec) Band {
	switch {
	case gs.Hazard > 0.3:
		return Poorly
	case gs.Hazard > 0 || gs.Addr == workgen.Chase || gs.Addr == workgen.Mixed:
		return Moderately
	default:
		return Highly
	}
}

// Build constructs the named workload trace at the given scale.
func Build(name string, scale int) (*trace.Trace, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	return s.Build(scale), nil
}

// TRFD models the two-electron integral transformation: nests of dense
// dot products. Structure per outer block: a run of inner steps each
// loading two operands from affine streams, multiplying, and adding into
// one of four interleaved accumulators; the block ends by reducing the
// accumulators and storing one result. Addresses depend only on the block
// base, so the address slice decouples perfectly; the four accumulators
// keep the carried FP chains off the critical path. Band: highly.
func TRFD(scale int) *trace.Trace {
	b := kernel.New("TRFD")
	const inner = 24
	outer := 480 * scale
	a := b.Array("A", outer*inner, 8)
	c := b.Array("B", outer*inner, 8)
	out := b.Array("C", outer, 8)
	for o := 0; o < outer; o++ {
		base := b.Int() // block base address
		var acc [4]kernel.Val
		for i := 0; i < inner; i++ {
			ia := b.Int(base)
			av := b.Load(a, o*inner+i, ia)
			ib := b.Int(base)
			bv := b.Load(c, o*inner+i, ib)
			p := b.FP(av, bv)
			k := i % len(acc)
			if acc[k].Valid() {
				acc[k] = b.FP(p, acc[k])
			} else {
				acc[k] = p
			}
		}
		r1 := b.FP(acc[0], acc[1])
		r2 := b.FP(acc[2], acc[3])
		r := b.FP(r1, r2)
		b.Store(out, o, r, base)
	}
	return b.MustTrace()
}

// ADM models the pseudospectral air-quality model: many independent line
// sweeps, each with a first-order carried smoothing recurrence. The loads
// are affine and independent of the recurrence, so the AU decouples
// fully; the DU is chain-bound within a line, and the trace interleaves a
// small batch of lines step by step — the schedule a software-pipelining
// Fortran compiler produces for independent inner loops — so program
// order carries fine-grained parallelism past the recurrence (the paper's
// machines both assume compiler-scheduled code; a reorder-buffer SWSM is
// throttled by program-order residency, so naive source order would
// misrepresent the traces the paper measured). Band: highly.
func ADM(scale int) *trace.Trace {
	b := kernel.New("ADM")
	const n = 32
	const batch = 4 // lines interleaved by the compiler's schedule
	lines := 320 * scale
	x := b.Array("X", lines*n, 8)
	y := b.Array("Y", lines*n, 8)
	for l0 := 0; l0 < lines; l0 += batch {
		var base, carry [batch]kernel.Val
		for k := 0; k < batch; k++ {
			base[k] = b.Int()
			carry[k] = b.FP(b.Load(x, (l0+k)*n, base[k]))
		}
		for i := 1; i < n; i++ {
			for k := 0; k < batch; k++ {
				idx := b.Int(base[k])
				v := b.Load(x, (l0+k)*n+i, idx)
				carry[k] = b.FP(v, carry[k])
				st := b.Int(base[k])
				b.Store(y, (l0+k)*n+i, carry[k], st)
			}
		}
	}
	return b.MustTrace()
}

// FLO52Q models the transonic-flow Euler solver: a 2-D stencil flux
// update, memory-dense (five loads and two stores per cell) with a short
// flux DAG and a row recurrence reset every few cells. Cells are
// massively parallel, which makes it the paper's showcase for decoupled
// prefetching: the AU streams whole rows ahead while the SWSM's single
// window clogs with waiting accesses. A sparse serialized walk of the
// multigrid patch table (one chased index load per 24 cells) keeps a
// bounded amount of memory latency on the critical path, placing the
// program at the low edge of the highly-effective band.
func FLO52Q(scale int) *trace.Trace {
	b := kernel.New("FLO52Q")
	const cols = 64
	const spinePeriod = 20
	rows := 56 * scale
	w := b.Array("W", rows*cols+2*cols+2, 8)
	fl := b.Array("F", rows*cols, 8)
	res := b.Array("R", rows*cols, 8)
	patch := b.Array("PATCH", rows*cols/spinePeriod+2, 8)
	cursor := b.Int() // serialized patch-table cursor
	cells := 0
	for r := 0; r < rows; r++ {
		base := b.Int(cursor)
		var carry kernel.Val
		for cc := 0; cc < cols; cc++ {
			if cells%spinePeriod == 0 {
				pv := b.Load(patch, cells/spinePeriod, cursor)
				cursor = b.Int(pv)
				base = b.Int(cursor)
			}
			cells++
			cell := r*cols + cc
			// Mapped-coordinate metric arithmetic: FLO52 works on a
			// curvilinear grid, so each cell's addresses need extra
			// integer work beyond simple induction. The metric terms for
			// the two directions are independent of each other.
			m1 := b.Int(base)
			m2 := b.Int(base)
			i1 := b.Int(base)
			i2 := b.Int(base)
			west := b.Load(w, cell, i1)
			east := b.Load(w, cell+1, i1)
			north := b.Load(w, cell+cols, i2)
			south := b.Load(w, cell+2*cols, i2)
			center := b.Load(w, cell+cols+1, i2)
			// The flux DAG is wide: the two direction fluxes join for the
			// stored flux; the centre term folds into the row residual,
			// not the flux path.
			f1 := b.FP(west, east)
			f2 := b.FP(north, south)
			f4 := b.FP(f1, f2)
			fc := b.FP(center)
			if cc%2 != 0 && carry.Valid() {
				carry = b.FP(f4, carry)
			} else {
				carry = b.FP(f4, fc)
			}
			b.Store(fl, cell, f4, m1)
			b.Store(res, cell, carry, m2)
		}
	}
	return b.MustTrace()
}

// DYFESM models the structural-dynamics FEM code: per element, an index
// load (an AU self-load) feeds three gathered operand loads, a dense
// element update of depth five, and a scatter store through the same
// index. The self-loads put memory latency on the AU's own critical
// path, bounding slip and lowering the latency-hiding band to moderate.
func DYFESM(scale int) *trace.Trace {
	b := kernel.New("DYFESM")
	const spinePeriod = 72
	elements := 2600 * scale
	front := b.Array("FRONT", elements/spinePeriod+2, 8)
	idx := b.Array("IDX", elements, 8)
	xv := b.Array("X", 4*elements, 8)
	fv := b.Array("Fout", 4*elements, 8)
	cursor := b.Int() // serialized frontal-solver cursor
	for e := 0; e < elements; e++ {
		if e%spinePeriod == 0 {
			fvv := b.Load(front, e/spinePeriod, cursor)
			cursor = b.Int(fvv) // next front depends on this front's table entry
		}
		eb := b.Int(cursor)
		ix := b.Load(idx, e, eb) // element connectivity (self-load)
		a1 := b.Int(ix)
		x1 := b.Load(xv, (e*3)%(4*elements), eb)
		x2 := b.Load(xv, (e*3+1)%(4*elements), eb)
		x3 := b.Load(xv, (e*3+2)%(4*elements), a1) // gathered operand
		g1 := b.FP(x1, x2)
		g2 := b.FP(x3, g1)
		g3 := b.FP(g2)
		g4 := b.FP(g3, g1)
		g5 := b.FP(g4)
		sc := b.Int(ix)
		b.Store(fv, (e*3)%(4*elements), g5, sc)
	}
	return b.MustTrace()
}

// QCD models the lattice-gauge Monte Carlo code: per site, a staggered
// neighbour gather (an index load shared by each 4-site block) and a wide
// link update (eight FP ops in parallel depth-3 rows, standing in for
// SU(3) matrix arithmetic — nine short dot products, wide rather than
// chained), with running products split into two alternating partials per
// block. The trace interleaves block pairs site by site — the schedule a
// software-pipelining compiler produces for independent blocks (see ADM).
// Periodic self-loads keep it moderately effective.
func QCD(scale int) *trace.Trace {
	b := kernel.New("QCD")
	const spinePeriod = 32
	const batch = 2 // 4-site blocks interleaved by the compiler's schedule
	sites := 1400 * scale
	ord := b.Array("ORD", sites/spinePeriod+2, 8)
	nbr := b.Array("NBR", sites, 8)
	u := b.Array("U", 4*sites, 8)
	out := b.Array("V", sites, 8)
	cursor := b.Int() // serialized sweep-ordering cursor
	for s0 := 0; s0 < sites; s0 += 4 * batch {
		if s0%spinePeriod == 0 {
			ov := b.Load(ord, s0/spinePeriod, cursor)
			cursor = b.Int(ov) // staggered sweep order chains through the table
		}
		var base, ix [batch]kernel.Val
		var carry [batch][2]kernel.Val
		for k := 0; k < batch; k++ {
			base[k] = b.Int(cursor)
			ix[k] = b.Load(nbr, s0+4*k, base[k]) // staggered neighbour index (self-load)
		}
		for j := 0; j < 4; j++ {
			for k := 0; k < batch; k++ {
				s := s0 + 4*k + j
				a1 := b.Int(ix[k], base[k])
				a2 := b.Int(ix[k], base[k])
				l1 := b.Load(u, (4*s)%(4*sites), a1)
				l2 := b.Load(u, (4*s+1)%(4*sites), a2)
				l3 := b.Load(u, (4*s+2)%(4*sites), a1)
				l4 := b.Load(u, (4*s+3)%(4*sites), a2)
				m1 := b.FP(l1, l2)
				m2 := b.FP(l3, l4)
				m3 := b.FP(l1, l3)
				m4 := b.FP(l2, l4)
				h1 := b.FP(m1, m2)
				h2 := b.FP(m3, m4)
				h := b.FP(h1, h2)
				// Alternating running partials (real and imaginary parts).
				p := j % 2
				if carry[k][p].Valid() {
					carry[k][p] = b.FP(h1, carry[k][p])
				} else {
					carry[k][p] = h1
				}
				if j == 3 {
					b.Store(out, s, b.FP(carry[k][0], carry[k][1]), base[k])
				} else {
					b.Store(out, s, h, base[k])
				}
			}
		}
	}
	return b.MustTrace()
}

// MDG models the molecular-dynamics water code: per molecule, a walk of
// its neighbour list (one index self-load per neighbour, three coordinate
// gathers through per-coordinate wrap terms), a shallow wide force DAG
// (pairwise terms combine in parallel, as the real code's unrolled inner
// loop schedules them) feeding two interleaved carried partial sums;
// every tenth molecule the linked-cell list cursor chases through
// memory, serializing a slice of the address stream. The trace
// interleaves molecule pairs neighbour by neighbour — the schedule a
// software-pipelining compiler produces for independent outer iterations
// — so program order carries the cross-molecule parallelism (see ADM).
// Band: moderately (lowest of the band).
func MDG(scale int) *trace.Trace {
	b := kernel.New("MDG")
	const neighbors = 6
	const spinePeriod = 10 // molecules per linked-cell chase
	const batch = 4        // molecules interleaved by the compiler's schedule
	mols := 340 * scale
	cellList := b.Array("CELL", mols/spinePeriod+2, 8)
	nbr := b.Array("NBR", mols*neighbors, 8)
	xyz := b.Array("XYZ", 3*mols*neighbors, 8)
	f := b.Array("F", 3*mols, 8)
	cursor := b.Int() // linked-cell list cursor
	for m0 := 0; m0 < mols; m0 += batch {
		var mb [batch]kernel.Val
		var acc [batch][2]kernel.Val
		for k := 0; k < batch; k++ {
			m := m0 + k
			if m%spinePeriod == 0 {
				cv := b.Load(cellList, m/spinePeriod, cursor)
				cursor = b.Int(cv) // next cell depends on this cell's entry
			}
			mb[k] = b.Int(cursor)
		}
		for n := 0; n < neighbors; n++ {
			for k := 0; k < batch; k++ {
				m := m0 + k
				ix := b.Load(nbr, m*neighbors+n, mb[k]) // neighbour index (self-load)
				// Periodic-image wrap arithmetic on the neighbour index:
				// each coordinate wraps through its own independent term
				// (the real code wraps x, y and z separately).
				iw := b.Int(ix)
				iw2 := b.Int(ix)
				ia := b.Int(ix)
				c1 := b.Load(xyz, (3*(m*neighbors+n))%(3*mols*neighbors), ia)
				c2 := b.Load(xyz, (3*(m*neighbors+n)+1)%(3*mols*neighbors), iw)
				c3 := b.Load(xyz, (3*(m*neighbors+n)+2)%(3*mols*neighbors), iw2)
				// Shallow force DAG (the real code's pairwise terms are
				// wide, not chained) feeding two interleaved partial sums.
				d1 := b.FP(c1, c2)
				d2 := b.FP(c3)
				d4 := b.FP(d1, d2)
				a := n % 2
				if acc[k][a].Valid() {
					acc[k][a] = b.FP(d4, acc[k][a])
				} else {
					acc[k][a] = b.FP(d4)
				}
			}
		}
		for k := 0; k < batch; k++ {
			st := b.Int(mb[k])
			b.Store(f, (3*(m0+k))%(3*mols), b.FP(acc[k][0], acc[k][1]), st)
		}
	}
	return b.MustTrace()
}

// TRACK models the missile-tracking code: a small set of tracks, each a
// long serial state recurrence. Every third step gates the next
// measurement address on the floating-point state (a DU→AU dependence —
// the loss-of-decoupling hazard), so memory latency lands on the critical
// path and cannot be hidden; the other steps fetch along the predicted
// (affine) path. Little parallelism exists beyond the track count.
// Band: poorly.
func TRACK(scale int) *trace.Trace {
	b := kernel.New("TRACK")
	const tracks = 14
	steps := 340 * scale
	meas := b.Array("MEAS", tracks*steps, 8)
	hist := b.Array("HIST", tracks*steps, 8)
	type trackState struct {
		state kernel.Val
		gate  kernel.Val
	}
	st := make([]trackState, tracks)
	for tIdx := range st {
		st[tIdx].state = b.FP()
		st[tIdx].gate = b.Int()
	}
	// Interleave the tracks step by step, as the real code sweeps all
	// active tracks each radar frame.
	for s := 0; s < steps; s++ {
		for tr := 0; tr < tracks; tr++ {
			ts := &st[tr]
			if s%3 == 0 {
				// Gate recomputed from the FP state: loss of decoupling.
				ts.gate = b.Int(ts.state)
			} else {
				ts.gate = b.Int(ts.gate)
			}
			m := b.Load(meas, tr*steps+s, ts.gate)
			ts.state = b.FPChain(3, m, ts.state)
			if s%8 == 0 {
				b.Store(hist, tr*steps+s, ts.state, ts.gate)
			}
		}
	}
	return b.MustTrace()
}
