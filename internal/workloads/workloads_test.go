package workloads

import (
	"testing"

	"daesim/internal/isa"
	"daesim/internal/partition"
)

func TestCatalogShape(t *testing.T) {
	specs := Catalog()
	if len(specs) != 7 {
		t.Fatalf("want 7 workloads, got %d", len(specs))
	}
	want := []string{"TRFD", "ADM", "FLO52Q", "DYFESM", "QCD", "MDG", "TRACK"}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("catalog order: got %s at %d, want %s", s.Name, i, want[i])
		}
		if s.Description == "" || s.Build == nil {
			t.Errorf("%s: incomplete spec", s.Name)
		}
	}
	// Band distribution per the paper: 3 highly, 3 moderately, 1 poorly.
	counts := map[Band]int{}
	for _, s := range specs {
		counts[s.Band]++
	}
	if counts[Highly] != 3 || counts[Moderately] != 3 || counts[Poorly] != 1 {
		t.Fatalf("band distribution wrong: %v", counts)
	}
}

func TestLookupAndBuild(t *testing.T) {
	if _, err := Lookup("QCD"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	tr, err := Build("TRFD", 0) // scale clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestFigureNamesAreInCatalog(t *testing.T) {
	for _, n := range FigureNames() {
		if _, err := Lookup(n); err != nil {
			t.Errorf("figure workload %s missing: %v", n, err)
		}
	}
}

func TestAllTracesValidate(t *testing.T) {
	for _, spec := range Catalog() {
		tr := spec.Build(1)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if tr.Name != spec.Name {
			t.Errorf("trace name %q != spec name %q", tr.Name, spec.Name)
		}
		st := tr.Stats()
		if st.Total < 10_000 {
			t.Errorf("%s: trace too small (%d)", spec.Name, st.Total)
		}
		if st.MemFrac < 0.15 || st.MemFrac > 0.60 {
			t.Errorf("%s: memory fraction %.2f implausible", spec.Name, st.MemFrac)
		}
		if st.ByClass[isa.FPALU] == 0 {
			t.Errorf("%s: no FP work", spec.Name)
		}
	}
}

func TestScaleGrowsLinearly(t *testing.T) {
	for _, spec := range Catalog() {
		n1 := spec.Build(1).Len()
		n2 := spec.Build(2).Len()
		ratio := float64(n2) / float64(n1)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%s: scale 2 gives %.2fx instructions, want ~2x", spec.Name, ratio)
		}
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, spec := range Catalog() {
		a, b := spec.Build(1), spec.Build(1)
		if a.Len() != b.Len() {
			t.Errorf("%s: nondeterministic length", spec.Name)
			continue
		}
		for i := range a.Instrs {
			if a.Instrs[i].Class != b.Instrs[i].Class || a.Instrs[i].MemAddr != b.Instrs[i].MemAddr {
				t.Errorf("%s: instruction %d differs between builds", spec.Name, i)
				break
			}
		}
	}
}

func TestStructuralSignatures(t *testing.T) {
	// Each workload's partition must exhibit the structural feature its
	// documentation claims.
	get := func(name string) *partition.Assignment {
		tr, err := Build(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		a, err := partition.Partition(tr, partition.Classic)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if get("TRFD").SelfLoads != 0 {
		t.Error("TRFD should have no self-loads (pure affine streams)")
	}
	if get("ADM").SelfLoads != 0 {
		t.Error("ADM should have no self-loads")
	}
	for _, name := range []string{"DYFESM", "QCD", "MDG"} {
		if get(name).SelfLoads == 0 {
			t.Errorf("%s should gather through self-loads", name)
		}
	}
	// TRACK's loss of decoupling shows up as DU->AU values, which the
	// partitioner marks by keeping FP producers on the DU while their
	// integer consumers sit on the AU; the lowering then inserts copies.
	trackTrace, err := Build("TRACK", 1)
	if err != nil {
		t.Fatal(err)
	}
	a := get("TRACK")
	lod := 0
	for i := range trackTrace.Instrs {
		in := &trackTrace.Instrs[i]
		if in.Class != isa.IntALU || a.Unit[i] != isa.AU {
			continue
		}
		for _, p := range in.Args {
			if trackTrace.Instrs[p].Class == isa.FPALU {
				lod++
			}
		}
	}
	if lod == 0 {
		t.Error("TRACK should have FP-dependent address computation (loss of decoupling)")
	}
}
