// Package plot renders experiment output: ASCII line charts for the
// paper's figures, aligned text tables, and gnuplot-compatible data files
// so results can be re-plotted with external tools.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve: paired x/y samples and a legend name.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguish overlapping curves in ASCII charts.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders series as an ASCII line chart.
type Chart struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (defaults 72x24).
	Width, Height int
	// Series holds the curves.
	Series []Series
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 24
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // anchor y at zero like the paper's figures
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
			ymin = math.Min(ymin, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("plot: chart %q has no data", c.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		col := int((x - xmin) / (xmax - xmin) * float64(width-1))
		return clamp(col, 0, width-1)
	}
	toRow := func(y float64) int {
		row := int((y - ymin) / (ymax - ymin) * float64(height-1))
		return clamp(height-1-row, 0, height-1)
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		// Draw line segments between consecutive samples.
		for i := 0; i+1 < len(s.X); i++ {
			drawSegment(grid, toCol(s.X[i]), toRow(s.Y[i]), toCol(s.X[i+1]), toRow(s.Y[i+1]), m)
		}
		if len(s.X) == 1 {
			grid[toRow(s.Y[0])][toCol(s.X[0])] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for i, row := range grid {
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("%8.1f", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.1f", ymin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10.0f%s%10.0f\n", strings.Repeat(" ", 8), xmin,
		center(c.XLabel, width-20), xmax)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s   %c  %s\n", strings.Repeat(" ", 8), markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func center(s string, width int) string {
	if width < len(s) {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-left-len(s))
}

// drawSegment rasterizes a line segment with Bresenham's algorithm.
func drawSegment(grid [][]byte, x0, y0, x1, y1 int, m byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 >= x1 {
		sx = -1
	}
	if y0 >= y1 {
		sy = -1
	}
	err := dx + dy
	for {
		grid[y0][x0] = m
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Table renders aligned rows of cells. The first row is the header.
type Table struct {
	Title string
	Rows  [][]string
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := map[int]int{}
	for _, row := range t.Rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for ri, row := range t.Rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for c := range row {
				if c > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[c]))
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDat writes series as a gnuplot-compatible data file: a commented
// header, then one block per series separated by blank lines.
func WriteDat(w io.Writer, title string, series []Series) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "# series: %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "%g\t%g\n", s.X[i], s.Y[i])
		}
		b.WriteString("\n\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
