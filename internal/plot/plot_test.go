package plot

import (
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "rising", X: []float64{0, 50, 100}, Y: []float64{0, 5, 10}},
		{Name: "flat", X: []float64{0, 50, 100}, Y: []float64{4, 4, 4}},
	}
}

func TestChartRender(t *testing.T) {
	var b strings.Builder
	ch := Chart{
		Title: "test chart", XLabel: "Window", YLabel: "Speedup",
		Width: 40, Height: 10, Series: twoSeries(),
	}
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"test chart", "Speedup", "Window", "rising", "flat", "10.0", "0.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("chart missing series markers:\n%s", out)
	}
	// The rising series should have its marker in the top-right region.
	lines := strings.Split(out, "\n")
	top := lines[2] // first grid row
	if !strings.Contains(top, "*") {
		t.Errorf("rising series should reach the top row: %q", top)
	}
}

func TestChartEmptyFails(t *testing.T) {
	var b strings.Builder
	ch := Chart{Title: "empty"}
	if err := ch.Render(&b); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestChartSinglePoint(t *testing.T) {
	var b strings.Builder
	ch := Chart{Series: []Series{{Name: "dot", X: []float64{5}, Y: []float64{5}}}}
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("single point not drawn")
	}
}

func TestChartDefaultsAndClamping(t *testing.T) {
	var b strings.Builder
	// Negative values force y-min below zero and exercise clamping.
	ch := Chart{Series: []Series{{Name: "neg", X: []float64{0, 1}, Y: []float64{-5, 5}}}}
	if err := ch.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "-5.0") {
		t.Errorf("negative minimum not labelled:\n%s", b.String())
	}
}

func TestTableRender(t *testing.T) {
	var b strings.Builder
	tbl := Table{
		Title: "t",
		Rows: [][]string{
			{"name", "value"},
			{"alpha", "1"},
			{"beta-long", "22"},
		},
	}
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("missing header rule: %q", lines[2])
	}
	// Columns align: "value" starts at the same offset in each row.
	off := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][off:], "1") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestWriteDat(t *testing.T) {
	var b strings.Builder
	if err := WriteDat(&b, "my data", twoSeries()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# my data") || !strings.Contains(out, "# series: rising") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "50\t5") {
		t.Fatalf("missing data point:\n%s", out)
	}
	// Two blocks separated by blank lines for gnuplot's index handling.
	if strings.Count(out, "\n\n\n") < 1 {
		t.Fatalf("series blocks not separated:\n%q", out)
	}
}
