package workgen

import (
	"bytes"
	"strings"
	"testing"

	"daesim/internal/isa"
	"daesim/internal/trace"
)

// traceBytes encodes tr in the binary trace format, the byte identity
// every determinism property below compares.
func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseFormatRoundTrip(t *testing.T) {
	specs := []Spec{
		Default(),
		{Depth: 1, ILP: 1, Mem: 0, Addr: Affine, Hazard: 0, Iters: 1, Seed: 0},
		{Depth: 64, ILP: 64, Mem: 0.25, Addr: Gather, Hazard: 1, Iters: 16, Seed: 1<<64 - 1},
		{Depth: 8, ILP: 4, Mem: 0.4, Addr: Chase, Hazard: 0.125, Iters: 640, Seed: 7},
		{Depth: 12, ILP: 2, Mem: 2.5, Addr: Mixed, Hazard: 0.0625, Iters: 100, Seed: 42},
	}
	for _, want := range specs {
		got, err := Parse(want.Format())
		if err != nil {
			t.Fatalf("Parse(%q): %v", want.Format(), err)
		}
		if got != want {
			t.Errorf("round trip changed the spec: %q -> %+v", want.Format(), got)
		}
	}
}

func TestParseDefaultsAndSpacing(t *testing.T) {
	got, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if got != Default() {
		t.Errorf("empty spec is not the default: %+v", got)
	}
	got, err = Parse(" depth=8 , addr=gather ,")
	if err != nil {
		t.Fatal(err)
	}
	want := Default()
	want.Depth, want.Addr = 8, Gather
	if got != want {
		t.Errorf("partial spec = %+v, want %+v", got, want)
	}
}

// TestParseRejectsMalformed pins the field-naming contract: every
// rejection names the offending field or token.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ in, want string }{
		{"depth", `bad field "depth"`},
		{"width=4", `unknown field "width"`},
		{"depth=4,depth=8", `duplicate field "depth"`},
		{"depth=x", `bad depth "x"`},
		{"depth=0", "depth 0 out of range"},
		{"depth=65", "depth 65 out of range"},
		{"ilp=0", "ilp 0 out of range"},
		{"mem=-1", "mem -1 out of range"},
		{"mem=9", "mem 9 out of range"},
		{"mem=NaN", "mem NaN out of range"},
		{"addr=stride", `bad addr "stride"`},
		{"hazard=1.5", "hazard 1.5 out of range"},
		{"iters=0", "iters 0 out of range"},
		{"iters=1000000", "iters 1000000 out of range"},
		{"seed=-3", `bad seed "-3"`},
		{"depth=64,ilp=64,mem=4,iters=65536", "cap"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not name the problem (want %q)", c.in, err, c.want)
		}
	}
}

// TestGenerateDeterministic: same spec and seed, byte-identical trace —
// the identity the cache fingerprint and the fleet depend on.
func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Depth: 6, ILP: 3, Mem: 1.5, Addr: Mixed, Hazard: 0.2, Iters: 40, Seed: 9}
	a := traceBytes(t, spec.Generate(1))
	b := traceBytes(t, spec.Generate(1))
	if !bytes.Equal(a, b) {
		t.Fatal("same spec+seed produced different traces")
	}
}

// TestGenerateSeedsDistinct: distinct seeds must produce distinct
// traces, for every address shape (the seed drives address jitter even
// when it has no structural decisions to make).
func TestGenerateSeedsDistinct(t *testing.T) {
	for _, shape := range []Shape{Affine, Gather, Chase, Mixed} {
		spec := Spec{Depth: 4, ILP: 2, Mem: 1, Addr: shape, Hazard: 0.1, Iters: 20, Seed: 1}
		other := spec
		other.Seed = 2
		a := spec.Generate(1)
		bt := other.Generate(1)
		// Compare instruction streams, not encodings: the name embeds the
		// seed, so byte inequality alone would prove nothing.
		a.Name, bt.Name = "x", "x"
		if bytes.Equal(traceBytes(t, a), traceBytes(t, bt)) {
			t.Errorf("addr=%s: seeds 1 and 2 produced identical traces", shape)
		}
	}
}

// TestDepthMonotone: raising depth never lowers the critical-path
// length — the carried FP chain grows and no other path family loses
// edges (structural decisions are coordinate-hashed, not drawn
// sequentially).
func TestDepthMonotone(t *testing.T) {
	tm := isa.DefaultTiming(60)
	for _, shape := range []Shape{Affine, Gather, Chase, Mixed} {
		prev := int64(-1)
		for depth := 1; depth <= 16; depth++ {
			spec := Spec{Depth: depth, ILP: 4, Mem: 0.5, Addr: shape, Hazard: 0.25, Iters: 32, Seed: 5}
			cp := spec.Generate(1).CriticalPath(tm)
			if cp < prev {
				t.Errorf("addr=%s: critical path fell from %d to %d at depth %d", shape, prev, cp, depth)
			}
			prev = cp
		}
	}
}

// TestMemMonotone: raising mem never lowers ref density (memory refs
// per FP op).
func TestMemMonotone(t *testing.T) {
	for _, shape := range []Shape{Affine, Gather, Chase, Mixed} {
		prev := -1.0
		for m := 0; m <= 16; m++ {
			spec := Spec{Depth: 4, ILP: 4, Mem: float64(m) / 4, Addr: shape, Hazard: 0.1, Iters: 32, Seed: 5}
			st := spec.Generate(1).Stats()
			density := float64(st.MemRefs) / float64(st.ByClass[isa.FPALU])
			if density < prev {
				t.Errorf("addr=%s: ref density fell from %.3f to %.3f at mem=%.2f", shape, prev, density, spec.Mem)
			}
			prev = density
		}
	}
}

// TestHazardMonotone: raising hazard only ever adds DU→AU events (the
// draw is thresholded per coordinate), so the critical path never
// shortens.
func TestHazardMonotone(t *testing.T) {
	tm := isa.DefaultTiming(60)
	prev := int64(-1)
	for h := 0; h <= 10; h++ {
		spec := Spec{Depth: 4, ILP: 2, Mem: 1, Addr: Affine, Hazard: float64(h) / 10, Iters: 32, Seed: 5}
		cp := spec.Generate(1).CriticalPath(tm)
		if cp < prev {
			t.Errorf("critical path fell from %d to %d at hazard=%.1f", prev, cp, spec.Hazard)
		}
		prev = cp
	}
}

// TestGenerateScale: scale multiplies the per-lane step count.
func TestGenerateScale(t *testing.T) {
	spec := Spec{Depth: 4, ILP: 2, Mem: 1, Addr: Affine, Hazard: 0, Iters: 16, Seed: 3}
	s1 := spec.Generate(1).Stats()
	s3 := spec.Generate(3).Stats()
	if s3.Total <= 2*s1.Total {
		t.Fatalf("scale 3 trace (%d instrs) not ~3x scale 1 (%d instrs)", s3.Total, s1.Total)
	}
}

// TestShapesShapeTheSlice: the addr knob actually changes the address
// slice — gathers load more (index loads), and chases put loaded values
// on integer address paths.
func TestShapesShapeTheSlice(t *testing.T) {
	base := Spec{Depth: 4, ILP: 2, Mem: 1, Hazard: 0, Iters: 32, Seed: 5}
	affine, gather := base, base
	affine.Addr, gather.Addr = Affine, Gather
	sa, sg := affine.Generate(1).Stats(), gather.Generate(1).Stats()
	if sg.ByClass[isa.Load] <= sa.ByClass[isa.Load] {
		t.Errorf("gather (%d loads) should out-load affine (%d)", sg.ByClass[isa.Load], sa.ByClass[isa.Load])
	}
	chase := base
	chase.Addr = Chase
	tr := chase.Generate(1)
	dependent := false
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		if in.Class != isa.IntALU {
			continue
		}
		for _, a := range in.Args {
			if tr.Instrs[a].Class == isa.Load {
				dependent = true
			}
		}
	}
	if !dependent {
		t.Error("chase trace has no integer op consuming a loaded value")
	}
}
