package workgen

import (
	"reflect"
	"testing"

	"daesim/internal/engine"
	"daesim/internal/machine"
	"daesim/internal/partition"
)

// FuzzSpecParse hardens the spec grammar against arbitrary input: Parse
// must reject malformed text with an error — never panic — and every
// spec it accepts must round-trip through the canonical Format
// unchanged (the identity the workload registry canonicalizes names
// with). Seed corpus under testdata/fuzz/FuzzSpecParse; CI gives it a
// short live-fuzz window on every PR next to the batch-body fuzzers.
func FuzzSpecParse(f *testing.F) {
	for _, s := range []string{
		"",
		"depth=8,ilp=4,mem=0.4,addr=gather,hazard=0.1,iters=256,seed=7",
		"depth=64,ilp=64,mem=4,iters=65536",
		"addr=mixed,seed=18446744073709551615",
		"depth==1,,ilp", "mem=1e308,hazard=nan", "seed=-1", "addr=@", "depth=4,depth=4",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return
		}
		again, err := Parse(spec.Format())
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not parse: %v", spec.Format(), s, err)
		}
		if again != spec {
			t.Fatalf("canonical round trip changed the spec: %q -> %+v -> %+v", s, spec, again)
		}
	})
}

// FuzzWorkgenDifferential is the generator's payoff as an engine
// verifier: every exec builds a random valid spec, lowers it for both
// machines, and runs a random configuration through the
// structure-of-arrays engine and the retained seed oracle
// (engine.ReferenceRun). Results must be bit-identical, and two
// machine-level invariants must hold — cycles are monotone
// non-decreasing as the window shrinks (asserted at unlimited issue
// width, where the Graham scheduling anomaly cannot bite), and the DM
// never beats the ideal-trace dataflow bound. CI runs this for at
// least 60s per PR, sweeping a workload space the seven hand-built
// kernels only sample.
func FuzzWorkgenDifferential(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(10), uint8(0), uint8(2), uint8(12), uint64(1), uint8(24), uint8(60))
	f.Add(uint8(8), uint8(3), uint8(5), uint8(1), uint8(0), uint8(8), uint64(7), uint8(8), uint8(0))
	f.Add(uint8(2), uint8(4), uint8(15), uint8(2), uint8(10), uint8(16), uint64(3), uint8(64), uint8(30))
	f.Add(uint8(6), uint8(1), uint8(0), uint8(3), uint8(5), uint8(20), uint64(11), uint8(4), uint8(10))
	f.Fuzz(func(t *testing.T, depthB, ilpB, mem10, shapeB, haz10, itersB uint8, seed uint64, windowB, mdB uint8) {
		spec := Spec{
			Depth:  1 + int(depthB%8),
			ILP:    1 + int(ilpB%4),
			Mem:    float64(mem10%16) / 10,
			Addr:   Shape(shapeB % 4),
			Hazard: float64(haz10%11) / 10,
			Iters:  4 + int(itersB%21),
			Seed:   seed,
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("clamped spec %q invalid: %v", spec.Format(), err)
		}
		tr := spec.Generate(1)
		suite, err := machine.NewSuite(tr, partition.Policy(0))
		if err != nil {
			t.Fatalf("spec %q: lowering: %v", spec.Format(), err)
		}
		window := 4 + int(windowB)%97
		md := int(mdB) % 61
		p := machine.Params{Window: window, MD: md}

		// Oracle differential: Sim result bit-identical to the seed
		// engine, on both machines.
		for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
			got, err := suite.Run(kind, p)
			if err != nil {
				t.Fatalf("spec %q %v: %v", spec.Format(), kind, err)
			}
			cfg, err := p.Config(kind)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.ReferenceRun(suite.Program(kind), cfg)
			if err != nil {
				t.Fatalf("spec %q %v: reference: %v", spec.Format(), kind, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("spec %q %v window=%d md=%d: engine diverges from reference:\n engine:    %+v\n reference: %+v",
					spec.Format(), kind, window, md, got, want)
			}
		}

		// Invariant: shrinking the window never lowers cycles. Only
		// asserted at unlimited issue width and unbounded memory queue —
		// at finite width the Graham scheduling anomaly legitimately lets
		// a smaller window win (see TestRetireInOrderNeverFaster).
		wide := machine.Params{
			Window: window, MD: md, MemQueue: machine.Unbounded,
			AUWidth: 1 << 20, DUWidth: 1 << 20, Width: 1 << 20,
		}
		wider := wide
		wider.Window = 2 * window
		for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
			small, err := suite.Run(kind, wide)
			if err != nil {
				t.Fatal(err)
			}
			big, err := suite.Run(kind, wider)
			if err != nil {
				t.Fatal(err)
			}
			if big.Cycles > small.Cycles {
				t.Errorf("spec %q %v md=%d: window %d is slower than window %d (%d > %d cycles) at unlimited width",
					spec.Format(), kind, md, 2*window, window, big.Cycles, small.Cycles)
			}
		}

		// Invariant: the DM never beats the ideal-trace dataflow bound.
		unlimited := machine.Params{Window: 0, MD: md, MemQueue: machine.Unbounded,
			AUWidth: 1 << 20, DUWidth: 1 << 20}
		dm, err := suite.Run(machine.DM, unlimited)
		if err != nil {
			t.Fatal(err)
		}
		if lb := tr.CriticalPath(unlimited.Timing()); dm.Cycles < lb {
			t.Errorf("spec %q md=%d: DM at unlimited window ran %d cycles, below the dataflow bound %d",
				spec.Format(), md, dm.Cycles, lb)
		}
	})
}
