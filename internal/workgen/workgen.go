// Package workgen generates parameterized synthetic workloads. A Spec's
// knobs are the calibration dimensions the seven hand-built kernels in
// internal/workloads were tuned along (DESIGN.md §2): FP dependence-chain
// depth, ILP width (how many independent iteration streams the compiled
// schedule interleaves), memory intensity (refs per FP op), the shape of
// the address slice (affine streams, index-load gathers, data-dependent
// chases, or a seed-chosen mix), and the rate of cross-slice DU→AU
// hazards (the paper's loss-of-decoupling events). Sweeping a Spec spans
// the workload space between the paper's bands instead of sampling it at
// seven points.
//
// Specs have a small text form in the style of faultinject's -chaos
// grammar — comma-separated key=value fields, e.g.
//
//	depth=8,ilp=4,mem=0.4,addr=gather,hazard=0.1,iters=256,seed=7
//
// parsed by Parse and emitted canonically by Format (Parse∘Format is the
// identity). Generate emits a trace.Trace that is a pure function of
// (Spec, scale): structural decisions — which address shape a load slot
// takes, which steps suffer a hazard — are coordinate-hashed from the
// seed (splitmix64 over (seed, lane, step, slot), the faultinject
// pattern), so changing one knob never reshuffles the structure chosen
// by the others; the seeded *rand.Rand only jitters memory addresses,
// which the fixed-differential model ignores but locality-aware models
// and the trace encoding observe. That split is what makes the knob
// monotonicity properties (deeper chains never shorten the critical
// path, more memory intensity never lowers ref density) structural
// rather than statistical. The package is in daelint's determinism
// scope.
package workgen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"daesim/internal/kernel"
	"daesim/internal/trace"
)

// Prefix marks a generated workload name: "spec:" followed by the spec
// text. internal/workloads routes such names through Parse/Generate.
const Prefix = "spec:"

// Shape selects the address-slice structure of generated load slots.
type Shape uint8

const (
	// Affine slots compute the address from the lane's induction value
	// alone — the fully decoupled streams of TRFD/ADM.
	Affine Shape = iota
	// Gather slots load an index first and address the data load through
	// it — DYFESM's connectivity gathers (the index load is an AU
	// self-load).
	Gather
	// Chase slots address each load through the previously loaded value —
	// MDG's linked-cell walks; memory latency lands on the address slice
	// itself.
	Chase
	// Mixed draws each slot's shape from the seed (coordinate-hashed, so
	// a slot's shape is stable under changes to every other knob).
	Mixed
)

// shapeNames maps spec tokens to shapes; String and Parse share it so
// the grammar and the output agree.
var shapeNames = []struct {
	shape Shape
	name  string
}{
	{Affine, "affine"},
	{Gather, "gather"},
	{Chase, "chase"},
	{Mixed, "mixed"},
}

func (s Shape) String() string {
	for _, sn := range shapeNames {
		if sn.shape == s {
			return sn.name
		}
	}
	return "shape(" + strconv.Itoa(int(s)) + ")"
}

func parseShape(s string) (Shape, bool) {
	for _, sn := range shapeNames {
		if sn.name == s {
			return sn.shape, true
		}
	}
	return Affine, false
}

// Spec parameterizes one generated workload. The zero value is not
// valid; start from Default.
type Spec struct {
	// Depth is the FP dependence-chain length per iteration step: every
	// (lane, step) appends exactly Depth chained FP ops to the lane's
	// carried recurrence. [1, 64].
	Depth int
	// ILP is the number of independent lanes the trace interleaves
	// step-major — the outer-loop parallelism a software-pipelining
	// compiler exposes in program order. [1, 64].
	ILP int
	// Mem is the memory intensity: round(Mem·Depth) data loads feed each
	// step's FP chain. [0, 4] refs per FP op.
	Mem float64
	// Addr is the address-slice shape of the load slots.
	Addr Shape
	// Hazard is the per-(lane, step) probability that the lane's address
	// induction consumes its FP state — a DU→AU dependence, the paper's
	// loss-of-decoupling hazard. [0, 1].
	Hazard float64
	// Iters is the number of steps per lane at scale 1. [1, 65536].
	Iters int
	// Seed decorrelates structural draws (mixed shapes, hazard
	// placement) and address jitter between otherwise identical specs.
	Seed uint64
}

// Default returns the spec all omitted fields parse to: a shallow
// affine kernel in the calibration mid-range.
func Default() Spec {
	return Spec{Depth: 4, ILP: 4, Mem: 1, Addr: Affine, Hazard: 0, Iters: 256, Seed: 1}
}

// specFields lists the grammar's field names in canonical order; Parse
// error messages and Format share it.
var specFields = []string{"depth", "ilp", "mem", "addr", "hazard", "iters", "seed"}

// Parse parses the comma-separated key=value spec grammar. Omitted
// fields take their Default values; unknown, duplicate and malformed
// fields are rejected with errors naming the field.
func Parse(s string) (Spec, error) {
	spec := Default()
	seen := map[string]bool{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, found := strings.Cut(field, "=")
		if !found {
			return Spec{}, fmt.Errorf("workgen: bad field %q (want key=value)", field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("workgen: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "depth":
			spec.Depth, err = strconv.Atoi(val)
		case "ilp":
			spec.ILP, err = strconv.Atoi(val)
		case "mem":
			spec.Mem, err = strconv.ParseFloat(val, 64)
		case "addr":
			sh, ok := parseShape(val)
			if !ok {
				return Spec{}, fmt.Errorf("workgen: bad addr %q (want affine, gather, chase or mixed)", val)
			}
			spec.Addr = sh
		case "hazard":
			spec.Hazard, err = strconv.ParseFloat(val, 64)
		case "iters":
			spec.Iters, err = strconv.Atoi(val)
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return Spec{}, fmt.Errorf("workgen: unknown field %q (want %s)", key, strings.Join(specFields, ", "))
		}
		if err != nil {
			return Spec{}, fmt.Errorf("workgen: bad %s %q: %w", key, val, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Format renders the spec in canonical text form: every field, in
// specFields order. Parse(s.Format()) == s for any valid spec.
func (s Spec) Format() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return fmt.Sprintf("depth=%d,ilp=%d,mem=%s,addr=%s,hazard=%s,iters=%d,seed=%d",
		s.Depth, s.ILP, f(s.Mem), s.Addr, f(s.Hazard), s.Iters, s.Seed)
}

// Name returns the workload-registry name of the spec: Prefix plus the
// canonical text form, so every spelling of a spec shares one name.
func (s Spec) Name() string { return Prefix + s.Format() }

// maxInstrs bounds a generated trace at scale 1; Validate rejects specs
// whose worst-case emission exceeds it, so a fuzzer (or a typo'd iters)
// cannot ask Generate for gigabytes.
const maxInstrs = 4 << 20

// Validate checks every knob's bounds, naming the offending field.
func (s Spec) Validate() error {
	switch {
	case s.Depth < 1 || s.Depth > 64:
		return fmt.Errorf("workgen: depth %d out of range [1, 64]", s.Depth)
	case s.ILP < 1 || s.ILP > 64:
		return fmt.Errorf("workgen: ilp %d out of range [1, 64]", s.ILP)
	case math.IsNaN(s.Mem) || s.Mem < 0 || s.Mem > 4:
		return fmt.Errorf("workgen: mem %v out of range [0, 4]", s.Mem)
	case math.IsNaN(s.Hazard) || s.Hazard < 0 || s.Hazard > 1:
		return fmt.Errorf("workgen: hazard %v out of range [0, 1]", s.Hazard)
	case s.Iters < 1 || s.Iters > 65536:
		return fmt.Errorf("workgen: iters %d out of range [1, 65536]", s.Iters)
	}
	if sh := s.Addr; sh != Affine && sh != Gather && sh != Chase && sh != Mixed {
		return fmt.Errorf("workgen: addr %v is not a known shape", sh)
	}
	// Worst-case emission: per (lane, step) one induction op, four ops
	// per gather slot, the Depth-long chain and a store pair.
	perStep := 3 + 4*s.loadsPerStep() + s.Depth
	if n := s.ILP * s.Iters * perStep; n > maxInstrs {
		return fmt.Errorf("workgen: spec emits ~%d instructions at scale 1 (cap %d); lower iters, ilp, depth or mem", n, maxInstrs)
	}
	return nil
}

// loadsPerStep is the number of data loads feeding each step's chain.
// math.Round keeps it monotone in both Mem and Depth.
func (s Spec) loadsPerStep() int {
	return int(math.Round(s.Mem * float64(s.Depth)))
}

// Salts decorrelating the structural draw families from each other.
const (
	hazardSalt = 0x68617a61 // "haza"
	shapeSalt  = 0x73686170 // "shap"
)

// hazardAt decides whether lane l's step-th address induction consumes
// the FP state. Pure function of (seed, lane, step): thresholding the
// same draw means raising Hazard only ever adds hazard events.
func (s Spec) hazardAt(l, step int) bool {
	return unit(mix(s.Seed^hazardSalt, uint64(l), uint64(step), 0)) < s.Hazard
}

// shapeAt picks the slot's address shape; fixed shapes ignore the
// coordinates, Mixed hashes them so a slot's shape survives changes to
// every other knob (including the knobs that add or remove slots after
// it).
func (s Spec) shapeAt(l, step, slot int) Shape {
	if s.Addr != Mixed {
		return s.Addr
	}
	return Shape(mix(s.Seed^shapeSalt, uint64(l), uint64(step), uint64(slot)) % 3)
}

// storePeriod is the per-lane step interval between result stores.
const storePeriod = 4

// Generate emits the spec's trace at the given scale (scale multiplies
// Iters; values below 1 are clamped to 1). The result is a pure
// function of (Spec, scale): same spec and scale, byte-identical trace.
func (s Spec) Generate(scale int) *trace.Trace {
	if scale < 1 {
		scale = 1
	}
	iters := s.Iters * scale
	loads := s.loadsPerStep()
	// The rng only jitters which array element each memory ref touches;
	// trace structure never consumes it (see the package comment).
	rng := rand.New(rand.NewSource(int64(s.Seed)))
	const elems = 4096
	b := kernel.New(s.Name())
	data := b.Array("DATA", elems, 8)
	index := b.Array("IDX", elems, 8)
	out := b.Array("OUT", elems, 8)
	jitter := func() int { return rng.Intn(elems) }

	// Per-lane carried state: an integer address induction (base), the FP
	// recurrence (carry) and the chase pointer (last chased value).
	type laneState struct {
		base  kernel.Val
		carry kernel.Val
		ptr   kernel.Val
	}
	lanes := make([]laneState, s.ILP)
	for l := range lanes {
		lanes[l].base = b.Int()
		lanes[l].carry = b.FP()
		lanes[l].ptr = lanes[l].base
	}

	// Step-major interleave across lanes: program order carries the
	// cross-lane parallelism, as a software-pipelining compiler schedules
	// independent outer iterations (the ADM/QCD idiom in workloads).
	for step := 0; step < iters; step++ {
		for l := range lanes {
			ln := &lanes[l]
			if s.hazardAt(l, step) {
				// Loss of decoupling: the address induction consumes the
				// FP state, chaining the AU behind the DU.
				ln.base = b.Int(ln.carry)
			} else {
				ln.base = b.Int(ln.base)
			}
			vals := make([]kernel.Val, 0, loads)
			for slot := 0; slot < loads; slot++ {
				switch s.shapeAt(l, step, slot) {
				case Affine:
					a := b.Int(ln.base)
					vals = append(vals, b.Load(data, jitter(), a))
				case Gather:
					ia := b.Int(ln.base)
					iv := b.Load(index, jitter(), ia)
					a := b.Int(iv)
					vals = append(vals, b.Load(data, jitter(), a))
				case Chase:
					a := b.Int(ln.ptr)
					v := b.Load(data, jitter(), a)
					ln.ptr = b.Int(v)
					vals = append(vals, v)
				}
			}
			// Exactly Depth chained FP ops per step, the loads feeding the
			// chain round-robin so no op exceeds the operand-count limits.
			carry := ln.carry
			for d := 0; d < s.Depth; d++ {
				args := []kernel.Val{carry}
				for vi := d; vi < len(vals); vi += s.Depth {
					args = append(args, vals[vi])
				}
				carry = b.FP(args...)
			}
			ln.carry = carry
			if step%storePeriod == storePeriod-1 {
				st := b.Int(ln.base)
				b.Store(out, jitter(), ln.carry, st)
			}
		}
	}
	// Each lane's recurrence ends in a store, so every spec (even one
	// with mem=0 and few iters) has seed-jittered memory refs.
	for l := range lanes {
		st := b.Int(lanes[l].base)
		b.Store(out, jitter(), lanes[l].carry, st)
	}
	return b.MustTrace()
}

// mix folds the coordinates through splitmix64 (the faultinject
// pattern): a fast, well-mixed hash that is a pure function of its
// inputs.
func mix(a, b, c, d uint64) uint64 {
	x := a
	for _, v := range [...]uint64{b, c, d} {
		x += 0x9e3779b97f4a7c15 + v
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// unit maps a hash to [0,1) using its top 53 bits.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
