package partition

import (
	"testing"

	"daesim/internal/isa"
	"daesim/internal/trace"
)

// mk builds a tiny trace: int; load(addr=0); fp(1); store(fp, addr=0).
func mk() *trace.Trace {
	return &trace.Trace{Name: "t", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x1000},
		{Class: isa.FPALU, Args: []int32{1}},
		{Class: isa.Store, Addr: []int32{0}, Args: []int32{2}, MemAddr: 0x2000},
	}}
}

func TestClassicPartition(t *testing.T) {
	a, err := Partition(mk(), Classic)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InAddrSlice[0] {
		t.Error("address int not in slice")
	}
	if a.InAddrSlice[2] {
		t.Error("fp must not be in slice")
	}
	if a.Unit[0] != isa.AU || a.Unit[2] != isa.DU {
		t.Errorf("units wrong: %v %v", a.Unit[0], a.Unit[2])
	}
	if a.RecvAU[1] || !a.RecvDU[1] {
		t.Errorf("load delivery wrong: AU=%v DU=%v", a.RecvAU[1], a.RecvDU[1])
	}
	if a.SelfLoads != 0 {
		t.Errorf("self loads = %d, want 0", a.SelfLoads)
	}
}

func TestSelfLoadDetection(t *testing.T) {
	// load idx; int(idx); load(addr=int): the first load feeds an address.
	tr := &trace.Trace{Name: "gather", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x100},
		{Class: isa.IntALU, Args: []int32{1}},
		{Class: isa.Load, Addr: []int32{2}, MemAddr: 0x200},
		{Class: isa.FPALU, Args: []int32{3}},
	}}
	a, err := Partition(tr, Classic)
	if err != nil {
		t.Fatal(err)
	}
	if !a.RecvAU[1] {
		t.Error("index load must be delivered to the AU")
	}
	if a.SelfLoads != 1 {
		t.Errorf("self loads = %d, want 1", a.SelfLoads)
	}
	if !a.InAddrSlice[1] || !a.InAddrSlice[2] {
		t.Error("index load and int must be in the address slice")
	}
	if !a.RecvDU[3] {
		t.Error("fp-consumed load must be delivered to the DU")
	}
}

func TestFPTerminatesSlice(t *testing.T) {
	// fp; int(fp); load(addr=int): the fp feeds an address but stays DU.
	tr := &trace.Trace{Name: "lod", Instrs: []trace.Instr{
		{Class: isa.FPALU},
		{Class: isa.IntALU, Args: []int32{0}},
		{Class: isa.Load, Addr: []int32{1}, MemAddr: 0x300},
	}}
	a, err := Partition(tr, Classic)
	if err != nil {
		t.Fatal(err)
	}
	if a.InAddrSlice[0] {
		t.Error("fp must terminate slice propagation")
	}
	if a.Unit[0] != isa.DU {
		t.Error("fp must stay on the DU")
	}
	if !a.InAddrSlice[1] || a.Unit[1] != isa.AU {
		t.Error("int feeding address must be AU")
	}
}

func TestPoliciesPlaceNonSliceInt(t *testing.T) {
	// One non-slice int op (pure data): int; fp(int-data? keep int data alone)
	tr := &trace.Trace{Name: "data", Instrs: []trace.Instr{
		{Class: isa.IntALU}, // data int, not feeding any address
		{Class: isa.FPALU, Args: []int32{0}},
	}}
	classic, _ := Partition(tr, Classic)
	if classic.Unit[0] != isa.AU {
		t.Error("classic must place int on AU")
	}
	slice, _ := Partition(tr, SliceOnly)
	if slice.Unit[0] != isa.DU {
		t.Error("slice-only must place non-slice int on DU")
	}
	bal, _ := Partition(tr, Balance)
	if bal.Unit[0] != isa.AU && bal.Unit[0] != isa.DU {
		t.Error("balance must place the op somewhere")
	}
}

func TestDeadLoadDefaultsToDU(t *testing.T) {
	tr := &trace.Trace{Name: "dead", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x40},
	}}
	a, err := Partition(tr, Classic)
	if err != nil {
		t.Fatal(err)
	}
	if !a.RecvDU[1] || a.RecvAU[1] {
		t.Error("dead load should be delivered to the DU only")
	}
}

func TestStoreDataFromLoad(t *testing.T) {
	// memory-to-memory copy: load; store(load).
	tr := &trace.Trace{Name: "memcpy", Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}, MemAddr: 0x80},
		{Class: isa.Store, Addr: []int32{0}, Args: []int32{1}, MemAddr: 0xc0},
	}}
	a, err := Partition(tr, Classic)
	if err != nil {
		t.Fatal(err)
	}
	if !a.RecvDU[1] {
		t.Error("store-feeding load should be delivered to the DU")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := Partition(mk(), Policy(99)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if Classic.String() != "classic" || SliceOnly.String() != "slice-only" || Balance.String() != "balance" {
		t.Error("policy names wrong")
	}
	if len(Policies()) != 3 {
		t.Error("expected 3 policies")
	}
}

func TestStats(t *testing.T) {
	a, _ := Partition(mk(), Classic)
	s := a.Stats()
	if s.SliceSize != 1 {
		t.Errorf("slice size = %d, want 1", s.SliceSize)
	}
	if s.AUOps == 0 || s.DUOps == 0 {
		t.Errorf("ops counts empty: %+v", s)
	}
}
