// Package partition splits a trace between the address unit (AU) and the
// data unit (DU) of the decoupled machine.
//
// The static partition follows the classic decoupled access/execute
// discipline: the AU owns address computation and memory access, the DU
// owns data computation. Concretely, the backward slice of every memory
// address (propagated through integer ops and loads, stopping at FP ops)
// is marked as the address slice. Floating-point ops always execute on
// the DU. Loads are sent by the AU; their values are delivered by the
// decoupled memory to whichever units consume them (a delivery to the AU
// is a self-load, e.g. an index load feeding later addresses).
//
// Values crossing between units travel through explicit copy operations
// executed by the producing unit. A DU→AU copy is a loss-of-decoupling
// hazard: the AU must wait for data computation before it can continue
// generating addresses.
//
// Three placement policies are provided for integer ops outside the
// address slice (pure data bookkeeping): Classic sends them to the AU
// (all-integer AU, as in classic DAE machines), SliceOnly sends them to
// the DU (minimal AU), and Balance assigns each to the unit with fewer
// ops so far. The paper's machine corresponds to Classic.
package partition

import (
	"fmt"

	"daesim/internal/isa"
	"daesim/internal/trace"
)

// Policy selects the placement of integer ops outside the address slice.
type Policy uint8

const (
	// Classic places all integer computation on the AU.
	Classic Policy = iota
	// SliceOnly places only the address slice on the AU.
	SliceOnly
	// Balance greedily balances non-slice integer ops between units.
	Balance
	numPolicies
)

func (p Policy) String() string {
	switch p {
	case Classic:
		return "classic"
	case SliceOnly:
		return "slice-only"
	case Balance:
		return "balance"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists all placement policies.
func Policies() []Policy { return []Policy{Classic, SliceOnly, Balance} }

// Assignment is the result of partitioning a trace.
type Assignment struct {
	// Unit is the executing unit per trace instruction: for Int/FP ops the
	// unit that computes the value; for loads and stores, AU (the unit
	// that initiates the access).
	Unit []isa.Unit
	// InAddrSlice marks instructions in the backward slice of a memory
	// address.
	InAddrSlice []bool
	// RecvAU/RecvDU mark loads whose value must be delivered to the AU
	// (self-load) and/or the DU.
	RecvAU, RecvDU []bool
	// Counts per unit of value-computing instructions (loads counted on
	// each receiving unit).
	OpsAU, OpsDU int
	// SelfLoads counts loads delivered to the AU.
	SelfLoads int
}

// Partition computes the AU/DU assignment of tr under the given policy.
// The trace must be valid.
func Partition(tr *trace.Trace, pol Policy) (*Assignment, error) {
	if pol >= numPolicies {
		return nil, fmt.Errorf("partition: unknown policy %d", pol)
	}
	n := tr.Len()
	a := &Assignment{
		Unit:        make([]isa.Unit, n),
		InAddrSlice: make([]bool, n),
		RecvAU:      make([]bool, n),
		RecvDU:      make([]bool, n),
	}

	// Mark the address slice: seed with address operands of memory ops,
	// propagate backwards through integer ops and loads. FP ops terminate
	// propagation (they stay on the DU; their value crosses by copy).
	work := make([]int32, 0, n/4)
	mark := func(i int32) {
		if !a.InAddrSlice[i] && tr.Instrs[i].Class != isa.FPALU {
			a.InAddrSlice[i] = true
			work = append(work, i)
		}
	}
	for i := range tr.Instrs {
		for _, p := range tr.Instrs[i].Addr {
			mark(p)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		in := &tr.Instrs[i]
		if in.Class == isa.Load {
			// The load's value feeds addresses; its inputs are already
			// addresses by construction (they are Addr operands).
			continue
		}
		for _, p := range in.Args {
			mark(p)
		}
	}

	// Assign units.
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		switch in.Class {
		case isa.FPALU:
			a.Unit[i] = isa.DU
			a.OpsDU++
		case isa.Load, isa.Store:
			a.Unit[i] = isa.AU
		case isa.IntALU:
			switch {
			case a.InAddrSlice[i]:
				a.Unit[i] = isa.AU
				a.OpsAU++
			case pol == Classic:
				a.Unit[i] = isa.AU
				a.OpsAU++
			case pol == SliceOnly:
				a.Unit[i] = isa.DU
				a.OpsDU++
			default: // Balance
				if a.OpsAU <= a.OpsDU {
					a.Unit[i] = isa.AU
					a.OpsAU++
				} else {
					a.Unit[i] = isa.DU
					a.OpsDU++
				}
			}
		}
	}

	// Route load deliveries to consuming units.
	for i := range tr.Instrs {
		in := &tr.Instrs[i]
		route := func(p int32) {
			if tr.Instrs[p].Class != isa.Load {
				return
			}
			if a.Unit[i] == isa.AU || in.Class == isa.Load || in.Class == isa.Store {
				// Address operands and AU consumers need the value on the AU.
				a.RecvAU[p] = true
			} else {
				a.RecvDU[p] = true
			}
		}
		for _, p := range in.Addr {
			route(p)
		}
		for _, p := range in.Args {
			// Store data goes to the store-data op, which executes on the
			// producing unit; delivery is decided by the producer's unit,
			// handled in lowering. For value consumers, deliver to the
			// consumer's unit.
			if in.Class == isa.Store {
				if tr.Instrs[p].Class == isa.Load {
					// Load feeding a store directly: deliver on the DU (data
					// side) — a pure memory-to-memory copy.
					a.RecvDU[p] = true
				}
				continue
			}
			route(p)
		}
	}
	for i := range tr.Instrs {
		if tr.Instrs[i].Class == isa.Load {
			if !a.RecvAU[i] && !a.RecvDU[i] {
				// Dead load: deliver to the DU by convention.
				a.RecvDU[i] = true
			}
			if a.RecvAU[i] {
				a.SelfLoads++
				a.OpsAU++
			}
			if a.RecvDU[i] {
				a.OpsDU++
			}
		}
	}
	return a, nil
}

// Stats summarizes an assignment for reporting.
type Stats struct {
	AUOps, DUOps int
	SelfLoads    int
	SliceSize    int
}

// Stats computes summary statistics for the assignment.
func (a *Assignment) Stats() Stats {
	s := Stats{AUOps: a.OpsAU, DUOps: a.OpsDU, SelfLoads: a.SelfLoads}
	for _, in := range a.InAddrSlice {
		if in {
			s.SliceSize++
		}
	}
	return s
}
