package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed series value in a Snapshot. Histograms flatten
// to their _bucket/_sum/_count samples exactly as the text exposition
// prints them, so parity tests and the writer see one shape.
type Sample struct {
	// Family is the registered metric name (without the _bucket/_sum/
	// _count suffix); Name is the exposed sample name (with it).
	Family string
	Name   string
	Kind   Kind
	Labels []Label
	Value  float64
}

// Snapshot returns every sample in deterministic order: families by
// name, series by label-value tuple, histogram samples bucket-ascending
// then _sum then _count. Func-backed series are read here.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Sample
	for _, f := range fams {
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ser := make([]*series, len(keys))
		for i, k := range keys {
			ser[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, s := range ser {
			switch {
			case s.h != nil:
				cum := int64(0)
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					out = append(out, Sample{Family: f.name, Name: f.name + "_bucket", Kind: f.kind,
						Labels: append(append([]Label(nil), s.labels...), L("le", formatFloat(b))), Value: float64(cum)})
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				out = append(out, Sample{Family: f.name, Name: f.name + "_bucket", Kind: f.kind,
					Labels: append(append([]Label(nil), s.labels...), L("le", "+Inf")), Value: float64(cum)})
				out = append(out, Sample{Family: f.name, Name: f.name + "_sum", Kind: f.kind, Labels: s.labels, Value: s.h.Sum()})
				out = append(out, Sample{Family: f.name, Name: f.name + "_count", Kind: f.kind, Labels: s.labels, Value: float64(cum)})
			case s.fn != nil:
				out = append(out, Sample{Family: f.name, Name: f.name, Kind: f.kind, Labels: s.labels, Value: s.fn()})
			case s.c != nil:
				out = append(out, Sample{Family: f.name, Name: f.name, Kind: f.kind, Labels: s.labels, Value: float64(s.c.Value())})
			case s.g != nil:
				out = append(out, Sample{Family: f.name, Name: f.name, Kind: f.kind, Labels: s.labels, Value: s.g.Value()})
			}
		}
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE per family, then each
// sample, in Snapshot's deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var b strings.Builder
	last := ""
	r.mu.Lock()
	helps := make(map[string]struct {
		help string
		kind Kind
	}, len(r.families))
	for name, f := range r.families {
		helps[name] = struct {
			help string
			kind Kind
		}{f.help, f.kind}
	}
	r.mu.Unlock()
	for _, s := range samples {
		if s.Family != last {
			meta := helps[s.Family]
			if meta.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Family, escapeHelp(meta.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Family, meta.kind)
			last = s.Family
		}
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(l.Name)
				b.WriteString(`="`)
				b.WriteString(escapeLabel(l.Value))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.Value))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros (counters read naturally), everything else in Go's
// shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
