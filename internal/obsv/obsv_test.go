package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("test_requests_total", "requests"); again != c {
		t.Fatal("second registration returned a different counter instance")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Inc()
	g.Add(-2.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("test_total", "t", L("endpoint", "run"))
	b := r.Counter("test_total", "t", L("endpoint", "sweep"))
	if a == b {
		t.Fatal("distinct label values returned the same series")
	}
	a.Inc()
	if got := r.Counter("test_total", "t", L("endpoint", "run")).Value(); got != 1 {
		t.Fatalf("labeled series = %d, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.005 + 0.01 + 0.05 + 0.5 + 5; math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// Cumulative buckets: le=0.01 holds 2 (0.005 and the boundary 0.01),
	// le=0.1 holds 3, le=1 holds 4, +Inf holds all 5.
	var got []float64
	for _, s := range r.Snapshot() {
		if s.Name == "test_seconds_bucket" {
			got = append(got, s.Value)
		}
	}
	want := []float64{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("bucket samples = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket samples = %v, want %v", got, want)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	t.Parallel()
	b := ExpBuckets(0.0001, 2, 4)
	want := []float64{0.0001, 0.0002, 0.0004, 0.0008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-15 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if len(LatencyBuckets) != 16 || LatencyBuckets[0] != 0.0001 {
		t.Fatalf("LatencyBuckets drifted: %v", LatencyBuckets)
	}
}

func TestFuncBackedMetrics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	v := 7.0
	r.CounterFunc("test_fn_total", "fn counter", func() float64 { return v })
	r.GaugeFunc("test_fn_depth", "fn gauge", func() float64 { return -v })
	snap := r.Snapshot()
	byName := map[string]float64{}
	for _, s := range snap {
		byName[s.Name] = s.Value
	}
	if byName["test_fn_total"] != 7 || byName["test_fn_depth"] != -7 {
		t.Fatalf("func metrics = %v", byName)
	}
	v = 9
	for _, s := range r.Snapshot() {
		if s.Name == "test_fn_total" && s.Value != 9 {
			t.Fatalf("func counter not re-read at snapshot: %v", s.Value)
		}
	}
}

// TestSnapshotDeterministicOrder pins the determinism contract: two
// snapshots of the same state are identical, families sort by name and
// series by label value, regardless of registration order.
func TestSnapshotDeterministicOrder(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("zz_total", "z").Inc()
	r.Counter("aa_total", "a", L("k", "v2")).Inc()
	r.Counter("aa_total", "a", L("k", "v1")).Inc()
	r.Gauge("mm_depth", "m").Set(1)
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name+seriesKey(s.Labels))
	}
	for i := 1; i < len(names); i++ {
		if s1, s2 := snap[i-1], snap[i]; s1.Family > s2.Family {
			t.Fatalf("families out of order: %s before %s", s1.Family, s2.Family)
		}
	}
	if snap[0].Labels[0].Value != "v1" || snap[1].Labels[0].Value != "v2" {
		t.Fatalf("series not in label-value order: %+v", snap[:2])
	}
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of identical state differ")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("test_reqs_total", "requests served", L("endpoint", "run")).Add(3)
	r.Gauge("test_depth", "queue depth").Set(2)
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_depth queue depth
# TYPE test_depth gauge
test_depth 2
# HELP test_lat_seconds latency
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.5"} 1
test_lat_seconds_bucket{le="+Inf"} 2
test_lat_seconds_sum 2.25
test_lat_seconds_count 2
# HELP test_reqs_total requests served
# TYPE test_reqs_total counter
test_reqs_total{endpoint="run"} 3
`
	if b.String() != want {
		t.Fatalf("exposition text:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("test_esc_total", "", L("path", `a\b"c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\\b\"c\n"`) {
		t.Fatalf("label value not escaped: %s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("test_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("test_total", "t")
}

func TestBadNamePanics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("a metric name with a dash should panic")
		}
	}()
	r.Counter("bad-name", "")
}

func TestConcurrentUse(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	h := r.Histogram("test_conc_seconds", "", LatencyBuckets)
	g := r.Gauge("test_conc_depth", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.001)
				r.Counter("test_conc_total", "").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}
