// Package obsv is the repo's dependency-free metrics layer: a registry
// of counters, gauges and histograms with Prometheus text exposition
// (DESIGN.md §15). The serving stack — daemon.Server, sweep's cache
// counters, the fleet client's failure ladder — registers here and
// GET /metrics (or repro -metrics-dump) scrapes it.
//
// The layer is observation-only by contract: nothing in this package
// (and nothing registered with it) may enter a cache key, a wire
// schema, or any Sim.Run-reachable code path. Metrics read existing
// atomic counters at scrape time or record purely operational signals
// (request latency, queue depth); figure bytes are provably unaffected
// because no result-affecting package imports obsv (daelint's
// determinism scope excludes it for the same reason it excludes the
// daemon: wall-clock time here is operational, not result-affecting).
//
// Snapshot iteration — and therefore the exposition text — is
// deterministic: families in name order, series in label-value order.
// Two scrapes of identical counter states are byte-identical.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type as exposed in # TYPE.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name=value pair attached to a series. Families fix their
// label names at registration; each distinct value tuple is one series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry. All methods are safe for concurrent use; the
// get-or-create accessors (Counter, Gauge, Histogram) return the same
// instance for the same name and label values, so call sites need not
// coordinate registration.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family //daelint:guardedby mu
}

// family is one named metric: a help string, a kind, fixed label names,
// and a series per label-value tuple.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64          // histograms only
	series     map[string]*series // keyed by canonical label-value encoding
}

// series is one (family, label values) time series.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // func-backed counter/gauge; read at snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// checkName enforces the Prometheus metric/label name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]* for metrics, no colon for labels).
func checkName(name string, label bool) {
	if name == "" {
		panic("obsv: empty metric or label name")
	}
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(!label && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obsv: invalid metric or label name %q", name))
		}
	}
}

// seriesKey canonically encodes label values in label-name order; it is
// both the series map key and the deterministic sort key of exposition.
func seriesKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// familyFor returns (creating on first use) the named family, enforcing
// that every caller agrees on kind, help and label names — disagreement
// is a programming error, caught loudly.
func (r *Registry) familyFor(name, help string, kind Kind, buckets []float64, labels []Label) *family {
	checkName(name, false)
	names := make([]string, len(labels))
	for i, l := range labels {
		checkName(l.Name, true)
		names[i] = l.Name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, labelNames: names, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obsv: metric %s registered as %s and %s", name, f.kind, kind))
	}
	if len(f.labelNames) != len(names) {
		panic(fmt.Sprintf("obsv: metric %s registered with label sets %v and %v", name, f.labelNames, names))
	}
	for i := range names {
		if f.labelNames[i] != names[i] {
			panic(fmt.Sprintf("obsv: metric %s registered with label sets %v and %v", name, f.labelNames, names))
		}
	}
	return f
}

// seriesFor returns (creating on first use) the family's series for the
// label values.
func (f *family) seriesFor(labels []Label, make_ func() *series) *series {
	key := seriesKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = make_()
		s.labels = append([]Label(nil), labels...)
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name and labels, registering
// the family on first use. Counters only go up.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, KindCounter, nil, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := f.seriesFor(labels, func() *series { return &series{c: &Counter{}} })
	if s.c == nil {
		panic(fmt.Sprintf("obsv: metric %s already registered func-backed", name))
	}
	return s.c
}

// Gauge returns the gauge series for name and labels, registering the
// family on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, KindGauge, nil, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := f.seriesFor(labels, func() *series { return &series{g: &Gauge{}} })
	if s.g == nil {
		panic(fmt.Sprintf("obsv: metric %s already registered func-backed", name))
	}
	return s.g
}

// Histogram returns the histogram series for name and labels,
// registering the family on first use with the given bucket upper
// bounds (ascending; +Inf is implicit). All series of one family share
// the registration-time buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obsv: histogram %s buckets not ascending: %v", name, buckets))
		}
	}
	f := r.familyFor(name, help, KindHistogram, buckets, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := f.seriesFor(labels, func() *series { return &series{h: newHistogram(f.buckets)} })
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at each
// snapshot — the bridge from existing atomic counters (sweep.CacheStats,
// FleetMetrics, the server's accounting) into the exposition without
// double bookkeeping. fn must be monotone non-decreasing and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, KindCounter, nil, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.seriesFor(labels, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at each snapshot (queue
// depths, store entry/byte usage, breaker states).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, KindGauge, nil, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.seriesFor(labels, func() *series { return &series{fn: fn} })
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obsv: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(int64(math.Float64bits(v))) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.v.Load()
		new_ := int64(math.Float64bits(math.Float64frombits(uint64(old)) + d))
		if g.v.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(uint64(g.v.Load())) }

// Histogram counts observations into fixed buckets and accumulates
// their sum. Buckets are upper bounds (le); the implicit +Inf bucket
// catches everything.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		new_ := int64(math.Float64bits(math.Float64frombits(uint64(old)) + v))
		if h.sum.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(uint64(h.sum.Load())) }

// ExpBuckets returns n ascending bucket bounds start, start*factor,
// start*factor^2, ... — the fixed exponential ladder latency
// histograms use.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obsv: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the repo-standard request-latency ladder: 100µs
// doubling to ~3.3s (in seconds), wide enough for a cold sweep and
// fine enough to see a warm cache hit.
var LatencyBuckets = ExpBuckets(0.0001, 2, 16)
