package metrics

import (
	"errors"
	"testing"
	"testing/quick"

	"daesim/internal/engine"
	"daesim/internal/kernel"
	"daesim/internal/machine"
	"daesim/internal/partition"
	"daesim/internal/sweep"
)

func TestSpeedupAndLHE(t *testing.T) {
	if Speedup(100, 20) != 5.0 {
		t.Fatal("speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("zero actual should yield zero")
	}
	if LHE(80, 100) != 0.8 {
		t.Fatal("LHE wrong")
	}
	if LHE(80, 0) != 0 {
		t.Fatal("zero actual should yield zero")
	}
}

// fakeMonotone builds a RunFunc from a step function: time = hi below the
// threshold window, lo at or above it.
func fakeMonotone(threshold int, hi, lo int64) RunFunc {
	return func(w int) (int64, error) {
		if w >= threshold {
			return lo, nil
		}
		return hi, nil
	}
}

func TestEquivalentWindowFuncFindsThreshold(t *testing.T) {
	f := func(th uint16) bool {
		threshold := int(th%2000) + 1
		run := fakeMonotone(threshold, 100, 10)
		w, ok, err := EquivalentWindowFunc(run, 50)
		return err == nil && ok && w == threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentWindowFuncSaturates(t *testing.T) {
	run := func(w int) (int64, error) { return 1000, nil }
	w, ok, err := EquivalentWindowFunc(run, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unreachable target should report !ok")
	}
	if w != MaxEquivalentWindow {
		t.Fatalf("saturated search should report the cap, got %d", w)
	}
}

func TestEquivalentWindowFuncImmediate(t *testing.T) {
	// Window 1 already meets the target.
	run := fakeMonotone(1, 99, 10)
	w, ok, err := EquivalentWindowFunc(run, 50)
	if err != nil || !ok || w != 1 {
		t.Fatalf("got w=%d ok=%v err=%v, want 1 true nil", w, ok, err)
	}
}

func TestEquivalentWindowFuncPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	run := func(w int) (int64, error) { return 0, boom }
	if _, _, err := EquivalentWindowFunc(run, 10); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func smallSuite(t *testing.T) *machine.Suite {
	t.Helper()
	b := kernel.New("metrics")
	arr := b.Array("a", 256, 8)
	for i := 0; i < 48; i++ {
		base := b.Int()
		v := b.Load(arr, i, base)
		f := b.FPChain(2, v)
		b.Store(arr, 128+i, f, base)
	}
	s, err := machine.NewSuite(b.MustTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEquivalentWindowAgainstSuite(t *testing.T) {
	s := smallSuite(t)
	dm, err := s.RunDM(machine.Params{Window: 12, MD: 40})
	if err != nil {
		t.Fatal(err)
	}
	w, ok, err := EquivalentWindow(sweep.NewRunner(s), machine.Params{MD: 40, MemQueue: 24}, dm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("search saturated on a tiny kernel")
	}
	// Verify minimality: w matches, w-1 does not.
	check := func(win int) int64 {
		r, err := s.RunSWSM(machine.Params{Window: win, MD: 40, MemQueue: 24})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if check(w) > dm.Cycles {
		t.Fatalf("window %d does not meet the target", w)
	}
	if w > 1 && check(w-1) <= dm.Cycles {
		t.Fatalf("window %d is not minimal", w)
	}
}

// TestSearchParallelMatchesSerial pins the speculative-parallel search
// against the serial path on a small figure grid. Simulated time is not
// perfectly monotone in window size (Graham anomalies), so the two
// probe paths may legally land on different boundaries of an anomaly
// wobble band; the contract both must satisfy is boundary validity —
// t(w) <= target < t(w-1) — plus agreement on ok. Run under -race this
// also exercises the worker pool for data races (the CI race job does).
func TestSearchParallelMatchesSerial(t *testing.T) {
	s := smallSuite(t)
	serial := NewSearch(sweep.NewRunner(s))
	serial.Parallelism = 1
	parallel := NewSearch(sweep.NewRunner(s))
	parallel.Parallelism = 4
	probe := func(p machine.Params, w int) int64 {
		q := p
		q.Window = w
		q.MemQueue = machine.QueueFactor * p.Window
		r, err := s.RunSWSM(q)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	for _, md := range []int{0, 20, 40} {
		for _, w := range []int{4, 8, 12, 20} {
			p := machine.Params{Window: w, MD: md}
			dm, err := s.RunDM(p)
			if err != nil {
				t.Fatal(err)
			}
			sw, sok, err := serial.EquivalentWindow(machine.Params{Window: w, MD: md, MemQueue: machine.QueueFactor * w}, dm.Cycles)
			if err != nil {
				t.Fatal(err)
			}
			pw, pok, err := parallel.EquivalentWindow(machine.Params{Window: w, MD: md, MemQueue: machine.QueueFactor * w}, dm.Cycles)
			if err != nil {
				t.Fatal(err)
			}
			if sok != pok {
				t.Errorf("md=%d w=%d: ok mismatch: serial %v, parallel %v", md, w, sok, pok)
				continue
			}
			if !sok {
				continue
			}
			for _, got := range []struct {
				name string
				w    int
			}{{"serial", sw}, {"parallel", pw}} {
				if c := probe(p, got.w); c > dm.Cycles {
					t.Errorf("md=%d w=%d: %s window %d misses target (%d > %d)", md, w, got.name, got.w, c, dm.Cycles)
				}
				if got.w > 1 {
					if c := probe(p, got.w-1); c <= dm.Cycles {
						t.Errorf("md=%d w=%d: %s window %d is not a boundary (t(w-1)=%d <= %d)", md, w, got.name, got.w, c, dm.Cycles)
					}
				}
			}
		}
	}
}

// TestSearchDeterministicAcrossParallelism pins the fleet-era contract
// the probe waves were redesigned around: the search answer is a pure
// function of its inputs — never of Parallelism, GOMAXPROCS, or
// whether probes execute locally or through a batch-capable runner.
// This is what makes a server-side search byte-identical to a local
// one by construction (DESIGN.md §11), not merely in practice.
func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	s := smallSuite(t)
	dm, err := s.RunDM(machine.Params{Window: 12, MD: 40})
	if err != nil {
		t.Fatal(err)
	}
	p := machine.Params{Window: 12, MD: 40, MemQueue: 24}

	type answer struct {
		w  int
		ok bool
	}
	var want answer
	for i, par := range []int{1, 2, 4, 9} {
		search := NewSearch(sweep.NewRunner(s))
		search.Parallelism = par
		w, ok, err := search.EquivalentWindow(p, dm.Cycles)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = answer{w, ok}
			continue
		}
		if (answer{w, ok}) != want {
			t.Errorf("par=%d: (%d, %v) differs from par=1's (%d, %v)", par, w, ok, want.w, want.ok)
		}
	}

	// A batch-capable runner (the remote path) probes the same waves and
	// lands on the same answer; every probe travels through RemoteBatch.
	exec := sweep.NewRunner(s)
	batched := sweep.NewRunner(s)
	waves := 0
	batched.RemoteBatch = func(pts []sweep.Point) ([]*engine.Result, error) {
		waves++
		return exec.RunAll(pts)
	}
	search := NewSearch(batched)
	w, ok, err := search.EquivalentWindow(p, dm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if (answer{w, ok}) != want {
		t.Errorf("batch-capable runner: (%d, %v) differs from local (%d, %v)", w, ok, want.w, want.ok)
	}
	if waves == 0 {
		t.Error("batch-capable runner should have routed probe waves remotely")
	}
	if st := batched.Stats(); st.Sims != 0 {
		t.Errorf("batch-capable runner simulated %d probes locally", st.Sims)
	}
	t.Logf("search resolved in %d remote waves", waves)

	// The ratio search folds its DM anchor into the first wave: one
	// round trip covers anchor plus ladder stage.
	execR := sweep.NewRunner(s)
	batchedR := sweep.NewRunner(s)
	var firstWave []sweep.Point
	batchedR.RemoteBatch = func(pts []sweep.Point) ([]*engine.Result, error) {
		if firstWave == nil {
			firstWave = append([]sweep.Point(nil), pts...)
		}
		return execR.RunAll(pts)
	}
	if _, _, err := NewSearch(batchedR).EquivalentWindowRatio(p); err != nil {
		t.Fatal(err)
	}
	if len(firstWave) < 2 || firstWave[0].Kind != machine.DM || firstWave[1].Kind != machine.SWSM {
		t.Errorf("ratio search's first wave should carry the DM anchor plus SWSM rungs, got %d points", len(firstWave))
	}
}

// TestEquivalentWindowHintInvariance: the bracket hint (p.Window) must
// not change the answer, wherever it lands relative to the minimum.
func TestEquivalentWindowHintInvariance(t *testing.T) {
	s := smallSuite(t)
	r := sweep.NewRunner(s)
	dm, err := s.RunDM(machine.Params{Window: 12, MD: 40})
	if err != nil {
		t.Fatal(err)
	}
	base := machine.Params{MD: 40, MemQueue: 24}
	want, wantOK, err := EquivalentWindow(r, base, dm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		for _, hint := range []int{0, 1, 3, 12, 77, 600, MaxEquivalentWindow, MaxEquivalentWindow + 9} {
			q := base
			q.Window = hint
			search := NewSearch(r)
			search.Parallelism = par
			got, ok, err := search.EquivalentWindow(q, dm.Cycles)
			if err != nil {
				t.Fatal(err)
			}
			if got != want || ok != wantOK {
				t.Errorf("par=%d hint=%d: got (%d, %v), want (%d, %v)", par, hint, got, ok, want, wantOK)
			}
		}
	}
}

// TestSearchSaturates: an unreachable target reports the cap and !ok on
// both the serial and the parallel path.
func TestSearchSaturates(t *testing.T) {
	s := smallSuite(t)
	for _, par := range []int{1, 3} {
		search := NewSearch(sweep.NewRunner(s))
		search.Parallelism = par
		w, ok, err := search.EquivalentWindow(machine.Params{MD: 40, Window: 16}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ok || w != MaxEquivalentWindow {
			t.Fatalf("par=%d: unreachable target gave (%d, %v), want (%d, false)", par, w, ok, MaxEquivalentWindow)
		}
	}
}

func TestEquivalentWindowRatioNeedsFiniteWindow(t *testing.T) {
	s := smallSuite(t)
	if _, _, err := EquivalentWindowRatio(sweep.NewRunner(s), machine.Params{Window: 0, MD: 40}); err == nil {
		t.Fatal("unlimited DM window accepted")
	}
}

func TestCrossover(t *testing.T) {
	s := smallSuite(t)
	windows := []int{2, 4, 8, 16, 32, 64, 128}
	w, ok, err := Crossover(sweep.NewRunner(s), machine.Params{MD: 0}, windows)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("no crossover on this kernel; covered by experiments tests")
	}
	if w < 2 || w > 128 {
		t.Fatalf("crossover %d outside sweep", w)
	}
}
