package metrics

import (
	"errors"
	"testing"
	"testing/quick"

	"daesim/internal/kernel"
	"daesim/internal/machine"
	"daesim/internal/partition"
)

func TestSpeedupAndLHE(t *testing.T) {
	if Speedup(100, 20) != 5.0 {
		t.Fatal("speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("zero actual should yield zero")
	}
	if LHE(80, 100) != 0.8 {
		t.Fatal("LHE wrong")
	}
	if LHE(80, 0) != 0 {
		t.Fatal("zero actual should yield zero")
	}
}

// fakeMonotone builds a RunFunc from a step function: time = hi below the
// threshold window, lo at or above it.
func fakeMonotone(threshold int, hi, lo int64) RunFunc {
	return func(w int) (int64, error) {
		if w >= threshold {
			return lo, nil
		}
		return hi, nil
	}
}

func TestEquivalentWindowFuncFindsThreshold(t *testing.T) {
	f := func(th uint16) bool {
		threshold := int(th%2000) + 1
		run := fakeMonotone(threshold, 100, 10)
		w, ok, err := EquivalentWindowFunc(run, 50)
		return err == nil && ok && w == threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentWindowFuncSaturates(t *testing.T) {
	run := func(w int) (int64, error) { return 1000, nil }
	w, ok, err := EquivalentWindowFunc(run, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unreachable target should report !ok")
	}
	if w != MaxEquivalentWindow {
		t.Fatalf("saturated search should report the cap, got %d", w)
	}
}

func TestEquivalentWindowFuncImmediate(t *testing.T) {
	// Window 1 already meets the target.
	run := fakeMonotone(1, 99, 10)
	w, ok, err := EquivalentWindowFunc(run, 50)
	if err != nil || !ok || w != 1 {
		t.Fatalf("got w=%d ok=%v err=%v, want 1 true nil", w, ok, err)
	}
}

func TestEquivalentWindowFuncPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	run := func(w int) (int64, error) { return 0, boom }
	if _, _, err := EquivalentWindowFunc(run, 10); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func smallSuite(t *testing.T) *machine.Suite {
	t.Helper()
	b := kernel.New("metrics")
	arr := b.Array("a", 256, 8)
	for i := 0; i < 48; i++ {
		base := b.Int()
		v := b.Load(arr, i, base)
		f := b.FPChain(2, v)
		b.Store(arr, 128+i, f, base)
	}
	s, err := machine.NewSuite(b.MustTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEquivalentWindowAgainstSuite(t *testing.T) {
	s := smallSuite(t)
	dm, err := s.RunDM(machine.Params{Window: 12, MD: 40})
	if err != nil {
		t.Fatal(err)
	}
	w, ok, err := EquivalentWindow(s, machine.Params{MD: 40, MemQueue: 24}, dm.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("search saturated on a tiny kernel")
	}
	// Verify minimality: w matches, w-1 does not.
	check := func(win int) int64 {
		r, err := s.RunSWSM(machine.Params{Window: win, MD: 40, MemQueue: 24})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if check(w) > dm.Cycles {
		t.Fatalf("window %d does not meet the target", w)
	}
	if w > 1 && check(w-1) <= dm.Cycles {
		t.Fatalf("window %d is not minimal", w)
	}
}

func TestEquivalentWindowRatioNeedsFiniteWindow(t *testing.T) {
	s := smallSuite(t)
	if _, _, err := EquivalentWindowRatio(s, machine.Params{Window: 0, MD: 40}); err == nil {
		t.Fatal("unlimited DM window accepted")
	}
}

func TestCrossover(t *testing.T) {
	s := smallSuite(t)
	windows := []int{2, 4, 8, 16, 32, 64, 128}
	w, ok, err := Crossover(s, machine.Params{MD: 0}, windows)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("no crossover on this kernel; covered by experiments tests")
	}
	if w < 2 || w > 128 {
		t.Fatalf("crossover %d outside sweep", w)
	}
}
