// Package metrics computes the paper's derived measures: speedup over
// the serial reference, latency-hiding effectiveness (LHE), the
// equivalent window (the SWSM window matching a DM configuration) and
// the MD=0 crossover window.
package metrics

import (
	"fmt"

	"daesim/internal/engine"
	"daesim/internal/machine"
)

// Speedup returns serial/actual; zero actual yields zero.
func Speedup(serial, actual int64) float64 {
	if actual == 0 {
		return 0
	}
	return float64(serial) / float64(actual)
}

// LHE returns the latency-hiding effectiveness T_perfect/T_actual, where
// T_perfect is the execution time when every memory access perceives a
// single-cycle latency (Jones & Topham, §5). Perfect hiding gives 1.
func LHE(perfect, actual int64) float64 {
	if actual == 0 {
		return 0
	}
	return float64(perfect) / float64(actual)
}

// MaxEquivalentWindow bounds the equivalent-window search. The paper
// examines SWSM windows up to 1000 slots; the search allows a deeper
// sweep so ratios near the top of Figures 7-9 resolve.
const MaxEquivalentWindow = 8192

// RunFunc reports the execution time at a given window size.
type RunFunc func(window int) (int64, error)

// EquivalentWindowFunc returns the smallest window at which run's time is
// at most target cycles, exploiting monotonicity of time in window size.
// ok is false if even MaxEquivalentWindow cannot reach the target.
func EquivalentWindowFunc(run RunFunc, target int64) (window int, ok bool, err error) {
	// Exponential probe for an upper bound.
	lo, hi := 1, 1
	for {
		c, err := run(hi)
		if err != nil {
			return 0, false, err
		}
		if c <= target {
			break
		}
		lo = hi + 1
		hi *= 2
		if hi > MaxEquivalentWindow {
			c, err := run(MaxEquivalentWindow)
			if err != nil {
				return 0, false, err
			}
			if c > target {
				return MaxEquivalentWindow, false, nil
			}
			hi = MaxEquivalentWindow
			break
		}
	}
	// Binary search in (lo-1, hi].
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := run(mid)
		if err != nil {
			return 0, false, err
		}
		if c <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, true, nil
}

// EquivalentWindow is EquivalentWindowFunc against the suite's SWSM with
// parameters p (p.Window is ignored). The search probes O(log n)
// windows serially, so it reuses one engine scratch context throughout.
func EquivalentWindow(s *machine.Suite, p machine.Params, target int64) (window int, ok bool, err error) {
	sim := engine.NewSim()
	return EquivalentWindowFunc(func(w int) (int64, error) {
		q := p
		q.Window = w
		r, err := s.RunSWSMWith(sim, q)
		if err != nil {
			return 0, err
		}
		return r.Cycles, nil
	}, target)
}

// EquivalentWindowRatio runs the DM at p and returns the ratio of the
// equivalent SWSM window to the DM (per-unit) window — the quantity of
// Figures 7-9. ok is false when the SWSM cannot match the DM within
// MaxEquivalentWindow.
func EquivalentWindowRatio(s *machine.Suite, p machine.Params) (ratio float64, ok bool, err error) {
	if p.Window <= 0 {
		return 0, false, fmt.Errorf("metrics: equivalent window ratio needs a finite DM window")
	}
	dm, err := s.RunDM(p)
	if err != nil {
		return 0, false, err
	}
	w, ok, err := EquivalentWindow(s, p, dm.Cycles)
	if err != nil {
		return 0, false, err
	}
	return float64(w) / float64(p.Window), ok, nil
}

// Crossover returns the smallest window in windows (ascending) at which
// the SWSM is at least as fast as the DM with the same per-unit window,
// and ok=false if no such window exists in the sweep. This locates the
// paper's MD=0 cutoff points.
func Crossover(s *machine.Suite, p machine.Params, windows []int) (window int, ok bool, err error) {
	sim := engine.NewSim()
	for _, w := range windows {
		q := p
		q.Window = w
		dm, err := s.RunDMWith(sim, q)
		if err != nil {
			return 0, false, err
		}
		sw, err := s.RunSWSMWith(sim, q)
		if err != nil {
			return 0, false, err
		}
		if sw.Cycles <= dm.Cycles {
			return w, true, nil
		}
	}
	return 0, false, nil
}
