// Package metrics computes the paper's derived measures: speedup over
// the serial reference, latency-hiding effectiveness (LHE), the
// equivalent window (the SWSM window matching a DM configuration) and
// the MD=0 crossover window.
//
// The equivalent-window searches route every probe through a
// sweep.Runner, so overlapping figure sweeps share memoized results, and
// fan independent probes out across a bounded worker pool of
// per-goroutine engine.Sim scratches (see Search).
package metrics

import (
	"fmt"
	"runtime"
	"sync"

	"daesim/internal/engine"
	"daesim/internal/machine"
	"daesim/internal/sweep"
)

// Speedup returns serial/actual; zero actual yields zero.
func Speedup(serial, actual int64) float64 {
	if actual == 0 {
		return 0
	}
	return float64(serial) / float64(actual)
}

// LHE returns the latency-hiding effectiveness T_perfect/T_actual, where
// T_perfect is the execution time when every memory access perceives a
// single-cycle latency (Jones & Topham, §5). Perfect hiding gives 1.
func LHE(perfect, actual int64) float64 {
	if actual == 0 {
		return 0
	}
	return float64(perfect) / float64(actual)
}

// MaxEquivalentWindow bounds the equivalent-window search. The paper
// examines SWSM windows up to 1000 slots; the search allows a deeper
// sweep so ratios near the top of Figures 7-9 resolve.
const MaxEquivalentWindow = 8192

// RunFunc reports the execution time at a given window size.
type RunFunc func(window int) (int64, error)

// EquivalentWindowFunc returns the smallest window at which run's time is
// at most target cycles, exploiting monotonicity of time in window size.
// ok is false if even MaxEquivalentWindow cannot reach the target.
func EquivalentWindowFunc(run RunFunc, target int64) (window int, ok bool, err error) {
	return searchFrom(run, target, 1)
}

// searchFrom is the serial search: probe the hint, then bracket by
// exponential doubling upward (or binary refinement downward) and binary
// search the bracket. With hint 1 it probes the exact sequence the
// original from-scratch search did; a hint near the answer (e.g. the DM
// window for a ratio search, whose result is almost always a small
// multiple of it) skips the cold low-window rungs of the ladder, which
// are also the slowest to simulate.
func searchFrom(run RunFunc, target int64, hint int) (window int, ok bool, err error) {
	h := hint
	if h < 1 {
		h = 1
	}
	if h > MaxEquivalentWindow {
		h = MaxEquivalentWindow
	}
	c, err := run(h)
	if err != nil {
		return 0, false, err
	}
	// (wFail, cFail) is the largest window known to miss the target,
	// (hi, cHi) the smallest known to meet it; both anchor the
	// interpolation steps below.
	var lo, hi int
	wFail, cFail := 0, int64(-1)
	var cHi int64
	if c <= target {
		lo, hi, cHi = 1, h, c
	} else {
		wFail, cFail = h, c
		// Exponential probe upward for an upper bound.
		lo, hi = h+1, 2*h
		for {
			if hi >= MaxEquivalentWindow {
				c, err := run(MaxEquivalentWindow)
				if err != nil {
					return 0, false, err
				}
				if c > target {
					return MaxEquivalentWindow, false, nil
				}
				hi, cHi = MaxEquivalentWindow, c
				break
			}
			c, err := run(hi)
			if err != nil {
				return 0, false, err
			}
			if c <= target {
				cHi = c
				break
			}
			lo = hi + 1
			wFail, cFail = hi, c
			hi *= 2
		}
	}
	// Refine [lo, hi]; hi is known to meet the target. Steps alternate
	// between interpolating the boundary from the bracket anchors (time
	// is near-smooth in window size, so the secant estimate usually lands
	// within a few slots of the answer) and plain bisection, which caps
	// the worst case at 2x the probes of pure binary search.
	for step := 0; lo < hi; step++ {
		mid := (lo + hi) / 2
		if step%2 == 0 && cFail > cHi && cFail > target {
			est := float64(wFail) + float64(cFail-target)/float64(cFail-cHi)*float64(hi-wFail)
			if m := int(est); m >= lo && m < hi {
				mid = m
			}
		}
		c, err := run(mid)
		if err != nil {
			return 0, false, err
		}
		if c <= target {
			hi, cHi = mid, c
		} else {
			lo = mid + 1
			wFail, cFail = mid, c
		}
	}
	return hi, true, nil
}

// Search runs equivalent-window and crossover searches against one
// sweep.Runner. It owns a pool of per-goroutine engine.Sim scratch
// contexts that stay warm across calls, so a figure sweep of many search
// points does not cold-start scratch on every point, and its probes are
// memoized by the Runner, so overlapping sweeps (WindowSweep curves, the
// other MD curves of a ratio figure) share results.
//
// The search is speculative and wave-structured: the exponential
// bracket ladder is evaluated as one wave, then each refinement layer
// probes kSectionWidth interior points at once (k-section), trading
// redundant simulations for wall-clock depth. The wave contents are a
// pure function of the hint and the probe results — never of
// Parallelism, GOMAXPROCS, or where the probes execute — so a search
// returns the same window on a laptop, a CI runner, and a sweepd fleet
// (TestSearchDeterministicAcrossParallelism), and byte-identity between
// local and remote reproductions is structural rather than lucky.
// Parallelism only chooses how a wave is executed: fanned across
// per-goroutine scratches, serially on one, or — when the Runner has a
// RemoteBatch hook — as a single batched round trip per wave, which is
// what collapses a remote search's request count (DESIGN.md §11).
// Points carrying a custom Params.Mem fall back to a serial adaptive
// path: stateful memory models are not safe to probe concurrently (or
// remotely).
//
// A Search is not safe for concurrent use by multiple goroutines; it
// parallelizes internally.
type Search struct {
	// Runner executes and memoizes the probes.
	Runner *sweep.Runner
	// Parallelism bounds the probe fan-out (0: the Runner's Parallelism,
	// else GOMAXPROCS).
	Parallelism int

	sims []*engine.Sim
}

// NewSearch returns a Search against the runner.
func NewSearch(r *sweep.Runner) *Search { return &Search{Runner: r} }

func (s *Search) par() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	if s.Runner != nil && s.Runner.Parallelism > 0 {
		return s.Runner.Parallelism
	}
	return runtime.GOMAXPROCS(0) //daelint:nondeterministic-ok worker-pool width only; the wave ladder places every probe by step index
}

// sim returns the i'th warm scratch context, growing the pool on demand.
func (s *Search) sim(i int) *engine.Sim {
	for len(s.sims) <= i {
		s.sims = append(s.sims, engine.NewSim())
	}
	return s.sims[i]
}

// probe runs the SWSM at window w on the given scratch, memoized.
func (s *Search) probe(sim *engine.Sim, p machine.Params, w int) (int64, error) {
	q := p
	q.Window = w
	r, err := s.Runner.RunWith(sim, sweep.Point{Kind: machine.SWSM, P: q})
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// evalWave evaluates one wave of points. The wave's results do not
// depend on the execution strategy: a batched remote round trip when
// the Runner has one, else a fan across the worker pool (each worker
// owning one scratch context), else a serial loop.
func (s *Search) evalWave(pts []sweep.Point) ([]int64, error) {
	times := make([]int64, len(pts))
	if s.Runner.RemoteBatch != nil {
		results, err := s.Runner.RunBatch(pts)
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			times[i] = r.Cycles
		}
		return times, nil
	}
	par := s.par()
	if par > len(pts) {
		par = len(pts)
	}
	if par <= 1 {
		sim := s.sim(0)
		for i, pt := range pts {
			r, err := s.Runner.RunWith(sim, pt)
			if err != nil {
				return nil, err
			}
			times[i] = r.Cycles
		}
		return times, nil
	}
	errs := make([]error, par)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		sim := s.sim(g)
		wg.Add(1)
		go func(g int, sim *engine.Sim) {
			defer wg.Done()
			for i := g; i < len(pts); i += par {
				r, err := s.Runner.RunWith(sim, pts[i])
				if err != nil {
					errs[g] = err
					return
				}
				times[i] = r.Cycles
			}
		}(g, sim)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return times, nil
}

// evalBatch evaluates the SWSM time at every window in ws as one wave.
func (s *Search) evalBatch(p machine.Params, ws []int) ([]int64, error) {
	pts := make([]sweep.Point, len(ws))
	for i, w := range ws {
		q := p
		q.Window = w
		pts[i] = sweep.Point{Kind: machine.SWSM, P: q}
	}
	return s.evalWave(pts)
}

// EquivalentWindow returns the smallest SWSM window (running the suite
// under p with p.Window replaced by the candidate) whose time is at most
// target cycles. p.Window, when positive, seeds the bracket: the search
// probes it first and expands or refines from there. ok is false if even
// MaxEquivalentWindow cannot reach the target.
//
// Minimality holds under monotonicity of time in window size, which the
// engine satisfies up to small Graham anomalies (DESIGN.md §3). Inside
// an anomaly wobble band the boundary is ambiguous and the returned
// window depends on the probe path — but the probe path is a pure
// function of the hint and the probe results, never of Parallelism or
// execution placement (the Search doc has the contract), so the answer
// is reproducible everywhere and always satisfies
// t(w) <= target < t(w-1). Only the hint can steer which boundary of a
// wobble band is reported.
func (s *Search) EquivalentWindow(p machine.Params, target int64) (window int, ok bool, err error) {
	hint := clampHint(p.Window)
	if p.Mem != nil {
		sim := s.sim(0)
		return searchFrom(func(w int) (int64, error) { return s.probe(sim, p, w) }, target, hint)
	}
	ladder := ladderWindows(hint)
	end := ladderStage
	if end > len(ladder) {
		end = len(ladder)
	}
	times, err := s.evalBatch(p, ladder[:end])
	if err != nil {
		return 0, false, err
	}
	return s.ladderSearch(p, target, ladder, times)
}

// kSectionWidth is the interior-probe count of each refinement wave.
// It is a fixed constant — not the machine's parallelism — because the
// wave contents define the search's answer path, and that path must be
// identical everywhere for local, remote, and differently-sized hosts
// to agree bit-for-bit on figure values. 4 shrinks a bracket 5x per
// wave — 2-3 waves for figure-scale brackets — while keeping the
// redundant-probe overhead on serial hosts within ~20% of the old
// adaptive search (measured on repro -exp all).
const kSectionWidth = 4

// clampHint bounds a bracket hint to [1, MaxEquivalentWindow].
func clampHint(hint int) int {
	if hint < 1 {
		return 1
	}
	if hint > MaxEquivalentWindow {
		return MaxEquivalentWindow
	}
	return hint
}

// ladderWindows is the speculative bracket sequence for a hint: the
// hint and its doublings up to the cap. A pure function of the hint.
func ladderWindows(hint int) []int {
	ladder := []int{hint}
	for w := 2 * hint; w < MaxEquivalentWindow; w *= 2 {
		ladder = append(ladder, w)
	}
	if ladder[len(ladder)-1] != MaxEquivalentWindow {
		ladder = append(ladder, MaxEquivalentWindow)
	}
	return ladder
}

// ladderStage is how many ladder rungs one wave speculates on. Figure
// ratios land within a few doublings of the hint, so a 4-rung stage
// (hint..8×hint) resolves most searches in one wave without paying for
// the cap-sized probes a full-ladder wave would waste; only searches
// that overshoot the stage climb to the next one.
const ladderStage = 4

// ladderSearch continues a partially evaluated ladder (times covers
// ladder[:len(times)]) stage by stage until a rung meets the target or
// the ladder is exhausted, then refines the bracket. The probe path is
// a pure function of (ladder, target, probe results).
func (s *Search) ladderSearch(p machine.Params, target int64, ladder []int, times []int64) (window int, ok bool, err error) {
	found := func() bool {
		for _, t := range times {
			if t <= target {
				return true
			}
		}
		return false
	}
	for !found() && len(times) < len(ladder) {
		end := len(times) + ladderStage
		if end > len(ladder) {
			end = len(ladder)
		}
		chunk, err := s.evalBatch(p, ladder[len(times):end])
		if err != nil {
			return 0, false, err
		}
		times = append(times, chunk...)
	}
	return s.refine(p, target, ladder[:len(times)], times)
}

// refine turns evaluated ladder times into the smallest target-meeting
// window: bracket from the first ladder rung meeting the target, then
// k-section waves of kSectionWidth interior points until the bracket
// closes.
func (s *Search) refine(p machine.Params, target int64, ladder []int, times []int64) (window int, ok bool, err error) {
	first := -1
	for i, t := range times {
		if t <= target {
			first = i
			break
		}
	}
	if first < 0 {
		return MaxEquivalentWindow, false, nil
	}
	lo, hi := 1, ladder[first]
	if first > 0 {
		lo = ladder[first-1] + 1
	}
	for lo < hi {
		span := hi - lo
		m := kSectionWidth
		if m > span {
			m = span
		}
		xs := make([]int, 0, m)
		for j := 1; j <= m; j++ {
			x := lo + j*span/(m+1)
			if len(xs) == 0 || x > xs[len(xs)-1] {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			xs = append(xs, lo+span/2)
		}
		times, err := s.evalBatch(p, xs)
		if err != nil {
			return 0, false, err
		}
		firstGood := -1
		for i, t := range times {
			if t <= target {
				firstGood = i
				break
			}
		}
		switch {
		case firstGood < 0:
			lo = xs[len(xs)-1] + 1
		case firstGood == 0:
			hi = xs[0]
		default:
			lo, hi = xs[firstGood-1]+1, xs[firstGood]
		}
	}
	return hi, true, nil
}

// EquivalentWindowRatio runs the DM at p and returns the ratio of the
// equivalent SWSM window to the DM (per-unit) window — the quantity of
// Figures 7-9. Each machine's memory buffer scales with its own window
// (the default QueueFactor×Window): the prefetch buffer is part of the
// window resource the search is scaling, so a probe at window w gets a
// w-proportional buffer just as the DM it must match got one — pinning
// the probes to the DM's capacity would charge the SWSM twice for the
// same slots. An explicit p.MemQueue or p.Mem is used as given. ok is
// false when the SWSM cannot match the DM within MaxEquivalentWindow.
func (s *Search) EquivalentWindowRatio(p machine.Params) (ratio float64, ok bool, err error) {
	if p.Window <= 0 {
		return 0, false, fmt.Errorf("metrics: equivalent window ratio needs a finite DM window")
	}
	if p.Mem != nil {
		dm, err := s.Runner.RunWith(s.sim(0), sweep.Point{Kind: machine.DM, P: p})
		if err != nil {
			return 0, false, err
		}
		w, ok, err := s.EquivalentWindow(p, dm.Cycles)
		if err != nil {
			return 0, false, err
		}
		return float64(w) / float64(p.Window), ok, nil
	}
	// The DM anchor rides in the first wave with the first ladder stage:
	// the ladder's contents depend only on the hint, not on the target,
	// so nothing forces the anchor to resolve first — and folding it in
	// saves a remote search one full round trip per ratio point.
	hint := clampHint(p.Window)
	ladder := ladderWindows(hint)
	end := ladderStage
	if end > len(ladder) {
		end = len(ladder)
	}
	pts := make([]sweep.Point, 0, end+1)
	pts = append(pts, sweep.Point{Kind: machine.DM, P: p})
	for _, w := range ladder[:end] {
		q := p
		q.Window = w
		pts = append(pts, sweep.Point{Kind: machine.SWSM, P: q})
	}
	times, err := s.evalWave(pts)
	if err != nil {
		return 0, false, err
	}
	w, ok, err := s.ladderSearch(p, times[0], ladder, times[1:])
	if err != nil {
		return 0, false, err
	}
	return float64(w) / float64(p.Window), ok, nil
}

// Crossover returns the smallest window in windows (ascending) at which
// the SWSM is at least as fast as the DM with the same per-unit window,
// and ok=false if no such window exists in the sweep. This locates the
// paper's MD=0 cutoff points. Both machines run through the Runner on
// one warm scratch, so a crossover scan over windows another sweep
// already visited costs nothing.
func (s *Search) Crossover(p machine.Params, windows []int) (window int, ok bool, err error) {
	sim := s.sim(0)
	for _, w := range windows {
		q := p
		q.Window = w
		dm, err := s.Runner.RunWith(sim, sweep.Point{Kind: machine.DM, P: q})
		if err != nil {
			return 0, false, err
		}
		sw, err := s.Runner.RunWith(sim, sweep.Point{Kind: machine.SWSM, P: q})
		if err != nil {
			return 0, false, err
		}
		if sw.Cycles <= dm.Cycles {
			return w, true, nil
		}
	}
	return 0, false, nil
}

// EquivalentWindow is Search.EquivalentWindow on a one-shot Search
// against r. Callers evaluating many points should hold a Search so the
// scratch pool stays warm.
func EquivalentWindow(r *sweep.Runner, p machine.Params, target int64) (window int, ok bool, err error) {
	return NewSearch(r).EquivalentWindow(p, target)
}

// EquivalentWindowRatio is Search.EquivalentWindowRatio on a one-shot
// Search against r.
func EquivalentWindowRatio(r *sweep.Runner, p machine.Params) (ratio float64, ok bool, err error) {
	return NewSearch(r).EquivalentWindowRatio(p)
}

// Crossover is Search.Crossover on a one-shot Search against r.
func Crossover(r *sweep.Runner, p machine.Params, windows []int) (window int, ok bool, err error) {
	return NewSearch(r).Crossover(p, windows)
}
