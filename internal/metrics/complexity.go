package metrics

// Window-issue-logic complexity model after Palacharla, Jouppi & Smith,
// "Complexity-Effective Superscalar Processors" (ISCA 1997) — the paper's
// reference [11] and the basis of its closing argument: the SWSM needs a
// 2-4x larger window to match the DM, and window logic delay grows
// quadratically with window size and issue width, so the DM buys its
// performance with a faster clock as well as fewer slots.
//
// Palacharla et al. fit wakeup and selection delays as quadratics in
// window size W and issue width IW. The absolute coefficients are
// technology-specific; for comparing configurations only the *shape*
// matters, so WindowDelay uses normalized coefficients calibrated to
// their observation that wakeup+select dominates and scales as
// c0 + c1*(W+IW) + c2*(W*IW) + c3*W^2 (the quadratic term driven by the
// tag-match fan-out across the window).

// DelayModel holds the quadratic coefficients. Units are arbitrary
// (relative delay); only ratios between configurations are meaningful.
type DelayModel struct {
	C0, C1, C2, C3 float64
}

// DefaultDelayModel approximates the 0.35um fits of Palacharla et al.,
// normalized so that a 32-entry, 4-wide window has delay 1.0.
var DefaultDelayModel = DelayModel{C0: 0.222, C1: 0.00887, C2: 0.0016, C3: 0.000248}

// Delay returns the relative window-logic (wakeup+select) delay for a
// window of the given size and issue width.
func (m DelayModel) Delay(window, issueWidth int) float64 {
	w, iw := float64(window), float64(issueWidth)
	return m.C0 + m.C1*(w+iw) + m.C2*w*iw + m.C3*w*w
}

// RelativeClock returns how much slower a machine with (window, width)
// must clock than a reference machine with (refWindow, refWidth),
// assuming the window logic sets the critical path (the paper's §1
// premise). A value of 1.5 means the clock period is 1.5x longer.
func (m DelayModel) RelativeClock(window, issueWidth, refWindow, refWidth int) float64 {
	return m.Delay(window, issueWidth) / m.Delay(refWindow, refWidth)
}

// ClockAdjustedAdvantage combines an equivalent-window measurement with
// the delay model: given that the SWSM needs eqWindow slots at swsmWidth
// to match a DM whose largest window is dmWindow slots at dmWidth (the
// wider of AU/DU), it returns the factor by which the SWSM's cycle time
// exceeds the DM's. Values above 1 mean the DM wins on clock even at
// equal instruction throughput.
func (m DelayModel) ClockAdjustedAdvantage(dmWindow, dmWidth, eqWindow, swsmWidth int) float64 {
	return m.RelativeClock(eqWindow, swsmWidth, dmWindow, dmWidth)
}
