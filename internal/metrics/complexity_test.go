package metrics

import (
	"testing"
	"testing/quick"
)

func TestDefaultDelayNormalization(t *testing.T) {
	d := DefaultDelayModel.Delay(32, 4)
	if d < 0.95 || d > 1.05 {
		t.Fatalf("32-entry 4-wide delay = %.3f, want ~1.0", d)
	}
}

func TestDelayGrowsWithWindowAndWidth(t *testing.T) {
	f := func(w8, iw3 uint8) bool {
		w := int(w8%200) + 4
		iw := int(iw3%8) + 1
		m := DefaultDelayModel
		return m.Delay(w+1, iw) > m.Delay(w, iw) && m.Delay(w, iw+1) > m.Delay(w, iw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDelaySuperlinearInWindow(t *testing.T) {
	// Quadratic term: doubling the window more than doubles the marginal
	// delay increase at large sizes.
	m := DefaultDelayModel
	d64, d128, d256 := m.Delay(64, 9), m.Delay(128, 9), m.Delay(256, 9)
	if d256-d128 <= d128-d64 {
		t.Fatalf("delay not superlinear: %f %f %f", d64, d128, d256)
	}
}

func TestRelativeClock(t *testing.T) {
	m := DefaultDelayModel
	if rc := m.RelativeClock(64, 9, 64, 9); rc != 1.0 {
		t.Fatalf("self-relative clock = %f", rc)
	}
	// The paper's scenario: DM's widest unit is the 5-wide DU with a
	// 64-entry window; the SWSM needs ~3x the window at 9-wide.
	adv := m.ClockAdjustedAdvantage(64, 5, 192, 9)
	if adv <= 1.5 {
		t.Fatalf("expected a substantial clock advantage, got %.2f", adv)
	}
	// And the advantage grows with the equivalent-window ratio.
	if m.ClockAdjustedAdvantage(64, 5, 256, 9) <= adv {
		t.Fatal("advantage should grow with the equivalent window")
	}
}
