// Store eviction / garbage collection. A Store grows without bound as
// sweeps explore new configurations; GC trims it back under size and age
// bounds, evicting least-recently-used entries first. Recency is the
// blob's mtime: Get touches an entry on every hit, so LRU order tracks
// access, not install, time. Eviction is a plain unlink of an
// atomically-installed blob, so it is safe under concurrent readers and
// writers — a reader that already opened the file still reads complete
// bytes, a reader that arrives later sees a clean miss and re-simulates,
// and a concurrent Put simply reinstalls the entry.
package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// GCPolicy bounds a Store. The zero value of each field means
// "unbounded" in that dimension; a policy with no bound set makes GC a
// no-op scan.
type GCPolicy struct {
	// MaxEntries bounds the number of cached results (0 = unlimited).
	MaxEntries int
	// MaxBytes bounds the total size of the cached blobs (0 = unlimited).
	MaxBytes int64
	// MaxAge evicts entries not accessed for longer than this
	// (0 = unlimited). Access time is refreshed on every cache hit.
	MaxAge time.Duration
}

// Bounded reports whether the policy constrains the store at all.
func (p GCPolicy) Bounded() bool {
	return p.MaxEntries > 0 || p.MaxBytes > 0 || p.MaxAge > 0
}

// String renders the policy in the ParseGCPolicy syntax.
func (p GCPolicy) String() string {
	var parts []string
	if p.MaxEntries > 0 {
		parts = append(parts, fmt.Sprintf("max-entries=%d", p.MaxEntries))
	}
	if p.MaxBytes > 0 {
		parts = append(parts, fmt.Sprintf("max-bytes=%d", p.MaxBytes))
	}
	if p.MaxAge > 0 {
		parts = append(parts, fmt.Sprintf("max-age=%s", p.MaxAge))
	}
	if len(parts) == 0 {
		return "unbounded"
	}
	return strings.Join(parts, ",")
}

// ParseGCPolicy parses a comma-separated bound list, e.g.
// "max-entries=500,max-bytes=64mb,max-age=168h". max-bytes accepts kb,
// mb and gb suffixes (binary multiples); max-age accepts time.Duration
// syntax. Omitted bounds are unlimited.
func ParseGCPolicy(spec string) (GCPolicy, error) {
	var p GCPolicy
	if strings.TrimSpace(spec) == "" {
		return p, fmt.Errorf("sweep: empty GC policy")
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("sweep: GC policy field %q is not key=value", field)
		}
		switch k {
		case "max-entries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return p, fmt.Errorf("sweep: bad max-entries %q", v)
			}
			p.MaxEntries = n
		case "max-bytes":
			n, err := parseBytes(v)
			if err != nil {
				return p, err
			}
			p.MaxBytes = n
		case "max-age":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return p, fmt.Errorf("sweep: bad max-age %q", v)
			}
			p.MaxAge = d
		default:
			return p, fmt.Errorf("sweep: unknown GC policy key %q (want max-entries, max-bytes, max-age)", k)
		}
	}
	return p, nil
}

// parseBytes parses a byte count with an optional kb/mb/gb suffix.
func parseBytes(v string) (int64, error) {
	s := strings.ToLower(strings.TrimSpace(v))
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		m   int64
	}{{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30}} {
		if strings.HasSuffix(s, suf.tag) {
			s, mult = strings.TrimSuffix(s, suf.tag), suf.m
			break
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sweep: bad byte count %q", v)
	}
	return n * mult, nil
}

// GCResult reports one GC pass.
type GCResult struct {
	// Scanned is the number of entries examined.
	Scanned int
	// Evicted counts entries removed and EvictedBytes their total size.
	Evicted      int
	EvictedBytes int64
	// Remaining counts entries kept and RemainingBytes their total size,
	// including entries a failed unlink left behind (see Errors).
	Remaining      int
	RemainingBytes int64
	// Errors counts entries the pass selected for eviction but could not
	// unlink (permissions, I/O). They remain on disk, counted in
	// Remaining/RemainingBytes, so a pass that reports Errors > 0 may
	// leave the store over its bounds.
	Errors int
}

// String renders the pass for log lines (the repro -cache-gc summary and
// the daemon GC log); TestCacheGCSummary pins the format.
func (r GCResult) String() string {
	s := fmt.Sprintf("scanned %d entries, evicted %d (%d B), kept %d (%d B)",
		r.Scanned, r.Evicted, r.EvictedBytes, r.Remaining, r.RemainingBytes)
	if r.Errors > 0 {
		s += fmt.Sprintf(", %d eviction errors", r.Errors)
	}
	return s
}

// blobInfo is one on-disk entry during a GC scan.
type blobInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// GC trims the store to the policy's bounds: entries unaccessed for
// longer than MaxAge go first, then least-recently-used entries until
// both MaxEntries and MaxBytes hold. Safe to run concurrently with
// readers and writers (and with other GC passes): eviction is an atomic
// unlink, so a racing Get sees either the complete entry or a clean
// miss, never partial bytes. Entries installed while the pass is
// scanning may be missed until the next pass.
func (s *Store) GC(pol GCPolicy) (GCResult, error) {
	var res GCResult
	fans, err := os.ReadDir(s.dir)
	if err != nil {
		return res, fmt.Errorf("sweep: GC scan: %w", err)
	}
	var blobs []blobInfo
	var total int64
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		if err != nil {
			continue // fan dir vanished under a concurrent Clear/GC
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue // entry vanished mid-scan
			}
			blobs = append(blobs, blobInfo{
				path:  filepath.Join(s.dir, fan.Name(), e.Name()),
				size:  info.Size(),
				mtime: info.ModTime(),
			})
			total += info.Size()
		}
	}
	res.Scanned = len(blobs)
	// Oldest-access first; path breaks mtime ties so eviction order is
	// deterministic on filesystems with coarse timestamps.
	sort.Slice(blobs, func(i, j int) bool {
		if !blobs[i].mtime.Equal(blobs[j].mtime) {
			return blobs[i].mtime.Before(blobs[j].mtime)
		}
		return blobs[i].path < blobs[j].path
	})
	evict := func(b blobInfo) {
		switch err := os.Remove(b.path); {
		case err == nil:
			res.Evicted++
			res.EvictedBytes += b.size
			s.gcEvictions.Add(1)
			total -= b.size
		case os.IsNotExist(err):
			// A concurrent GC pass (or Clear) removed it already: gone
			// from disk, so drop it from the running total, but only the
			// pass that performed the unlink counts the eviction.
			total -= b.size
		default:
			// Unremovable (permissions, I/O): the entry is still on disk
			// and still occupies bytes, so it stays in the total — the
			// bounds loop keeps evicting younger entries rather than
			// stopping early on bytes it never freed.
			res.Errors++
		}
	}
	cutoff := time.Now().Add(-pol.MaxAge) //daelint:nondeterministic-ok GC age cutoff prunes cache entries; simulation results are never derived from it
	i := 0
	if pol.MaxAge > 0 {
		for ; i < len(blobs) && blobs[i].mtime.Before(cutoff); i++ {
			evict(blobs[i])
		}
	}
	for ; i < len(blobs); i++ {
		keep := len(blobs) - i
		overEntries := pol.MaxEntries > 0 && keep > pol.MaxEntries
		overBytes := pol.MaxBytes > 0 && total > pol.MaxBytes
		if !overEntries && !overBytes {
			break
		}
		evict(blobs[i])
	}
	res.Remaining = res.Scanned - res.Evicted
	res.RemainingBytes = total
	return res, nil
}
