package sweep

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"daesim/internal/engine"
)

// gcStore opens a store in a temp dir and installs n synthetic entries
// key-0 .. key-n-1, backdating entry i's mtime to base + i seconds so
// LRU order is deterministic (oldest = lowest index) regardless of
// filesystem timestamp granularity.
func gcStore(t *testing.T, n int, base time.Time) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		st.Put(key, &engine.Result{Cycles: int64(i)})
		mt := base.Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(st.path(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestGCMaxEntriesEvictsLRU(t *testing.T) {
	base := time.Now().Add(-time.Hour) //daelint:nondeterministic-ok GC tests fabricate mtimes relative to the real clock
	st := gcStore(t, 10, base)
	res, err := st.GC(GCPolicy{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 10 || res.Evicted != 6 || res.Remaining != 4 {
		t.Fatalf("want 10 scanned / 6 evicted / 4 kept, got %+v", res)
	}
	// The oldest six are gone, the newest four survive.
	for i := 0; i < 10; i++ {
		_, ok := st.Get(fmt.Sprintf("key-%d", i))
		if want := i >= 6; ok != want {
			t.Errorf("key-%d: present=%v, want %v", i, ok, want)
		}
	}
	if ev := st.Stats().GCEvictions; ev != 6 {
		t.Errorf("GCEvictions = %d, want 6", ev)
	}
}

func TestGCRecencyIsAccessNotInstall(t *testing.T) {
	base := time.Now().Add(-time.Hour) //daelint:nondeterministic-ok GC tests fabricate mtimes relative to the real clock
	st := gcStore(t, 6, base)
	// Touch the two oldest entries via Get: they become the most recent.
	for _, k := range []string{"key-0", "key-1"} {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("%s should hit", k)
		}
	}
	if _, err := st.GC(GCPolicy{MaxEntries: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		_, ok := st.Get(fmt.Sprintf("key-%d", i))
		if want := i <= 1; ok != want {
			t.Errorf("key-%d: present=%v, want %v (LRU must track access time)", i, ok, want)
		}
	}
}

func TestGCMaxBytes(t *testing.T) {
	base := time.Now().Add(-time.Hour) //daelint:nondeterministic-ok GC tests fabricate mtimes relative to the real clock
	st := gcStore(t, 8, base)
	// All entries are the same size; bound to roughly three entries' bytes.
	info, err := os.Stat(st.path("key-0"))
	if err != nil {
		t.Fatal(err)
	}
	per := info.Size()
	res, err := st.GC(GCPolicy{MaxBytes: 3*per + per/2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 3 {
		t.Fatalf("want 3 entries within %d bytes, got %+v", 3*per+per/2, res)
	}
	if res.RemainingBytes > 3*per+per/2 {
		t.Fatalf("RemainingBytes %d exceeds the bound", res.RemainingBytes)
	}
	for i := 5; i < 8; i++ {
		if _, ok := st.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Errorf("key-%d (most recent) should survive a byte-bound GC", i)
		}
	}
}

func TestGCMaxAge(t *testing.T) {
	st := gcStore(t, 4, time.Now().Add(-time.Hour)) //daelint:nondeterministic-ok GC tests fabricate mtimes relative to the real clock
	// key-4 installed now: inside any reasonable age bound.
	st.Put("key-4", &engine.Result{Cycles: 4})
	res, err := st.GC(GCPolicy{MaxAge: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 4 || res.Remaining != 1 {
		t.Fatalf("want the 4 hour-old entries evicted and the fresh one kept, got %+v", res)
	}
	if _, ok := st.Get("key-4"); !ok {
		t.Error("fresh entry evicted by age bound")
	}
}

func TestGCUnboundedPolicyIsANoop(t *testing.T) {
	st := gcStore(t, 5, time.Now().Add(-time.Hour)) //daelint:nondeterministic-ok GC tests fabricate mtimes relative to the real clock
	res, err := st.GC(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 0 || res.Remaining != 5 {
		t.Fatalf("unbounded GC must evict nothing: %+v", res)
	}
	if (GCPolicy{}).Bounded() {
		t.Error("zero policy must report unbounded")
	}
}

// TestGCConcurrentReadersWriters hammers one store with readers, writers
// and GC passes at once (run under -race in CI). The invariants: a Get
// either returns the complete, correct result or a clean miss — never a
// corrupt entry (eviction is an atomic unlink of an atomically-installed
// blob, so no reader can observe partial bytes) — and the store stays
// usable throughout.
func TestGCConcurrentReadersWriters(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	key := func(i int) string { return fmt.Sprintf("key-%d", i%keys) }
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select { //daelint:nondeterministic-ok stop-signal poll in a churn stress test; no result depends on which case wins
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keys)
				switch rng.Intn(3) {
				case 0:
					st.Put(key(k), &engine.Result{Cycles: int64(k)})
				case 1:
					if res, ok := st.Get(key(k)); ok && res.Cycles != int64(k) {
						t.Errorf("Get(%s) returned cycles %d, want %d", key(k), res.Cycles, k)
						return
					}
				case 2:
					if _, err := st.GC(GCPolicy{MaxEntries: keys / 2}); err != nil {
						t.Errorf("GC: %v", err)
						return
					}
				}
			}
		}(int64(w))
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if c := st.Stats().Corrupt; c != 0 {
		t.Errorf("concurrent GC produced %d corrupt reads (eviction must be atomic)", c)
	}
	// The store must still work after the storm.
	st.Put("after", &engine.Result{Cycles: 99})
	if res, ok := st.Get("after"); !ok || res.Cycles != 99 {
		t.Error("store unusable after concurrent GC")
	}
}

// TestGCNeverEvictsMidRead pins the mid-read safety property directly:
// a reader that has opened an entry gets its complete bytes even if GC
// unlinks the file before the read finishes. ReadFile holds the fd, so
// the unlink only removes the name.
func TestGCNeverEvictsMidRead(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Put("k", &engine.Result{Cycles: 7})
	f, err := os.Open(st.path("k"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := st.GC(GCPolicy{MaxEntries: 0, MaxAge: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 1 {
		t.Fatalf("entry should have been age-evicted: %+v", res)
	}
	buf := make([]byte, 1<<16)
	n, _ := f.Read(buf)
	if !strings.Contains(string(buf[:n]), `"key":"k"`) {
		t.Error("reader holding the fd must still see the complete entry after eviction")
	}
	if _, ok := st.Get("k"); ok {
		t.Error("new readers must miss after eviction")
	}
}

func TestParseGCPolicy(t *testing.T) {
	p, err := ParseGCPolicy("max-entries=500,max-bytes=64mb,max-age=168h")
	if err != nil {
		t.Fatal(err)
	}
	want := GCPolicy{MaxEntries: 500, MaxBytes: 64 << 20, MaxAge: 168 * time.Hour}
	if p != want {
		t.Fatalf("got %+v, want %+v", p, want)
	}
	if got := p.String(); got != "max-entries=500,max-bytes=67108864,max-age=168h0m0s" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "max-entries", "max-entries=x", "max-bytes=-1", "max-age=yesterday", "entries=3"} {
		if _, err := ParseGCPolicy(bad); err == nil {
			t.Errorf("ParseGCPolicy(%q) should fail", bad)
		}
	}
	if p, err := ParseGCPolicy("max-bytes=1024"); err != nil || p.MaxBytes != 1024 {
		t.Errorf("plain byte count: %+v, %v", p, err)
	}
}

func TestGCResultStringReportsErrors(t *testing.T) {
	r := GCResult{Scanned: 3, Evicted: 1, EvictedBytes: 10, Remaining: 2, RemainingBytes: 20}
	if got := r.String(); strings.Contains(got, "errors") {
		t.Errorf("error-free pass must keep the pinned format: %q", got)
	}
	r.Errors = 2
	if got := r.String(); !strings.Contains(got, "2 eviction errors") {
		t.Errorf("failed unlinks must surface in the summary: %q", got)
	}
}
