package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"daesim/internal/engine"
	"daesim/internal/kernel"
	"daesim/internal/machine"
	"daesim/internal/partition"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	b := kernel.New("sweep")
	arr := b.Array("a", 128, 8)
	for i := 0; i < 32; i++ {
		base := b.Int()
		v := b.Load(arr, i, base)
		b.Store(arr, 64+i, b.FP(v), base)
	}
	s, err := machine.NewSuite(b.MustTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(s)
}

func TestRunCaches(t *testing.T) {
	r := testRunner(t)
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}}
	a, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("callers must get private copies, not the shared cache entry")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cached result differs from original: %+v vs %+v", a, b)
	}
	if st := r.Stats(); st.Sims != 1 || st.L1Hits != 1 {
		t.Fatalf("want 1 sim and 1 L1 hit, got %+v", st)
	}
}

func TestRunReturnsDefensiveCopies(t *testing.T) {
	// Cached Results used to be shared pointers guarded only by a "must
	// not be mutated" comment; this pins the defensive-copy contract: a
	// caller scribbling on a returned Result must not poison later hits.
	r := testRunner(t)
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}}
	a, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Clone()
	a.Cycles = -1
	a.Ops = -1
	for i := range a.Cores {
		a.Cores[i].Issued = -1
		for j := range a.Cores[i].IssueHist {
			a.Cores[i].IssueHist[j] = -1
		}
	}
	b, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, b) {
		t.Fatalf("mutating a returned Result leaked into the cache:\nwant %+v\ngot  %+v", want, b)
	}
}

func TestCustomMemBypassesCache(t *testing.T) {
	r := testRunner(t)
	var calls atomic.Int64
	mem := &countingMem{calls: &calls}
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30, Mem: mem}}
	if _, err := r.Run(pt); err != nil {
		t.Fatal(err)
	}
	first := calls.Load()
	if _, err := r.Run(pt); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2*first {
		t.Fatal("points with custom memory models must not be cached")
	}
}

type countingMem struct{ calls *atomic.Int64 }

func (m *countingMem) RequestFill(addr uint64, sent int64) int64 { return sent + 5 }
func (m *countingMem) Consume(addr uint64, cycle int64)          {}
func (m *countingMem) Reset()                                    { m.calls.Add(1) }

var _ engine.MemModel = (*countingMem)(nil)

func TestRunAllOrderAndParallel(t *testing.T) {
	r := testRunner(t)
	var pts []Point
	for _, w := range []int{2, 4, 8, 16, 32} {
		pts = append(pts, Point{Kind: machine.DM, P: machine.Params{Window: w, MD: 30}})
	}
	results, err := r.RunAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pts) {
		t.Fatalf("got %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Cycles > results[i-1].Cycles {
			// Small scheduling anomalies are possible but not on this
			// trivially regular kernel.
			t.Errorf("results out of order or nonmonotone: %d then %d", results[i-1].Cycles, results[i].Cycles)
		}
	}
	// Serial path must agree with the parallel path.
	r2 := testRunner(t)
	r2.Parallelism = 1
	serial, err := r2.RunAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Cycles != results[i].Cycles {
			t.Fatalf("parallel/serial divergence at %d: %d vs %d", i, results[i].Cycles, serial[i].Cycles)
		}
	}
}

// TestRunBatchMatchesRunAll: the batched path answers exactly what the
// point-wise path would — including duplicates, cached points and
// uncacheable custom-Mem points — with the same counters a point-wise
// run would produce.
func TestRunBatchMatchesRunAll(t *testing.T) {
	oracle := testRunner(t)
	r := testRunner(t)
	var calls atomic.Int64
	mem := &countingMem{calls: &calls}
	pts := []Point{
		{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}},
		{Kind: machine.SWSM, P: machine.Params{Window: 16, MD: 30}},
		{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}}, // duplicate
		{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30, Mem: mem}},
		{Kind: machine.DM, P: machine.Params{Window: 4, MD: 30}},
	}
	// Warm one point so the batch sees a pre-existing L1 entry.
	if _, err := r.Run(pts[4]); err != nil {
		t.Fatal(err)
	}
	got, err := r.RunBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.RunAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("point %d: batch result differs from point-wise", i)
		}
	}
	st := r.Stats()
	if st.Sims != 3 || st.L1Hits != 2 || st.Uncacheable != 1 {
		t.Errorf("want 3 sims, 2 L1 hits, 1 uncacheable, got %+v", st)
	}
	// Returned results are private copies, like every other path.
	got[0].Cycles = -1
	again, err := r.RunBatch(pts[:1])
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Cycles == -1 {
		t.Error("RunBatch leaked the cached Result")
	}
}

// TestRunBatchRemote: with a RemoteBatch hook, exactly the local-layer
// misses travel, in one call; warm batches travel nothing; a remote
// error fails the batch loudly and drops the claims so a retry works.
func TestRunBatchRemote(t *testing.T) {
	exec := testRunner(t) // stands in for the daemon fleet
	r := testRunner(t)
	var calls, points atomic.Int64
	var fail atomic.Bool
	r.RemoteBatch = func(pts []Point) ([]*engine.Result, error) {
		if fail.Load() {
			return nil, errFleetDown
		}
		calls.Add(1)
		points.Add(int64(len(pts)))
		return exec.RunAll(pts)
	}

	var pts []Point
	for _, w := range []int{4, 8, 16, 32} {
		pts = append(pts, Point{Kind: machine.DM, P: machine.Params{Window: w, MD: 30}})
	}
	// Pre-warm one point locally: it must not travel.
	r.RemoteBatch = nil
	if _, err := r.Run(pts[0]); err != nil {
		t.Fatal(err)
	}
	r.RemoteBatch = func(pts []Point) ([]*engine.Result, error) {
		if fail.Load() {
			return nil, errFleetDown
		}
		calls.Add(1)
		points.Add(int64(len(pts)))
		return exec.RunAll(pts)
	}

	got, err := r.RunBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || points.Load() != 3 {
		t.Errorf("want 1 remote call carrying the 3 misses, got %d calls, %d points", calls.Load(), points.Load())
	}
	for i, pt := range pts {
		local, err := exec.Run(pt)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Cycles != local.Cycles {
			t.Errorf("point %d: remote-batched result differs", i)
		}
	}
	// Warm batch: everything is an L1 hit, nothing travels.
	if _, err := r.RunBatch(pts); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("warm batch should travel nothing, remote calls went to %d", calls.Load())
	}
	st := r.Stats()
	if st.RemoteHits != 3 || st.Sims != 1 {
		t.Errorf("want 3 remote hits and the 1 pre-warmed local sim, got %+v", st)
	}

	// RunAll delegates to the batched path when the hook is set.
	if _, err := r.RunAll(pts); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("warm RunAll should not re-travel, remote calls went to %d", calls.Load())
	}

	// A remote failure surfaces and does not poison the cache.
	fresh := Point{Kind: machine.SWSM, P: machine.Params{Window: 64, MD: 30}}
	fail.Store(true)
	if _, err := r.RunBatch([]Point{fresh}); err == nil {
		t.Fatal("remote batch failure must surface")
	}
	fail.Store(false)
	if _, err := r.RunBatch([]Point{fresh}); err != nil {
		t.Fatalf("retry after a remote failure: %v", err)
	}
}

var errFleetDown = errors.New("fleet down")

// TestRunBatchStorePeel: a fresh process over a warm store serves a
// batch entirely from L2 — nothing simulates, nothing travels — and a
// remote nil result is refused before it can poison either layer.
func TestRunBatchStorePeel(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point
	for _, w := range []int{4, 8, 16, 32, 64} {
		pts = append(pts, Point{Kind: machine.DM, P: machine.Params{Window: w, MD: 30}})
	}
	warmer := testRunner(t)
	warmer.Store = store
	want, err := warmer.RunBatch(pts)
	if err != nil {
		t.Fatal(err)
	}

	r := testRunner(t) // fresh L1, same store
	r.Store = store
	r.RemoteBatch = func([]Point) ([]*engine.Result, error) {
		t.Error("store-warm batch must not travel")
		return nil, errFleetDown
	}
	got, err := r.RunBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if got[i].Cycles != want[i].Cycles {
			t.Errorf("point %d: store-peeled result differs", i)
		}
	}
	if st := r.Stats(); st.StoreHits != int64(len(pts)) || st.Sims != 0 {
		t.Errorf("want %d store hits and 0 sims, got %+v", len(pts), st)
	}

	// A nil element in a remote reply is a loud error, not a cache fill.
	bad := testRunner(t)
	bad.RemoteBatch = func(pts []Point) ([]*engine.Result, error) {
		return make([]*engine.Result, len(pts)), nil
	}
	if _, err := bad.RunBatch(pts[:1]); err == nil || !errorsContains(err, "nil result") {
		t.Errorf("nil remote result must fail the batch: %v", err)
	}
	if st := bad.Stats(); st.RemoteHits != 0 {
		t.Errorf("nil results must not count as remote hits: %+v", st)
	}
	if _, err := bad.RunBatch(pts[:1]); err == nil {
		t.Error("the poisoned claim should have been dropped and retried remotely (still failing)")
	}
}

func errorsContains(err error, sub string) bool {
	return err != nil && strings.Contains(err.Error(), sub)
}

func TestWindowSweep(t *testing.T) {
	r := testRunner(t)
	windows := []int{4, 8, 16}
	s, err := r.WindowSweep(machine.SWSM, machine.Params{MD: 20}, windows,
		func(w int, res *engine.Result) float64 { return float64(res.Cycles) })
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 3 || s.X[0] != 4 || s.X[2] != 16 {
		t.Fatalf("x values wrong: %v", s.X)
	}
	if s.Y[0] < s.Y[2] {
		t.Fatalf("cycles should not grow with window: %v", s.Y)
	}
}

func TestWindows(t *testing.T) {
	w := Windows(10, 50, 10)
	if len(w) != 5 || w[0] != 10 || w[4] != 50 {
		t.Fatalf("Windows wrong: %v", w)
	}
	if got := Windows(5, 4, 1); got != nil {
		t.Fatalf("empty range should be nil: %v", got)
	}
}

// TestRemoteDegradeFallsBackLocally pins the last rung of the failure
// ladder: a Remote failure wrapping ErrUnavailable fails loudly by
// default, but with Degrade set the point simulates locally (counted
// as Degraded, byte-identical to the local oracle). Any other remote
// error still surfaces even with Degrade on.
func TestRemoteDegradeFallsBackLocally(t *testing.T) {
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}}
	oracle := testRunner(t)
	want, err := oracle.Run(pt)
	if err != nil {
		t.Fatal(err)
	}

	r := testRunner(t)
	r.Remote = func(Point) (*engine.Result, error) {
		return nil, fmt.Errorf("daemon fleet: every owner down: %w", ErrUnavailable)
	}
	if _, err := r.Run(pt); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("without Degrade an unavailable fleet must fail loudly, got %v", err)
	}
	r.Degrade = true
	got, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("degraded result differs from the local oracle")
	}
	if st := r.Stats(); st.Degraded != 1 || st.Sims != 0 || st.RemoteHits != 0 {
		t.Fatalf("degraded fill miscounted: %+v", st)
	}

	r2 := testRunner(t)
	r2.Degrade = true
	r2.Remote = func(Point) (*engine.Result, error) { return nil, errors.New("version skew") }
	if _, err := r2.Run(pt); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("non-unavailable remote errors must not degrade: %v", err)
	}
}

// TestRemoteBatchPartialDegrade pins partial-batch semantics: when the
// batch hook returns what the surviving owners could serve (nil slots
// for the rest) alongside an ErrUnavailable-wrapped error, a Degrade
// runner accepts the served slots as remote hits and simulates only
// the orphaned ones.
func TestRemoteBatchPartialDegrade(t *testing.T) {
	oracle := testRunner(t)
	var pts []Point
	for i := 0; i < 6; i++ {
		pts = append(pts, Point{Kind: machine.DM, P: machine.Params{Window: 8 + i, MD: 30}})
	}
	want, err := oracle.RunAll(pts)
	if err != nil {
		t.Fatal(err)
	}

	r := testRunner(t)
	r.Degrade = true
	served := testRunner(t) // stands in for the surviving replicas
	r.RemoteBatch = func(misses []Point) ([]*engine.Result, error) {
		out := make([]*engine.Result, len(misses))
		for i := 0; i < len(misses); i += 2 {
			res, err := served.Run(misses[i])
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, fmt.Errorf("daemon fleet: 3 points failed on every candidate: %w", ErrUnavailable)
	}
	got, err := r.RunBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("partially degraded batch differs from the local oracle")
	}
	if st := r.Stats(); st.RemoteHits != 3 || st.Degraded != 3 || st.Sims != 0 {
		t.Fatalf("partial degradation miscounted: %+v", st)
	}

	// Without Degrade, the same partial answer fails the batch.
	r2 := testRunner(t)
	r2.RemoteBatch = func(misses []Point) ([]*engine.Result, error) {
		return make([]*engine.Result, len(misses)), fmt.Errorf("down: %w", ErrUnavailable)
	}
	if _, err := r2.RunBatch(pts); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("without Degrade a partial batch must fail: %v", err)
	}
}
