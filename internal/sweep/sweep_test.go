package sweep

import (
	"reflect"
	"sync/atomic"
	"testing"

	"daesim/internal/engine"
	"daesim/internal/kernel"
	"daesim/internal/machine"
	"daesim/internal/partition"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	b := kernel.New("sweep")
	arr := b.Array("a", 128, 8)
	for i := 0; i < 32; i++ {
		base := b.Int()
		v := b.Load(arr, i, base)
		b.Store(arr, 64+i, b.FP(v), base)
	}
	s, err := machine.NewSuite(b.MustTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(s)
}

func TestRunCaches(t *testing.T) {
	r := testRunner(t)
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}}
	a, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("callers must get private copies, not the shared cache entry")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cached result differs from original: %+v vs %+v", a, b)
	}
	if st := r.Stats(); st.Sims != 1 || st.L1Hits != 1 {
		t.Fatalf("want 1 sim and 1 L1 hit, got %+v", st)
	}
}

func TestRunReturnsDefensiveCopies(t *testing.T) {
	// Cached Results used to be shared pointers guarded only by a "must
	// not be mutated" comment; this pins the defensive-copy contract: a
	// caller scribbling on a returned Result must not poison later hits.
	r := testRunner(t)
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30}}
	a, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Clone()
	a.Cycles = -1
	a.Ops = -1
	for i := range a.Cores {
		a.Cores[i].Issued = -1
		for j := range a.Cores[i].IssueHist {
			a.Cores[i].IssueHist[j] = -1
		}
	}
	b, err := r.Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, b) {
		t.Fatalf("mutating a returned Result leaked into the cache:\nwant %+v\ngot  %+v", want, b)
	}
}

func TestCustomMemBypassesCache(t *testing.T) {
	r := testRunner(t)
	var calls atomic.Int64
	mem := &countingMem{calls: &calls}
	pt := Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 30, Mem: mem}}
	if _, err := r.Run(pt); err != nil {
		t.Fatal(err)
	}
	first := calls.Load()
	if _, err := r.Run(pt); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2*first {
		t.Fatal("points with custom memory models must not be cached")
	}
}

type countingMem struct{ calls *atomic.Int64 }

func (m *countingMem) RequestFill(addr uint64, sent int64) int64 { return sent + 5 }
func (m *countingMem) Consume(addr uint64, cycle int64)          {}
func (m *countingMem) Reset()                                    { m.calls.Add(1) }

var _ engine.MemModel = (*countingMem)(nil)

func TestRunAllOrderAndParallel(t *testing.T) {
	r := testRunner(t)
	var pts []Point
	for _, w := range []int{2, 4, 8, 16, 32} {
		pts = append(pts, Point{Kind: machine.DM, P: machine.Params{Window: w, MD: 30}})
	}
	results, err := r.RunAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pts) {
		t.Fatalf("got %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Cycles > results[i-1].Cycles {
			// Small scheduling anomalies are possible but not on this
			// trivially regular kernel.
			t.Errorf("results out of order or nonmonotone: %d then %d", results[i-1].Cycles, results[i].Cycles)
		}
	}
	// Serial path must agree with the parallel path.
	r2 := testRunner(t)
	r2.Parallelism = 1
	serial, err := r2.RunAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Cycles != results[i].Cycles {
			t.Fatalf("parallel/serial divergence at %d: %d vs %d", i, results[i].Cycles, serial[i].Cycles)
		}
	}
}

func TestWindowSweep(t *testing.T) {
	r := testRunner(t)
	windows := []int{4, 8, 16}
	s, err := r.WindowSweep(machine.SWSM, machine.Params{MD: 20}, windows,
		func(w int, res *engine.Result) float64 { return float64(res.Cycles) })
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 3 || s.X[0] != 4 || s.X[2] != 16 {
		t.Fatalf("x values wrong: %v", s.X)
	}
	if s.Y[0] < s.Y[2] {
		t.Fatalf("cycles should not grow with window: %v", s.Y)
	}
}

func TestWindows(t *testing.T) {
	w := Windows(10, 50, 10)
	if len(w) != 5 || w[0] != 10 || w[4] != 50 {
		t.Fatalf("Windows wrong: %v", w)
	}
	if got := Windows(5, 4, 1); got != nil {
		t.Fatalf("empty range should be nil: %v", got)
	}
}
