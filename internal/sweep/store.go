// Persistent on-disk result cache. A Store is the L2 behind a Runner's
// in-memory map: simulation results keyed by a canonical hash of
// (engine version, suite fingerprint, machine kind, parameters) survive
// process restarts and are shared between concurrent repro runs.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"daesim/internal/engine"
)

// Store is a content-addressed, corruption-tolerant, on-disk result
// cache. Layout is a directory of blobs: each entry lives in its own
// file named by the SHA-256 of its key (two-level fan-out), written to a
// temp file and atomically renamed into place, so concurrent writers —
// parallel sweep workers, or two repro processes sharing one cache
// directory — can only ever race to install identical, complete entries
// (runs are deterministic), never interleave bytes. A reader that finds
// a damaged entry (truncated JSON, checksum mismatch, foreign key)
// counts it, deletes it, and reports a miss; the point is simply
// re-simulated and re-installed.
//
// A Store is safe for concurrent use by multiple goroutines and multiple
// processes.
//
// Damage is tolerated but not forgiven forever: a key whose blob reads
// corrupt twice in one process is quarantined — the blob is renamed to
// *.corrupt (kept as evidence, invisible to Get, Len and GC, which
// only consider .json entries) and the key stops being cached at all,
// so a persistently bad blob (failing disk sector, hostile writer)
// cannot trap the store in a heal/re-corrupt loop.
type Store struct {
	dir string

	// Faults, when non-nil, intercepts the raw blob bytes of every read
	// and write — the hook internal/faultinject's StoreFaults drives in
	// chaos tests. Set before first use; leave nil in production.
	Faults BlobFaults

	hits, misses, writes, corrupt, writeErrs, gcEvictions, quarantines atomic.Int64

	qmu         sync.Mutex
	corruptSeen map[string]int  //daelint:guardedby qmu
	quarantined map[string]bool //daelint:guardedby qmu
}

// BlobFaults intercepts a Store's blob I/O for fault injection: OnRead
// sees (and may damage) the bytes just read from disk, OnWrite the
// bytes about to be installed. Implementations return the payload to
// use (possibly the input unchanged).
type BlobFaults interface {
	OnRead(key string, data []byte) []byte
	OnWrite(key string, data []byte) []byte
}

// StoreStats is a snapshot of a Store's traffic counters.
type StoreStats struct {
	// Hits and Misses count Get outcomes; Corrupt is the subset of
	// misses caused by damaged entries (which are deleted on sight).
	Hits, Misses, Corrupt int64
	// Writes counts entries installed; WriteErrors counts failed
	// installs (the cache degrades to pass-through, never fails a run).
	Writes, WriteErrors int64
	// GCEvictions counts entries removed by Store.GC passes (corrupt
	// entries deleted on read are counted under Corrupt instead).
	GCEvictions int64
	// CorruptQuarantined counts keys retired after failing their
	// checksum twice: the blob is renamed to *.corrupt and the key is
	// no longer cached (reads miss, writes are dropped), breaking the
	// heal/re-corrupt loop a persistently bad blob would otherwise
	// cause.
	CorruptQuarantined int64
}

// entryFile is the on-disk format. Key catches cross-key collisions and
// makes entries self-describing; Sum is the SHA-256 of the canonical
// Result JSON and catches in-place damage that still parses.
type entryFile struct {
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// OpenStore opens (creating if needed) a result cache rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its blob path: sha256 hex, fanned out on the first
// byte so no single directory grows unbounded.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:]+".json")
}

// Get returns the cached result for key, or ok=false on a miss. Damaged
// entries are deleted and reported as misses. A hit refreshes the
// entry's mtime, which is the access recency GC's LRU eviction orders by
// (best effort: a touch that loses a race with an eviction is ignored).
func (s *Store) Get(key string) (*engine.Result, bool) {
	if s.isQuarantined(key) {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if s.Faults != nil {
		data = s.Faults.OnRead(key, data)
	}
	var ent entryFile
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, s.evictCorrupt(key)
	}
	if ent.Key != key {
		return nil, s.evictCorrupt(key)
	}
	sum := sha256.Sum256(ent.Result)
	if hex.EncodeToString(sum[:]) != ent.Sum {
		return nil, s.evictCorrupt(key)
	}
	var res engine.Result
	if err := json.Unmarshal(ent.Result, &res); err != nil {
		return nil, s.evictCorrupt(key)
	}
	s.hits.Add(1)
	now := time.Now()          //daelint:nondeterministic-ok access-time touch feeds LRU eviction only, never a Result
	os.Chtimes(path, now, now) // LRU recency for GC; losing to an eviction is fine
	return &res, true
}

// evictCorrupt handles a damaged entry and reports the miss. The first
// corrupt read of a key deletes the blob so the point re-simulates and
// heals; a second corrupt read of the same key quarantines it instead
// (rename to *.corrupt, key dropped from caching) — healing clearly
// did not stick, and retrying forever would loop heal/re-corrupt.
func (s *Store) evictCorrupt(key string) bool {
	s.corrupt.Add(1)
	s.misses.Add(1)
	s.qmu.Lock()
	if s.corruptSeen == nil {
		s.corruptSeen = make(map[string]int)
	}
	s.corruptSeen[key]++
	quarantine := s.corruptSeen[key] >= 2
	if quarantine {
		if s.quarantined == nil {
			s.quarantined = make(map[string]bool)
		}
		s.quarantined[key] = true
	}
	s.qmu.Unlock()
	if quarantine {
		s.quarantines.Add(1)
		// Keep the evidence out of the .json namespace: Get, Len and GC
		// all ignore it. A failed rename still leaves the key
		// quarantined in memory.
		os.Rename(s.path(key), s.path(key)+".corrupt")
		return false
	}
	os.Remove(s.path(key))
	return false
}

// isQuarantined reports whether key has been retired from caching.
func (s *Store) isQuarantined(key string) bool {
	s.qmu.Lock()
	q := s.quarantined[key]
	s.qmu.Unlock()
	return q
}

// Put installs res under key. Best effort: a failed install is counted
// and the run proceeds uncached.
func (s *Store) Put(key string, res *engine.Result) {
	if s.isQuarantined(key) {
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		s.writeErrs.Add(1)
		return
	}
	sum := sha256.Sum256(body)
	data, err := json.Marshal(entryFile{Key: key, Sum: hex.EncodeToString(sum[:]), Result: body})
	if err != nil {
		s.writeErrs.Add(1)
		return
	}
	if s.Faults != nil {
		data = s.Faults.OnWrite(key, data)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.writeErrs.Add(1)
		return
	}
	// Write-to-temp + rename: installs are atomic, so a concurrent
	// reader sees either no entry or a complete one, and racing writers
	// (who by determinism carry identical bytes) both succeed.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		s.writeErrs.Add(1)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.writeErrs.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.writeErrs.Add(1)
		return
	}
	s.writes.Add(1)
}

// Clear deletes every entry in the store, keeping the directory.
func (s *Store) Clear() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("sweep: clearing store: %w", err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(s.dir, e.Name())); err != nil {
			return fmt.Errorf("sweep: clearing store: %w", err)
		}
	}
	return nil
}

// Len reports the number of entries on disk (a scan; diagnostic use).
func (s *Store) Len() int {
	n, _ := s.Usage()
	return n
}

// Usage reports the entry count and total byte size of the store in one
// directory scan (diagnostic use; backs the store gauges on /metrics).
func (s *Store) Usage() (entries int, bytes int64) {
	fans, _ := os.ReadDir(s.dir)
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		blobs, _ := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		for _, b := range blobs {
			if filepath.Ext(b.Name()) != ".json" {
				continue
			}
			entries++
			if info, err := b.Info(); err == nil {
				bytes += info.Size()
			}
		}
	}
	return entries, bytes
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:               s.hits.Load(),
		Misses:             s.misses.Load(),
		Corrupt:            s.corrupt.Load(),
		Writes:             s.writes.Load(),
		WriteErrors:        s.writeErrs.Load(),
		GCEvictions:        s.gcEvictions.Load(),
		CorruptQuarantined: s.quarantines.Load(),
	}
}
