package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"daesim/internal/engine"
	"daesim/internal/kernel"
	"daesim/internal/machine"
	"daesim/internal/partition"
)

// storeSuite builds a small deterministic suite; n varies the trace so
// tests can model a workload recalibration (different content, same
// construction path).
func storeSuite(t *testing.T, n int) *machine.Suite {
	t.Helper()
	b := kernel.New("store")
	arr := b.Array("a", 4*n, 8)
	for i := 0; i < n; i++ {
		base := b.Int()
		v := b.Load(arr, i, base)
		b.Store(arr, 2*n+i, b.FP(v), base)
	}
	s, err := machine.NewSuite(b.MustTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func storeRunner(t *testing.T, dir string, n int) *Runner {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(storeSuite(t, n))
	r.Store = st
	return r
}

var storePoint = Point{Kind: machine.SWSM, P: machine.Params{Window: 8, MD: 20}}

// TestStoreHitAcrossRestart is the core persistence property: a fresh
// Runner and a fresh Store handle (a new process) serve a previously
// simulated point from disk without simulating.
func TestStoreHitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	r1 := storeRunner(t, dir, 24)
	a, err := r1.Run(storePoint)
	if err != nil {
		t.Fatal(err)
	}
	if st := r1.Stats(); st.Sims != 1 || st.StoreHits != 0 {
		t.Fatalf("cold run: want 1 sim, got %+v", st)
	}
	if st := r1.Store.Stats(); st.Writes != 1 {
		t.Fatalf("cold run: want 1 store write, got %+v", st)
	}

	r2 := storeRunner(t, dir, 24) // fresh L1, fresh Store handle, same dir
	b, err := r2.Run(storePoint)
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Sims != 0 || st.StoreHits != 1 {
		t.Fatalf("warm run must not simulate: %+v", st)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("store round-trip changed the result:\ncold %+v\nwarm %+v", a, b)
	}
}

// TestStoreKeyScheme pins what the persistent key must cover: the engine
// version tag (a semantic bump invalidates everything), the suite
// content fingerprint (a recalibrated workload misses), and the
// canonical parameter encoding (distinct points never collide).
func TestStoreKeyScheme(t *testing.T) {
	dir := t.TempDir()
	r := storeRunner(t, dir, 24)
	k, ok := r.storeKey(storePoint)
	if !ok {
		t.Fatal("default params must be cacheable")
	}
	if !strings.Contains(k, engine.Version) {
		t.Errorf("key %q does not embed engine.Version %q", k, engine.Version)
	}
	if !strings.Contains(k, r.Suite.Fingerprint()) {
		t.Errorf("key %q does not embed the suite fingerprint", k)
	}
	p2 := storePoint
	p2.P.MD++
	k2, _ := r.storeKey(p2)
	if k2 == k {
		t.Error("distinct params must produce distinct keys")
	}
	memPt := storePoint
	memPt.P.Mem = &countingMem{}
	if _, ok := r.storeKey(memPt); ok {
		t.Error("custom-Mem points must not be persistable")
	}
}

// TestStoreMissOnRecalibration: same construction path, different trace
// content — as after a workload recalibration — must not hit.
func TestStoreMissOnRecalibration(t *testing.T) {
	dir := t.TempDir()
	r1 := storeRunner(t, dir, 24)
	if _, err := r1.Run(storePoint); err != nil {
		t.Fatal(err)
	}
	r2 := storeRunner(t, dir, 25) // "recalibrated" workload
	if _, err := r2.Run(storePoint); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Sims != 1 || st.StoreHits != 0 {
		t.Fatalf("recalibrated workload must re-simulate, got %+v", st)
	}
}

// TestStoreMissOnEngineVersionBump models an engine-semantics bump by
// rewriting a stored entry under a mutated version prefix: the real key
// must then miss, exactly as every stale entry does after a bump.
func TestStoreMissOnEngineVersionBump(t *testing.T) {
	dir := t.TempDir()
	r1 := storeRunner(t, dir, 24)
	res, err := r1.Run(storePoint)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := r1.storeKey(storePoint)
	if _, ok := r1.Store.Get(key); !ok {
		t.Fatal("entry must be on disk under the current version")
	}
	if err := r1.Store.Clear(); err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(key, engine.Version, engine.Version+"-older", 1)
	r1.Store.Put(stale, res)
	r2 := storeRunner(t, dir, 24)
	if _, err := r2.Run(storePoint); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Sims != 1 || st.StoreHits != 0 {
		t.Fatalf("version-bumped entry must miss, got %+v", st)
	}
}

// blobPaths lists every entry file in a store directory.
func blobPaths(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestStoreCorruptedEntryRecovery: damaged entries — truncated JSON,
// bit-flipped payloads, foreign keys — are detected, deleted, and
// re-simulated; the store heals in place.
func TestStoreCorruptedEntryRecovery(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"bitflip", func(d []byte) []byte {
			// Flip a digit inside the payload without breaking JSON:
			// the checksum must catch it.
			s := string(d)
			i := strings.Index(s, `"result":`)
			for j := i; j < len(s); j++ {
				if s[j] >= '1' && s[j] <= '8' {
					return []byte(s[:j] + "9" + s[j+1:])
				}
			}
			t.Fatal("no digit to flip")
			return d
		}},
		{"emptied", func(d []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			r1 := storeRunner(t, dir, 24)
			want, err := r1.Run(storePoint)
			if err != nil {
				t.Fatal(err)
			}
			paths := blobPaths(t, dir)
			if len(paths) != 1 {
				t.Fatalf("want 1 blob, got %v", paths)
			}
			data, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(paths[0], tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			r2 := storeRunner(t, dir, 24)
			got, err := r2.Run(storePoint)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("recovered result differs")
			}
			if st := r2.Stats(); st.Sims != 1 || st.StoreHits != 0 {
				t.Fatalf("corrupted entry must re-simulate, got %+v", st)
			}
			if st := r2.Store.Stats(); st.Corrupt != 1 {
				t.Fatalf("corruption must be counted, got %+v", st)
			}
			// The heal must reinstall a clean entry.
			r3 := storeRunner(t, dir, 24)
			if _, err := r3.Run(storePoint); err != nil {
				t.Fatal(err)
			}
			if st := r3.Stats(); st.StoreHits != 1 {
				t.Fatalf("healed entry must hit, got %+v", st)
			}
		})
	}
}

// TestStoreForeignKeyEntry: an entry whose embedded key disagrees with
// its filename (hash collision, copied file) reads as a miss.
func TestStoreForeignKeyEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("key-a", &engine.Result{Cycles: 1})
	src := blobPaths(t, dir)[0]
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Install key-a's bytes where key-b's entry belongs.
	dst := st.path("key-b")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("key-b"); ok {
		t.Fatal("foreign-key entry must miss")
	}
	if st.Stats().Corrupt != 1 {
		t.Fatalf("foreign key must count as corruption, got %+v", st.Stats())
	}
}

// TestStoreConcurrentWriters hammers one directory from many Runners
// with private L1s (modelling parallel repro processes); run under
// -race in CI. Every result must agree and the store must end healthy.
func TestStoreConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const writers = 8
	pts := make([]Point, 6)
	for i := range pts {
		pts[i] = Point{Kind: machine.DM, P: machine.Params{Window: 4 + 4*i, MD: 15}}
	}
	results := make([][]*engine.Result, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		r := storeRunner(t, dir, 24)
		wg.Add(1)
		go func(w int, r *Runner) {
			defer wg.Done()
			out := make([]*engine.Result, len(pts))
			for i, pt := range pts {
				res, err := r.Run(pt)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = res
			}
			results[w] = out
		}(w, r)
	}
	wg.Wait()
	for w := 1; w < writers; w++ {
		if !reflect.DeepEqual(results[0], results[w]) {
			t.Fatalf("writer %d diverged", w)
		}
	}
	// After the dust settles a fresh runner must hit every point.
	r := storeRunner(t, dir, 24)
	for _, pt := range pts {
		if _, err := r.Run(pt); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Sims != 0 || st.StoreHits != int64(len(pts)) {
		t.Fatalf("want %d store hits after concurrent warm-up, got %+v", len(pts), st)
	}
	if st := r.Store.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent writers corrupted the store: %+v", st)
	}
}

// TestStoreClearAndLen covers the maintenance surface used by
// repro -cache-clear.
func TestStoreClearAndLen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.Put(fmt.Sprintf("key-%d", i), &engine.Result{Cycles: int64(i)})
	}
	if n := st.Len(); n != 5 {
		t.Fatalf("want 5 entries, got %d", n)
	}
	if err := st.Clear(); err != nil {
		t.Fatal(err)
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("want empty store after Clear, got %d", n)
	}
	if _, ok := st.Get("key-0"); ok {
		t.Fatal("cleared entry must miss")
	}
}

// TestStoreSingleFlight: concurrent first requests for one point on one
// Runner must run exactly one simulation.
func TestStoreSingleFlight(t *testing.T) {
	r := storeRunner(t, t.TempDir(), 24)
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(storePoint); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if st.Sims != 1 {
		t.Fatalf("single-flight broken: %d sims for one point, stats %+v", st.Sims, st)
	}
	if st.L1Hits != callers-1 {
		t.Fatalf("want %d L1 hits, got %+v", callers-1, st)
	}
}

// corruptingFaults damages the first byte of every blob read while
// active — a persistently bad blob, as a failing disk sector would
// present it.
type corruptingFaults struct{ active bool }

func (c *corruptingFaults) OnRead(key string, data []byte) []byte {
	if !c.active || len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	out[0] = 0x00
	return out
}

func (c *corruptingFaults) OnWrite(key string, data []byte) []byte { return data }

// TestStoreQuarantineBreaksHealLoop pins the anti-loop contract: the
// first corrupt read of a key deletes and heals, the second retires the
// key — renamed to *.corrupt, dropped from caching — so a persistently
// bad blob cannot trap the store in heal/re-corrupt forever.
func TestStoreQuarantineBreaksHealLoop(t *testing.T) {
	dir := t.TempDir()
	r := storeRunner(t, dir, 24)
	if _, err := r.Run(storePoint); err != nil {
		t.Fatal(err)
	}
	key, ok := r.storeKey(storePoint)
	if !ok {
		t.Fatal("store point must be cacheable")
	}
	st := r.Store
	cf := &corruptingFaults{active: true}
	st.Faults = cf

	// First corrupt read: heal path — blob deleted, counted, missed.
	if _, hit := st.Get(key); hit {
		t.Fatal("corrupt blob served as a hit")
	}
	if s := st.Stats(); s.Corrupt != 1 || s.CorruptQuarantined != 0 {
		t.Fatalf("after first corruption: %+v", s)
	}
	if _, err := os.Stat(st.path(key)); !os.IsNotExist(err) {
		t.Fatal("first corruption must delete the blob so the point re-heals")
	}

	// The runner heals it (simulate + reinstall), the blob reads corrupt
	// again: quarantine.
	res, err := r.Suite.RunWith(nil, storePoint.Kind, storePoint.P)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(key, res)
	if _, hit := st.Get(key); hit {
		t.Fatal("corrupt blob served as a hit")
	}
	s := st.Stats()
	if s.Corrupt != 2 || s.CorruptQuarantined != 1 {
		t.Fatalf("after second corruption: %+v", s)
	}
	if _, err := os.Stat(st.path(key) + ".corrupt"); err != nil {
		t.Fatalf("quarantined blob should survive as *.corrupt evidence: %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("quarantined entry still counted: Len=%d", st.Len())
	}

	// Quarantined: writes are dropped, reads miss without touching the
	// corrupt counters — the loop is broken.
	writes := s.Writes
	st.Put(key, res)
	if _, hit := st.Get(key); hit {
		t.Fatal("quarantined key served a hit")
	}
	if s := st.Stats(); s.Writes != writes || s.Corrupt != 2 || s.CorruptQuarantined != 1 {
		t.Fatalf("quarantine must stop the heal/re-corrupt loop: %+v", s)
	}

	// A fresh runner over the same store handle still completes the
	// point — it just simulates uncached every time.
	r2 := NewRunner(storeSuite(t, 24))
	r2.Store = st
	got, err := r2.Run(storePoint)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("degraded (uncached) run differs from the healed result")
	}
	if rs := r2.Stats(); rs.Sims != 1 || rs.StoreHits != 0 {
		t.Fatalf("quarantined point should simulate, not hit: %+v", rs)
	}
}
