// Package sweep runs families of simulations in parallel with
// memoization. Experiment drivers describe points (machine, window, MD);
// the runner executes them across CPUs and caches results so overlapping
// sweeps (e.g. a speedup figure and a crossover search over the same
// windows) do not re-simulate.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"daesim/internal/engine"
	"daesim/internal/machine"
)

// Point identifies one simulation: a machine kind plus parameters.
type Point struct {
	Kind machine.Kind
	P    machine.Params
}

// key is the memoization key. Custom memory models are not memoizable, so
// points carrying Mem bypass the cache.
type key struct {
	kind machine.Kind
	p    machine.Params
}

// Runner executes points against one suite.
type Runner struct {
	Suite *machine.Suite
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	// It caps both RunAll's worker pool and the probe fan-out of the
	// speculative-parallel equivalent-window searches that run against
	// this Runner (metrics.Search). Set it to 1 to force every consumer
	// serial, e.g. for deterministic profiling.
	Parallelism int

	mu    sync.Mutex
	cache map[key]*engine.Result
}

// NewRunner returns a Runner for the suite.
func NewRunner(s *machine.Suite) *Runner {
	return &Runner{Suite: s, cache: make(map[key]*engine.Result)}
}

// Run executes one point, consulting the cache.
func (r *Runner) Run(pt Point) (*engine.Result, error) {
	return r.RunWith(nil, pt)
}

// RunWith executes one point on sim's reusable scratch (nil draws from
// the engine's shared pool), consulting the cache. Cached Results are
// shared between callers and must not be mutated.
func (r *Runner) RunWith(sim *engine.Sim, pt Point) (*engine.Result, error) {
	cacheable := pt.P.Mem == nil
	var k key
	if cacheable {
		k = key{kind: pt.Kind, p: pt.P}
		r.mu.Lock()
		if res, ok := r.cache[k]; ok {
			r.mu.Unlock()
			return res, nil
		}
		r.mu.Unlock()
	}
	res, err := r.Suite.RunWith(sim, pt.Kind, pt.P)
	if err != nil {
		return nil, err
	}
	if cacheable {
		r.mu.Lock()
		r.cache[k] = res
		r.mu.Unlock()
	}
	return res, nil
}

// RunAll executes all points, in parallel, preserving order. The first
// error aborts the sweep.
func (r *Runner) RunAll(pts []Point) ([]*engine.Result, error) {
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pts) {
		par = len(pts)
	}
	if par <= 1 {
		out := make([]*engine.Result, len(pts))
		sim := engine.NewSim()
		for i, pt := range pts {
			res, err := r.RunWith(sim, pt)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			out[i] = res
		}
		return out, nil
	}
	out := make([]*engine.Result, len(pts))
	errs := make([]error, len(pts))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch context per worker: runs on this goroutine
			// reuse state without contending on the shared pool.
			sim := engine.NewSim()
			for i := range work {
				res, err := r.RunWith(sim, pts[i])
				out[i], errs[i] = res, err
			}
		}()
	}
	for i := range pts {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	return out, nil
}

// Series is a named sequence of (x, y) samples, one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WindowSweep runs the machine at each window size and maps results
// through f (e.g. a speedup or LHE computation).
func (r *Runner) WindowSweep(kind machine.Kind, base machine.Params, windows []int, f func(w int, res *engine.Result) float64) (Series, error) {
	pts := make([]Point, len(windows))
	for i, w := range windows {
		p := base
		p.Window = w
		pts[i] = Point{Kind: kind, P: p}
	}
	results, err := r.RunAll(pts)
	if err != nil {
		return Series{}, err
	}
	s := Series{X: make([]float64, len(windows)), Y: make([]float64, len(windows))}
	for i, res := range results {
		s.X[i] = float64(windows[i])
		s.Y[i] = f(windows[i], res)
	}
	return s, nil
}

// Windows returns the window sizes lo, lo+step, lo+2*step, ... up to and
// including hi when it lands on the grid.
func Windows(lo, hi, step int) []int {
	var out []int
	for w := lo; w <= hi; w += step {
		out = append(out, w)
	}
	return out
}
