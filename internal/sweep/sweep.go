// Package sweep runs families of simulations in parallel with
// memoization. Experiment drivers describe points (machine, window, MD);
// the runner executes them across CPUs and caches results so overlapping
// sweeps (e.g. a speedup figure and a crossover search over the same
// windows) do not re-simulate.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"daesim/internal/engine"
	"daesim/internal/machine"
)

// ErrUnavailable marks a remote error meaning "no replica could serve
// this work at all" — every candidate was tried (or the whole fleet is
// down), as opposed to a refusal that would repeat anywhere (bad
// request, version skew). Remote hooks wrap it (errors.Is) to tell a
// Degrade-enabled Runner that falling back to local simulation is both
// safe and the only way forward; any other remote error still fails
// the point loudly.
var ErrUnavailable = errors.New("sweep: remote unavailable")

// Point identifies one simulation: a machine kind plus parameters.
type Point struct {
	Kind machine.Kind
	P    machine.Params
}

// key is the in-memory memoization key. Custom memory models are not
// memoizable, so points carrying Mem bypass the cache.
type key struct {
	kind machine.Kind
	p    machine.Params
}

// entry is one in-flight or settled L1 slot. The first caller to reach a
// point owns its entry and simulates (or loads from the Store); everyone
// else blocks on ready — single-flight, so concurrent shards sweeping
// overlapping points never duplicate a simulation.
type entry struct {
	ready chan struct{} // closed once res/err are settled
	res   *engine.Result
	err   error
}

// CacheStats counts where a Runner's results came from.
type CacheStats struct {
	// L1Hits are points served from the in-memory map, including callers
	// that waited on another goroutine's in-flight simulation.
	L1Hits int64
	// StoreHits are points loaded from the persistent Store.
	StoreHits int64
	// RemoteHits are points served by a remote daemon (Runner.Remote).
	RemoteHits int64
	// RemoteSearches are whole equivalent-window searches answered
	// server-side by a remote daemon (experiments.Context.RemoteSearch)
	// — each stands for a full probe sequence that never touched the
	// local layers, so they are reported alongside RemoteHits but are
	// not points and do not enter HitRate.
	RemoteSearches int64
	// Sims are simulations actually executed for cacheable points.
	Sims int64
	// Degraded are cacheable points simulated locally as a last resort
	// because every remote owner was unavailable (Runner.Degrade) —
	// results are byte-identical to the remote answer by determinism,
	// so a degraded run completes correctly, just without the shared
	// cache. Counted separately from Sims so "warm remote runs simulate
	// nothing" assertions stay meaningful.
	Degraded int64
	// Uncacheable are runs that bypassed both layers (custom Params.Mem).
	Uncacheable int64
}

// Add accumulates other into s.
func (s *CacheStats) Add(other CacheStats) {
	s.L1Hits += other.L1Hits
	s.StoreHits += other.StoreHits
	s.RemoteHits += other.RemoteHits
	s.RemoteSearches += other.RemoteSearches
	s.Sims += other.Sims
	s.Degraded += other.Degraded
	s.Uncacheable += other.Uncacheable
}

// HitRate returns the fraction of cacheable points served without
// simulating locally (from the in-memory map, the persistent store, or
// a remote daemon).
func (s CacheStats) HitRate() float64 {
	total := s.L1Hits + s.StoreHits + s.RemoteHits + s.Sims + s.Degraded
	if total == 0 {
		return 0
	}
	return float64(s.L1Hits+s.StoreHits+s.RemoteHits) / float64(total)
}

// Runner executes points against one suite.
type Runner struct {
	Suite *machine.Suite
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	// It caps both RunAll's worker pool and the probe fan-out of the
	// speculative-parallel equivalent-window searches that run against
	// this Runner (metrics.Search). Set it to 1 to force every consumer
	// serial, e.g. for deterministic profiling.
	Parallelism int
	// Store, when non-nil, is the persistent L2 consulted between the
	// in-memory map and the simulator. Set it before the first Run.
	Store *Store
	// Remote, when non-nil, executes cacheable points that miss the local
	// layers — typically a daemon client (internal/daemon.Client.Run bound
	// to a workload), so a sweep runs against a long-lived sweepd's shared
	// cache instead of simulating locally. Remote results are installed
	// into the local Store (when attached) like any fill. A Remote error
	// fails the point: a misconfigured or unreachable daemon should
	// surface, not silently degrade to local simulation (the one
	// explicit exception is Degrade + ErrUnavailable). Uncacheable
	// points (custom Params.Mem) never route remotely — a MemModel is
	// arbitrary local code. Set it before the first Run.
	Remote func(Point) (*engine.Result, error)
	// RemoteBatch, when non-nil, executes a whole set of cacheable
	// misses in one call — typically a daemon fleet client
	// (internal/daemon.FleetClient.RunBatch bound to a workload), so a
	// probe wave or figure sweep becomes one HTTP round trip per
	// replica instead of one request per point. RunBatch and RunAll
	// consult it for the points that miss the local layers; single-point
	// paths (RunWith) still use Remote, so set both when attaching a
	// remote. Same contract as Remote otherwise: errors surface loudly,
	// results install into the local Store, uncacheable points never
	// route. Set it before the first Run.
	RemoteBatch func([]Point) ([]*engine.Result, error)
	// Degrade is the last rung of the failure ladder: when set, a
	// Remote/RemoteBatch failure that wraps ErrUnavailable (every owner
	// of the point is down) falls back to local simulation — counted as
	// Degraded, installed into the Store like any fill, byte-identical
	// by determinism — instead of failing the sweep. Any other remote
	// error still surfaces loudly, so misconfiguration (bad URL, skew,
	// bad request) never silently degrades.
	Degrade bool

	mu     sync.Mutex
	cache  map[key]*entry //daelint:guardedby mu
	prefix string         //daelint:guardedby mu -- engine version + suite fingerprint, built lazily

	l1Hits, storeHits, remoteHits, sims, degraded, uncacheable atomic.Int64
}

// NewRunner returns a Runner for the suite.
func NewRunner(s *machine.Suite) *Runner {
	return &Runner{Suite: s, cache: make(map[key]*entry)}
}

// Run executes one point, consulting the cache.
func (r *Runner) Run(pt Point) (*engine.Result, error) {
	return r.RunWith(nil, pt)
}

// storeKey returns the persistent key for a point: the engine version
// tag and the suite's content fingerprint (workload identity, scale,
// partition, lowering) joined with the canonical parameter encoding.
// The fingerprint is hashed once per Runner, on first use.
func (r *Runner) storeKey(pt Point) (string, bool) {
	pk, ok := pt.P.CacheKey(pt.Kind)
	if !ok {
		return "", false
	}
	r.mu.Lock()
	if r.prefix == "" {
		r.prefix = engine.Version + "|" + r.Suite.Fingerprint() + "|"
	}
	p := r.prefix
	r.mu.Unlock()
	return p + pk, true
}

// RunWith executes one point on sim's reusable scratch (nil draws from
// the engine's shared pool), consulting the in-memory cache and then the
// persistent Store. Returned Results are private copies: the canonical
// cached Result never escapes, so callers may mutate what they get back.
//
//daelint:ctx-root cancellation rides the Remote hook's captured context; local simulation is not cancellable mid-run
func (r *Runner) RunWith(sim *engine.Sim, pt Point) (*engine.Result, error) {
	if pt.P.Mem != nil {
		r.uncacheable.Add(1)
		return r.Suite.RunWith(sim, pt.Kind, pt.P)
	}
	// The key canonicalizes the retirement policy (RetireAuto resolves
	// to a concrete policy, exactly as the engine and the store key see
	// it), so an explicit-policy point and its equivalent auto-policy
	// point share one entry instead of simulating twice.
	kp := pt.P
	kp.Retire = machine.ResolveRetire(kp.Retire)
	k := key{kind: pt.Kind, p: kp}
	r.mu.Lock()
	if e, ok := r.cache[k]; ok {
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		r.l1Hits.Add(1)
		return e.res.Clone(), nil
	}
	e := &entry{ready: make(chan struct{})}
	r.cache[k] = e
	r.mu.Unlock()

	e.res, e.err = r.fill(sim, pt)
	if e.err != nil {
		// Drop the errored entry so later callers retry rather than
		// replaying a possibly transient failure forever.
		r.mu.Lock()
		delete(r.cache, k)
		r.mu.Unlock()
		close(e.ready)
		return nil, e.err
	}
	close(e.ready)
	return e.res.Clone(), nil
}

// fill produces the canonical result for a cacheable point: from the
// persistent store when possible, else by simulating (and installing the
// result back into the store).
func (r *Runner) fill(sim *engine.Sim, pt Point) (*engine.Result, error) {
	if r.Store != nil {
		if sk, ok := r.storeKey(pt); ok {
			if res, hit := r.Store.Get(sk); hit {
				r.storeHits.Add(1)
				return res, nil
			}
		}
	}
	return r.fillMiss(sim, pt)
}

// fillMiss produces the canonical result for a point already known to
// miss the store — the point-wise remote hook or the local simulator —
// and installs it. Callers that just proved the store miss (RunBatch's
// parallel peel) come here directly rather than paying a second Get.
func (r *Runner) fillMiss(sim *engine.Sim, pt Point) (*engine.Result, error) {
	var res *engine.Result
	var err error
	if r.Remote != nil {
		res, err = r.Remote(pt)
		switch {
		case err == nil:
			r.remoteHits.Add(1)
		case r.Degrade && errors.Is(err, ErrUnavailable):
			// Every owner is down: simulate locally so the sweep
			// completes (byte-identically — the remote would have run
			// the same deterministic simulation).
			res, err = r.Suite.RunWith(sim, pt.Kind, pt.P)
			if err != nil {
				return nil, err
			}
			r.degraded.Add(1)
		default:
			return nil, err
		}
	} else {
		res, err = r.Suite.RunWith(sim, pt.Kind, pt.P)
		if err != nil {
			return nil, err
		}
		r.sims.Add(1)
	}
	if r.Store != nil {
		if sk, ok := r.storeKey(pt); ok {
			r.Store.Put(sk, res)
		}
	}
	return res, nil
}

// Stats returns a snapshot of the runner's cache traffic.
func (r *Runner) Stats() CacheStats {
	return CacheStats{
		L1Hits:      r.l1Hits.Load(),
		StoreHits:   r.storeHits.Load(),
		RemoteHits:  r.remoteHits.Load(),
		Sims:        r.sims.Load(),
		Degraded:    r.degraded.Load(),
		Uncacheable: r.uncacheable.Load(),
	}
}

// forEach fans fn(sim, i) for i in [0, n) across at most
// min(Parallelism, n) worker goroutines, each owning one scratch
// context; with a single worker it runs inline. fn communicates
// through its captures (result and error slices indexed by i). This is
// the one worker-pool shape RunAll, RunBatch's store peel and
// fillBatch all share.
//
//daelint:ctx-root workers drain a closed channel of at most n indices; there is no caller to cancel for
func (r *Runner) forEach(n int, fn func(sim *engine.Sim, i int)) {
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0) //daelint:nondeterministic-ok worker-pool width only; fn writes results indexed by i
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		sim := engine.NewSim()
		for i := 0; i < n; i++ {
			fn(sim, i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch context per worker: runs on this goroutine
			// reuse state without contending on the shared pool.
			sim := engine.NewSim()
			for i := range work {
				fn(sim, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// RunBatch executes a set of points as one unit, preserving order: L1
// and Store hits are peeled off locally, and the remaining misses go to
// RemoteBatch in a single call when it is set (else they are simulated
// locally in parallel). This is the request-collapsing path of remote
// sweeps — a probe wave whose points are all warm issues no remote
// traffic at all — and it keeps the single-flight contract: misses are
// claimed before filling, so concurrent overlapping batches never
// duplicate a simulation. The first error aborts the batch; failed
// claims are dropped so later callers retry.
//
//daelint:ctx-root cancellation rides the RemoteBatch hook's captured context; local simulation is not cancellable mid-run
func (r *Runner) RunBatch(pts []Point) ([]*engine.Result, error) {
	out := make([]*engine.Result, len(pts))
	var owned, waiters []claim
	var uncached []int
	r.mu.Lock()
	for i, pt := range pts {
		if pt.P.Mem != nil {
			uncached = append(uncached, i)
			continue
		}
		kp := pt.P
		kp.Retire = machine.ResolveRetire(kp.Retire)
		k := key{kind: pt.Kind, p: kp}
		if e, ok := r.cache[k]; ok {
			waiters = append(waiters, claim{i, e, k})
			continue
		}
		e := &entry{ready: make(chan struct{})}
		r.cache[k] = e
		owned = append(owned, claim{i, e, k})
	}
	r.mu.Unlock()

	// Fill owned claims: store first, then the misses — remotely in one
	// batch when RemoteBatch is set, else locally across the pool. The
	// store peel fans its blob reads (disk + decode + checksum) across
	// the worker pool: a warm-store batch is exactly the case batching
	// exists to make fast, so it must not serialize the I/O the
	// point-wise path already overlapped.
	var misses []claim
	if r.Store == nil {
		misses = owned
	} else {
		hits := make([]*engine.Result, len(owned))
		r.forEach(len(owned), func(_ *engine.Sim, j int) {
			if sk, ok := r.storeKey(pts[owned[j].idx]); ok {
				if res, hit := r.Store.Get(sk); hit {
					hits[j] = res
				}
			}
		})
		for j, c := range owned {
			if res := hits[j]; res != nil {
				r.storeHits.Add(1)
				c.e.res = res
				close(c.e.ready)
				out[c.idx] = res.Clone()
				continue
			}
			misses = append(misses, c)
		}
	}
	if len(misses) > 0 {
		if err := r.fillBatch(pts, misses, func(c claim, res *engine.Result) {
			c.e.res = res
			close(c.e.ready)
			out[c.idx] = res.Clone()
		}); err != nil {
			// Drop the unfilled claims so later callers retry, and
			// settle their waiters with the error.
			r.mu.Lock()
			for _, c := range misses {
				if c.e.res == nil {
					delete(r.cache, c.k)
				}
			}
			r.mu.Unlock()
			for _, c := range misses {
				if c.e.res == nil {
					c.e.err = err
					close(c.e.ready)
				}
			}
			return nil, err
		}
	}

	// Uncacheable points bypass both layers, like RunWith.
	if len(uncached) > 0 {
		sim := engine.NewSim()
		for _, i := range uncached {
			r.uncacheable.Add(1)
			res, err := r.Suite.RunWith(sim, pts[i].Kind, pts[i].P)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			out[i] = res
		}
	}

	// Entries owned elsewhere: every claim of ours is settled by now, so
	// waiting last cannot deadlock on our own batch's duplicates.
	for _, c := range waiters {
		<-c.e.ready
		if c.e.err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", c.idx, c.e.err)
		}
		r.l1Hits.Add(1)
		out[c.idx] = c.e.res.Clone()
	}
	return out, nil
}

// claim is one cacheable point's L1 slot within a RunBatch: either
// owned by that call (it fills and settles the entry) or by another
// in-flight caller (the batch waits on it).
type claim struct {
	idx int
	e   *entry
	k   key
}

// fillBatch produces canonical results for claimed misses and hands
// each to settle. With RemoteBatch: one remote call for the whole set.
// Without: local simulation across the worker pool. Results install
// into the Store either way.
func (r *Runner) fillBatch(pts []Point, misses []claim, settle func(c claim, res *engine.Result)) error {
	if r.RemoteBatch != nil {
		mpts := make([]Point, len(misses))
		for j, c := range misses {
			mpts[j] = pts[c.idx]
		}
		results, err := r.RemoteBatch(mpts)
		var unserved []bool
		if err != nil {
			if !r.Degrade || !errors.Is(err, ErrUnavailable) {
				return err
			}
			// Partial-batch degradation: the hook ran the wave against
			// the surviving owners and returned what it could (slots it
			// could not serve are nil — possibly all of them). Accept
			// the served slots as remote hits and simulate the rest
			// locally, so one dead replica (or a whole dead fleet)
			// degrades the wave instead of failing it.
			if len(results) != len(mpts) {
				results = make([]*engine.Result, len(mpts))
			}
			unserved = make([]bool, len(mpts))
			errs := make([]error, len(mpts))
			r.forEach(len(mpts), func(sim *engine.Sim, j int) {
				if results[j] != nil {
					return
				}
				unserved[j] = true
				results[j], errs[j] = r.Suite.RunWith(sim, mpts[j].Kind, mpts[j].P)
			})
			for j, serr := range errs {
				if serr != nil {
					return fmt.Errorf("sweep: point %d: %w", misses[j].idx, serr)
				}
			}
		}
		if len(results) != len(mpts) {
			return fmt.Errorf("sweep: remote batch returned %d results for %d points", len(results), len(mpts))
		}
		for j, res := range results {
			if res == nil {
				// Never settle a nil into the L1 or persist it: fail the
				// batch loudly like any other remote error. Indices in
				// errors are caller-relative (the batch's point list),
				// matching the local path.
				return fmt.Errorf("sweep: remote batch returned a nil result for point %d", misses[j].idx)
			}
		}
		for j, c := range misses {
			if unserved != nil && unserved[j] {
				r.degraded.Add(1)
			} else {
				r.remoteHits.Add(1)
			}
			if r.Store != nil {
				if sk, ok := r.storeKey(pts[c.idx]); ok {
					r.Store.Put(sk, results[j])
				}
			}
			settle(c, results[j])
		}
		return nil
	}
	results := make([]*engine.Result, len(misses))
	errs := make([]error, len(misses))
	r.forEach(len(misses), func(sim *engine.Sim, j int) {
		results[j], errs[j] = r.fillMiss(sim, pts[misses[j].idx])
	})
	for j, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: point %d: %w", misses[j].idx, err)
		}
	}
	for j, c := range misses {
		settle(c, results[j])
	}
	return nil
}

// RunAll executes all points, in parallel, preserving order. The first
// error aborts the sweep. With RemoteBatch attached the whole sweep
// collapses into batched remote calls (see RunBatch).
func (r *Runner) RunAll(pts []Point) ([]*engine.Result, error) {
	if r.RemoteBatch != nil {
		return r.RunBatch(pts)
	}
	out := make([]*engine.Result, len(pts))
	errs := make([]error, len(pts))
	r.forEach(len(pts), func(sim *engine.Sim, i int) {
		out[i], errs[i] = r.RunWith(sim, pts[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	return out, nil
}

// Series is a named sequence of (x, y) samples, one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WindowSweep runs the machine at each window size and maps results
// through f (e.g. a speedup or LHE computation).
func (r *Runner) WindowSweep(kind machine.Kind, base machine.Params, windows []int, f func(w int, res *engine.Result) float64) (Series, error) {
	pts := make([]Point, len(windows))
	for i, w := range windows {
		p := base
		p.Window = w
		pts[i] = Point{Kind: kind, P: p}
	}
	results, err := r.RunAll(pts)
	if err != nil {
		return Series{}, err
	}
	s := Series{X: make([]float64, len(windows)), Y: make([]float64, len(windows))}
	for i, res := range results {
		s.X[i] = float64(windows[i])
		s.Y[i] = f(windows[i], res)
	}
	return s, nil
}

// Windows returns the window sizes lo, lo+step, lo+2*step, ... up to and
// including hi when it lands on the grid.
func Windows(lo, hi, step int) []int {
	var out []int
	for w := lo; w <= hi; w += step {
		out = append(out, w)
	}
	return out
}
