// Package sweep runs families of simulations in parallel with
// memoization. Experiment drivers describe points (machine, window, MD);
// the runner executes them across CPUs and caches results so overlapping
// sweeps (e.g. a speedup figure and a crossover search over the same
// windows) do not re-simulate.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"daesim/internal/engine"
	"daesim/internal/machine"
)

// Point identifies one simulation: a machine kind plus parameters.
type Point struct {
	Kind machine.Kind
	P    machine.Params
}

// key is the in-memory memoization key. Custom memory models are not
// memoizable, so points carrying Mem bypass the cache.
type key struct {
	kind machine.Kind
	p    machine.Params
}

// entry is one in-flight or settled L1 slot. The first caller to reach a
// point owns its entry and simulates (or loads from the Store); everyone
// else blocks on ready — single-flight, so concurrent shards sweeping
// overlapping points never duplicate a simulation.
type entry struct {
	ready chan struct{} // closed once res/err are settled
	res   *engine.Result
	err   error
}

// CacheStats counts where a Runner's results came from.
type CacheStats struct {
	// L1Hits are points served from the in-memory map, including callers
	// that waited on another goroutine's in-flight simulation.
	L1Hits int64
	// StoreHits are points loaded from the persistent Store.
	StoreHits int64
	// RemoteHits are points served by a remote daemon (Runner.Remote).
	RemoteHits int64
	// Sims are simulations actually executed for cacheable points.
	Sims int64
	// Uncacheable are runs that bypassed both layers (custom Params.Mem).
	Uncacheable int64
}

// Add accumulates other into s.
func (s *CacheStats) Add(other CacheStats) {
	s.L1Hits += other.L1Hits
	s.StoreHits += other.StoreHits
	s.RemoteHits += other.RemoteHits
	s.Sims += other.Sims
	s.Uncacheable += other.Uncacheable
}

// HitRate returns the fraction of cacheable points served without
// simulating locally (from the in-memory map, the persistent store, or
// a remote daemon).
func (s CacheStats) HitRate() float64 {
	total := s.L1Hits + s.StoreHits + s.RemoteHits + s.Sims
	if total == 0 {
		return 0
	}
	return float64(s.L1Hits+s.StoreHits+s.RemoteHits) / float64(total)
}

// Runner executes points against one suite.
type Runner struct {
	Suite *machine.Suite
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	// It caps both RunAll's worker pool and the probe fan-out of the
	// speculative-parallel equivalent-window searches that run against
	// this Runner (metrics.Search). Set it to 1 to force every consumer
	// serial, e.g. for deterministic profiling.
	Parallelism int
	// Store, when non-nil, is the persistent L2 consulted between the
	// in-memory map and the simulator. Set it before the first Run.
	Store *Store
	// Remote, when non-nil, executes cacheable points that miss the local
	// layers — typically a daemon client (internal/daemon.Client.Run bound
	// to a workload), so a sweep runs against a long-lived sweepd's shared
	// cache instead of simulating locally. Remote results are installed
	// into the local Store (when attached) like any fill. A Remote error
	// fails the point: a misconfigured or unreachable daemon should
	// surface, not silently degrade to local simulation. Uncacheable
	// points (custom Params.Mem) never route remotely — a MemModel is
	// arbitrary local code. Set it before the first Run.
	Remote func(Point) (*engine.Result, error)

	mu     sync.Mutex
	cache  map[key]*entry
	prefix string // engine version + suite fingerprint, built lazily

	l1Hits, storeHits, remoteHits, sims, uncacheable atomic.Int64
}

// NewRunner returns a Runner for the suite.
func NewRunner(s *machine.Suite) *Runner {
	return &Runner{Suite: s, cache: make(map[key]*entry)}
}

// Run executes one point, consulting the cache.
func (r *Runner) Run(pt Point) (*engine.Result, error) {
	return r.RunWith(nil, pt)
}

// storeKey returns the persistent key for a point: the engine version
// tag and the suite's content fingerprint (workload identity, scale,
// partition, lowering) joined with the canonical parameter encoding.
// The fingerprint is hashed once per Runner, on first use.
func (r *Runner) storeKey(pt Point) (string, bool) {
	pk, ok := pt.P.CacheKey(pt.Kind)
	if !ok {
		return "", false
	}
	r.mu.Lock()
	if r.prefix == "" {
		r.prefix = engine.Version + "|" + r.Suite.Fingerprint() + "|"
	}
	p := r.prefix
	r.mu.Unlock()
	return p + pk, true
}

// RunWith executes one point on sim's reusable scratch (nil draws from
// the engine's shared pool), consulting the in-memory cache and then the
// persistent Store. Returned Results are private copies: the canonical
// cached Result never escapes, so callers may mutate what they get back.
func (r *Runner) RunWith(sim *engine.Sim, pt Point) (*engine.Result, error) {
	if pt.P.Mem != nil {
		r.uncacheable.Add(1)
		return r.Suite.RunWith(sim, pt.Kind, pt.P)
	}
	// The key canonicalizes the retirement policy (RetireAuto resolves
	// to a concrete policy, exactly as the engine and the store key see
	// it), so an explicit-policy point and its equivalent auto-policy
	// point share one entry instead of simulating twice.
	kp := pt.P
	kp.Retire = machine.ResolveRetire(kp.Retire)
	k := key{kind: pt.Kind, p: kp}
	r.mu.Lock()
	if e, ok := r.cache[k]; ok {
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		r.l1Hits.Add(1)
		return e.res.Clone(), nil
	}
	e := &entry{ready: make(chan struct{})}
	r.cache[k] = e
	r.mu.Unlock()

	e.res, e.err = r.fill(sim, pt)
	if e.err != nil {
		// Drop the errored entry so later callers retry rather than
		// replaying a possibly transient failure forever.
		r.mu.Lock()
		delete(r.cache, k)
		r.mu.Unlock()
		close(e.ready)
		return nil, e.err
	}
	close(e.ready)
	return e.res.Clone(), nil
}

// fill produces the canonical result for a cacheable point: from the
// persistent store when possible, else by simulating (and installing the
// result back into the store).
func (r *Runner) fill(sim *engine.Sim, pt Point) (*engine.Result, error) {
	sk, persistent := "", false
	if r.Store != nil {
		sk, persistent = r.storeKey(pt)
		if persistent {
			if res, ok := r.Store.Get(sk); ok {
				r.storeHits.Add(1)
				return res, nil
			}
		}
	}
	var res *engine.Result
	var err error
	if r.Remote != nil {
		res, err = r.Remote(pt)
		if err != nil {
			return nil, err
		}
		r.remoteHits.Add(1)
	} else {
		res, err = r.Suite.RunWith(sim, pt.Kind, pt.P)
		if err != nil {
			return nil, err
		}
		r.sims.Add(1)
	}
	if persistent {
		r.Store.Put(sk, res)
	}
	return res, nil
}

// Stats returns a snapshot of the runner's cache traffic.
func (r *Runner) Stats() CacheStats {
	return CacheStats{
		L1Hits:      r.l1Hits.Load(),
		StoreHits:   r.storeHits.Load(),
		RemoteHits:  r.remoteHits.Load(),
		Sims:        r.sims.Load(),
		Uncacheable: r.uncacheable.Load(),
	}
}

// RunAll executes all points, in parallel, preserving order. The first
// error aborts the sweep.
func (r *Runner) RunAll(pts []Point) ([]*engine.Result, error) {
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pts) {
		par = len(pts)
	}
	if par <= 1 {
		out := make([]*engine.Result, len(pts))
		sim := engine.NewSim()
		for i, pt := range pts {
			res, err := r.RunWith(sim, pt)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			out[i] = res
		}
		return out, nil
	}
	out := make([]*engine.Result, len(pts))
	errs := make([]error, len(pts))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch context per worker: runs on this goroutine
			// reuse state without contending on the shared pool.
			sim := engine.NewSim()
			for i := range work {
				res, err := r.RunWith(sim, pts[i])
				out[i], errs[i] = res, err
			}
		}()
	}
	for i := range pts {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	return out, nil
}

// Series is a named sequence of (x, y) samples, one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WindowSweep runs the machine at each window size and maps results
// through f (e.g. a speedup or LHE computation).
func (r *Runner) WindowSweep(kind machine.Kind, base machine.Params, windows []int, f func(w int, res *engine.Result) float64) (Series, error) {
	pts := make([]Point, len(windows))
	for i, w := range windows {
		p := base
		p.Window = w
		pts[i] = Point{Kind: kind, P: p}
	}
	results, err := r.RunAll(pts)
	if err != nil {
		return Series{}, err
	}
	s := Series{X: make([]float64, len(windows)), Y: make([]float64, len(windows))}
	for i, res := range results {
		s.X[i] = float64(windows[i])
		s.Y[i] = f(windows[i], res)
	}
	return s, nil
}

// Windows returns the window sizes lo, lo+step, lo+2*step, ... up to and
// including hi when it lands on the grid.
func Windows(lo, hi, step int) []int {
	var out []int
	for w := lo; w <= hi; w += step {
		out = append(out, w)
	}
	return out
}
