package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/machine"
	"daesim/internal/obsv"
	"daesim/internal/sweep"
)

// FleetClient routes simulations across a fleet of sweepd replicas.
// Every point is mapped point-wise through a consistent-hash Ring of
// the replica addresses, keyed by the same identity as the persistent
// cache (engine version | suite fingerprint | canonical params), so a
// given cache key always lands on the same replica — each replica's
// single-flight L1 and store see all traffic for its share of the
// keyspace, and N replicas hold N disjoint warm caches instead of N
// copies of one.
//
// Failures are survived through an explicit ladder (DESIGN.md §13):
//
//   - Refusals that would repeat anywhere (4xx bad request, 409 skew)
//     fail the call loudly, immediately.
//   - Transport errors and 5xx — the signatures of a dying or
//     overloaded replica — reroute the affected points to the next
//     owners in ring order (Ring.Owners), bounded by MaxAttempts
//     distinct replicas per point, with bounded exponential backoff
//     (deterministically jittered) between retry rounds.
//   - Each replica sits behind a circuit breaker: FailureThreshold
//     consecutive failures open it, and while open the replica is
//     skipped whenever another candidate exists. After Cooldown the
//     breaker goes half-open and admits a single probe; success closes
//     it (the replica rejoins the scatter loop at full traffic),
//     failure re-opens it. When every candidate's breaker is open the
//     marks are ignored rather than failing without trying.
//   - A replica answering 503 with the DrainingHeader is shutting down
//     cleanly: its work reroutes at once with no breaker penalty and
//     no backoff round — draining is not a failure.
//   - A point whose every candidate failed does not fail the whole
//     call: batch calls return the results the surviving owners
//     produced plus an error wrapping sweep.ErrUnavailable, which a
//     Degrade-enabled sweep.Runner converts into last-resort local
//     simulation.
//
// Run and RunBatch have the hook shapes of experiments.Context.Remote
// and RemoteBatch; attaching both is repro -remote host1,host2,...
// (DESIGN.md §11). A FleetClient is safe for concurrent use.
type FleetClient struct {
	clients []*Client
	ring    *Ring

	// MaxAttempts bounds how many distinct replicas one point is tried
	// on before it is declared unavailable (0 = every replica).
	MaxAttempts int
	// FailureThreshold is how many consecutive retryable failures open
	// a replica's circuit breaker (default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker waits before going
	// half-open and admitting a recovery probe (default 2s).
	Cooldown time.Duration
	// BackoffBase and BackoffMax bound the exponential backoff between
	// scatter rounds that saw retryable failures: round r sleeps
	// jittered min(BackoffBase<<r, BackoffMax) (defaults 5ms, 500ms).
	// The jitter is a pure function of BackoffSeed and the round, so a
	// replayed chaos run waits the same schedule.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	BackoffSeed uint64
	// HedgeDelay, when positive, arms tail-latency hedging on
	// single-point calls (Run, Search — idempotent by determinism): if
	// the owner has not answered within HedgeDelay, the same request
	// is issued to the next candidate and the first success wins.
	HedgeDelay time.Duration

	breakers []breaker

	// now and sleep are injectable for breaker and backoff tests.
	now   func() time.Time
	sleep func(time.Duration)

	retries, breakerOpens, hedges, drainingReroutes, unavailable atomic.Int64

	// latency holds per-replica request-latency histograms once
	// Instrument has been called; nil slots mean "not observing".
	latency []*obsv.Histogram
}

// FleetMetrics is a snapshot of a FleetClient's failure-handling
// counters (repro -chaos-stats reports them).
type FleetMetrics struct {
	// Retries counts point-attempts rerouted after a retryable failure.
	Retries int64 `json:"retries"`
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens int64 `json:"breaker_opens"`
	// Hedges counts secondary requests launched by HedgeDelay.
	Hedges int64 `json:"hedges"`
	// DrainingReroutes counts point-attempts rerouted off a cleanly
	// draining replica (no failure charged).
	DrainingReroutes int64 `json:"draining_reroutes"`
	// Unavailable counts points that exhausted every candidate (the
	// ones a Degrade runner simulates locally).
	Unavailable int64 `json:"unavailable"`
}

// maxFleet bounds the replica count (per-point attempt sets are
// bitmasks). Fleets anywhere near this size would saturate on suite
// builds long before routing became the bottleneck.
const maxFleet = 64

// NewFleetClient returns a client routing over the replica base URLs
// (e.g. "http://10.0.0.1:8077"). The URL strings are the ring identity:
// every client of a fleet must list the same addresses — spelled the
// same way — for their rings to agree (Health cross-checks the daemons'
// advertised membership when sweepd runs with -fleet).
func NewFleetClient(urls []string) (*FleetClient, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("daemon fleet: no replica URLs")
	}
	if len(urls) > maxFleet {
		return nil, fmt.Errorf("daemon fleet: %d replicas exceeds the %d-replica limit", len(urls), maxFleet)
	}
	members := make([]string, len(urls))
	clients := make([]*Client, len(urls))
	seen := make(map[string]int, len(urls))
	for i, u := range urls {
		for len(u) > 1 && u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		if u == "" {
			return nil, fmt.Errorf("daemon fleet: replica %d has an empty URL", i)
		}
		// Duplicates collapse to identical vnode hashes: the ring would
		// route as if the fleet were smaller while maxAttempts still
		// counts both entries, silently shrinking the real failover set.
		if prev, dup := seen[u]; dup {
			return nil, fmt.Errorf("daemon fleet: replicas %d and %d are the same URL %q after trailing-slash normalization; every replica must be listed once", prev, i, u)
		}
		seen[u] = i
		members[i] = u
		clients[i] = NewClient(u)
	}
	return &FleetClient{
		clients:          clients,
		ring:             NewRing(members),
		FailureThreshold: 3,
		Cooldown:         2 * time.Second,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       500 * time.Millisecond,
		breakers:         make([]breaker, len(urls)),
		now:              time.Now,
		sleep:            time.Sleep,
	}, nil
}

// Clients returns the per-replica clients, index-aligned with the ring
// members (for stats aggregation, transport wrapping and tests).
func (f *FleetClient) Clients() []*Client { return f.clients }

// Ring returns the routing ring.
func (f *FleetClient) Ring() *Ring { return f.ring }

// Metrics returns a snapshot of the failure-handling counters.
func (f *FleetClient) Metrics() FleetMetrics {
	return FleetMetrics{
		Retries:          f.retries.Load(),
		BreakerOpens:     f.breakerOpens.Load(),
		Hedges:           f.hedges.Load(),
		DrainingReroutes: f.drainingReroutes.Load(),
		Unavailable:      f.unavailable.Load(),
	}
}

func (f *FleetClient) maxAttempts() int {
	if f.MaxAttempts > 0 && f.MaxAttempts < len(f.clients) {
		return f.MaxAttempts
	}
	return len(f.clients)
}

func (f *FleetClient) failureThreshold() int {
	if f.FailureThreshold > 0 {
		return f.FailureThreshold
	}
	return 3
}

func (f *FleetClient) cooldown() time.Duration {
	if f.Cooldown > 0 {
		return f.Cooldown
	}
	return 2 * time.Second
}

// breakerState is a replica breaker's position in the
// closed -> open -> half-open -> closed cycle.
type breakerState uint8

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// breaker is one replica's circuit breaker. All transitions happen
// under mu; the FleetClient's now() supplies time so tests can drive
// the cycle with a fake clock.
type breaker struct {
	mu      sync.Mutex
	state   breakerState //daelint:guardedby mu
	fails   int          //daelint:guardedby mu -- consecutive retryable failures while closed
	until   time.Time    //daelint:guardedby mu -- open expiry; after it the breaker half-opens
	probing bool         //daelint:guardedby mu -- half-open: the single probe slot is taken
}

// allow reports whether replica i may receive new work now. An expired
// open breaker flips to half-open and admits exactly one probe; the
// caller that gets true for a half-open breaker IS the probe and must
// report its outcome via onSuccess/onFailure.
func (f *FleetClient) allow(i int) bool {
	b := &f.breakers[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkOpen:
		if f.now().Before(b.until) {
			return false
		}
		b.state = bkHalfOpen
		b.probing = true
		return true
	case bkHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// onSuccess closes replica i's breaker: a successful call (or probe)
// returns the replica to full traffic.
func (f *FleetClient) onSuccess(i int) {
	b := &f.breakers[i]
	b.mu.Lock()
	b.state, b.fails, b.probing = bkClosed, 0, false
	b.mu.Unlock()
}

// onFailure records a retryable failure on replica i: a failed probe
// re-opens the breaker, FailureThreshold consecutive failures open a
// closed one, and a failed forced attempt on an already-open breaker
// extends its cooldown.
func (f *FleetClient) onFailure(i int) {
	b := &f.breakers[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkHalfOpen:
		b.state = bkOpen
		b.probing = false
		b.until = f.now().Add(f.cooldown())
		f.breakerOpens.Add(1)
	case bkClosed:
		b.fails++
		if b.fails >= f.failureThreshold() {
			b.state = bkOpen
			b.until = f.now().Add(f.cooldown())
			f.breakerOpens.Add(1)
		}
	case bkOpen:
		b.until = f.now().Add(f.cooldown())
	}
}

// Instrument registers the fleet client's failure-ladder counters,
// per-replica breaker-state gauges, and per-replica request-latency
// histograms on reg (repro -metrics-dump, sweepd when proxying). Call
// it before the client serves traffic; it is not safe to race with
// in-flight calls.
func (f *FleetClient) Instrument(reg *obsv.Registry) {
	InstrumentFleetMetrics(reg, f.Metrics)
	f.latency = make([]*obsv.Histogram, len(f.clients))
	for i, c := range f.clients {
		i := i
		reg.GaugeFunc("daesim_fleet_breaker_state", "replica circuit-breaker state (0 closed, 1 open, 2 half-open)",
			func() float64 { return float64(f.breakerIs(i)) }, obsv.L("replica", c.BaseURL))
		f.latency[i] = reg.Histogram("daesim_fleet_request_seconds", "fleet request latency by replica, queue and transport included", obsv.LatencyBuckets, obsv.L("replica", c.BaseURL))
	}
}

// observe times one replica request for the Instrument histograms; a
// pass-through before Instrument is called. It uses the injectable
// clock, so fake-clock tests observe zero durations instead of reading
// the wall.
func (f *FleetClient) observe(replica int, call func() error) error {
	if f.latency == nil || f.latency[replica] == nil {
		return call()
	}
	start := f.now()
	err := call()
	f.latency[replica].Observe(f.now().Sub(start).Seconds())
	return err
}

// breakerIs reports replica i's current breaker state (tests).
func (f *FleetClient) breakerIs(i int) breakerState {
	b := &f.breakers[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// retryable reports whether an error could be specific to one replica:
// transport failures and 5xx are, request/build refusals (4xx, 409
// skew) would repeat on every replica and must surface immediately.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	if errors.Is(err, ErrNotRemotable) || errors.Is(err, ErrFleetUnhealthy) {
		return false
	}
	return true
}

// isDraining reports whether an error is a clean-drain refusal — the
// replica is shutting down in an orderly way and the work should
// reroute without a failure being charged.
func isDraining(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Draining
}

// unavailableError reports points whose every candidate replica failed
// or was exhausted. It wraps sweep.ErrUnavailable so a Degrade-enabled
// Runner recognizes "nowhere left to retry" structurally and falls
// back to local simulation; callers without that escape hatch see a
// normal loud error.
type unavailableError struct {
	n    int
	last error
}

// Error deliberately does NOT interpolate sweep.ErrUnavailable: Unwrap
// already carries it, so embedding its text too would make every
// %w-formatted chain up the stack say "unavailable" twice.
func (e *unavailableError) Error() string {
	if e.last == nil {
		return fmt.Sprintf("daemon fleet: %d point(s) unavailable: no replica could be tried", e.n)
	}
	return fmt.Sprintf("daemon fleet: %d point(s) unavailable after every candidate replica failed (last error: %v)", e.n, e.last)
}

func (e *unavailableError) Unwrap() error { return sweep.ErrUnavailable }

// routeKey is the ring key for a point: the cache identity of §9
// (engine version | suite fingerprint | canonical params) widened with
// the workload name and scale, which the fingerprint encodes but
// point-only callers may pass as "". ok is false for points carrying a
// custom memory model — not remotable at all.
func routeKey(workload string, scale int, fingerprint string, pt sweep.Point) (string, bool) {
	pk, ok := pt.P.CacheKey(pt.Kind)
	if !ok {
		return "", false
	}
	return engine.Version + "|" + fingerprint + "|" + workload + "|" + strconv.Itoa(scale) + "|" + pk, true
}

// pickCandidate returns the next replica to try for key: the first
// owner in ring order that is untried and admitted by its breaker
// (half-open admits one probe), else the first untried owner ignoring
// breakers (stale opens must not fail a call unattempted), else -1
// when the attempt budget is spent.
func (f *FleetClient) pickCandidate(key string, tried uint64) int {
	owners := f.ring.Owners(key, f.maxAttempts())
	for _, o := range owners {
		if tried&(1<<uint(o)) == 0 && f.allow(o) {
			return o
		}
	}
	for _, o := range owners {
		if tried&(1<<uint(o)) == 0 {
			return o
		}
	}
	return -1
}

// backoffDelay is the sleep before retry round r (0-based): bounded
// exponential growth with deterministic jitter in [d/2, d) drawn from
// BackoffSeed — a pure function of (seed, round), so a replayed run
// backs off identically.
func (f *FleetClient) backoffDelay(round int) time.Duration {
	base, max := f.BackoffBase, f.BackoffMax
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 500 * time.Millisecond
	}
	d := base
	for i := 0; i < round && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// splitmix64 of (seed, round) -> fraction of d/2.
	x := f.BackoffSeed + 0x9e3779b97f4a7c15*(uint64(round)+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// scatter drives the route-execute-retry loop for n items: each round
// groups unsettled items by their next candidate replica, executes the
// groups concurrently (exec owns delivering group idx's results), and
// per group either settles it, fails the whole call fast on a
// non-retryable error, reroutes it off a draining replica penalty-free,
// or charges the replica's breaker and reroutes. Rounds that saw real
// failures are separated by backoffDelay. Every round consumes one
// attempt per unsettled item, so the loop terminates within
// maxAttempts rounds; items that exhaust their candidates are dropped
// from the loop and reported at the end via an unavailableError (exec
// never ran for them, so batch callers return partial results).
func (f *FleetClient) scatter(ctx context.Context, n int, keyOf func(int) string, exec func(ctx context.Context, replica int, idx []int) error) error {
	tried := make([]uint64, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var exhausted []int
	var lastErr error
	for round := 0; len(remaining) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		groups := make(map[int][]int)
		for _, i := range remaining {
			c := f.pickCandidate(keyOf(i), tried[i])
			if c < 0 {
				exhausted = append(exhausted, i)
				continue
			}
			groups[c] = append(groups[c], i)
		}
		if len(groups) == 0 {
			break
		}
		type outcome struct {
			replica int
			idx     []int
			err     error
		}
		outcomes := make(chan outcome, len(groups))
		for replica, idx := range groups {
			go func(replica int, idx []int) {
				outcomes <- outcome{replica, idx, f.observe(replica, func() error { return exec(ctx, replica, idx) })}
			}(replica, idx)
		}
		var next []int
		var fatal error
		failed := false
		for range groups {
			o := <-outcomes
			switch {
			case o.err == nil:
				f.onSuccess(o.replica)
			case isDraining(o.err):
				// Clean drain: reroute with no breaker charge and no
				// backoff — the replica is fine, just leaving.
				f.drainingReroutes.Add(int64(len(o.idx)))
				lastErr = o.err
				for _, i := range o.idx {
					tried[i] |= 1 << uint(o.replica)
				}
				next = append(next, o.idx...)
			case !retryable(o.err):
				if fatal == nil {
					fatal = o.err
				}
			default:
				f.onFailure(o.replica)
				f.retries.Add(int64(len(o.idx)))
				lastErr = o.err
				failed = true
				for _, i := range o.idx {
					tried[i] |= 1 << uint(o.replica)
				}
				next = append(next, o.idx...)
			}
		}
		if fatal != nil {
			return fatal
		}
		if err := ctx.Err(); err != nil {
			// Caller cancellation must surface as such, never as
			// unavailability (which Degrade would paper over).
			return err
		}
		sort.Ints(next)
		remaining = next
		if failed && len(remaining) > 0 {
			f.sleep(f.backoffDelay(round))
		}
	}
	if len(exhausted) > 0 {
		f.unavailable.Add(int64(len(exhausted)))
		return &unavailableError{n: len(exhausted), last: lastErr}
	}
	return nil
}

// single executes one keyed call through the failure ladder. With
// HedgeDelay armed it also hedges: the primary owner gets HedgeDelay
// to answer before the same request is launched on the next candidate;
// the first success wins and cancels the rest. exec must only publish
// its result on success (and tolerate publishing from two goroutines —
// hedged attempts compute identical results by determinism).
func (f *FleetClient) single(ctx context.Context, key string, exec func(ctx context.Context, replica int) error) error {
	if f.HedgeDelay <= 0 {
		return f.scatter(ctx, 1, func(int) string { return key }, func(ctx context.Context, replica int, _ []int) error {
			return exec(ctx, replica)
		})
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		replica int
		err     error
	}
	results := make(chan attempt, maxFleet)
	tried := uint64(0)
	outstanding := 0
	launch := func() bool {
		c := f.pickCandidate(key, tried)
		if c < 0 {
			return false
		}
		tried |= 1 << uint(c)
		outstanding++
		go func() {
			results <- attempt{c, f.observe(c, func() error { return exec(actx, c) })}
		}()
		return true
	}
	if !launch() {
		f.unavailable.Add(1)
		return &unavailableError{n: 1}
	}
	timer := time.NewTimer(f.HedgeDelay)
	defer timer.Stop()
	hedgeArmed := true
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
			hedgeArmed = false
			if launch() {
				f.hedges.Add(1)
			}
		case a := <-results:
			outstanding--
			switch {
			case a.err == nil:
				f.onSuccess(a.replica)
				return nil
			case errors.Is(a.err, context.Canceled):
				// A loser cancelled by the winner never gets here (we
				// return on first success); this is our own ctx dying.
				if err := ctx.Err(); err != nil {
					return err
				}
			case isDraining(a.err):
				f.drainingReroutes.Add(1)
				lastErr = a.err
			case !retryable(a.err):
				return a.err
			default:
				f.onFailure(a.replica)
				f.retries.Add(1)
				lastErr = a.err
			}
			// Replace the failed attempt immediately; backoff would
			// defeat hedging's purpose (these calls are latency-bound).
			if !launch() && outstanding == 0 {
				f.unavailable.Add(1)
				return &unavailableError{n: 1, last: lastErr}
			}
		}
		if !hedgeArmed {
			timer.Stop()
		}
	}
}

// Run executes one point on the replica owning its cache key, failing
// over along the ring (and hedging, when armed) on replica-local
// errors. Bound to a workload it matches experiments.Context.Remote.
func (f *FleetClient) Run(ctx context.Context, workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
	key, ok := routeKey(workload, scale, fingerprint, pt)
	if !ok {
		return nil, fmt.Errorf("daemon fleet: points with a custom memory model cannot be simulated remotely: %w", ErrNotRemotable)
	}
	var mu sync.Mutex
	var res *engine.Result
	err := f.single(ctx, key, func(ctx context.Context, replica int) error {
		r, err := f.clients[replica].Run(ctx, workload, scale, fingerprint, pt)
		if err == nil {
			mu.Lock()
			if res == nil {
				res = r
			}
			mu.Unlock()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunBatch executes a batch of points against one suite: points group
// by owning replica and each group travels as one /v1/batch/run round
// trip, concurrently across replicas. Results[i] answers pts[i]. The
// signature matches experiments.Context.RemoteBatch — this is how a
// probe wave or figure sweep reaches the whole fleet in ≤N requests.
//
// Partial-batch semantics: when some points exhaust every candidate
// the rest of the batch still settles; the returned slice carries the
// survivors' results (nil for the unserved points) alongside an error
// wrapping sweep.ErrUnavailable, which a Degrade-enabled Runner
// converts into local simulation of exactly the nil slots.
func (f *FleetClient) RunBatch(ctx context.Context, workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error) {
	keys := make([]string, len(pts))
	for i, pt := range pts {
		k, ok := routeKey(workload, scale, fingerprint, pt)
		if !ok {
			return nil, fmt.Errorf("daemon fleet: point %d carries a custom memory model and cannot run remotely: %w", i, ErrNotRemotable)
		}
		keys[i] = k
	}
	out := make([]*engine.Result, len(pts))
	err := f.scatter(ctx, len(pts), func(i int) string { return keys[i] }, func(ctx context.Context, replica int, idx []int) error {
		sub := make([]sweep.Point, len(idx))
		for j, i := range idx {
			sub[j] = pts[i]
		}
		res, err := f.clients[replica].RunBatch(ctx, workload, scale, fingerprint, sub)
		if err != nil {
			return err
		}
		for j, i := range idx {
			out[i] = res[j] // idx sets are disjoint across groups
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, sweep.ErrUnavailable) {
			return out, err // partial: settled slots are valid
		}
		return nil, err
	}
	return out, nil
}

// searchKey is the ring key for a server-side search: the canonical
// encoding of the search itself under the client's engine version, so
// identical searches from any client of the fleet land on one replica
// and share its memoized probes.
func searchKey(workload string, scale int, req SearchRequest) string {
	req.Target = Target{}
	b, _ := json.Marshal(req)
	return engine.Version + "|" + workload + "|" + strconv.Itoa(scale) + "|search|" + string(b)
}

// Search runs one server-side search on the replica owning it, with
// the same failover (and hedging) as Run.
func (f *FleetClient) Search(ctx context.Context, workload string, scale int, req SearchRequest) (SearchResponse, error) {
	key := searchKey(workload, scale, req)
	var mu sync.Mutex
	var res SearchResponse
	var settled bool
	err := f.single(ctx, key, func(ctx context.Context, replica int) error {
		r, err := f.clients[replica].Search(ctx, workload, scale, req)
		if err == nil {
			mu.Lock()
			if !settled {
				res, settled = r, true
			}
			mu.Unlock()
		}
		return err
	})
	return res, err
}

// BatchSearch executes server-side searches across the fleet: items
// group by owning replica, one /v1/batch/search round trip per group.
// Results[i] answers items[i]; each item's Target is pinned to this
// build's engine version (and the suite fingerprint when known) like
// the point-wise paths. Unlike RunBatch there is no partial return —
// a search with unavailable owners fails with sweep.ErrUnavailable and
// the caller (experiments.RatioFigure with Degrade) falls back to the
// local search path wholesale.
func (f *FleetClient) BatchSearch(ctx context.Context, workload string, scale int, fingerprint string, reqs []SearchRequest) ([]SearchResponse, error) {
	// Work on a copy: stamping targets must not scribble on the
	// caller's slice.
	items := append([]SearchRequest(nil), reqs...)
	keys := make([]string, len(items))
	for i := range items {
		items[i].Target = Target{
			Workload: workload, Scale: scale,
			EngineVersion: engine.Version, Fingerprint: fingerprint,
		}
		keys[i] = searchKey(workload, scale, items[i])
	}
	out := make([]SearchResponse, len(items))
	err := f.scatter(ctx, len(items), func(i int) string { return keys[i] }, func(ctx context.Context, replica int, idx []int) error {
		sub := make([]SearchRequest, len(idx))
		for j, i := range idx {
			sub[j] = items[i]
		}
		res, err := f.clients[replica].BatchSearch(ctx, sub)
		if err != nil {
			return err
		}
		for j, i := range idx {
			out[i] = res[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RatioBatch executes one curve of equivalent-window ratio searches
// across the fleet, grouped by owning replica — the fleet counterpart
// of Client.RatioBatch, with the same experiments.Context.RemoteSearch
// signature and the scatter loop's failover.
func (f *FleetClient) RatioBatch(ctx context.Context, workload string, scale int, fingerprint string, params []machine.Params) ([]experiments.RatioAnswer, error) {
	items := make([]SearchRequest, len(params))
	for i, p := range params {
		wp, err := ToParams(p)
		if err != nil {
			return nil, fmt.Errorf("daemon fleet: ratio point %d: %w", i, err)
		}
		items[i] = SearchRequest{Op: SearchRatio, Params: wp}
	}
	resp, err := f.BatchSearch(ctx, workload, scale, fingerprint, items)
	if err != nil {
		return nil, err
	}
	answers := make([]experiments.RatioAnswer, len(resp))
	for i, r := range resp {
		answers[i] = experiments.RatioAnswer{Ratio: r.Ratio, OK: r.OK}
	}
	return answers, nil
}

// Health checks every replica: alive and not draining, engine version
// matching this build, unique replica IDs, and — when a daemon
// advertises its -fleet membership — a member list agreeing with this
// client's ring, since clients and replicas disagreeing on membership
// would route the same key to different owners and silently split the
// fleet's cache.
func (f *FleetClient) Health(ctx context.Context) error {
	ids := make(map[string]int)
	for i, c := range f.clients {
		var resp HealthResponse
		if err := c.get(ctx, "/healthz", &resp); err != nil {
			return fmt.Errorf("daemon fleet: replica %d (%s): %w", i, c.BaseURL, err)
		}
		if resp.Status != "ok" {
			return fmt.Errorf("daemon fleet: replica %d (%s): health status %q: %w", i, c.BaseURL, resp.Status, ErrFleetUnhealthy)
		}
		if resp.EngineVersion != "" && resp.EngineVersion != engine.Version {
			return fmt.Errorf("daemon fleet: replica %d (%s): engine version skew: daemon runs %s, this build is %s (restart it from this build): %w", i, c.BaseURL, resp.EngineVersion, engine.Version, ErrFleetUnhealthy)
		}
		if len(resp.Fleet) > 0 && !sameMembers(resp.Fleet, f.ring.Members()) {
			return fmt.Errorf("daemon fleet: membership skew: replica %s advertises fleet %v, this client routes over %v (every replica's -fleet must list the same addresses as the client's replica list): %w", c.BaseURL, resp.Fleet, f.ring.Members(), ErrFleetUnhealthy)
		}
		if resp.ReplicaID != "" {
			if prev, dup := ids[resp.ReplicaID]; dup {
				return fmt.Errorf("daemon fleet: replicas %d and %d both advertise replica id %q (-replica must be unique per daemon): %w", prev, i, resp.ReplicaID, ErrFleetUnhealthy)
			}
			ids[resp.ReplicaID] = i
		}
	}
	return nil
}

// sameMembers compares member lists ignoring order and trailing
// slashes.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(in []string) []string {
		out := make([]string, len(in))
		for i, s := range in {
			for len(s) > 1 && s[len(s)-1] == '/' {
				s = s[:len(s)-1]
			}
			out[i] = s
		}
		sort.Strings(out)
		return out
	}
	na, nb := norm(a), norm(b)
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// WaitHealthy polls until every replica passes Health or the deadline
// (or ctx) expires — the startup handshake for scripts that just
// launched a fleet.
func (f *FleetClient) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var err error
	for {
		if err = f.Health(ctx); err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon fleet: not healthy after %s: %w", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// CacheStats fetches every replica's cache counters, index-aligned
// with the ring members.
func (f *FleetClient) CacheStats(ctx context.Context) ([]StatsResponse, error) {
	out := make([]StatsResponse, len(f.clients))
	for i, c := range f.clients {
		s, err := c.CacheStats(ctx)
		if err != nil {
			return nil, fmt.Errorf("daemon fleet: replica %d (%s): %w", i, c.BaseURL, err)
		}
		out[i] = s
	}
	return out, nil
}
