package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/machine"
	"daesim/internal/sweep"
)

// FleetClient routes simulations across a fleet of sweepd replicas.
// Every point is mapped point-wise through a consistent-hash Ring of
// the replica addresses, keyed by the same identity as the persistent
// cache (engine version | suite fingerprint | canonical params), so a
// given cache key always lands on the same replica — each replica's
// single-flight L1 and store see all traffic for its share of the
// keyspace, and N replicas hold N disjoint warm caches instead of N
// copies of one.
//
// Failures are survived, not hidden: a replica that refuses a request
// for reasons that would repeat anywhere (4xx bad request, 409 skew)
// fails the call loudly, while transport errors and 5xx — the
// signatures of a dying or overloaded replica — mark it down for
// Cooldown and retry the affected points on the next owners in ring
// order (the members that would own those keys if the ring shrank,
// see Ring.Owners), bounded by MaxAttempts distinct replicas per
// point. When every candidate is marked down the marks are ignored
// rather than failing without trying.
//
// Run and RunBatch have the hook shapes of experiments.Context.Remote
// and RemoteBatch; attaching both is repro -remote host1,host2,...
// (DESIGN.md §11). A FleetClient is safe for concurrent use.
type FleetClient struct {
	clients []*Client
	ring    *Ring

	// MaxAttempts bounds how many distinct replicas one point is tried
	// on before its call fails (0 = every replica).
	MaxAttempts int
	// Cooldown is how long a failed replica is deprioritized before
	// being routed to again (default 2s). Marked-down replicas are
	// skipped while healthy candidates remain, not banned.
	Cooldown time.Duration

	downUntil []atomic.Int64 // unix nanos; 0 = healthy
}

// maxFleet bounds the replica count (per-point attempt sets are
// bitmasks). Fleets anywhere near this size would saturate on suite
// builds long before routing became the bottleneck.
const maxFleet = 64

// NewFleetClient returns a client routing over the replica base URLs
// (e.g. "http://10.0.0.1:8077"). The URL strings are the ring identity:
// every client of a fleet must list the same addresses — spelled the
// same way — for their rings to agree (Health cross-checks the daemons'
// advertised membership when sweepd runs with -fleet).
func NewFleetClient(urls []string) (*FleetClient, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("daemon fleet: no replica URLs")
	}
	if len(urls) > maxFleet {
		return nil, fmt.Errorf("daemon fleet: %d replicas exceeds the %d-replica limit", len(urls), maxFleet)
	}
	members := make([]string, len(urls))
	clients := make([]*Client, len(urls))
	for i, u := range urls {
		for len(u) > 1 && u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		if u == "" {
			return nil, fmt.Errorf("daemon fleet: replica %d has an empty URL", i)
		}
		members[i] = u
		clients[i] = NewClient(u)
	}
	return &FleetClient{
		clients:   clients,
		ring:      NewRing(members),
		Cooldown:  2 * time.Second,
		downUntil: make([]atomic.Int64, len(urls)),
	}, nil
}

// Clients returns the per-replica clients, index-aligned with the ring
// members (for stats aggregation and tests).
func (f *FleetClient) Clients() []*Client { return f.clients }

// Ring returns the routing ring.
func (f *FleetClient) Ring() *Ring { return f.ring }

func (f *FleetClient) maxAttempts() int {
	if f.MaxAttempts > 0 && f.MaxAttempts < len(f.clients) {
		return f.MaxAttempts
	}
	return len(f.clients)
}

func (f *FleetClient) isDown(i int) bool {
	return time.Now().UnixNano() < f.downUntil[i].Load()
}

func (f *FleetClient) markDown(i int) {
	cd := f.Cooldown
	if cd <= 0 {
		cd = 2 * time.Second
	}
	f.downUntil[i].Store(time.Now().Add(cd).UnixNano())
}

func (f *FleetClient) markUp(i int) {
	f.downUntil[i].Store(0)
}

// retryable reports whether an error could be specific to one replica:
// transport failures and 5xx are, request/build refusals (4xx, 409
// skew) would repeat on every replica and must surface immediately.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return true
}

// routeKey is the ring key for a point: the cache identity of §9
// (engine version | suite fingerprint | canonical params) widened with
// the workload name and scale, which the fingerprint encodes but
// point-only callers may pass as "". ok is false for points carrying a
// custom memory model — not remotable at all.
func routeKey(workload string, scale int, fingerprint string, pt sweep.Point) (string, bool) {
	pk, ok := pt.P.CacheKey(pt.Kind)
	if !ok {
		return "", false
	}
	return engine.Version + "|" + fingerprint + "|" + workload + "|" + strconv.Itoa(scale) + "|" + pk, true
}

// pickCandidate returns the next replica to try for key: the first
// owner in ring order that is neither tried nor marked down, else the
// first untried owner regardless of down marks (stale marks must not
// fail a call unattempted), else -1 when the attempt budget is spent.
func (f *FleetClient) pickCandidate(key string, tried uint64) int {
	owners := f.ring.Owners(key, f.maxAttempts())
	for _, o := range owners {
		if tried&(1<<uint(o)) == 0 && !f.isDown(o) {
			return o
		}
	}
	for _, o := range owners {
		if tried&(1<<uint(o)) == 0 {
			return o
		}
	}
	return -1
}

// scatter drives the route-execute-retry loop for n items: each round
// groups unsettled items by their next candidate replica, executes the
// groups concurrently (exec owns delivering group idx's results), and
// either settles a group, fails fast on a non-retryable error, or marks
// the replica down and reroutes the group's items. Every round consumes
// one attempt per unsettled item, so the loop terminates within
// maxAttempts rounds.
func (f *FleetClient) scatter(n int, keyOf func(int) string, exec func(replica int, idx []int) error) error {
	tried := make([]uint64, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var lastErr error
	for len(remaining) > 0 {
		groups := make(map[int][]int)
		for _, i := range remaining {
			c := f.pickCandidate(keyOf(i), tried[i])
			if c < 0 {
				if lastErr == nil {
					return fmt.Errorf("daemon fleet: no replica available")
				}
				return fmt.Errorf("daemon fleet: %d points failed on every candidate replica, last error: %w", len(remaining), lastErr)
			}
			groups[c] = append(groups[c], i)
		}
		type outcome struct {
			replica int
			idx     []int
			err     error
		}
		outcomes := make(chan outcome, len(groups))
		for replica, idx := range groups {
			go func(replica int, idx []int) {
				outcomes <- outcome{replica, idx, exec(replica, idx)}
			}(replica, idx)
		}
		var next []int
		var fatal error
		for range groups {
			o := <-outcomes
			switch {
			case o.err == nil:
				f.markUp(o.replica)
			case !retryable(o.err):
				if fatal == nil {
					fatal = o.err
				}
			default:
				f.markDown(o.replica)
				lastErr = o.err
				for _, i := range o.idx {
					tried[i] |= 1 << uint(o.replica)
				}
				next = append(next, o.idx...)
			}
		}
		if fatal != nil {
			return fatal
		}
		sort.Ints(next)
		remaining = next
	}
	return nil
}

// Run executes one point on the replica owning its cache key, failing
// over along the ring on replica-local errors. The signature matches
// experiments.Context.Remote.
func (f *FleetClient) Run(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
	key, ok := routeKey(workload, scale, fingerprint, pt)
	if !ok {
		return nil, fmt.Errorf("daemon fleet: points with a custom memory model cannot be simulated remotely")
	}
	var res *engine.Result
	err := f.scatter(1, func(int) string { return key }, func(replica int, idx []int) error {
		r, err := f.clients[replica].Run(workload, scale, fingerprint, pt)
		if err == nil {
			res = r
		}
		return err
	})
	return res, err
}

// RunBatch executes a batch of points against one suite: points group
// by owning replica and each group travels as one /v1/batch/run round
// trip, concurrently across replicas. Results[i] answers pts[i]. The
// signature matches experiments.Context.RemoteBatch — this is how a
// probe wave or figure sweep reaches the whole fleet in ≤N requests.
func (f *FleetClient) RunBatch(workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error) {
	keys := make([]string, len(pts))
	for i, pt := range pts {
		k, ok := routeKey(workload, scale, fingerprint, pt)
		if !ok {
			return nil, fmt.Errorf("daemon fleet: point %d carries a custom memory model and cannot run remotely", i)
		}
		keys[i] = k
	}
	out := make([]*engine.Result, len(pts))
	err := f.scatter(len(pts), func(i int) string { return keys[i] }, func(replica int, idx []int) error {
		sub := make([]sweep.Point, len(idx))
		for j, i := range idx {
			sub[j] = pts[i]
		}
		res, err := f.clients[replica].RunBatch(workload, scale, fingerprint, sub)
		if err != nil {
			return err
		}
		for j, i := range idx {
			out[i] = res[j] // idx sets are disjoint across groups
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// searchKey is the ring key for a server-side search: the canonical
// encoding of the search itself under the client's engine version, so
// identical searches from any client of the fleet land on one replica
// and share its memoized probes.
func searchKey(workload string, scale int, req SearchRequest) string {
	req.Target = Target{}
	b, _ := json.Marshal(req)
	return engine.Version + "|" + workload + "|" + strconv.Itoa(scale) + "|search|" + string(b)
}

// Search runs one server-side search on the replica owning it, with
// the same failover as Run.
func (f *FleetClient) Search(workload string, scale int, req SearchRequest) (SearchResponse, error) {
	key := searchKey(workload, scale, req)
	var res SearchResponse
	err := f.scatter(1, func(int) string { return key }, func(replica int, idx []int) error {
		r, err := f.clients[replica].Search(workload, scale, req)
		if err == nil {
			res = r
		}
		return err
	})
	return res, err
}

// BatchSearch executes server-side searches across the fleet: items
// group by owning replica, one /v1/batch/search round trip per group.
// Results[i] answers items[i]; each item's Target is pinned to this
// build's engine version (and the suite fingerprint when known) like
// the point-wise paths.
func (f *FleetClient) BatchSearch(workload string, scale int, fingerprint string, reqs []SearchRequest) ([]SearchResponse, error) {
	// Work on a copy: stamping targets must not scribble on the
	// caller's slice.
	items := append([]SearchRequest(nil), reqs...)
	keys := make([]string, len(items))
	for i := range items {
		items[i].Target = Target{
			Workload: workload, Scale: scale,
			EngineVersion: engine.Version, Fingerprint: fingerprint,
		}
		keys[i] = searchKey(workload, scale, items[i])
	}
	out := make([]SearchResponse, len(items))
	err := f.scatter(len(items), func(i int) string { return keys[i] }, func(replica int, idx []int) error {
		sub := make([]SearchRequest, len(idx))
		for j, i := range idx {
			sub[j] = items[i]
		}
		res, err := f.clients[replica].BatchSearch(sub)
		if err != nil {
			return err
		}
		for j, i := range idx {
			out[i] = res[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RatioBatch executes one curve of equivalent-window ratio searches
// across the fleet, grouped by owning replica — the fleet counterpart
// of Client.RatioBatch, with the same experiments.Context.RemoteSearch
// signature and the scatter loop's failover.
func (f *FleetClient) RatioBatch(workload string, scale int, fingerprint string, params []machine.Params) ([]experiments.RatioAnswer, error) {
	items := make([]SearchRequest, len(params))
	for i, p := range params {
		wp, err := ToParams(p)
		if err != nil {
			return nil, fmt.Errorf("daemon fleet: ratio point %d: %w", i, err)
		}
		items[i] = SearchRequest{Op: SearchRatio, Params: wp}
	}
	resp, err := f.BatchSearch(workload, scale, fingerprint, items)
	if err != nil {
		return nil, err
	}
	answers := make([]experiments.RatioAnswer, len(resp))
	for i, r := range resp {
		answers[i] = experiments.RatioAnswer{Ratio: r.Ratio, OK: r.OK}
	}
	return answers, nil
}

// Health checks every replica: alive, engine version matching this
// build, unique replica IDs, and — when a daemon advertises its -fleet
// membership — a member list agreeing with this client's ring, since
// clients and replicas disagreeing on membership would route the same
// key to different owners and silently split the fleet's cache.
func (f *FleetClient) Health() error {
	ids := make(map[string]int)
	for i, c := range f.clients {
		var resp HealthResponse
		if err := c.get("/healthz", &resp); err != nil {
			return fmt.Errorf("daemon fleet: replica %d (%s): %w", i, c.BaseURL, err)
		}
		if resp.Status != "ok" {
			return fmt.Errorf("daemon fleet: replica %d (%s): health status %q", i, c.BaseURL, resp.Status)
		}
		if resp.EngineVersion != "" && resp.EngineVersion != engine.Version {
			return fmt.Errorf("daemon fleet: replica %d (%s): engine version skew: daemon runs %s, this build is %s (restart it from this build)", i, c.BaseURL, resp.EngineVersion, engine.Version)
		}
		if len(resp.Fleet) > 0 && !sameMembers(resp.Fleet, f.ring.Members()) {
			return fmt.Errorf("daemon fleet: membership skew: replica %s advertises fleet %v, this client routes over %v (every replica's -fleet must list the same addresses as the client's replica list)", c.BaseURL, resp.Fleet, f.ring.Members())
		}
		if resp.ReplicaID != "" {
			if prev, dup := ids[resp.ReplicaID]; dup {
				return fmt.Errorf("daemon fleet: replicas %d and %d both advertise replica id %q (-replica must be unique per daemon)", prev, i, resp.ReplicaID)
			}
			ids[resp.ReplicaID] = i
		}
	}
	return nil
}

// sameMembers compares member lists ignoring order and trailing
// slashes.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(in []string) []string {
		out := make([]string, len(in))
		for i, s := range in {
			for len(s) > 1 && s[len(s)-1] == '/' {
				s = s[:len(s)-1]
			}
			out[i] = s
		}
		sort.Strings(out)
		return out
	}
	na, nb := norm(a), norm(b)
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// WaitHealthy polls until every replica passes Health or the deadline
// passes — the startup handshake for scripts that just launched a
// fleet.
func (f *FleetClient) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var err error
	for {
		if err = f.Health(); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon fleet: not healthy after %s: %w", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// CacheStats fetches every replica's cache counters, index-aligned
// with the ring members.
func (f *FleetClient) CacheStats() ([]StatsResponse, error) {
	out := make([]StatsResponse, len(f.clients))
	for i, c := range f.clients {
		s, err := c.CacheStats()
		if err != nil {
			return nil, fmt.Errorf("daemon fleet: replica %d (%s): %w", i, c.BaseURL, err)
		}
		out[i] = s
	}
	return out, nil
}
