package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestBatchWireSchemasMirrorPointSchemas is the batch protocol's drift
// guard, mirroring TestWireParamsCoverMachineParams one level up: the
// batch request bodies are exactly {items: [<point-wise request>]}, so
// the existing field-count guard on Params transitively covers them —
// but only as long as the item types stay the point-wise request types
// and nothing grows beside Items without the decoders (and their fuzz
// corpus) being extended consciously.
func TestBatchWireSchemasMirrorPointSchemas(t *testing.T) {
	t.Parallel()
	br := reflect.TypeOf(BatchRunRequest{})
	if br.NumField() != 1 || br.Field(0).Type != reflect.TypeOf([]RunRequest(nil)) {
		t.Errorf("BatchRunRequest must be exactly {Items []RunRequest}; extend the decoders and fuzz seeds before changing it")
	}
	bs := reflect.TypeOf(BatchSearchRequest{})
	if bs.NumField() != 1 || bs.Field(0).Type != reflect.TypeOf([]SearchRequest(nil)) {
		t.Errorf("BatchSearchRequest must be exactly {Items []SearchRequest}; extend the decoders and fuzz seeds before changing it")
	}
	// The replies mirror the point-wise replies element-wise too.
	if rt := reflect.TypeOf(BatchSearchResponse{}); rt.Field(0).Type != reflect.TypeOf([]SearchResponse(nil)) {
		t.Errorf("BatchSearchResponse must carry []SearchResponse")
	}
}

// postBody drives one raw body through a handler and returns the
// recorded status. The server must answer — any panic in the decode or
// validation path fails the calling (fuzz) test.
func postBody(handler http.Handler, path string, body []byte) int {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec.Code
}

// batchFuzzSeeds are the shared seed corpus for both batch decoders:
// valid shapes, malformed JSON, field drift (unknown and misspelled
// fields), wrong types, and structural edge cases. Oversized batches
// get their own programmatic seed (they are too big to inline).
func batchFuzzSeeds(f *testing.F, valid string) {
	f.Add([]byte(valid))
	f.Add([]byte(valid + "garbage")) // trailing bytes after a valid document
	f.Add([]byte(valid + valid))     // concatenated documents
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`42`))
	f.Add([]byte(`"items"`))
	f.Add([]byte(`{"items":null}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`{"items":{}}`))
	f.Add([]byte(`{"items":[null]}`))
	f.Add([]byte(`{"items":[{}]}`))
	f.Add([]byte(`{"itemz":[]}`))                                                       // field drift: misspelled
	f.Add([]byte(`{"items":[],"extra":1}`))                                             // field drift: grown
	f.Add([]byte(`{"items":[{"workload":3}]}`))                                         // wrong type
	f.Add([]byte(`{"items":[{"workload":"NOSUCH","kind":"DM"}]}`))                      // unknown workload
	f.Add([]byte(`{"items":[{"workload":"TRFD","kind":"VLIW"}]}`))                      // bad kind
	f.Add([]byte(`{"items":[{"workload":"TRFD","kind":"DM","params":{"window":-5}}]}`)) // hostile params
	f.Add([]byte(strings.Repeat(`[`, 10000)))                                           // deep nesting
	// Oversized: one item past the limit must be refused with 400.
	var big bytes.Buffer
	big.WriteString(`{"items":[`)
	for i := 0; i <= MaxBatchItems; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString(`{"workload":"NOSUCH","kind":"DM"}`)
	}
	big.WriteString(`]}`)
	f.Add(big.Bytes())
}

// fuzzBatchEndpoint is the shared property: whatever bytes arrive, the
// decoder answers an HTTP status — 400 for anything malformed,
// oversized, or field-drifted, never a panic — and an accepted batch
// echoes one result per item.
func fuzzBatchEndpoint(f *testing.F, path, valid string) {
	srv := NewServer(Config{})
	handler := srv.Handler()
	batchFuzzSeeds(f, valid)
	f.Fuzz(func(t *testing.T, body []byte) {
		// The property is "always an HTTP answer, never a panic" — a
		// panic unwinds through ServeHTTP and fails the fuzz run. On
		// top of that, malformed JSON must always be a 400, never a
		// partial success (well-formed batches may legitimately earn
		// any status, e.g. 500 for params the simulator rejects).
		code := postBody(handler, path, body)
		if !json.Valid(body) && code != http.StatusBadRequest {
			t.Errorf("%s accepted invalid JSON with %d: %q", path, code, body)
		}
	})
}

// FuzzBatchRunDecode fuzzes the /v1/batch/run decoder. Run with
//
//	go test -fuzz FuzzBatchRunDecode ./internal/daemon
//
// (the seed corpus runs as a plain test either way; CI runs both modes).
func FuzzBatchRunDecode(f *testing.F) {
	fuzzBatchEndpoint(f, "/v1/batch/run",
		`{"items":[{"workload":"TRFD","kind":"DM","params":{"window":8,"md":10}}]}`)
}

// FuzzBatchSearchDecode fuzzes the /v1/batch/search decoder.
func FuzzBatchSearchDecode(f *testing.F) {
	fuzzBatchEndpoint(f, "/v1/batch/search",
		`{"items":[{"workload":"TRFD","op":"ratio","params":{"window":8,"md":10}}]}`)
}

// TestBatchSizeBounds pins the non-fuzz half of the oversize contract
// with exact messages: empty and over-limit batches are 400s that name
// the bound, for both endpoints.
func TestBatchSizeBounds(t *testing.T) {
	t.Parallel()
	srv := NewServer(Config{})
	handler := srv.Handler()
	for path, item := range map[string]string{
		"/v1/batch/run":    `{"workload":"TRFD","kind":"DM"}`,
		"/v1/batch/search": `{"workload":"TRFD","op":"ratio"}`,
	} {
		if code := postBody(handler, path, []byte(`{"items":[]}`)); code != http.StatusBadRequest {
			t.Errorf("%s: empty batch answered %d, want 400", path, code)
		}
		var big bytes.Buffer
		big.WriteString(`{"items":[`)
		for i := 0; i <= MaxBatchItems; i++ {
			if i > 0 {
				big.WriteByte(',')
			}
			big.WriteString(item)
		}
		big.WriteString(`]}`)
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(big.Bytes()))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), fmt.Sprintf("%d-item limit", MaxBatchItems)) {
			t.Errorf("%s: oversized batch answered %d %q, want 400 naming the limit", path, rec.Code, rec.Body.String())
		}
		// A valid document followed by trailing bytes is malformed — the
		// body this item would otherwise accept must 400, not execute
		// the prefix.
		if code := postBody(handler, path, []byte(`{"items":[`+item+`]}trailing`)); code != http.StatusBadRequest {
			t.Errorf("%s: trailing garbage after a valid body answered %d, want 400", path, code)
		}
	}
}
