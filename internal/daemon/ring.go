package daemon

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping cache keys to the members of a
// sweepd fleet. Each member is projected onto the ring at VirtualNodes
// pseudo-random positions (FNV-1a of "member|vnode", so the layout is a
// pure function of the member names — deterministic across processes
// and builds, with no seed to drift); a key belongs to the member owning
// the first position at or clockwise after the key's own hash.
//
// The two properties the fleet relies on (pinned by TestRingRemap):
//
//   - Stability: removing a member remaps only the keys it owned, and
//     adding one steals roughly 1/(N+1) of the keyspace, taking nothing
//     from one surviving member to give to another. A replica joining
//     or leaving therefore invalidates at most ~1/N of every client's
//     routing, not all of it.
//   - Determinism: two processes given the same member list route every
//     key identically, so independent repro clients sharing a fleet
//     converge on the same replica for the same cache key and its
//     single-flight L1 coalesces their load.
//
// Member identity is the listed name verbatim ("http://10.0.0.1:8077"
// and "http://host1:8077" are different members even when they resolve
// to the same daemon), so every client of a fleet must be configured
// with the same address list — the membership guard in
// FleetClient.Health catches drift when the daemons advertise theirs.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash, ties by member index
}

// ringPoint is one virtual node: a position on the ring and the member
// that owns it.
type ringPoint struct {
	hash   uint64
	member int
}

// VirtualNodes is the number of ring positions per member. 128 keeps
// the largest member share under ~45% of a 3-replica fleet's keyspace
// in the worst case (TestRingBalance pins <60%, the fleet test's bound)
// while keeping ring construction and lookup cheap.
const VirtualNodes = 128

// NewRing builds a ring over the member names, in order. Member indices
// returned by Owner/Owners index this slice.
func NewRing(members []string) *Ring {
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*VirtualNodes),
	}
	for i, m := range members {
		for v := 0; v < VirtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "|" + strconv.Itoa(v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// ringHash is FNV-1a 64 followed by a murmur3-style 64-bit finalizer:
// dependency-free and stable across processes and architectures (no
// per-process seed), which Owner's cross-client determinism depends
// on. The finalizer matters: raw FNV of the vnode strings — one member
// prefix with sequential "|0".."|127" suffixes — leaves correlated,
// clustered ring positions (measured max member share up to ~86% of a
// 3-member keyspace over random member names); full avalanche brings
// the worst case under ~50% (TestRingBalanceAcrossMemberNames).
// The FNV loop is written out so hashing a key neither boxes a
// hash.Hash64 nor copies the key to []byte.
//
//daelint:hotpath
func ringHash(s string) uint64 {
	x := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= 1099511628211 // FNV-1a prime
	}
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member names backing indices.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the member index owning key, or -1 on an empty ring.
// Every cache lookup the fleet client makes routes through here, so it
// is a hand-written binary search rather than Owners(key, 1): no owner
// slice, no seen bitmap, no sort.Search closure.
//
//daelint:hotpath
func (r *Ring) Owner(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := ringHash(key)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap: key hashes past the last point
	}
	return r.points[lo].member
}

// Owners returns up to n distinct member indices in ring order starting
// from key's position: Owners(key, 1)[0] is the primary owner, and the
// rest are the failover sequence — the members that inherit the key's
// arc when the ones before them leave the ring, so retrying a down
// replica's keys on the next owner lands exactly where a ring without
// that replica would have routed them (rendezvous fallback).
func (r *Ring) Owners(key string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]int, 0, n)
	seen := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			owners = append(owners, p.member)
		}
	}
	return owners
}
