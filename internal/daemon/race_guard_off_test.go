//go:build !race

package daemon

// raceEnabled is false in normal builds; see race_guard_on_test.go.
const raceEnabled = false
