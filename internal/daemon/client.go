package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/machine"
	"daesim/internal/sweep"
)

// Client talks to a running sweepd. Its Run method has the shape
// experiments.Context.Remote (and, bound to one workload,
// sweep.Runner.Remote) expects, so attaching a Client routes every
// cacheable simulation of a local sweep through the daemon's shared
// cache; repro -remote is exactly that wiring. Every request pins the
// client's engine.Version (and, through the Remote path, the local
// suite fingerprint), so a version-skewed daemon refuses with 409
// instead of answering with results from a different build. A Client
// is safe for concurrent use.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTP is the underlying client. The default applies a generous
	// overall timeout (15 minutes — cold sweeps of large point sets are
	// legitimately slow) so a wedged daemon eventually fails the run
	// loudly rather than hanging it forever; replace it to tune.
	HTTP *http.Client
	// Policy optionally pins a non-default partition policy for the
	// suites remote runs execute against ("classic" when empty).
	Policy string
}

// defaultHTTPClient bounds requests to a daemon that accepted the
// connection but never answers (wedged, SIGSTOPped, or drowning in a
// concurrency-limit queue).
var defaultHTTPClient = &http.Client{Timeout: 15 * time.Minute}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// httpClient resolves the transport to use.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// post sends req to path and decodes the 200 body into resp; non-2xx
// replies become errors carrying the daemon's message. ctx cancels the
// request in flight (nil is tolerated for robustness and means
// background).
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("daemon client: encoding %s request: %w", path, err)
	}
	if ctx == nil {
		ctx = context.Background() //daelint:ctxflow-ok nil ctx is documented to mean background
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("daemon client: %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	r, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("daemon client: %s: %w", path, err)
	}
	defer r.Body.Close()
	return c.decodeReply(path, r, resp)
}

// get fetches path and decodes the 200 body into resp.
func (c *Client) get(ctx context.Context, path string, resp any) error {
	if ctx == nil {
		ctx = context.Background() //daelint:ctxflow-ok nil ctx is documented to mean background
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("daemon client: %s: %w", path, err)
	}
	r, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("daemon client: %s: %w", path, err)
	}
	defer r.Body.Close()
	return c.decodeReply(path, r, resp)
}

// StatusError is a non-2xx daemon reply. It keeps the HTTP status
// machine-readable so a fleet client can tell refusals that would repeat
// on every replica (4xx bad requests, 409 skew) from per-replica
// failures worth retrying elsewhere (5xx, and transport errors, which
// are not StatusErrors at all).
type StatusError struct {
	Code int
	Msg  string
	// Draining marks a 503 from a replica that is shutting down
	// cleanly (the DrainingHeader was set): the fleet client reroutes
	// the work without charging the replica a failure — draining is
	// orderly, not broken.
	Draining bool
}

func (e *StatusError) Error() string { return fmt.Sprintf("%s (HTTP %d)", e.Msg, e.Code) }

// Retryable reports whether the same request could succeed on a
// different replica: server-side failures may be local to the replica
// (dying, overloaded), while 4xx/409 refusals are about the request or
// the build and would repeat everywhere.
func (e *StatusError) Retryable() bool { return e.Code >= 500 }

// decodeReply maps a response to resp or to the daemon's error.
func (c *Client) decodeReply(path string, r *http.Response, resp any) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("daemon client: reading %s reply: %w", path, err)
	}
	if r.StatusCode != http.StatusOK {
		draining := r.Header.Get(DrainingHeader) == DrainingValue
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("daemon client: %s: %w", path, &StatusError{Code: r.StatusCode, Msg: e.Error, Draining: draining})
		}
		return fmt.Errorf("daemon client: %s: %w", path, &StatusError{Code: r.StatusCode, Msg: string(bytes.TrimSpace(data)), Draining: draining})
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("daemon client: decoding %s reply: %w", path, err)
	}
	return nil
}

// target builds the request target for a workload and scale, pinned to
// this build's engine version (and the suite fingerprint when known).
func (c *Client) target(workload string, scale int, fingerprint string) Target {
	return Target{
		Workload: workload, Scale: scale, Policy: c.Policy,
		EngineVersion: engine.Version, Fingerprint: fingerprint,
	}
}

// Run executes one point on the daemon. The signature matches
// experiments.Context.Remote: fingerprint, when non-empty, is the
// local suite's content hash (machine.Suite.Fingerprint), which the
// daemon must match or refuse — pass "" to skip the content check.
func (c *Client) Run(ctx context.Context, workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
	wp, err := ToPoint(pt)
	if err != nil {
		return nil, err
	}
	var resp RunResponse
	if err := c.post(ctx, "/v1/run", RunRequest{Target: c.target(workload, scale, fingerprint), Point: wp}, &resp); err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("daemon client: /v1/run returned no result: %w", ErrMalformedReply)
	}
	return resp.Result, nil
}

// Sweep executes a batch of points on the daemon; Results[i] answers
// pts[i].
func (c *Client) Sweep(ctx context.Context, workload string, scale int, pts []sweep.Point) ([]*engine.Result, error) {
	wire := make([]Point, len(pts))
	for i, pt := range pts {
		wp, err := ToPoint(pt)
		if err != nil {
			return nil, fmt.Errorf("daemon client: point %d: %w", i, err)
		}
		wire[i] = wp
	}
	var resp SweepResponse
	if err := c.post(ctx, "/v1/sweep", SweepRequest{Target: c.target(workload, scale, ""), Points: wire}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(pts) {
		return nil, fmt.Errorf("daemon client: /v1/sweep returned %d results for %d points: %w", len(resp.Results), len(pts), ErrMalformedReply)
	}
	return resp.Results, nil
}

// BatchRun executes run requests — each carrying its own target — in
// MaxBatchItems-sized round trips (one for any realistically sized
// batch; the server 400s oversized requests with a non-retryable
// refusal, so the split must happen here, where sweeps of any size
// funnel through). Results[i] answers items[i].
func (c *Client) BatchRun(ctx context.Context, items []RunRequest) ([]*engine.Result, error) {
	out := make([]*engine.Result, 0, len(items))
	for start := 0; start < len(items); start += MaxBatchItems {
		end := start + MaxBatchItems
		if end > len(items) {
			end = len(items)
		}
		chunk := items[start:end]
		var resp BatchRunResponse
		if err := c.post(ctx, "/v1/batch/run", BatchRunRequest{Items: chunk}, &resp); err != nil {
			return nil, err
		}
		if len(resp.Results) != len(chunk) {
			return nil, fmt.Errorf("daemon client: /v1/batch/run returned %d results for %d items: %w", len(resp.Results), len(chunk), ErrMalformedReply)
		}
		for i, r := range resp.Results {
			if r == nil {
				// A null element would otherwise settle into the caller's L1
				// and store as a poisoned entry and crash the first reader.
				return nil, fmt.Errorf("daemon client: /v1/batch/run returned a null result for item %d: %w", start+i, ErrMalformedReply)
			}
		}
		out = append(out, resp.Results...)
	}
	return out, nil
}

// BatchSearch executes searches server-side in MaxBatchItems-sized
// round trips; Results[i] answers items[i]. Each item's Target must be
// set by the caller (use Client.Search for the single pinned-target
// case).
func (c *Client) BatchSearch(ctx context.Context, items []SearchRequest) ([]SearchResponse, error) {
	out := make([]SearchResponse, 0, len(items))
	for start := 0; start < len(items); start += MaxBatchItems {
		end := start + MaxBatchItems
		if end > len(items) {
			end = len(items)
		}
		chunk := items[start:end]
		var resp BatchSearchResponse
		if err := c.post(ctx, "/v1/batch/search", BatchSearchRequest{Items: chunk}, &resp); err != nil {
			return nil, err
		}
		if len(resp.Results) != len(chunk) {
			return nil, fmt.Errorf("daemon client: /v1/batch/search returned %d results for %d items: %w", len(resp.Results), len(chunk), ErrMalformedReply)
		}
		out = append(out, resp.Results...)
	}
	return out, nil
}

// RunBatch executes a batch of points against one suite in a single
// round trip. The signature matches experiments.Context.RemoteBatch
// (and, bound to one workload, sweep.Runner.RemoteBatch), so attaching
// it lets a local sweep or search submit a whole probe wave as one
// request instead of one per point — the request-count collapse behind
// repro -remote's batched mode (DESIGN.md §11).
func (c *Client) RunBatch(ctx context.Context, workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error) {
	target := c.target(workload, scale, fingerprint)
	items := make([]RunRequest, len(pts))
	for i, pt := range pts {
		wp, err := ToPoint(pt)
		if err != nil {
			return nil, fmt.Errorf("daemon client: point %d: %w", i, err)
		}
		items[i] = RunRequest{Target: target, Point: wp}
	}
	return c.BatchRun(ctx, items)
}

// RatioBatch executes one curve of equivalent-window ratio searches
// server-side, in a single round trip. The signature matches
// experiments.Context.RemoteSearch: attaching it lets Figures 7-9 cost
// a few requests per figure instead of several per ratio point, with
// answers identical to the local search by construction (the probe
// path is a fixed function of its inputs — metrics.Search).
func (c *Client) RatioBatch(ctx context.Context, workload string, scale int, fingerprint string, params []machine.Params) ([]experiments.RatioAnswer, error) {
	items := make([]SearchRequest, len(params))
	for i, p := range params {
		wp, err := ToParams(p)
		if err != nil {
			return nil, fmt.Errorf("daemon client: ratio point %d: %w", i, err)
		}
		items[i] = SearchRequest{Target: c.target(workload, scale, fingerprint), Op: SearchRatio, Params: wp}
	}
	resp, err := c.BatchSearch(ctx, items)
	if err != nil {
		return nil, err
	}
	answers := make([]experiments.RatioAnswer, len(resp))
	for i, r := range resp {
		answers[i] = experiments.RatioAnswer{Ratio: r.Ratio, OK: r.OK}
	}
	return answers, nil
}

// Search runs one equivalent-window search on the daemon.
func (c *Client) Search(ctx context.Context, workload string, scale int, req SearchRequest) (SearchResponse, error) {
	req.Target = c.target(workload, scale, "")
	var resp SearchResponse
	err := c.post(ctx, "/v1/search", req, &resp)
	return resp, err
}

// CacheStats fetches the daemon's cache counters.
func (c *Client) CacheStats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.get(ctx, "/v1/cache/stats", &resp)
	return resp, err
}

// GC asks the daemon to trim its store to the policy's bounds.
func (c *Client) GC(ctx context.Context, pol sweep.GCPolicy) (sweep.GCResult, error) {
	req := GCRequest{MaxEntries: pol.MaxEntries, MaxBytes: pol.MaxBytes}
	if pol.MaxAge > 0 {
		req.MaxAge = pol.MaxAge.String()
	}
	var resp sweep.GCResult
	err := c.post(ctx, "/v1/cache/gc", req, &resp)
	return resp, err
}

// Health checks the daemon's liveness endpoint and that its engine
// build matches this client's, so version skew surfaces at attach time
// rather than per request.
func (c *Client) Health(ctx context.Context) error {
	var resp HealthResponse
	if err := c.get(ctx, "/healthz", &resp); err != nil {
		return err
	}
	if resp.Status != "ok" {
		return fmt.Errorf("daemon client: health status %q: %w", resp.Status, ErrFleetUnhealthy)
	}
	if resp.EngineVersion != "" && resp.EngineVersion != engine.Version {
		return fmt.Errorf("daemon client: engine version skew: daemon runs %s, this build is %s (restart sweepd from this build): %w", resp.EngineVersion, engine.Version, ErrFleetUnhealthy)
	}
	return nil
}

// WaitHealthy polls /healthz until the daemon answers or the deadline
// passes — the startup handshake for scripts and tests that just
// launched a sweepd.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var err error
	for {
		if err = c.Health(ctx); err == nil {
			return nil
		}
		// A cancelled caller must stop retrying: Health fails fast on a
		// dead context, and without this check the loop would spin on
		// that error until the deadline.
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon client: not healthy after %s: %w", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
