// Package daemon implements sweepd, the long-lived simulation service:
// the HTTP/JSON wire protocol shared by server and client, the Server
// that owns per-workload memoizing runners (single-flight L1) over one
// shared persistent sweep.Store (L2), and the thin Client that lets a
// local sweep — repro -remote, or any sweep.Runner with its Remote hook
// set — route cacheable simulations through a running daemon instead of
// simulating locally.
//
// Endpoints (DESIGN.md §10 documents the full schemas):
//
//	POST /v1/run          one (workload, machine, params) point → Result
//	POST /v1/sweep        a batch of points, sharded across the pool
//	POST /v1/search       equivalent-window / ratio / crossover searches
//	POST /v1/batch/run    many run requests (own targets) in one round trip
//	POST /v1/batch/search many searches, fanned across the pool
//	GET  /v1/cache/stats  runner + store cache counters
//	POST /v1/cache/gc     trim the persistent store to given bounds
//	GET  /healthz         liveness (never throttled by the request limit)
//
// Fleet mode shards keys across several daemons with the consistent-hash
// Ring and FleetClient (DESIGN.md §11).
package daemon

import (
	"fmt"

	"daesim/internal/engine"
	"daesim/internal/machine"
	"daesim/internal/partition"
	"daesim/internal/sweep"
)

// Params is the wire form of machine.Params. Every simulation-visible
// field crosses the wire explicitly except Mem: a custom MemModel is
// arbitrary local code with no serialized identity, so points carrying
// one are not remotable (they are also the points sweep.Runner never
// routes through its Remote hook). TestWireParamsCoverMachineParams
// pins the field count against machine.Params, so adding a parameter
// without extending the protocol fails the build gate.
type Params struct {
	Window        int    `json:"window,omitempty"`
	AUWindow      int    `json:"au_window,omitempty"`
	DUWindow      int    `json:"du_window,omitempty"`
	MD            int    `json:"md,omitempty"`
	FPLat         int    `json:"fp_lat,omitempty"`
	CopyLat       int    `json:"copy_lat,omitempty"`
	AUWidth       int    `json:"au_width,omitempty"`
	DUWidth       int    `json:"du_width,omitempty"`
	Width         int    `json:"width,omitempty"`
	DispatchWidth int    `json:"dispatch_width,omitempty"`
	MemQueue      int    `json:"mem_queue,omitempty"`
	CollectESW    bool   `json:"collect_esw,omitempty"`
	HoldSendSlots bool   `json:"hold_send_slots,omitempty"`
	Retire        string `json:"retire,omitempty"` // "", "auto", "at-complete", "in-order"
}

// ToParams converts machine parameters to their wire form. It fails on
// points carrying a custom Params.Mem (not remotable, see Params).
func ToParams(p machine.Params) (Params, error) {
	if p.Mem != nil {
		return Params{}, fmt.Errorf("daemon: points with a custom memory model cannot be simulated remotely")
	}
	retire := ""
	if p.Retire != machine.RetireAuto {
		retire = p.Retire.String()
	}
	return Params{
		Window: p.Window, AUWindow: p.AUWindow, DUWindow: p.DUWindow,
		MD: p.MD, FPLat: p.FPLat, CopyLat: p.CopyLat,
		AUWidth: p.AUWidth, DUWidth: p.DUWidth, Width: p.Width,
		DispatchWidth: p.DispatchWidth, MemQueue: p.MemQueue,
		CollectESW: p.CollectESW, HoldSendSlots: p.HoldSendSlots,
		Retire: retire,
	}, nil
}

// Machine converts wire parameters back to machine.Params.
func (w Params) Machine() (machine.Params, error) {
	p := machine.Params{
		Window: w.Window, AUWindow: w.AUWindow, DUWindow: w.DUWindow,
		MD: w.MD, FPLat: w.FPLat, CopyLat: w.CopyLat,
		AUWidth: w.AUWidth, DUWidth: w.DUWidth, Width: w.Width,
		DispatchWidth: w.DispatchWidth, MemQueue: w.MemQueue,
		CollectESW: w.CollectESW, HoldSendSlots: w.HoldSendSlots,
	}
	switch w.Retire {
	case "", "auto":
		p.Retire = machine.RetireAuto
	case "at-complete":
		p.Retire = machine.RetireAtComplete
	case "in-order":
		p.Retire = machine.RetireInOrder
	default:
		return p, fmt.Errorf("daemon: unknown retire policy %q (want auto, at-complete, in-order)", w.Retire)
	}
	return p, nil
}

// Point is the wire form of sweep.Point.
type Point struct {
	Kind   string `json:"kind"` // "DM" or "SWSM"
	Params Params `json:"params"`
}

// ToPoint converts a sweep point to its wire form.
func ToPoint(pt sweep.Point) (Point, error) {
	wp, err := ToParams(pt.P)
	if err != nil {
		return Point{}, err
	}
	return Point{Kind: pt.Kind.String(), Params: wp}, nil
}

// Sweep converts a wire point back to a sweep.Point.
func (w Point) Sweep() (sweep.Point, error) {
	kind, err := ParseKind(w.Kind)
	if err != nil {
		return sweep.Point{}, err
	}
	p, err := w.Params.Machine()
	if err != nil {
		return sweep.Point{}, err
	}
	return sweep.Point{Kind: kind, P: p}, nil
}

// ParseKind parses a machine kind name as printed by machine.Kind.String.
func ParseKind(s string) (machine.Kind, error) {
	switch s {
	case "DM":
		return machine.DM, nil
	case "SWSM":
		return machine.SWSM, nil
	default:
		return 0, fmt.Errorf("daemon: unknown machine kind %q (want DM or SWSM)", s)
	}
}

// ParsePolicy parses a partition policy name as printed by
// partition.Policy.String; empty means the default classic partition.
func ParsePolicy(s string) (partition.Policy, error) {
	switch s {
	case "", "classic":
		return partition.Classic, nil
	case "slice-only":
		return partition.SliceOnly, nil
	case "balance":
		return partition.Balance, nil
	default:
		return 0, fmt.Errorf("daemon: unknown partition policy %q (want classic, slice-only, balance)", s)
	}
}

// Target identifies the suite a request runs against: a workload at a
// scale under a partition policy. The zero values mean scale 1 and the
// classic partition.
//
// EngineVersion and Fingerprint, when set, make the daemon refuse
// (HTTP 409) to answer from a skewed build: a daemon left running
// across an engine-semantics bump or a workload recalibration would
// otherwise return results the client's own cache keys could never
// produce — and the client would install them into its local store
// under its own version key, poisoning exactly the entries the §9 key
// scheme exists to invalidate. The Client always sends its linked
// engine.Version; sweeps routed through sweep.Runner.Remote also send
// the local suite's content fingerprint.
type Target struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale,omitempty"`
	Policy   string `json:"policy,omitempty"`
	// EngineVersion, when non-empty, must equal the daemon's
	// engine.Version.
	EngineVersion string `json:"engine_version,omitempty"`
	// Fingerprint, when non-empty, must equal the daemon suite's
	// machine.Suite.Fingerprint().
	Fingerprint string `json:"fingerprint,omitempty"`
}

// RunRequest is the POST /v1/run body: one simulation point.
type RunRequest struct {
	Target
	Point
}

// RunResponse is the POST /v1/run reply.
type RunResponse struct {
	Result *engine.Result `json:"result"`
}

// SweepRequest is the POST /v1/sweep body: a batch of points against one
// suite, executed by the daemon's bounded worker pool with the same
// memoization as any local sweep.
type SweepRequest struct {
	Target
	Points []Point `json:"points"`
}

// SweepResponse is the POST /v1/sweep reply; Results[i] answers
// Points[i].
type SweepResponse struct {
	Results []*engine.Result `json:"results"`
}

// Search operations for SearchRequest.Op.
const (
	// SearchWindow finds the smallest SWSM window meeting Target cycles
	// (metrics.Search.EquivalentWindow).
	SearchWindow = "window"
	// SearchRatio runs the DM at the given params and reports the
	// equivalent-window ratio of Figures 7-9.
	SearchRatio = "ratio"
	// SearchCrossover scans Windows for the first SWSM-wins window.
	SearchCrossover = "crossover"
)

// SearchRequest is the POST /v1/search body: an equivalent-window search
// against one suite, probed through the daemon's shared cache.
type SearchRequest struct {
	Target
	// Op selects the search: SearchWindow, SearchRatio or SearchCrossover.
	Op string `json:"op"`
	// Params configures the probes; Params.Window is the DM window for
	// ratio searches and the bracket hint for window searches.
	Params Params `json:"params"`
	// TargetCycles is the time to match (SearchWindow only).
	TargetCycles int64 `json:"target_cycles,omitempty"`
	// Windows is the ascending scan grid (SearchCrossover only).
	Windows []int `json:"windows,omitempty"`
}

// SearchResponse is the POST /v1/search reply. OK is false when the
// search saturated (no window within metrics.MaxEquivalentWindow, or no
// crossover in the grid).
type SearchResponse struct {
	Window int     `json:"window,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`
	OK     bool    `json:"ok"`
}

// MaxBatchItems caps the item count of /v1/batch/run and
// /v1/batch/search requests. Larger batches are refused with 400 — a
// probe wave or sweep shard legitimately reaches a few thousand points,
// but an unbounded batch is indistinguishable from a decoder bomb (the
// body size limit alone would still admit millions of tiny items).
const MaxBatchItems = 4096

// BatchRunRequest is the POST /v1/batch/run body: up to MaxBatchItems
// independent run requests answered in one round trip. Items carry
// their own targets, so one request may span workloads and scales —
// a fleet replica receives whatever slice of a cross-workload sweep
// (Table1's global point list, a search's probe wave) the ring routed
// to it, batched by the client into a single round trip.
type BatchRunRequest struct {
	Items []RunRequest `json:"items"`
}

// BatchRunResponse is the POST /v1/batch/run reply; Results[i] answers
// Items[i]. The batch is all-or-nothing: any invalid item fails the
// whole request (400/409) before anything simulates, matching the
// loud-failure contract of the point-wise endpoints.
type BatchRunResponse struct {
	Results []*engine.Result `json:"results"`
}

// BatchSearchRequest is the POST /v1/batch/search body: up to
// MaxBatchItems searches executed server-side, fanned across the
// daemon's pool, answered in one round trip.
type BatchSearchRequest struct {
	Items []SearchRequest `json:"items"`
}

// BatchSearchResponse is the POST /v1/batch/search reply; Results[i]
// answers Items[i].
type BatchSearchResponse struct {
	Results []SearchResponse `json:"results"`
}

// GCRequest is the POST /v1/cache/gc body; zero fields are unbounded,
// matching sweep.GCPolicy. MaxAge uses time.Duration syntax ("24h").
type GCRequest struct {
	MaxEntries int    `json:"max_entries,omitempty"`
	MaxBytes   int64  `json:"max_bytes,omitempty"`
	MaxAge     string `json:"max_age,omitempty"`
}

// StatsResponse is the GET /v1/cache/stats reply.
type StatsResponse struct {
	// Runner aggregates cache traffic across every runner the daemon has
	// built; HitRate is its composite hit rate.
	Runner  sweep.CacheStats `json:"runner"`
	HitRate float64          `json:"hit_rate"`
	// Store is the persistent layer's counters and StoreEntries its
	// current on-disk entry count (zero values when no store is attached).
	Store        sweep.StoreStats `json:"store"`
	StoreEntries int              `json:"store_entries"`
	// UptimeSeconds and the request counters describe the serving
	// process. Requests counts admitted work — simulation requests that
	// made it past the draining gate and the admission semaphore (the
	// number the CI smokes assert on); Received counts every arrival at
	// a throttled endpoint, Refused the draining 503s, and QueueTimeouts
	// the requests whose deadline expired while queued for a slot, so
	// Received = Requests + Refused + QueueTimeouts + currently queued.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Received      int64   `json:"received"`
	Refused       int64   `json:"refused"`
	QueueTimeouts int64   `json:"queue_timeouts"`
}

// DrainingHeader marks 503 refusals from a daemon in graceful
// shutdown (Server.BeginDrain); DrainingValue is both its value and
// the /healthz status of a draining daemon. Fleet clients treat the
// marker as "stop routing here, nothing is wrong": the work reroutes
// without a breaker penalty or a backoff round, because a clean drain
// is operational hygiene, not a failure.
const (
	DrainingHeader = "X-Sweepd-State"
	DrainingValue  = "draining"
)

// HealthResponse is the GET /healthz reply. Status is "ok", or
// "draining" while the daemon winds down (routable probes should treat
// draining as not-ready). EngineVersion lets clients and probes detect
// a version-skewed daemon before routing work to it (Client.Health
// checks it). ReplicaID and Fleet, set when sweepd runs with
// -replica/-fleet, advertise the daemon's view of the ring so a fleet
// client can detect membership skew — a client and a replica
// disagreeing on the member list would route keys to different owners,
// silently splitting the cache — before any work routes (checked by
// FleetClient.Health).
type HealthResponse struct {
	Status        string   `json:"status"`
	EngineVersion string   `json:"engine_version"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	ReplicaID     string   `json:"replica_id,omitempty"`
	Fleet         []string `json:"fleet,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
