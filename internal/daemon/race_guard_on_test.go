//go:build race

package daemon

// raceEnabled mirrors internal/engine's race guard: the full-figure
// chaos soaks multiply simulation work past what the race detector's
// ~10x slowdown tolerates in CI, so they skip under -race (the race
// job still runs every unit-level breaker, scatter and replay test).
const raceEnabled = true
