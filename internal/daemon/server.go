package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/obsv"
	"daesim/internal/partition"
	"daesim/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the shared persistent result cache (L2) behind every
	// runner the daemon builds; nil serves from memory only.
	Store *sweep.Store
	// Parallelism caps each runner's worker pool and search fan-out
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxConcurrent bounds simultaneously-executing simulation requests
	// (run/sweep/search); excess requests queue until a slot frees or
	// their timeout expires. 0 = unlimited.
	MaxConcurrent int
	// RequestTimeout bounds each simulation request end to end, queue
	// wait included; expired requests get 503. The underlying
	// simulations are not cancellable mid-run — they complete and warm
	// the cache for the retry. 0 = no timeout.
	RequestTimeout time.Duration
	// GCPolicy and GCInterval configure the background store GC ticker
	// (GCLoop); GC also remains available on demand via POST
	// /v1/cache/gc. A zero interval or unbounded policy disables the
	// ticker.
	GCPolicy   sweep.GCPolicy
	GCInterval time.Duration
	// Log receives request and GC log lines; nil discards them.
	Log *log.Logger
	// ReplicaID and Fleet, when set, advertise this daemon's identity and
	// its view of the fleet membership in /healthz, so fleet clients can
	// refuse a replica whose ring disagrees with theirs (sweepd -replica
	// and -fleet; see HealthResponse).
	ReplicaID string
	Fleet     []string
	// DisableMetrics leaves GET /metrics off the handler (sweepd
	// -metrics=false). The registry still exists and the request
	// accounting still runs — only the scrape endpoint is withheld.
	DisableMetrics bool
}

// Server is the long-lived sweep daemon: one single-flight memoizing
// runner per (workload, scale, policy), all sharing Config.Store, behind
// the HTTP API of Handler. Create with NewServer.
type Server struct {
	cfg   Config
	start time.Time
	sem   chan struct{} // nil when MaxConcurrent == 0

	mu       sync.Mutex
	contexts map[suiteKey]*experiments.Context //daelint:guardedby mu

	// Request accounting. received counts every arrival at a throttled
	// endpoint; requests counts only admitted work (it keeps the
	// long-standing "requests" name in StatsResponse — before this split
	// it was incremented ahead of the draining check and the semaphore,
	// so refusals and queue timeouts inflated the served-work stat the
	// CI smokes assert on). refused counts draining 503s and
	// queueTimeouts counts requests whose context expired while waiting
	// for an admission slot. queued is the live queue depth.
	received      atomic.Int64
	requests      atomic.Int64
	refused       atomic.Int64
	queueTimeouts atomic.Int64
	queued        atomic.Int64

	draining atomic.Bool

	metrics       *obsv.Registry
	admissionWait *obsv.Histogram
}

// suiteKey identifies one experiments.Context: runners are cached per
// workload inside a context, and contexts per (scale, policy) here.
type suiteKey struct {
	scale  int
	policy partition.Policy
}

// NewServer returns a Server for the config.
func NewServer(cfg Config) *Server {
	s := &Server{cfg: cfg, start: time.Now(), contexts: make(map[suiteKey]*experiments.Context)}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	s.metrics = obsv.NewRegistry()
	s.registerMetrics()
	return s
}

// Metrics returns the server's registry, for tests and for callers that
// want to co-register their own series (sweepd registers the fleet
// client's ladder on the same registry when proxying).
func (s *Server) Metrics() *obsv.Registry { return s.metrics }

// registerMetrics wires the server's accounting and its runners' cache
// counters into the scrape registry. Everything is func-backed: the
// atomic counters stay the single source of truth and /metrics reads
// them at scrape time, so StatsResponse and the exposition cannot
// drift (pinned by TestMetricsParity).
func (s *Server) registerMetrics() {
	r := s.metrics
	r.CounterFunc("daesim_requests_received_total", "simulation requests arriving at throttled endpoints, including refusals",
		func() float64 { return float64(s.received.Load()) })
	r.CounterFunc("daesim_requests_admitted_total", "simulation requests admitted past draining and the admission semaphore",
		func() float64 { return float64(s.requests.Load()) })
	r.CounterFunc("daesim_requests_refused_total", "simulation requests refused with 503 because the daemon is draining",
		func() float64 { return float64(s.refused.Load()) })
	r.CounterFunc("daesim_requests_queue_timeouts_total", "simulation requests whose context expired while queued for an admission slot",
		func() float64 { return float64(s.queueTimeouts.Load()) })
	r.GaugeFunc("daesim_admission_queue_depth", "requests currently waiting for an admission-semaphore slot",
		func() float64 { return float64(s.queued.Load()) })
	s.admissionWait = r.Histogram("daesim_admission_wait_seconds", "time spent waiting for an admission-semaphore slot", obsv.LatencyBuckets)
	r.GaugeFunc("daesim_uptime_seconds", "seconds since the daemon started",
		func() float64 { return time.Since(s.start).Seconds() })
	InstrumentCacheStats(r, s.runnerStats)
	if st := s.cfg.Store; st != nil {
		InstrumentStore(r, st)
	}
}

// statusWriter records the response status for the endpoint error
// counters; an unset status means an implicit 200 from the first Write.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with per-endpoint request, error and latency
// metrics. It sits outside throttle and the timeout handler so queue
// wait and timeout 503s are part of the observed latency and error
// counts — the client's view, not the handler's.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	reqs := s.metrics.Counter("daesim_http_requests_total", "HTTP requests by endpoint", obsv.L("endpoint", endpoint))
	lat := s.metrics.Histogram("daesim_http_request_seconds", "HTTP request latency by endpoint", obsv.LatencyBuckets, obsv.L("endpoint", endpoint))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		reqs.Inc()
		lat.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			s.metrics.Counter("daesim_http_errors_total", "HTTP error responses by endpoint and status code",
				obsv.L("endpoint", endpoint), obsv.L("code", fmt.Sprintf("%d", sw.status))).Inc()
		}
	})
}

// handleMetrics serves the Prometheus text exposition (GET /metrics).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// logf writes one log line when a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// contextFor returns (building on first use) the experiment context for
// a scale and policy. Contexts hold the per-workload runners; all share
// the daemon's store, so entries written at one scale never collide
// with another — the suite fingerprint in the key separates them.
func (s *Server) contextFor(scale int, pol partition.Policy) *experiments.Context {
	if scale <= 0 {
		scale = 1
	}
	k := suiteKey{scale: scale, policy: pol}
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, ok := s.contexts[k]
	if !ok {
		ctx = experiments.NewContext()
		ctx.Scale = scale
		ctx.Policy = pol
		ctx.Parallelism = s.cfg.Parallelism
		ctx.Cache = s.cfg.Store
		s.contexts[k] = ctx
	}
	return ctx
}

// skewError is a Target version/fingerprint mismatch; handlers map it
// to HTTP 409 so clients can tell "wrong build" from "bad request".
type skewError struct{ msg string }

func (e *skewError) Error() string { return e.msg }

// runnerFor resolves a request target to its memoizing runner,
// enforcing the Target's skew guards: a request pinned to a different
// engine version or workload content than this daemon's build is
// refused rather than answered with results the client could never
// have produced itself.
func (s *Server) runnerFor(t Target) (*sweep.Runner, error) {
	if t.EngineVersion != "" && t.EngineVersion != engine.Version {
		return nil, &skewError{fmt.Sprintf("daemon: engine version skew: daemon runs %s, client expects %s (rebuild or restart sweepd)", engine.Version, t.EngineVersion)}
	}
	pol, err := ParsePolicy(t.Policy)
	if err != nil {
		return nil, err
	}
	r, err := s.contextFor(t.Scale, pol).Runner(t.Workload)
	if err != nil {
		return nil, err
	}
	if t.Fingerprint != "" && t.Fingerprint != r.Suite.Fingerprint() {
		return nil, &skewError{fmt.Sprintf("daemon: workload content skew for %s (scale %d, policy %s): daemon and client builds lower different programs (recalibrated workloads?); restart sweepd from the client's build", t.Workload, t.Scale, pol)}
	}
	return r, nil
}

// targetStatus maps a runnerFor error to its HTTP status.
func targetStatus(err error) int {
	var skew *skewError
	if errors.As(err, &skew) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// Handler returns the daemon's HTTP handler. Simulation endpoints
// (run/sweep/search) pass through the concurrency limiter and the
// per-request timeout; health and cache management stay unthrottled so
// liveness probes and operators are never starved by a sweep burst.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /v1/cache/stats", s.instrument("cache_stats", http.HandlerFunc(s.handleCacheStats)))
	mux.Handle("POST /v1/cache/gc", s.instrument("cache_gc", http.HandlerFunc(s.handleCacheGC)))
	mux.Handle("POST /v1/run", s.instrument("run", s.throttle(s.handleRun)))
	mux.Handle("POST /v1/sweep", s.instrument("sweep", s.throttle(s.handleSweep)))
	mux.Handle("POST /v1/search", s.instrument("search", s.throttle(s.handleSearch)))
	mux.Handle("POST /v1/batch/run", s.instrument("batch_run", s.throttle(s.handleBatchRun)))
	mux.Handle("POST /v1/batch/search", s.instrument("batch_search", s.throttle(s.handleBatchSearch)))
	if !s.cfg.DisableMetrics {
		// Deliberately outside instrument: a scraper polling /metrics
		// every few seconds would drown the request counters it reads.
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	return mux
}

// BeginDrain marks the daemon as draining: /healthz advertises
// "draining" and simulation endpoints refuse new work with 503 plus
// the DrainingHeader marker, so fleet clients reroute immediately and
// without charging a failure — distinct from dead. In-flight requests
// are unaffected; call this just before http.Server.Shutdown (with a
// short grace window so keep-alive clients observe the state rather
// than a closed listener — sweepd -drain-grace).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// throttle wraps a simulation handler with the admission semaphore and
// the request timeout. s.requests counts only work admitted past both
// gates — drain refusals and queue timeouts land in their own counters
// instead of inflating the served-work stat (they used to: the old code
// incremented before the draining check and the semaphore).
func (s *Server) throttle(h http.HandlerFunc) http.Handler {
	limited := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.received.Add(1)
		if s.draining.Load() {
			s.refused.Add(1)
			w.Header().Set(DrainingHeader, DrainingValue)
			writeError(w, http.StatusServiceUnavailable, errors.New("daemon: draining: not accepting new work"))
			return
		}
		if s.sem != nil {
			s.queued.Add(1)
			waitStart := time.Now()
			select {
			case s.sem <- struct{}{}:
				s.queued.Add(-1)
				s.admissionWait.Observe(time.Since(waitStart).Seconds())
				defer func() { <-s.sem }()
			case <-r.Context().Done():
				s.queued.Add(-1)
				s.queueTimeouts.Add(1)
				// The timeout handler (or the client) already gave up;
				// it owns the response.
				return
			}
		}
		s.requests.Add(1)
		h(w, r)
	})
	if s.cfg.RequestTimeout <= 0 {
		return limited
	}
	return http.TimeoutHandler(limited, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
}

// writeJSON writes v as the 200 response body. An encode failure at
// this point can only be a broken connection; there is no response left
// to amend.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// maxBodyBytes caps a request body; a body at or over the cap is
// refused by name rather than surfacing as a bare "unexpected EOF"
// from the truncating reader.
const maxBodyBytes = 16 << 20

// decode parses a JSON request body, rejecting unknown fields so a
// misspelled parameter fails loudly instead of silently simulating the
// default configuration, and rejecting trailing bytes after the
// document — a concatenated or truncated-then-resumed body is a
// malformed request, not a prefix to silently honor (the fuzz oracle
// pins invalid JSON to 400).
func decode(r *http.Request, v any) error {
	// One byte of headroom over the cap: the reader draining means the
	// body hit the limit, which is what the error should say.
	lr := &io.LimitedReader{R: r.Body, N: maxBodyBytes + 1}
	overLimit := func() bool { return lr.N <= 0 }
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if overLimit() {
			return fmt.Errorf("request body exceeds the %d MiB limit", maxBodyBytes>>20)
		}
		return err
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		if overLimit() {
			return fmt.Errorf("request body exceeds the %d MiB limit", maxBodyBytes>>20)
		}
		return fmt.Errorf("unexpected data after the JSON body")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = DrainingValue
	}
	writeJSON(w, HealthResponse{
		Status: status, EngineVersion: engine.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		ReplicaID:     s.cfg.ReplicaID, Fleet: s.cfg.Fleet,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad run request: %w", err))
		return
	}
	runner, err := s.runnerFor(req.Target)
	if err != nil {
		writeError(w, targetStatus(err), err)
		return
	}
	pt, err := req.Point.Sweep()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := runner.Run(pt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, RunResponse{Result: res})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad sweep request: %w", err))
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: sweep request has no points"))
		return
	}
	runner, err := s.runnerFor(req.Target)
	if err != nil {
		writeError(w, targetStatus(err), err)
		return
	}
	pts := make([]sweep.Point, len(req.Points))
	for i, wp := range req.Points {
		if pts[i], err = wp.Sweep(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: point %d: %w", i, err))
			return
		}
	}
	start := time.Now()
	results, err := runner.RunAll(pts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.logf("sweep %s scale=%d: %d points in %s", req.Workload, req.Scale, len(pts), time.Since(start).Round(time.Millisecond))
	writeJSON(w, SweepResponse{Results: results})
}

// prepSearch validates one search request: it resolves the runner and
// decodes the params, refusing malformed ops before anything simulates.
// A non-nil error carries the HTTP status to refuse with.
func (s *Server) prepSearch(req SearchRequest) (*sweep.Runner, machine.Params, int, error) {
	runner, err := s.runnerFor(req.Target)
	if err != nil {
		return nil, machine.Params{}, targetStatus(err), err
	}
	p, err := req.Params.Machine()
	if err != nil {
		return nil, machine.Params{}, http.StatusBadRequest, err
	}
	switch req.Op {
	case SearchWindow:
		if req.TargetCycles <= 0 {
			return nil, machine.Params{}, http.StatusBadRequest, fmt.Errorf("daemon: window search needs target_cycles > 0")
		}
	case SearchRatio, SearchCrossover:
		if req.Op == SearchCrossover && len(req.Windows) == 0 {
			return nil, machine.Params{}, http.StatusBadRequest, fmt.Errorf("daemon: crossover search needs a windows grid")
		}
	default:
		return nil, machine.Params{}, http.StatusBadRequest, fmt.Errorf("daemon: unknown search op %q (want %s, %s, %s)", req.Op, SearchWindow, SearchRatio, SearchCrossover)
	}
	return runner, p, 0, nil
}

// execSearch runs one validated search. Each call owns its Search (a
// Search parallelizes internally but is not safe for concurrent use);
// probes still share the runner's caches with every other request.
// searchPar, when positive, caps the Search's internal probe fan-out —
// batch execution splits the pool budget across concurrent searches so
// a batch never multiplies into Parallelism² workers. The cap cannot
// change the answer: the probe sequence is parallelism-independent
// (metrics.Search).
func execSearch(runner *sweep.Runner, p machine.Params, req SearchRequest, searchPar int) (SearchResponse, error) {
	search := metrics.NewSearch(runner)
	search.Parallelism = searchPar
	var resp SearchResponse
	var err error
	switch req.Op {
	case SearchWindow:
		resp.Window, resp.OK, err = search.EquivalentWindow(p, req.TargetCycles)
	case SearchRatio:
		resp.Ratio, resp.OK, err = search.EquivalentWindowRatio(p)
	case SearchCrossover:
		resp.Window, resp.OK, err = search.Crossover(p, req.Windows)
	}
	return resp, err
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad search request: %w", err))
		return
	}
	runner, p, status, err := s.prepSearch(req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	resp, err := execSearch(runner, p, req, 0)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, resp)
}

// checkBatchSize refuses empty and oversized batches with 400.
func checkBatchSize(w http.ResponseWriter, path string, n int) bool {
	switch {
	case n == 0:
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: %s batch has no items", path))
		return false
	case n > MaxBatchItems:
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: %s batch of %d items exceeds the %d-item limit; split it", path, n, MaxBatchItems))
		return false
	}
	return true
}

func (s *Server) handleBatchRun(w http.ResponseWriter, r *http.Request) {
	var req BatchRunRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad batch run request: %w", err))
		return
	}
	if !checkBatchSize(w, "run", len(req.Items)) {
		return
	}
	// Validate every item before simulating any: the batch is
	// all-or-nothing, so a malformed tail must not waste the head's work.
	runners := make([]*sweep.Runner, len(req.Items))
	pts := make([]sweep.Point, len(req.Items))
	for i, item := range req.Items {
		runner, err := s.runnerFor(item.Target)
		if err != nil {
			writeError(w, targetStatus(err), fmt.Errorf("daemon: batch item %d: %w", i, err))
			return
		}
		runners[i] = runner
		if pts[i], err = item.Point.Sweep(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: batch item %d: %w", i, err))
			return
		}
	}
	// Execute per runner through RunAll, so each group reuses the
	// runner's worker pool and per-worker scratches like a local sweep.
	start := time.Now()
	results := make([]*engine.Result, len(req.Items))
	var order []*sweep.Runner
	groups := make(map[*sweep.Runner][]int)
	for i, rn := range runners {
		if _, ok := groups[rn]; !ok {
			order = append(order, rn)
		}
		groups[rn] = append(groups[rn], i)
	}
	for _, rn := range order {
		idx := groups[rn]
		gp := make([]sweep.Point, len(idx))
		for j, i := range idx {
			gp[j] = pts[i]
		}
		res, err := rn.RunAll(gp)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		for j, i := range idx {
			results[i] = res[j]
		}
	}
	s.logf("batch run: %d items across %d suites in %s", len(req.Items), len(order), time.Since(start).Round(time.Millisecond))
	writeJSON(w, BatchRunResponse{Results: results})
}

func (s *Server) handleBatchSearch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad batch search request: %w", err))
		return
	}
	if !checkBatchSize(w, "search", len(req.Items)) {
		return
	}
	runners := make([]*sweep.Runner, len(req.Items))
	params := make([]machine.Params, len(req.Items))
	for i, item := range req.Items {
		runner, p, status, err := s.prepSearch(item)
		if err != nil {
			writeError(w, status, fmt.Errorf("daemon: batch item %d: %w", i, err))
			return
		}
		runners[i], params[i] = runner, p
	}
	// Independent searches fan out across the pool; each owns its
	// Search, and all probes coalesce in the runners' caches. The pool
	// budget is split between the two layers — par concurrent searches,
	// each with a slice of the pool for its probe waves (slightly
	// overcommitted, like experiments.RatioFigure) — so one batch never
	// multiplies into Parallelism² simulation workers.
	pool := s.cfg.Parallelism
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	par := pool
	if par > len(req.Items) {
		par = len(req.Items)
	}
	searchPar := 2 * pool / len(req.Items)
	if searchPar < 1 {
		searchPar = 1
	}
	start := time.Now()
	results := make([]SearchResponse, len(req.Items))
	errs := make([]error, len(req.Items))
	work := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = execSearch(runners[i], params[i], req.Items[i], searchPar)
			}
		}()
	}
	for i := range req.Items {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.logf("batch search: %d items in %s", len(req.Items), time.Since(start).Round(time.Millisecond))
	writeJSON(w, BatchSearchResponse{Results: results})
}

// runnerStats aggregates cache traffic across every runner the daemon
// has built (Stats and the scrape registry's runner counters read it).
func (s *Server) runnerStats() sweep.CacheStats {
	var total sweep.CacheStats
	s.mu.Lock()
	ctxs := make([]*experiments.Context, 0, len(s.contexts))
	for _, ctx := range s.contexts {
		ctxs = append(ctxs, ctx)
	}
	s.mu.Unlock()
	for _, ctx := range ctxs {
		total.Add(ctx.CacheStats())
	}
	return total
}

// Stats aggregates cache traffic across every runner the daemon has
// built (it also backs GET /v1/cache/stats).
func (s *Server) Stats() StatsResponse {
	total := s.runnerStats()
	resp := StatsResponse{
		Runner:        total,
		HitRate:       total.HitRate(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Received:      s.received.Load(),
		Refused:       s.refused.Load(),
		QueueTimeouts: s.queueTimeouts.Load(),
	}
	if s.cfg.Store != nil {
		resp.Store = s.cfg.Store.Stats()
		resp.StoreEntries = s.cfg.Store.Len()
	}
	return resp
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleCacheGC(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: no persistent store attached (start sweepd with -cache)"))
		return
	}
	var req GCRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad GC request: %w", err))
		return
	}
	if req.MaxEntries < 0 || req.MaxBytes < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: negative GC bound (max_entries=%d, max_bytes=%d); omit a bound to leave it unlimited", req.MaxEntries, req.MaxBytes))
		return
	}
	pol := sweep.GCPolicy{MaxEntries: req.MaxEntries, MaxBytes: req.MaxBytes}
	if req.MaxAge != "" {
		d, err := time.ParseDuration(req.MaxAge)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("daemon: bad max_age %q", req.MaxAge))
			return
		}
		pol.MaxAge = d
	}
	res, err := s.cfg.Store.GC(pol)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.logf("cache gc (%s): %s", pol, res)
	writeJSON(w, res)
}

// GCLoop trims the store on Config.GCInterval until ctx is cancelled.
// It returns immediately when the ticker is disabled (no store, no
// interval, or an unbounded policy).
func (s *Server) GCLoop(ctx context.Context) {
	if s.cfg.Store == nil || s.cfg.GCInterval <= 0 || !s.cfg.GCPolicy.Bounded() {
		return
	}
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			res, err := s.cfg.Store.GC(s.cfg.GCPolicy)
			if err != nil {
				s.logf("background gc failed: %v", err)
				continue
			}
			if res.Evicted > 0 {
				s.logf("background gc (%s): %s", s.cfg.GCPolicy, res)
			}
		}
	}
}
