package daemon

import (
	"reflect"

	"daesim/internal/obsv"
	"daesim/internal/sweep"
)

// This file is the bridge from the repo's existing stats snapshots
// (sweep.CacheStats, sweep.StoreStats, FleetMetrics) into the obsv
// scrape registry. Every bridge is a func-backed metric reading the
// snapshot at scrape time — the atomic counters stay the single source
// of truth, so /metrics and the JSON stats endpoints cannot drift.
//
// The spec tables below are keyed by snapshot FIELD NAME and read via
// reflection. That makes parity enforceable: TestMetricsParity reflects
// over each struct and fails when a field has no table entry, so a new
// counter cannot silently skip the exposition, and a misspelled field
// name here panics on first scrape rather than exporting zeros.

// metricSpec names one exposed metric for one snapshot field.
type metricSpec struct{ name, help string }

// cacheStatsMetrics maps every sweep.CacheStats field to its metric.
var cacheStatsMetrics = map[string]metricSpec{
	"L1Hits":         {"daesim_runner_l1_hits_total", "points served from the in-memory single-flight map"},
	"StoreHits":      {"daesim_runner_store_hits_total", "points loaded from the persistent store"},
	"RemoteHits":     {"daesim_runner_remote_hits_total", "points served by a remote daemon"},
	"RemoteSearches": {"daesim_runner_remote_searches_total", "whole searches answered server-side by a remote daemon"},
	"Sims":           {"daesim_runner_sims_total", "simulations executed for cacheable points"},
	"Degraded":       {"daesim_runner_degraded_total", "cacheable points simulated locally because every remote owner was unavailable"},
	"Uncacheable":    {"daesim_runner_uncacheable_total", "runs that bypassed both cache layers"},
}

// storeStatsMetrics maps every sweep.StoreStats field to its metric.
var storeStatsMetrics = map[string]metricSpec{
	"Hits":               {"daesim_store_hits_total", "store Get hits"},
	"Misses":             {"daesim_store_misses_total", "store Get misses"},
	"Corrupt":            {"daesim_store_corrupt_total", "store misses caused by damaged entries"},
	"Writes":             {"daesim_store_writes_total", "store entries installed"},
	"WriteErrors":        {"daesim_store_write_errors_total", "failed store installs (cache degraded to pass-through)"},
	"GCEvictions":        {"daesim_store_gc_evictions_total", "store entries removed by GC passes"},
	"CorruptQuarantined": {"daesim_store_corrupt_quarantined_total", "keys retired after failing their checksum twice"},
}

// fleetMetricsSpecs maps every FleetMetrics field to its metric.
var fleetMetricsSpecs = map[string]metricSpec{
	"Retries":          {"daesim_fleet_retries_total", "point-attempts rerouted after a retryable failure"},
	"BreakerOpens":     {"daesim_fleet_breaker_opens_total", "circuit-breaker closed/half-open to open transitions"},
	"Hedges":           {"daesim_fleet_hedges_total", "secondary requests launched by tail-latency hedging"},
	"DrainingReroutes": {"daesim_fleet_draining_reroutes_total", "point-attempts rerouted off a cleanly draining replica"},
	"Unavailable":      {"daesim_fleet_unavailable_total", "points that exhausted every candidate replica"},
}

// fieldCounter registers one func-backed counter reading the named
// int64 field of snap's result by reflection.
func fieldCounter(r *obsv.Registry, spec metricSpec, field string, snap func() reflect.Value) {
	r.CounterFunc(spec.name, spec.help, func() float64 {
		return float64(snap().FieldByName(field).Int())
	})
}

// InstrumentCacheStats exposes a runner cache-stats snapshot (and its
// derived hit rate) on r. The daemon passes its cross-context
// aggregate; repro passes its local runner's.
func InstrumentCacheStats(r *obsv.Registry, stats func() sweep.CacheStats) {
	for field, spec := range cacheStatsMetrics {
		fieldCounter(r, spec, field, func() reflect.Value { return reflect.ValueOf(stats()) })
	}
	r.GaugeFunc("daesim_runner_hit_rate", "fraction of cacheable points served without simulating",
		func() float64 { return stats().HitRate() })
}

// InstrumentStore exposes a persistent store's counters plus its
// entry-count and byte-size gauges (each scrape scans the store
// directory once per gauge — diagnostic cost, on the scrape path only).
func InstrumentStore(r *obsv.Registry, st *sweep.Store) {
	for field, spec := range storeStatsMetrics {
		fieldCounter(r, spec, field, func() reflect.Value { return reflect.ValueOf(st.Stats()) })
	}
	r.GaugeFunc("daesim_store_entries", "entries in the persistent store",
		func() float64 { e, _ := st.Usage(); return float64(e) })
	r.GaugeFunc("daesim_store_bytes", "bytes in the persistent store",
		func() float64 { _, b := st.Usage(); return float64(b) })
}

// InstrumentFleetMetrics exposes a fleet client's failure-ladder
// counters on r (FleetClient.Instrument adds the per-replica series).
func InstrumentFleetMetrics(r *obsv.Registry, stats func() FleetMetrics) {
	for field, spec := range fleetMetricsSpecs {
		fieldCounter(r, spec, field, func() reflect.Value { return reflect.ValueOf(stats()) })
	}
}
