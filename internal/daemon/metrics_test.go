package daemon

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"daesim/internal/machine"
	"daesim/internal/sweep"
)

// specFields asserts the spec table and the snapshot struct cover each
// other exactly — a new stats field with no metric, or a spec entry
// naming a field that no longer exists, both fail here.
func specFields(t *testing.T, structName string, typ reflect.Type, specs map[string]metricSpec) {
	t.Helper()
	have := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		have[name] = true
		if _, ok := specs[name]; !ok {
			t.Errorf("%s.%s has no obsv metric: add it to the spec table in metrics.go", structName, name)
		}
	}
	for name := range specs {
		if !have[name] {
			t.Errorf("metrics.go maps %s.%s, which does not exist: stale spec entry", structName, name)
		}
	}
}

// TestMetricsParity is the field-name audit of the observability layer
// (in the style of TestWireParamsCoverMachineParams): every field of
// CacheStats, StoreStats, FleetMetrics and StatsResponse must have a
// corresponding obsv metric, and every promised metric must actually
// appear in a live server registry's snapshot.
func TestMetricsParity(t *testing.T) {
	t.Parallel()
	specFields(t, "sweep.CacheStats", reflect.TypeOf(sweep.CacheStats{}), cacheStatsMetrics)
	specFields(t, "sweep.StoreStats", reflect.TypeOf(sweep.StoreStats{}), storeStatsMetrics)
	specFields(t, "FleetMetrics", reflect.TypeOf(FleetMetrics{}), fleetMetricsSpecs)

	// StatsResponse fields map to metric families directly, except the
	// embedded snapshots, which expand through the spec tables above.
	statsResponseMetrics := map[string][]string{
		"Runner":        nil,
		"HitRate":       {"daesim_runner_hit_rate"},
		"Store":         nil,
		"StoreEntries":  {"daesim_store_entries"},
		"UptimeSeconds": {"daesim_uptime_seconds"},
		"Requests":      {"daesim_requests_admitted_total"},
		"Received":      {"daesim_requests_received_total"},
		"Refused":       {"daesim_requests_refused_total"},
		"QueueTimeouts": {"daesim_requests_queue_timeouts_total"},
	}
	srTyp := reflect.TypeOf(StatsResponse{})
	for i := 0; i < srTyp.NumField(); i++ {
		if _, ok := statsResponseMetrics[srTyp.Field(i).Name]; !ok {
			t.Errorf("StatsResponse.%s has no obsv metric: extend registerMetrics and this table", srTyp.Field(i).Name)
		}
	}

	// Every promised family must exist in a real registry: a server with
	// a store and an instrumented fleet client.
	store, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Store: store, MaxConcurrent: 1})
	fc, err := NewFleetClient([]string{"http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	fc.Instrument(srv.Metrics())
	have := map[string]bool{}
	for _, s := range srv.Metrics().Snapshot() {
		have[s.Family] = true
	}
	var want []string
	for _, m := range cacheStatsMetrics {
		want = append(want, m.name)
	}
	for _, m := range storeStatsMetrics {
		want = append(want, m.name)
	}
	for _, m := range fleetMetricsSpecs {
		want = append(want, m.name)
	}
	for _, ms := range statsResponseMetrics {
		want = append(want, ms...)
	}
	want = append(want,
		"daesim_store_bytes",
		"daesim_admission_queue_depth", "daesim_admission_wait_seconds",
		"daesim_fleet_breaker_state", "daesim_fleet_request_seconds",
	)
	for _, name := range want {
		if !have[name] {
			t.Errorf("metric %s promised but absent from the registry snapshot", name)
		}
	}
}

// scrapeMetrics GETs /metrics and parses the exposition text into a
// map keyed by the full sample line prefix (name plus label block).
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpointMidSweep scrapes /metrics around real traffic: a
// cold run populates the counters, a warm re-run moves the hit counters
// while every counter stays monotone, and a saturated admission
// semaphore shows up as a nonzero queue-depth gauge mid-flight.
func TestMetricsEndpointMidSweep(t *testing.T) {
	t.Parallel()
	store, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, Config{Store: store, MaxConcurrent: 1})

	pts := []sweep.Point{
		{Kind: machine.DM, P: machine.Params{Window: 8, MD: 10}},
		{Kind: machine.DM, P: machine.Params{Window: 16, MD: 10}},
	}
	if _, err := client.Sweep(context.Background(), testWorkload, 1, pts); err != nil {
		t.Fatal(err)
	}
	cold := scrapeMetrics(t, client.BaseURL)
	if cold["daesim_runner_sims_total"] == 0 {
		t.Fatalf("cold scrape: daesim_runner_sims_total = 0, want > 0 (scrape: %v)", cold)
	}
	if cold["daesim_store_writes_total"] == 0 {
		t.Fatal("cold scrape: daesim_store_writes_total = 0, want > 0")
	}
	if cold["daesim_store_entries"] != float64(store.Len()) {
		t.Fatalf("daesim_store_entries = %v, want %d", cold["daesim_store_entries"], store.Len())
	}
	if got, want := cold["daesim_requests_admitted_total"], float64(srv.Stats().Requests); got != want {
		t.Fatalf("daesim_requests_admitted_total = %v, stats say %v", got, want)
	}

	if _, err := client.Sweep(context.Background(), testWorkload, 1, pts); err != nil {
		t.Fatal(err)
	}
	warm := scrapeMetrics(t, client.BaseURL)
	if warm["daesim_runner_l1_hits_total"] <= cold["daesim_runner_l1_hits_total"] {
		t.Fatal("warm re-run did not move daesim_runner_l1_hits_total")
	}
	for k, v := range cold {
		if strings.Contains(k, "_total") && warm[k] < v {
			t.Errorf("counter %s went backwards: %v -> %v", k, v, warm[k])
		}
	}

	// Saturate the admission semaphore (capacity 1) directly, then park
	// a request in the queue and catch the depth gauge mid-flight — no
	// timing assumptions, the request cannot proceed until we release.
	srv.sem <- struct{}{}
	done := make(chan error, 1)
	go func() {
		_, err := client.Run(context.Background(), testWorkload, 1, "", pts[0])
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered in the depth gauge")
		}
		time.Sleep(time.Millisecond)
	}
	mid := scrapeMetrics(t, client.BaseURL)
	if mid["daesim_admission_queue_depth"] < 1 {
		t.Fatalf("daesim_admission_queue_depth = %v under a saturated semaphore, want >= 1", mid["daesim_admission_queue_depth"])
	}
	<-srv.sem
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	final := scrapeMetrics(t, client.BaseURL)
	if final["daesim_admission_queue_depth"] != 0 {
		t.Fatalf("daesim_admission_queue_depth = %v after the queue drained, want 0", final["daesim_admission_queue_depth"])
	}
	if final["daesim_admission_wait_seconds_count"] == 0 {
		t.Fatal("daesim_admission_wait_seconds_count = 0, want > 0 (admissions observe their wait)")
	}
}

// TestThrottleDrainRefusalAccounting pins the accounting bugfix: a
// drain-refused request counts as received and refused, never as served
// work (it used to inflate Requests, the number the CI smokes assert).
func TestThrottleDrainRefusalAccounting(t *testing.T) {
	t.Parallel()
	srv, client := newTestServer(t, Config{})
	if _, err := client.Run(context.Background(), testWorkload, 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 10}}); err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()
	_, err := client.Run(context.Background(), testWorkload, 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 16, MD: 10}})
	if err == nil {
		t.Fatal("draining daemon accepted work")
	}
	stats := srv.Stats()
	if stats.Requests != 1 || stats.Received != 2 || stats.Refused != 1 {
		t.Fatalf("after one served and one drain-refused request: requests=%d received=%d refused=%d, want 1/2/1",
			stats.Requests, stats.Received, stats.Refused)
	}
}

// TestThrottleQueueTimeoutAccounting pins the other half: a request
// whose deadline expires while waiting for an admission slot lands in
// QueueTimeouts, not Requests.
func TestThrottleQueueTimeoutAccounting(t *testing.T) {
	t.Parallel()
	srv, client := newTestServer(t, Config{MaxConcurrent: 1, RequestTimeout: 100 * time.Millisecond})
	srv.sem <- struct{}{} // saturate; nothing can be admitted
	defer func() { <-srv.sem }()
	if _, err := client.Run(context.Background(), testWorkload, 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 10}}); err == nil {
		t.Fatal("request succeeded with the semaphore saturated")
	}
	// The timeout handler answers the client the instant the deadline
	// fires; the queued goroutine observes its dead context on its own
	// schedule, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for srv.queueTimeouts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stats := srv.Stats()
	if stats.QueueTimeouts != 1 || stats.Requests != 0 || stats.Received != 1 {
		t.Fatalf("after one queue timeout: queue_timeouts=%d requests=%d received=%d, want 1/0/1",
			stats.QueueTimeouts, stats.Requests, stats.Received)
	}
}

// TestMetricsDisabled proves -metrics=false withholds the endpoint.
func TestMetricsDisabled(t *testing.T) {
	t.Parallel()
	srv := NewServer(Config{DisableMetrics: true})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics: status %d, want 404", resp.StatusCode)
	}
}

// TestDecodeBodyLimitMessage pins the oversized-body wording: a body
// past the 16 MiB cap must be refused by name, not as the truncating
// reader's bare "unexpected EOF".
func TestDecodeBodyLimitMessage(t *testing.T) {
	t.Parallel()
	big := `{"workload":"` + strings.Repeat("a", maxBodyBytes) + `"}`
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(big))
	var v RunRequest
	err := decode(req, &v)
	if err == nil {
		t.Fatal("oversized body decoded")
	}
	if want := "request body exceeds the 16 MiB limit"; err.Error() != want {
		t.Fatalf("oversized body error = %q, want %q", err, want)
	}
	// A small valid body with trailing garbage keeps its own message.
	req = httptest.NewRequest("POST", "/v1/run", strings.NewReader(`{"workload":"x"}garbage`))
	if err := decode(req, &v); err == nil || !strings.Contains(err.Error(), "unexpected data after the JSON body") {
		t.Fatalf("trailing-garbage error = %v, want the trailing-data message", err)
	}
}

// TestFleetRejectsDuplicateReplicaURLs is the regression test for the
// silent-failover-shrink bug: duplicate URLs collapse to identical
// vnode hashes, so they must be refused up front, by name.
func TestFleetRejectsDuplicateReplicaURLs(t *testing.T) {
	t.Parallel()
	_, err := NewFleetClient([]string{"http://10.0.0.1:8077", "http://10.0.0.2:8077", "http://10.0.0.1:8077/"})
	if err == nil {
		t.Fatal("duplicate replica URLs accepted")
	}
	if !strings.Contains(err.Error(), `"http://10.0.0.1:8077"`) {
		t.Fatalf("duplicate-URL error does not name the URL: %v", err)
	}
	if _, err := NewFleetClient([]string{"http://10.0.0.1:8077", "http://10.0.0.2:8077"}); err != nil {
		t.Fatalf("distinct replica URLs refused: %v", err)
	}
}

// TestUnavailableErrorWording pins the cleaned-up message: Unwrap
// carries sweep.ErrUnavailable, so Error must not also interpolate it —
// one "unavailable" per message, structural matching intact.
func TestUnavailableErrorWording(t *testing.T) {
	t.Parallel()
	cases := []*unavailableError{
		{n: 2},
		{n: 1, last: errors.New("connection refused")},
	}
	for _, e := range cases {
		if !errors.Is(e, sweep.ErrUnavailable) {
			t.Fatalf("%v does not match sweep.ErrUnavailable", e)
		}
		msg := fmt.Errorf("runner: %w", e).Error()
		if got := strings.Count(strings.ToLower(msg), "unavailable"); got != 1 {
			t.Errorf("%q says \"unavailable\" %d times, want exactly once", msg, got)
		}
	}
	if msg := cases[1].Error(); !strings.Contains(msg, "connection refused") {
		t.Errorf("%q lost the underlying cause", msg)
	}
}

// TestMetricsScrapeConcurrentWithTraffic races scrapes against live
// requests under -race: the registry must tolerate scrape-during-write.
func TestMetricsScrapeConcurrentWithTraffic(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{MaxConcurrent: 2})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := client.Run(context.Background(), testWorkload, 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8 + i, MD: 10}})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := 0; i < 5; i++ {
		scrapeMetrics(t, client.BaseURL)
	}
	wg.Wait()
}
