package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/faultinject"
	"daesim/internal/machine"
	"daesim/internal/sweep"
)

// chaosFleet builds an n-replica in-process fleet whose client
// transports are wrapped with a deterministic fault injector (scope
// "r<i>" per replica, the repro -chaos wiring), with failure handling
// tuned fast for tests.
func chaosFleet(t *testing.T, n int, spec string) (*FleetClient, []*Server, *faultinject.Injector) {
	t.Helper()
	fleet, servers, _ := newFleet(t, n, nil, nil)
	sched, err := faultinject.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.NewInjector(sched)
	for i, c := range fleet.Clients() {
		c.HTTP = &http.Client{
			Timeout:   time.Minute,
			Transport: &faultinject.Transport{Injector: inj, Scope: fmt.Sprintf("r%d", i)},
		}
	}
	fleet.Cooldown = 20 * time.Millisecond
	fleet.BackoffBase = time.Millisecond
	fleet.BackoffMax = 4 * time.Millisecond
	return fleet, servers, inj
}

// chaosContext attaches the point-wise and batched-run hooks but NOT
// the server-side search hook: the ratio searches' probe waves then
// travel through RemoteBatch — one client request per replica per wave
// instead of one per curve — so the soak pushes an order of magnitude
// more traffic through the fault injector (the server-side search path
// is byte-identity-tested separately by TestFleetFigure7ByteIdentical).
func chaosContext(fleet *FleetClient) *experiments.Context {
	ctx := experiments.NewContext()
	ctx.Remote = func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
		return fleet.Run(context.Background(), workload, scale, fingerprint, pt)
	}
	ctx.RemoteBatch = func(workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error) {
		return fleet.RunBatch(context.Background(), workload, scale, fingerprint, pts)
	}
	return ctx
}

// renderFig7 renders Figure 7 (ratio searches, the batched-search path)
// plus Figure 4 (the speedup sweep, the batched-run path) — the same
// pair TestFleetFigure7ByteIdentical pins.
func renderFig7(t *testing.T, ctx *experiments.Context) []byte {
	t.Helper()
	var buf bytes.Buffer
	ratio, err := ctx.RatioFigure("FLO52Q")
	if err != nil {
		t.Fatal(err)
	}
	if err := ratio.Render(&buf); err != nil {
		t.Fatal(err)
	}
	fig, err := ctx.Figure("FLO52Q")
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosSoakFigure7 is the tentpole's acceptance test: Figure 7 (and
// the Figure 4 sweep) reproduced through a 3-replica fleet under
// several seeded fault schedules — random timeouts and 5xx bursts, a
// replica dying mid-sweep, a flapping replica plus corrupted and
// truncated bodies — must stay byte-identical to the local oracle,
// and the retry amplification of each schedule must stay bounded.
func TestChaosSoakFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 7 chaos soak; skipped with -short")
	}
	if raceEnabled {
		t.Skip("full-figure soak is too slow under the race detector; unit chaos tests still run")
	}
	t.Parallel()
	oracle := renderFig7(t, experiments.NewContext())

	// The no-fault baseline pins the denominator for the amplification
	// bound: Ops counts every transport operation the injector saw.
	baseFleet, _, baseInj := chaosFleet(t, 3, "seed=1")
	if got := renderFig7(t, chaosContext(baseFleet)); !bytes.Equal(oracle, got) {
		t.Fatal("baseline fleet render differs from local oracle")
	}
	baseOps := baseInj.Counts().Ops
	if baseOps == 0 {
		t.Fatal("baseline run made no transport operations")
	}

	schedules := []struct{ name, spec string }{
		{"timeouts+5xx", "seed=7,timeout:rate=0.1,5xx:rate=0.1"},
		{"replica-death-mid-sweep", "seed=11,refuse@r1:from=5"},
		{"flapping+corruption", "seed=13,refuse@r2:period=6:duty=3,corrupt:rate=0.05,trunc:rate=0.03"},
	}
	for _, sc := range schedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			fleet, _, inj := chaosFleet(t, 3, sc.spec)
			ctx := chaosContext(fleet)
			ctx.Degrade = true
			got := renderFig7(t, ctx)
			if !bytes.Equal(oracle, got) {
				t.Errorf("figures under schedule %q differ from the local oracle", sc.spec)
			}
			counts := inj.Counts()
			if counts.Faults == 0 {
				t.Errorf("schedule %q injected no faults — the soak tested nothing", sc.spec)
			}
			// Retry amplification: injected failures may multiply
			// transport operations, but the ladder must keep the
			// multiple small (unbounded retry storms are the failure
			// mode this pins).
			if counts.Ops > 3*baseOps {
				t.Errorf("retry amplification out of bounds: %d ops vs %d baseline (>3x)", counts.Ops, baseOps)
			}
			stats := ctx.CacheStats()
			if stats.RemoteHits+stats.RemoteSearches == 0 && stats.Degraded == 0 {
				t.Errorf("no remote traffic and no degradation — schedule %q never exercised the fleet", sc.spec)
			}
			t.Logf("%s: %+v, fleet %+v, degraded %d (baseline ops %d)", sc.name, counts, fleet.Metrics(), stats.Degraded, baseOps)
		})
	}
}

// TestChaosTotalOutageDegrades: with every replica refusing every
// request, a Degrade-enabled context still reproduces the figure
// byte-identically — entirely through last-resort local simulation —
// while a strict context fails loudly with sweep.ErrUnavailable.
func TestChaosTotalOutageDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped with -short")
	}
	if raceEnabled {
		t.Skip("full-figure soak is too slow under the race detector")
	}
	t.Parallel()

	var oracle bytes.Buffer
	fig, err := experiments.NewContext().Figure("FLO52Q")
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Render(&oracle); err != nil {
		t.Fatal(err)
	}

	// Strict: the outage must surface, structurally, as unavailability.
	strictFleet, _, _ := chaosFleet(t, 3, "seed=3,refuse")
	strictCtx := fleetContext(strictFleet)
	if _, err := strictCtx.Figure("FLO52Q"); !errors.Is(err, sweep.ErrUnavailable) {
		t.Fatalf("total outage without Degrade must wrap sweep.ErrUnavailable, got %v", err)
	}

	// Degraded: the run completes locally, byte-identically.
	fleet, servers, _ := chaosFleet(t, 3, "seed=3,refuse")
	ctx := fleetContext(fleet)
	ctx.Degrade = true
	got, err := ctx.Figure("FLO52Q")
	if err != nil {
		t.Fatalf("degraded run must complete through the outage: %v", err)
	}
	var buf bytes.Buffer
	if err := got.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracle.Bytes(), buf.Bytes()) {
		t.Error("degraded figure differs from the local oracle")
	}
	stats := ctx.CacheStats()
	if stats.Degraded == 0 {
		t.Errorf("total outage must be absorbed as Degraded, got %+v", stats)
	}
	if stats.Sims != 0 {
		t.Errorf("degraded points must count under Degraded, not Sims: %+v", stats)
	}
	for i, srv := range servers {
		if n := srv.Stats().Requests; n != 0 {
			t.Errorf("replica %d served %d requests through a total refusal schedule", i, n)
		}
	}
}

// TestChaosReplayDeterministic: the same schedule replayed over the
// same batch produces the identical fault trace, the identical
// results, and the identical error — the property that makes a chaos
// failure debuggable by re-running its seed.
func TestChaosReplayDeterministic(t *testing.T) {
	t.Parallel()
	var pts []sweep.Point
	for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
		for _, w := range []int{8, 16, 24, 32} {
			pts = append(pts, sweep.Point{Kind: kind, P: machine.Params{Window: w, MD: 10}})
		}
	}
	// One set of replicas serves both runs: the ring routes by the
	// member URL strings, so fresh servers (fresh random ports) would
	// shuffle ownership between runs and with it the per-scope request
	// counts. Each run gets its own client and injector over the same
	// membership — exactly a repro -chaos rerun against a live fleet.
	base, _, _ := newFleet(t, 3, nil, nil)
	urls := base.Ring().Members()

	runOnce := func() ([]faultinject.Event, []string, string) {
		fleet, err := NewFleetClient(urls)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := faultinject.ParseSchedule("seed=5,timeout:rate=0.25,5xx:rate=0.15")
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.NewInjector(sched)
		for i, c := range fleet.Clients() {
			c.HTTP = &http.Client{
				Timeout:   time.Minute,
				Transport: &faultinject.Transport{Injector: inj, Scope: fmt.Sprintf("r%d", i)},
			}
		}
		fleet.BackoffBase = time.Millisecond
		fleet.BackoffMax = 4 * time.Millisecond
		// Routing must be a pure function of the schedule for the trace
		// to replay: breaker state depends on the wall clock (cooldown
		// expiry), so keep breakers closed for this test.
		fleet.FailureThreshold = 1 << 30
		res, err := fleet.RunBatch(context.Background(), testWorkload, 1, "", pts)
		var rendered []string
		for _, r := range res {
			if r == nil {
				rendered = append(rendered, "unserved")
			} else {
				rendered = append(rendered, fmt.Sprintf("%d", r.Cycles))
			}
		}
		errStr := ""
		if err != nil {
			if !errors.Is(err, sweep.ErrUnavailable) {
				t.Fatalf("only unavailability is acceptable under this schedule: %v", err)
			}
			errStr = err.Error()
		}
		return inj.Trace(), rendered, errStr
	}

	trace1, res1, err1 := runOnce()
	trace2, res2, err2 := runOnce()
	if !reflect.DeepEqual(trace1, trace2) {
		t.Error("fault traces differ between identical runs")
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("results differ between identical runs:\n%v\n%v", res1, res2)
	}
	if err1 != err2 {
		t.Errorf("errors differ between identical runs: %q vs %q", err1, err2)
	}
	if len(trace1) == 0 {
		t.Fatal("no transport operations traced")
	}
	// And the served results match a local oracle point-for-point.
	for i, r := range res1 {
		if r == "unserved" {
			continue
		}
		want := fmt.Sprintf("%d", localResult(t, testWorkload, pts[i]).Cycles)
		if r != want {
			t.Errorf("point %d: chaos result %s != local %s", i, r, want)
		}
	}
}
