package daemon

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWaitHealthyStopsOnCancel pins the per-round cancellation check in
// Client.WaitHealthy: against an unreachable daemon, a cancelled context
// must end the poll loop immediately instead of burning the full
// deadline in 50ms health probes.
func TestWaitHealthyStopsOnCancel(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens on port 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	err := c.WaitHealthy(ctx, 30*time.Second)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("WaitHealthy succeeded against a dead address")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitHealthy error = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("WaitHealthy ran %s after cancellation; the loop must stop at the first ctx.Err() check", elapsed)
	}
}

// TestWaitHealthyNilContext pins the nil-context tolerance the other
// Client methods share: WaitHealthy(nil, ...) must poll to the deadline,
// not panic on the cancellation check.
func TestWaitHealthyNilContext(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	err := c.WaitHealthy(nil, 60*time.Millisecond)
	if err == nil {
		t.Fatal("WaitHealthy succeeded against a dead address")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("WaitHealthy error = %v; a nil context must mean no cancellation", err)
	}
}
