package daemon

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"daesim/internal/machine"
	"daesim/internal/sweep"
)

// fakeFleet builds a FleetClient over dummy URLs (no sockets are ever
// dialed — tests drive scatter/single with their own exec functions),
// with a controllable clock and recorded, non-blocking sleeps.
func fakeFleet(t *testing.T, n int) (*FleetClient, *time.Time, *[]time.Duration) {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d", i)
	}
	f, err := NewFleetClient(urls)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	var slept []time.Duration
	f.now = func() time.Time { return now }
	f.sleep = func(d time.Duration) { slept = append(slept, d) }
	return f, &now, &slept
}

// keyOwnedBy finds a routing key whose first owner is the wanted
// replica (ring placement depends on the member URLs, so search).
func keyOwnedBy(t *testing.T, f *FleetClient, replica int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if f.ring.Owner(key) == replica {
			return key
		}
	}
	t.Fatal("no key found for replica")
	return ""
}

// TestBreakerTransitions walks one replica's breaker through the full
// closed -> open -> half-open -> open -> half-open -> closed cycle on a
// fake clock.
func TestBreakerTransitions(t *testing.T) {
	t.Parallel()
	f, now, _ := fakeFleet(t, 1)
	f.FailureThreshold = 3
	f.Cooldown = time.Second

	if !f.allow(0) || f.breakerIs(0) != bkClosed {
		t.Fatal("fresh breaker must be closed and admitting")
	}
	// Two failures stay under the threshold.
	f.onFailure(0)
	f.onFailure(0)
	if f.breakerIs(0) != bkClosed || !f.allow(0) {
		t.Fatal("breaker must stay closed below the failure threshold")
	}
	// The third opens it.
	f.onFailure(0)
	if f.breakerIs(0) != bkOpen {
		t.Fatal("threshold-th consecutive failure must open the breaker")
	}
	if f.allow(0) {
		t.Fatal("open breaker must refuse work inside the cooldown")
	}
	if got := f.Metrics().BreakerOpens; got != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", got)
	}
	// Success resets the consecutive-failure count: two failures, a
	// success, then two more must not open.
	f2, _, _ := fakeFleet(t, 1)
	f2.FailureThreshold = 3
	f2.onFailure(0)
	f2.onFailure(0)
	f2.onSuccess(0)
	f2.onFailure(0)
	f2.onFailure(0)
	if f2.breakerIs(0) != bkClosed {
		t.Fatal("success must reset the consecutive-failure count")
	}

	// Cooldown expiry: half-open admits exactly one probe.
	*now = now.Add(999 * time.Millisecond)
	if f.allow(0) {
		t.Fatal("breaker must stay open until the cooldown elapses")
	}
	*now = now.Add(2 * time.Millisecond)
	if !f.allow(0) {
		t.Fatal("expired breaker must admit a probe")
	}
	if f.breakerIs(0) != bkHalfOpen {
		t.Fatal("expired breaker must be half-open")
	}
	if f.allow(0) {
		t.Fatal("half-open breaker must admit only one probe at a time")
	}
	// Failed probe re-opens for a fresh cooldown.
	f.onFailure(0)
	if f.breakerIs(0) != bkOpen || f.allow(0) {
		t.Fatal("failed probe must re-open the breaker")
	}
	if got := f.Metrics().BreakerOpens; got != 2 {
		t.Fatalf("BreakerOpens = %d, want 2", got)
	}
	// Successful probe closes it and restores full traffic.
	*now = now.Add(2 * time.Second)
	if !f.allow(0) {
		t.Fatal("re-expired breaker must admit a probe")
	}
	f.onSuccess(0)
	if f.breakerIs(0) != bkClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if !f.allow(0) || !f.allow(0) {
		t.Fatal("closed breaker must admit unlimited work")
	}
}

// TestScatterBreakerRecovery drives the scatter loop against a replica
// that fails, watches its breaker open and traffic shift to the
// survivor, then heals the replica and watches the cooldown probe
// return it to the scatter rotation.
func TestScatterBreakerRecovery(t *testing.T) {
	t.Parallel()
	f, now, _ := fakeFleet(t, 2)
	f.FailureThreshold = 3
	f.Cooldown = time.Second
	key := keyOwnedBy(t, f, 0)

	down := true
	calls := [2]int{}
	exec := func(_ context.Context, replica int, _ []int) error {
		calls[replica]++
		if replica == 0 && down {
			return &StatusError{Code: 500, Msg: "injected"}
		}
		return nil
	}
	one := func() error {
		return f.scatter(context.Background(), 1, func(int) string { return key }, exec)
	}

	// Three failing calls: each tries replica 0, fails, and settles on
	// replica 1 — opening replica 0's breaker on the third.
	for i := 0; i < 3; i++ {
		if err := one(); err != nil {
			t.Fatalf("call %d should have failed over: %v", i, err)
		}
	}
	if calls[0] != 3 || calls[1] != 3 {
		t.Fatalf("calls = %v, want [3 3]", calls)
	}
	if f.breakerIs(0) != bkOpen {
		t.Fatal("replica 0's breaker should be open after 3 consecutive failures")
	}
	// While open, the owner is skipped without being dialed.
	if err := one(); err != nil {
		t.Fatal(err)
	}
	if calls[0] != 3 {
		t.Fatalf("open breaker was dialed anyway: calls = %v", calls)
	}
	// Heal the replica; after the cooldown the next call probes it,
	// succeeds, and closes the breaker — replica 0 rejoins the scatter.
	down = false
	*now = now.Add(2 * time.Second)
	if err := one(); err != nil {
		t.Fatal(err)
	}
	if calls[0] != 4 {
		t.Fatalf("cooldown probe never reached the healed replica: calls = %v", calls)
	}
	if f.breakerIs(0) != bkClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if err := one(); err != nil || calls[0] != 5 {
		t.Fatalf("healed replica must serve its keys again: calls = %v, err = %v", calls, err)
	}
	m := f.Metrics()
	if m.Retries != 3 || m.BreakerOpens != 1 || m.Unavailable != 0 {
		t.Fatalf("metrics = %+v, want 3 retries, 1 breaker open, 0 unavailable", m)
	}
}

// TestScatterForcesAttemptWhenAllOpen: open breakers must not fail a
// call unattempted when they are the only candidates — the marks are
// ignored and the call still goes out.
func TestScatterForcesAttemptWhenAllOpen(t *testing.T) {
	t.Parallel()
	f, _, _ := fakeFleet(t, 1)
	f.FailureThreshold = 1
	f.onFailure(0)
	if f.breakerIs(0) != bkOpen {
		t.Fatal("setup: breaker should be open")
	}
	served := 0
	err := f.scatter(context.Background(), 1, func(int) string { return "k" }, func(_ context.Context, replica int, _ []int) error {
		served++
		return nil
	})
	if err != nil || served != 1 {
		t.Fatalf("forced attempt must execute and succeed: served=%d err=%v", served, err)
	}
	if f.breakerIs(0) != bkClosed {
		t.Fatal("forced success must close the breaker")
	}
}

// TestScatterUnavailableIsPartial: points that exhaust every candidate
// produce an error wrapping sweep.ErrUnavailable (the Degrade signal)
// while the caller's settled slots stay valid.
func TestScatterUnavailableIsPartial(t *testing.T) {
	t.Parallel()
	f, _, slept := fakeFleet(t, 2)
	// Points 0 and 2 route to replica 0, point 1 to replica 1, so the
	// failing point never drags group-mates down with it.
	keyA, keyB := keyOwnedBy(t, f, 0), keyOwnedBy(t, f, 1)
	var served []int
	err := f.scatter(context.Background(), 3, func(i int) string {
		if i == 1 {
			return keyB
		}
		return keyA
	}, func(_ context.Context, replica int, idx []int) error {
		for _, i := range idx {
			if i == 1 {
				return &StatusError{Code: 500, Msg: "injected"}
			}
		}
		served = append(served, idx...)
		return nil
	})
	if err == nil {
		t.Fatal("exhausted point must surface an error")
	}
	if !errors.Is(err, sweep.ErrUnavailable) {
		t.Fatalf("exhaustion error must wrap sweep.ErrUnavailable, got %v", err)
	}
	if f.Metrics().Unavailable != 1 {
		t.Fatalf("Unavailable = %d, want 1", f.Metrics().Unavailable)
	}
	if len(*slept) == 0 {
		t.Fatal("failing rounds must be separated by backoff sleeps")
	}
	// The two healthy points settled despite point 1's exhaustion.
	seen := map[int]bool{}
	for _, i := range served {
		seen[i] = true
	}
	if !seen[0] || !seen[2] {
		t.Fatalf("surviving points must settle: served %v", served)
	}
}

// TestScatterFatalErrorsFailFast: non-retryable refusals (4xx, 409
// skew) must fail the call immediately, with no reroute, no backoff
// and no breaker charge.
func TestScatterFatalErrorsFailFast(t *testing.T) {
	t.Parallel()
	f, _, slept := fakeFleet(t, 2)
	calls := 0
	err := f.scatter(context.Background(), 1, func(int) string { return "k" }, func(_ context.Context, replica int, _ []int) error {
		calls++
		return &StatusError{Code: 409, Msg: "version skew"}
	})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 409 {
		t.Fatalf("fatal error must surface verbatim, got %v", err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Fatalf("fatal error must not retry or back off: calls=%d sleeps=%v", calls, *slept)
	}
	if f.breakerIs(0) != bkClosed || f.breakerIs(1) != bkClosed {
		t.Fatal("fatal errors must not charge breakers")
	}
}

// TestScatterDrainingReroutesWithoutPenalty: a draining replica's work
// moves to the next owner with no breaker charge, no retry count and
// no backoff round.
func TestScatterDrainingReroutesWithoutPenalty(t *testing.T) {
	t.Parallel()
	f, _, slept := fakeFleet(t, 2)
	f.FailureThreshold = 1 // any real failure would open instantly
	key := keyOwnedBy(t, f, 0)
	calls := [2]int{}
	err := f.scatter(context.Background(), 1, func(int) string { return key }, func(_ context.Context, replica int, _ []int) error {
		calls[replica]++
		if replica == 0 {
			return &StatusError{Code: 503, Msg: "draining", Draining: true}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != [2]int{1, 1} {
		t.Fatalf("calls = %v, want [1 1]", calls)
	}
	if f.breakerIs(0) != bkClosed {
		t.Fatal("draining must not charge the breaker")
	}
	if len(*slept) != 0 {
		t.Fatalf("draining must not trigger backoff, slept %v", *slept)
	}
	m := f.Metrics()
	if m.DrainingReroutes != 1 || m.Retries != 0 {
		t.Fatalf("metrics = %+v, want 1 draining reroute and 0 retries", m)
	}
}

// TestScatterCancellation: a cancelled context surfaces as the context
// error, never as unavailability (which Degrade would silently absorb).
func TestScatterCancellation(t *testing.T) {
	t.Parallel()
	f, _, _ := fakeFleet(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	err := f.scatter(ctx, 1, func(int) string { return "k" }, func(_ context.Context, replica int, _ []int) error {
		cancel()
		return &StatusError{Code: 500, Msg: "injected"}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scatter must return the context error, got %v", err)
	}
	if errors.Is(err, sweep.ErrUnavailable) {
		t.Fatal("cancellation must never read as unavailability")
	}
}

// TestBackoffDeterministicAndBounded: the retry backoff is a pure
// function of (seed, round), grows exponentially, and caps at
// BackoffMax — the property that pins retry pacing across chaos
// replays.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	t.Parallel()
	f, _, _ := fakeFleet(t, 1)
	f.BackoffBase = 10 * time.Millisecond
	f.BackoffMax = 80 * time.Millisecond
	f.BackoffSeed = 42
	g, _, _ := fakeFleet(t, 1)
	g.BackoffBase = 10 * time.Millisecond
	g.BackoffMax = 80 * time.Millisecond
	g.BackoffSeed = 42
	prevCap := time.Duration(0)
	for round := 0; round < 10; round++ {
		d := f.backoffDelay(round)
		if d != g.backoffDelay(round) {
			t.Fatalf("round %d: backoff not deterministic", round)
		}
		envelope := f.BackoffBase << uint(round)
		if envelope > f.BackoffMax {
			envelope = f.BackoffMax
		}
		if d < envelope/2 || d >= envelope {
			t.Fatalf("round %d: delay %v outside jitter envelope [%v,%v)", round, d, envelope/2, envelope)
		}
		if envelope == f.BackoffMax && prevCap != 0 {
			// Past the cap the envelope stops growing.
			if d >= f.BackoffMax {
				t.Fatalf("round %d: delay %v at or above the cap", round, d)
			}
		}
		prevCap = envelope
	}
	g.BackoffSeed = 43
	diff := false
	for round := 0; round < 10; round++ {
		if f.backoffDelay(round) != g.backoffDelay(round) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should jitter differently")
	}
}

// TestHedgedSingle: with HedgeDelay armed, a slow primary is raced by
// a second replica and the first success wins.
func TestHedgedSingle(t *testing.T) {
	t.Parallel()
	f, _, _ := fakeFleet(t, 2)
	f.HedgeDelay = 5 * time.Millisecond
	key := keyOwnedBy(t, f, 0)
	primary := f.ring.Owner(key)
	release := make(chan struct{})
	defer close(release)
	err := f.single(context.Background(), key, func(ctx context.Context, replica int) error {
		if replica == primary {
			// The primary hangs until the test ends — only the hedge
			// can answer.
			select {
			case <-release:
			case <-ctx.Done():
			}
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("hedged call must win via the secondary: %v", err)
	}
	if got := f.Metrics().Hedges; got != 1 {
		t.Fatalf("Hedges = %d, want 1", got)
	}
}

// TestHedgedSingleFailureRelaunches: without waiting for the hedge
// timer, a failed attempt immediately tries the next candidate, and
// exhaustion surfaces as sweep.ErrUnavailable.
func TestHedgedSingleFailureRelaunches(t *testing.T) {
	t.Parallel()
	f, _, _ := fakeFleet(t, 2)
	f.HedgeDelay = time.Hour // the timer must never be what advances this test
	calls := 0
	err := f.single(context.Background(), "k", func(_ context.Context, replica int) error {
		calls++
		return &StatusError{Code: 500, Msg: "injected"}
	})
	if !errors.Is(err, sweep.ErrUnavailable) {
		t.Fatalf("exhausted hedged call must wrap sweep.ErrUnavailable, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("both replicas must have been tried, got %d calls", calls)
	}
}

// TestHealthRejectsDraining: the fleet health gate treats a draining
// replica as unhealthy (stop sending it new work), while the scatter
// path keeps completing via the survivors.
func TestHealthRejectsDraining(t *testing.T) {
	t.Parallel()
	fleet, servers, _ := newFleet(t, 2, nil, nil)
	if err := fleet.Health(context.Background()); err != nil {
		t.Fatalf("healthy fleet must pass: %v", err)
	}
	servers[0].BeginDrain()
	if !servers[0].Draining() {
		t.Fatal("BeginDrain must latch")
	}
	err := fleet.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("draining replica must fail the health gate, got %v", err)
	}
	// In-flight routing survives: whichever replica owns the point, the
	// call completes, and the drain charges nothing.
	pt := sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 10}}
	if _, err := fleet.Run(context.Background(), testWorkload, 1, "", pt); err != nil {
		t.Fatalf("run must reroute off the draining replica: %v", err)
	}
	if fleet.Metrics().Retries != 0 {
		t.Fatalf("draining reroute must not count as a retry: %+v", fleet.Metrics())
	}
	if fleet.breakerIs(0) != bkClosed || fleet.breakerIs(1) != bkClosed {
		t.Fatal("draining must not charge breakers")
	}
}
