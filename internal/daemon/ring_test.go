package daemon

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringCorpus builds n distinct keys shaped like the fleet's routing
// keys (engine version | fingerprint | workload | params).
func ringCorpus(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("engine-v3|fp%04d|TRFD|1|DM|w=%d,md=%d", i%7, i, i%61)
	}
	return keys
}

var ringMembers = []string{
	"http://127.0.0.1:8077",
	"http://127.0.0.1:8078",
	"http://127.0.0.1:8079",
}

// TestRingDeterministic pins that the mapping is a pure function of the
// member list: two independently built rings (two processes, in effect
// — the hash has no per-process seed) agree on every key, and member
// order does not change ownership (clients listing the same replicas in
// different orders still route identically).
func TestRingDeterministic(t *testing.T) {
	t.Parallel()
	keys := ringCorpus(10000)
	a, b := NewRing(ringMembers), NewRing(ringMembers)
	reordered := NewRing([]string{ringMembers[2], ringMembers[0], ringMembers[1]})
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("two rings over the same members disagree on %q", k)
		}
		if a.Members()[a.Owner(k)] != reordered.Members()[reordered.Owner(k)] {
			t.Fatalf("member order changed ownership of %q", k)
		}
	}
}

// TestRingRemap pins the consistent-hashing contract on a 10k-key
// corpus: removing a member remaps only the keys it owned (survivors
// keep every key of theirs), and adding a member steals at most ~1/(N+1)
// of the keyspace, all of it for itself.
func TestRingRemap(t *testing.T) {
	t.Parallel()
	keys := ringCorpus(10000)
	full := NewRing(ringMembers)

	// Removal: survivors' keys must not move.
	for drop := range ringMembers {
		var rest []string
		for i, m := range ringMembers {
			if i != drop {
				rest = append(rest, m)
			}
		}
		shrunk := NewRing(rest)
		for _, k := range keys {
			if o := full.Owner(k); o != drop {
				if got, want := shrunk.Members()[shrunk.Owner(k)], full.Members()[o]; got != want {
					t.Fatalf("dropping member %d moved %q from %s to %s", drop, k, want, got)
				}
			}
		}
	}

	// Addition: only the new member gains keys, and not too many.
	grown := NewRing(append(append([]string(nil), ringMembers...), "http://127.0.0.1:8080"))
	remapped := 0
	for _, k := range keys {
		if was, is := full.Owner(k), grown.Owner(k); was != is {
			remapped++
			if grown.Members()[is] != "http://127.0.0.1:8080" {
				t.Fatalf("adding a member moved %q between survivors (%s -> %s)",
					k, full.Members()[was], grown.Members()[is])
			}
		}
	}
	// Expectation is 1/(N+1) = 25%; allow vnode-placement variance.
	if frac := float64(remapped) / float64(len(keys)); frac > 0.375 {
		t.Errorf("adding a 4th member remapped %.1f%% of keys (want ~25%%, at most 37.5%%)", 100*frac)
	} else {
		t.Logf("adding a 4th member remapped %.1f%% of 10k keys", 100*frac)
	}
}

// TestRingBalance pins the distribution quality the fleet test depends
// on: across 10k keys and 3 members, no member owns more than 60% and
// none is starved.
func TestRingBalance(t *testing.T) {
	t.Parallel()
	keys := ringCorpus(10000)
	r := NewRing(ringMembers)
	counts := make([]int, len(ringMembers))
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for i, c := range counts {
		share := float64(c) / float64(len(keys))
		t.Logf("member %d owns %.1f%%", i, 100*share)
		if share > 0.60 {
			t.Errorf("member %d owns %.1f%% of keys (want <= 60%%)", i, 100*share)
		}
		if share < 0.10 {
			t.Errorf("member %d owns %.1f%% of keys (starved, want >= 10%%)", i, 100*share)
		}
	}
}

// TestRingBalanceAcrossMemberNames pins the hash-quality property the
// finalizer in ringHash exists for: balance must hold for arbitrary
// member addresses, not just the ones this test suite happens to use.
// Raw FNV of the vnode strings (one member prefix, sequential "|N"
// suffixes) clustered badly enough that some member sets put ~86% of
// the keyspace on one replica; with full avalanche the worst observed
// share over 300 member sets is ~41%.
func TestRingBalanceAcrossMemberNames(t *testing.T) {
	t.Parallel()
	keys := ringCorpus(3000)
	rng := rand.New(rand.NewSource(7))
	worst := 0.0
	for trial := 0; trial < 300; trial++ {
		members := []string{
			fmt.Sprintf("http://10.%d.%d.%d:%d", rng.Intn(256), rng.Intn(256), rng.Intn(256), 1024+rng.Intn(60000)),
			fmt.Sprintf("http://127.0.0.1:%d", 1024+rng.Intn(60000)),
			fmt.Sprintf("http://replica-%d.sweepd.local:8077", rng.Intn(1000000)),
		}
		r := NewRing(members)
		counts := make([]int, len(members))
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		for _, c := range counts {
			if s := float64(c) / float64(len(keys)); s > worst {
				worst = s
			}
		}
	}
	t.Logf("worst max-share over 300 random member sets: %.3f", worst)
	if worst > 0.55 {
		t.Errorf("worst member share %.1f%% over random member names (want <= 55%%); ringHash has lost its avalanche", 100*worst)
	}
}

// TestRingOwners pins the failover sequence: Owners returns distinct
// members led by the primary, and the second owner of a key is exactly
// where a ring without the primary routes it — so retrying a down
// replica's keys on the next owner matches the shrunk ring's layout.
func TestRingOwners(t *testing.T) {
	t.Parallel()
	r := NewRing(ringMembers)
	for _, k := range ringCorpus(500) {
		owners := r.Owners(k, len(ringMembers))
		if len(owners) != len(ringMembers) {
			t.Fatalf("Owners(%q) = %v, want %d distinct members", k, owners, len(ringMembers))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) = %v repeats a member", k, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%q)[0] = %d, Owner = %d", k, owners[0], r.Owner(k))
		}
		var rest []string
		for i, m := range ringMembers {
			if i != owners[0] {
				rest = append(rest, m)
			}
		}
		shrunk := NewRing(rest)
		if got, want := shrunk.Members()[shrunk.Owner(k)], ringMembers[owners[1]]; got != want {
			t.Fatalf("failover owner of %q is %s, but the shrunk ring routes it to %s", k, want, got)
		}
	}
	if NewRing(nil).Owner("x") != -1 {
		t.Error("empty ring should own nothing")
	}
}
