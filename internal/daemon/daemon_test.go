package daemon

import (
	"context"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// TestWireParamsCoverMachineParams is the protocol's field-count guard,
// mirroring TestCacheKeyCoversAllParams: machine.Params has exactly one
// field (Mem, deliberately not remotable) more than the wire Params.
// Adding a machine parameter without extending the protocol — which
// would silently simulate the default value on the daemon — fails here.
func TestWireParamsCoverMachineParams(t *testing.T) {
	t.Parallel()
	names := func(typ reflect.Type) map[string]bool {
		m := map[string]bool{}
		for i := 0; i < typ.NumField(); i++ {
			m[typ.Field(i).Name] = true
		}
		return m
	}
	mp := names(reflect.TypeOf(machine.Params{}))
	wp := names(reflect.TypeOf(Params{}))
	for n := range mp {
		if n == "Mem" {
			continue // deliberately not remotable, see ToParams
		}
		if !wp[n] {
			t.Errorf("machine.Params.%s has no wire counterpart: extend the protocol (daemon.Params, ToParams, Machine)", n)
		}
	}
	for n := range wp {
		if !mp[n] {
			t.Errorf("wire Params.%s has no machine counterpart: dead protocol surface, or a rename that forgot one side", n)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	t.Parallel()
	in := machine.Params{
		Window: 64, AUWindow: 32, DUWindow: 48, MD: 60, FPLat: 5, CopyLat: 2,
		AUWidth: 3, DUWidth: 6, Width: 9, DispatchWidth: 4, MemQueue: 128,
		CollectESW: true, HoldSendSlots: true, Retire: machine.RetireAtComplete,
	}
	wp, err := ToParams(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wp.Machine()
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed params:\nin  %+v\nout %+v", in, out)
	}
	if _, err := ToParams(machine.Params{Mem: &stubMem{}}); err == nil {
		t.Error("custom-Mem params must not be remotable")
	}
	if _, err := (Params{Retire: "bogus"}).Machine(); err == nil {
		t.Error("unknown retire policy must fail")
	}
}

type stubMem struct{}

func (*stubMem) RequestFill(addr uint64, sent int64) int64 { return sent }
func (*stubMem) Consume(addr uint64, cycle int64)          {}
func (*stubMem) Reset()                                    {}

const testWorkload = "TRFD"

// newTestServer starts a daemon over an optional store and returns a
// client bound to it.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := NewServer(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, NewClient(hs.URL)
}

// localResult simulates one point locally, bypassing the daemon — the
// oracle for byte-identity checks.
func localResult(t *testing.T, workload string, pt sweep.Point) *engine.Result {
	t.Helper()
	tr, err := workloads.Build(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := machine.NewSuite(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := suite.Run(pt.Kind, pt.P)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func asJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunEndpointMatchesLocalByteForByte(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	pt := sweep.Point{Kind: machine.DM, P: machine.Params{Window: 16, MD: 30}}
	remote, err := client.Run(context.Background(), testWorkload, 1, "", pt)
	if err != nil {
		t.Fatal(err)
	}
	local := localResult(t, testWorkload, pt)
	if got, want := asJSON(t, remote), asJSON(t, local); !bytes.Equal(got, want) {
		t.Fatalf("remote result differs from local:\nremote %s\nlocal  %s", got, want)
	}
}

func TestSweepEndpointWarmRunHitsCache(t *testing.T) {
	t.Parallel()
	store, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, Config{Store: store})
	var pts []sweep.Point
	for _, w := range []int{8, 16, 24} {
		pts = append(pts,
			sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: 30}},
			sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: 30}})
	}
	cold, err := client.Sweep(context.Background(), testWorkload, 1, pts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := client.Sweep(context.Background(), testWorkload, 1, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := asJSON(t, warm), asJSON(t, cold); !bytes.Equal(got, want) {
		t.Fatal("warm sweep differs from cold sweep")
	}
	for i, res := range cold {
		local := localResult(t, testWorkload, pts[i])
		if !bytes.Equal(asJSON(t, res), asJSON(t, local)) {
			t.Fatalf("point %d: daemon result differs from local", i)
		}
	}
	stats := srv.Stats()
	if stats.Runner.Sims != int64(len(pts)) {
		t.Errorf("want %d simulations total, got %+v", len(pts), stats.Runner)
	}
	if stats.Runner.L1Hits < int64(len(pts)) {
		t.Errorf("warm sweep should be pure L1 hits: %+v", stats.Runner)
	}
	if stats.Store.Writes != int64(len(pts)) {
		t.Errorf("every simulated point should persist: %+v", stats.Store)
	}
	if stats.StoreEntries != len(pts) {
		t.Errorf("store should hold %d entries, has %d", len(pts), stats.StoreEntries)
	}
}

func TestSearchEndpointMatchesLocalSearch(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	p := machine.Params{Window: 16, MD: 30}

	// Local oracle.
	tr, err := workloads.Build(testWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := machine.NewSuite(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	runner := sweep.NewRunner(suite)
	runner.Parallelism = 1
	wantRatio, wantOK, err := metrics.NewSearch(runner).EquivalentWindowRatio(p)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := client.Search(context.Background(), testWorkload, 1, SearchRequest{Op: SearchRatio, Params: Params{Window: 16, MD: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK != wantOK || resp.Ratio != wantRatio {
		t.Fatalf("ratio search: got %+v, want ratio %v ok %v", resp, wantRatio, wantOK)
	}

	dm, err := runner.Run(sweep.Point{Kind: machine.DM, P: p})
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := client.Search(context.Background(), testWorkload, 1, SearchRequest{Op: SearchWindow, Params: Params{Window: 16, MD: 30}, TargetCycles: dm.Cycles})
	if err != nil {
		t.Fatal(err)
	}
	if !wresp.OK || float64(wresp.Window)/16 != resp.Ratio {
		t.Fatalf("window search %+v inconsistent with ratio %v", wresp, resp.Ratio)
	}

	xresp, err := client.Search(context.Background(), testWorkload, 1, SearchRequest{Op: SearchCrossover, Params: Params{MD: 0}, Windows: []int{4, 8, 16, 32, 64, 96, 128}})
	if err != nil {
		t.Fatal(err)
	}
	wantX, wantXOK, err := metrics.NewSearch(runner).Crossover(machine.Params{MD: 0}, []int{4, 8, 16, 32, 64, 96, 128})
	if err != nil {
		t.Fatal(err)
	}
	if xresp.OK != wantXOK || xresp.Window != wantX {
		t.Fatalf("crossover: got %+v, want %d ok %v", xresp, wantX, wantXOK)
	}
}

func TestGCEndpoint(t *testing.T) {
	t.Parallel()
	store, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		store.Put(fmt.Sprintf("key-%d", i), &engine.Result{Cycles: int64(i)})
	}
	_, client := newTestServer(t, Config{Store: store})
	res, err := client.GC(context.Background(), sweep.GCPolicy{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 6 || res.Evicted != 4 || res.Remaining != 2 {
		t.Fatalf("GC over the API: %+v", res)
	}

	// Negative bounds must be refused, not silently treated as
	// unbounded (every other GC entry point rejects them too).
	var gcres sweep.GCResult
	if err := client.post(context.Background(), "/v1/cache/gc", map[string]any{"max_entries": -1}, &gcres); err == nil || !strings.Contains(err.Error(), "negative GC bound") {
		t.Errorf("negative GC bound: %v", err)
	}

	// Without a store the endpoint must refuse, not no-op.
	_, storeless := newTestServer(t, Config{})
	if _, err := storeless.GC(context.Background(), sweep.GCPolicy{MaxEntries: 1}); err == nil || !strings.Contains(err.Error(), "no persistent store") {
		t.Errorf("GC without store: %v", err)
	}
}

// TestSkewRefused pins the version/fingerprint guards: a daemon must
// refuse (409) requests pinned to a different engine build or workload
// content rather than answer with results the client's own cache keys
// could never produce.
func TestSkewRefused(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	var resp RunResponse
	err := client.post(context.Background(), "/v1/run", RunRequest{
		Target: Target{Workload: testWorkload, EngineVersion: "engine-v0"},
		Point:  Point{Kind: "DM", Params: Params{Window: 8}},
	}, &resp)
	if err == nil || !strings.Contains(err.Error(), "engine version skew") || !strings.Contains(err.Error(), "409") {
		t.Errorf("engine version skew should be refused with 409: %v", err)
	}

	if _, err := client.Run(context.Background(), testWorkload, 1, "deadbeef", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8}}); err == nil || !strings.Contains(err.Error(), "workload content skew") {
		t.Errorf("fingerprint skew should be refused: %v", err)
	}

	// The real fingerprint (what Runner.Remote sends) must pass.
	tr, err := workloads.Build(testWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := machine.NewSuite(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(context.Background(), testWorkload, 1, suite.Fingerprint(), sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 10}}); err != nil {
		t.Errorf("matching fingerprint refused: %v", err)
	}
}

// TestGeneratedWorkloadServes: a "spec:" workload travels by name over
// /v1/run — the daemon regenerates it from the spec and answers
// byte-identically to a local run, and the content fingerprint the
// client pins is the proof both sides lowered the same program.
func TestGeneratedWorkloadServes(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	const spec = "spec:depth=5,ilp=2,mem=0.8,addr=gather,hazard=0.2,iters=32,seed=9"
	tr, err := workloads.Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := machine.NewSuite(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := sweep.Point{Kind: machine.DM, P: machine.Params{Window: 24, MD: 40}}
	remote, err := client.Run(context.Background(), spec, 1, suite.Fingerprint(), pt)
	if err != nil {
		t.Fatal(err)
	}
	local := localResult(t, spec, pt)
	if got, want := asJSON(t, remote), asJSON(t, local); !bytes.Equal(got, want) {
		t.Fatalf("remote generated-workload result differs from local:\nremote %s\nlocal  %s", got, want)
	}
	// A malformed spec is a 400 naming the field, not a 500 or a hang.
	_, err = client.Run(context.Background(), "spec:depth=0", 1, "", pt)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("malformed spec error %v does not name the field", err)
	}
}

// TestUnknownWorkloadErrorEnumeratesRegistry pins the daemon half of
// the enumeration-parity contract (cmd/repro's TestListOrderParity
// holds the other): the /v1/run validation error for an unknown
// workload lists the registry in workloads.Names() order — the exact
// order repro -list prints — so operators comparing a 400 body against
// the CLI listing never see two orderings of the same catalog.
func TestUnknownWorkloadErrorEnumeratesRegistry(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	_, err := client.Run(context.Background(), "NOSUCH", 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8}})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	want := fmt.Sprintf("%v", workloads.Names())
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("validation error %q does not enumerate the registry in canonical order (want substring %q)", err, want)
	}
}

func TestHealthz(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	if err := client.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := client.WaitHealthy(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestBadRequests(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"unknown workload", func() error {
			_, err := client.Run(context.Background(), "NOSUCH", 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8}})
			return err
		}, "NOSUCH"},
		{"bad kind", func() error {
			var resp RunResponse
			return client.post(context.Background(), "/v1/run", RunRequest{Target: Target{Workload: testWorkload}, Point: Point{Kind: "VLIW"}}, &resp)
		}, "unknown machine kind"},
		{"bad policy", func() error {
			var resp RunResponse
			return client.post(context.Background(), "/v1/run", RunRequest{Target: Target{Workload: testWorkload, Policy: "random"}, Point: Point{Kind: "DM"}}, &resp)
		}, "unknown partition policy"},
		{"bad retire", func() error {
			var resp RunResponse
			return client.post(context.Background(), "/v1/run", RunRequest{Target: Target{Workload: testWorkload}, Point: Point{Kind: "DM", Params: Params{Retire: "never"}}}, &resp)
		}, "unknown retire policy"},
		{"empty sweep", func() error {
			_, err := client.Sweep(context.Background(), testWorkload, 1, nil)
			return err
		}, "no points"},
		{"bad search op", func() error {
			_, err := client.Search(context.Background(), testWorkload, 1, SearchRequest{Op: "median"})
			return err
		}, "unknown search op"},
		{"window search without target", func() error {
			_, err := client.Search(context.Background(), testWorkload, 1, SearchRequest{Op: SearchWindow})
			return err
		}, "target_cycles"},
		{"unknown field", func() error {
			var resp RunResponse
			return client.post(context.Background(), "/v1/run", map[string]any{"workload": testWorkload, "kind": "DM", "paramz": map[string]any{}}, &resp)
		}, "unknown field"},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestBatchRunEndpoint: a batch whose items span workloads and scales
// answers each item exactly as the point-wise endpoint would, and a bad
// item anywhere fails the whole batch before anything simulates,
// naming the item.
func TestBatchRunEndpoint(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	mk := func(workload string, kind string, w int) RunRequest {
		return RunRequest{
			Target: Target{Workload: workload, EngineVersion: engine.Version},
			Point:  Point{Kind: kind, Params: Params{Window: w, MD: 20}},
		}
	}
	items := []RunRequest{
		mk(testWorkload, "DM", 8),
		mk("ADM", "SWSM", 16),
		mk(testWorkload, "SWSM", 8),
		mk(testWorkload, "DM", 8), // duplicate: single-flight, same answer
	}
	results, err := client.BatchRun(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		pt, err := item.Point.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		local := localResult(t, item.Workload, pt)
		if !bytes.Equal(asJSON(t, results[i]), asJSON(t, local)) {
			t.Errorf("batch item %d differs from local", i)
		}
	}

	bad := append(items[:2:2], RunRequest{Target: Target{Workload: testWorkload}, Point: Point{Kind: "VLIW"}})
	if _, err := client.BatchRun(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "batch item 2") {
		t.Errorf("bad item should fail the batch naming the index: %v", err)
	}
	skewed := []RunRequest{{Target: Target{Workload: testWorkload, EngineVersion: "engine-v0"}, Point: Point{Kind: "DM", Params: Params{Window: 8}}}}
	if _, err := client.BatchRun(context.Background(), skewed); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("skewed item should 409 the batch: %v", err)
	}
}

// TestBatchSearchEndpoint: a heterogeneous search batch answers each
// item exactly as /v1/search would.
func TestBatchSearchEndpoint(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	target := Target{Workload: testWorkload, EngineVersion: engine.Version}
	items := []SearchRequest{
		{Target: target, Op: SearchRatio, Params: Params{Window: 16, MD: 30}},
		{Target: target, Op: SearchCrossover, Params: Params{MD: 0}, Windows: []int{4, 8, 16, 32, 64, 96, 128}},
		{Target: target, Op: SearchRatio, Params: Params{Window: 8, MD: 30}},
	}
	batched, err := client.BatchSearch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		single, err := client.Search(context.Background(), testWorkload, 1, SearchRequest{Op: item.Op, Params: item.Params, Windows: item.Windows})
		if err != nil {
			t.Fatal(err)
		}
		if batched[i] != single {
			t.Errorf("batch item %d: %+v != point-wise %+v", i, batched[i], single)
		}
	}
	if _, err := client.BatchSearch(context.Background(), []SearchRequest{{Target: target, Op: "median"}}); err == nil || !strings.Contains(err.Error(), "unknown search op") {
		t.Errorf("bad op in a batch: %v", err)
	}
}

// TestConcurrencyLimitQueues proves MaxConcurrent=1 serializes without
// rejecting: concurrent requests all succeed.
func TestConcurrencyLimitQueues(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{MaxConcurrent: 1})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Run(context.Background(), testWorkload, 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8 + i, MD: 10}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d under concurrency limit: %v", i, err)
		}
	}
}

// TestRemoteContext is the repro -remote wiring end to end: an
// experiments.Context with a daemon client attached runs all cacheable
// points remotely (zero local simulations) and produces results
// byte-identical to a purely local context.
func TestRemoteContext(t *testing.T) {
	t.Parallel()
	store, err := sweep.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, Config{Store: store})

	run := func(ctx *experiments.Context) []*engine.Result {
		t.Helper()
		r, err := ctx.Runner(testWorkload)
		if err != nil {
			t.Fatal(err)
		}
		var pts []sweep.Point
		for _, w := range []int{8, 16} {
			for _, md := range []int{0, 30} {
				pts = append(pts, sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: md}})
			}
		}
		results, err := r.RunAll(pts)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	localCtx := experiments.NewContext()
	localRes := run(localCtx)

	remoteCtx := experiments.NewContext()
	remoteCtx.Remote = func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
		return client.Run(context.Background(), workload, scale, fingerprint, pt)
	}
	remoteRes := run(remoteCtx)

	if got, want := asJSON(t, remoteRes), asJSON(t, localRes); !bytes.Equal(got, want) {
		t.Fatal("remote context results differ from local")
	}
	stats := remoteCtx.CacheStats()
	if stats.Sims != 0 {
		t.Errorf("remote context simulated %d points locally, want 0", stats.Sims)
	}
	if stats.RemoteHits != 4 {
		t.Errorf("want 4 remote hits, got %+v", stats)
	}
	if srv.Stats().Runner.Sims != 4 {
		t.Errorf("daemon should have simulated the 4 points: %+v", srv.Stats().Runner)
	}

	// A dead daemon must fail the run loudly, not fall back to local.
	deadCtx := experiments.NewContext()
	dead := NewClient("http://127.0.0.1:1")
	deadCtx.Remote = func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
		return dead.Run(context.Background(), workload, scale, fingerprint, pt)
	}
	r, err := deadCtx.Runner(testWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8}}); err == nil {
		t.Error("unreachable daemon must surface as an error")
	}
}

// TestStatsEndpointShape pins the JSON key names scripts (CI's smoke
// job) depend on.
func TestStatsEndpointShape(t *testing.T) {
	t.Parallel()
	_, client := newTestServer(t, Config{})
	if _, err := client.Run(context.Background(), testWorkload, 1, "", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8, MD: 10}}); err != nil {
		t.Fatal(err)
	}
	hres, err := http.Get(client.BaseURL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(hres.Body); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"runner"`, `"hit_rate"`, `"store"`, `"store_entries"`, `"uptime_seconds"`, `"requests"`, `"Sims"`, `"RemoteHits"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("stats JSON missing %s: %s", key, buf.String())
		}
	}
}
