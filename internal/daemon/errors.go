package daemon

import "errors"

// Classified error sentinels for the fleet boundary. Every error a
// Client or FleetClient method mints must carry a retryability signal —
// a *StatusError (Retryable() follows the HTTP code) or a chain wrapping
// one of these — so the retry ladder in fleet.go and callers like
// sweep.Runner.Degrade can classify failures with errors.Is instead of
// guessing from strings. daelint's errclass analyzer enforces this
// structurally.
var (
	// ErrMalformedReply marks a syntactically valid daemon reply whose
	// shape is wrong: a missing result, a count mismatch, a null slot.
	// Retryable — the damage is replica-local (a truncating proxy, a
	// half-written response), so failover to the next candidate is the
	// right move.
	ErrMalformedReply = errors.New("daemon: malformed reply")

	// ErrNotRemotable marks work that can never run remotely (points
	// carrying a custom in-process memory model have no wire encoding).
	// Not retryable: the refusal repeats identically on every replica.
	ErrNotRemotable = errors.New("daemon: not remotable")

	// ErrFleetUnhealthy marks a failed health interrogation: bad status,
	// engine version skew, membership skew, duplicate replica IDs. Not
	// retryable under the current topology — an operator has to fix the
	// fleet, not the caller's luck.
	ErrFleetUnhealthy = errors.New("daemon: fleet unhealthy")
)
