package daemon

import (
	"context"
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"daesim/internal/engine"
	"daesim/internal/experiments"
	"daesim/internal/machine"
	"daesim/internal/metrics"
	"daesim/internal/sweep"
	"daesim/internal/workloads"
)

// newFleet spins n in-process daemons and a FleetClient routing over
// them. mkcfg, when non-nil, configures replica i; wrap, when non-nil,
// may replace replica i's handler (fault injection).
func newFleet(t *testing.T, n int, mkcfg func(i int) Config, wrap func(i int, h http.Handler) http.Handler) (*FleetClient, []*Server, []*httptest.Server) {
	t.Helper()
	servers := make([]*Server, n)
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := Config{}
		if mkcfg != nil {
			cfg = mkcfg(i)
		}
		servers[i] = NewServer(cfg)
		h := http.Handler(servers[i].Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		https[i] = httptest.NewServer(h)
		t.Cleanup(https[i].Close)
		urls[i] = https[i].URL
	}
	fleet, err := NewFleetClient(urls)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, servers, https
}

// fleetContext returns an experiments context with every remote hook
// attached to the fleet — the repro -remote url1,url2,... wiring.
func fleetContext(fleet *FleetClient) *experiments.Context {
	ctx := experiments.NewContext()
	ctx.Remote = func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
		return fleet.Run(context.Background(), workload, scale, fingerprint, pt)
	}
	ctx.RemoteBatch = func(workload string, scale int, fingerprint string, pts []sweep.Point) ([]*engine.Result, error) {
		return fleet.RunBatch(context.Background(), workload, scale, fingerprint, pts)
	}
	ctx.RemoteSearch = func(workload string, scale int, fingerprint string, params []machine.Params) ([]experiments.RatioAnswer, error) {
		return fleet.RatioBatch(context.Background(), workload, scale, fingerprint, params)
	}
	return ctx
}

// TestFleetFigure7ByteIdentical is the fleet's end-to-end contract: a
// 3-replica fleet reproduces Figure 7 (and the Figure 4 speedup sweep,
// which exercises the batched point path where Figure 7 exercises the
// batched search path) byte-identically to a purely local run, with
// zero local simulations, every replica serving traffic, and the point
// keyspace spread across replicas with no owner above 60%.
func TestFleetFigure7ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 7 reproduction; skipped with -short")
	}
	t.Parallel()
	fleet, servers, _ := newFleet(t, 3, nil, nil)

	render := func(ctx *experiments.Context) []byte {
		t.Helper()
		var buf bytes.Buffer
		ratio, err := ctx.RatioFigure("FLO52Q")
		if err != nil {
			t.Fatal(err)
		}
		if err := ratio.Render(&buf); err != nil {
			t.Fatal(err)
		}
		fig, err := ctx.Figure("FLO52Q")
		if err != nil {
			t.Fatal(err)
		}
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	local := render(experiments.NewContext())
	remoteCtx := fleetContext(fleet)
	remote := render(remoteCtx)
	if !bytes.Equal(local, remote) {
		t.Fatal("fleet Figure 7 + Figure 4 output differs from local")
	}

	stats := remoteCtx.CacheStats()
	if stats.Sims != 0 {
		t.Errorf("fleet context simulated %d points locally, want 0", stats.Sims)
	}
	if stats.RemoteSearches == 0 || stats.RemoteHits == 0 {
		t.Errorf("fleet context should report remote traffic, got %+v", stats)
	}
	var total int64
	loads := make([]int64, len(servers))
	for i, srv := range servers {
		loads[i] = srv.Stats().Requests
		if loads[i] == 0 {
			t.Errorf("replica %d served no requests", i)
		}
		total += loads[i]
	}
	t.Logf("per-replica requests: %v", loads)

	// Key-distribution balance over the realistic point keyspace of the
	// figure experiments — the speedup grid plus the ratio searches'
	// SWSM probe space — against this fleet's live ring (whose member
	// names, httptest's random ports, differ every run): no replica may
	// own more than 60%.
	suite := mustSuite(t, "FLO52Q")
	counts := make([]int, 3)
	n := 0
	own := func(pt sweep.Point) {
		key, ok := routeKey("FLO52Q", 1, suite.Fingerprint(), pt)
		if !ok {
			t.Fatalf("point %+v not routable", pt)
		}
		counts[fleet.Ring().Owner(key)]++
		n++
	}
	for _, kind := range []machine.Kind{machine.DM, machine.SWSM} {
		for _, md := range []int{0, 60} {
			for _, w := range experiments.FigureWindows {
				own(sweep.Point{Kind: kind, P: machine.Params{Window: w, MD: md}})
			}
		}
	}
	for _, md := range experiments.RatioMDs {
		for w := 1; w <= 1024; w++ {
			own(sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: md}})
		}
	}
	for i, c := range counts {
		if share := float64(c) / float64(n); share > 0.60 {
			t.Errorf("replica %d owns %.1f%% of the figure keyspace (want <= 60%%)", i, 100*share)
		}
	}
	t.Logf("figure keyspace ownership: %v of %d", counts, n)
}

// dyingHandler serves normally for its first `healthy` simulation
// requests, then answers everything with 503 — the shape a draining or
// dying replica presents to clients (the CI fleet smoke SIGTERMs a real
// sweepd; this pins the client-side failover deterministically).
type dyingHandler struct {
	h       http.Handler
	served  atomic.Int64
	healthy int64
}

func (d *dyingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/healthz" && d.served.Add(1) > d.healthy {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"replica dying"}`))
		return
	}
	d.h.ServeHTTP(w, r)
}

// TestFleetFailoverMidSweep pins the retry path: one replica dies after
// its first two requests, mid-sweep; every point still completes,
// byte-identical to local, served by the survivors.
func TestFleetFailoverMidSweep(t *testing.T) {
	t.Parallel()
	var dying *dyingHandler
	fleet, servers, _ := newFleet(t, 3, nil, func(i int, h http.Handler) http.Handler {
		if i == 2 {
			dying = &dyingHandler{h: h, healthy: 2}
			return dying
		}
		return h
	})
	fleet.Cooldown = 50 * time.Millisecond

	var pts []sweep.Point
	for w := 4; w <= 96; w += 4 {
		pts = append(pts, sweep.Point{Kind: machine.DM, P: machine.Params{Window: w, MD: 30}})
	}
	suite := mustSuite(t, testWorkload)
	// Several waves so the death lands mid-sweep, not before or after.
	var remote []*engine.Result
	for i := 0; i < len(pts); i += 6 {
		end := i + 6
		if end > len(pts) {
			end = len(pts)
		}
		res, err := fleet.RunBatch(context.Background(), testWorkload, 1, suite.Fingerprint(), pts[i:end])
		if err != nil {
			t.Fatalf("wave %d: fleet sweep did not survive the replica death: %v", i/6, err)
		}
		remote = append(remote, res...)
	}
	if dying.served.Load() <= 2 {
		t.Fatalf("the dying replica was never routed to (served %d), failover untested", dying.served.Load())
	}
	for i, pt := range pts {
		local := localResult(t, testWorkload, pt)
		if !bytes.Equal(asJSON(t, remote[i]), asJSON(t, local)) {
			t.Fatalf("point %d differs from local after failover", i)
		}
	}
	if s := servers[0].Stats().Requests + servers[1].Stats().Requests; s == 0 {
		t.Error("survivors served nothing")
	}
}

// TestFleetDeadReplicaFromStart: a replica that never comes up
// (connection refused) must not fail calls routed to it — its keys fall
// over to the ring's next owners.
func TestFleetDeadReplicaFromStart(t *testing.T) {
	t.Parallel()
	fleet, _, https := newFleet(t, 3, nil, nil)
	fleet.Cooldown = 50 * time.Millisecond
	https[1].Close() // now refuses connections

	suite := mustSuite(t, testWorkload)
	var pts []sweep.Point
	for _, w := range []int{8, 16, 24, 32, 40, 48} {
		pts = append(pts, sweep.Point{Kind: machine.SWSM, P: machine.Params{Window: w, MD: 20}})
	}
	res, err := fleet.RunBatch(context.Background(), testWorkload, 1, suite.Fingerprint(), pts)
	if err != nil {
		t.Fatalf("fleet with a dead replica failed the sweep: %v", err)
	}
	for i, pt := range pts {
		local := localResult(t, testWorkload, pt)
		if !bytes.Equal(asJSON(t, res[i]), asJSON(t, local)) {
			t.Fatalf("point %d differs from local", i)
		}
	}
}

// TestFleetSkewNotRetried: refusals that would repeat on every replica
// (409 fingerprint skew) must fail immediately, not burn the retry
// budget masking a misconfiguration.
func TestFleetSkewNotRetried(t *testing.T) {
	t.Parallel()
	fleet, servers, _ := newFleet(t, 3, nil, nil)
	_, err := fleet.Run(context.Background(), testWorkload, 1, "deadbeef", sweep.Point{Kind: machine.DM, P: machine.Params{Window: 8}})
	if err == nil || !strings.Contains(err.Error(), "workload content skew") {
		t.Fatalf("fingerprint skew should surface immediately: %v", err)
	}
	var total int64
	for _, srv := range servers {
		total += srv.Stats().Requests
	}
	if total != 1 {
		t.Errorf("skew refusal should cost exactly one request, servers saw %d", total)
	}
}

// TestFleetMembershipGuards pins the Health checks: a replica
// advertising a different member list, or two replicas advertising the
// same id, is refused at attach time, while silent (non-advertising)
// replicas with unique ids pass.
func TestFleetMembershipGuards(t *testing.T) {
	t.Parallel()
	fleet, _, _ := newFleet(t, 2, func(i int) Config {
		return Config{ReplicaID: fmt.Sprintf("r%d", i)}
	}, nil)
	if err := fleet.Health(context.Background()); err != nil {
		t.Fatalf("healthy fleet refused: %v", err)
	}
	if err := fleet.WaitHealthy(context.Background(), time.Second); err != nil {
		t.Fatalf("WaitHealthy on a healthy fleet: %v", err)
	}

	skewed, _, _ := newFleet(t, 2, func(i int) Config {
		return Config{Fleet: []string{"http://other-a:1", "http://other-b:2"}}
	}, nil)
	if err := skewed.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "membership skew") {
		t.Errorf("advertised-membership mismatch should be refused: %v", err)
	}

	dup, _, _ := newFleet(t, 2, func(i int) Config {
		return Config{ReplicaID: "same"}
	}, nil)
	if err := dup.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "replica id") {
		t.Errorf("duplicate replica ids should be refused: %v", err)
	}

	// The advertised-list comparison itself ignores order and trailing
	// slashes — exactly the differences deployment configs accumulate.
	if !sameMembers([]string{"http://b:2/", "http://a:1"}, []string{"http://a:1", "http://b:2"}) {
		t.Error("sameMembers must ignore order and trailing slashes")
	}
	if sameMembers([]string{"http://a:1"}, []string{"http://a:1", "http://b:2"}) {
		t.Error("sameMembers must reject differing lengths")
	}
}

// TestFleetBatchedSearchRequestSavings pins the acceptance bound: a
// batched equivalent-window ratio curve costs at least 5x fewer HTTP
// requests than the same curve probed point-wise.
func TestFleetBatchedSearchRequestSavings(t *testing.T) {
	t.Parallel()
	suiteFP := mustSuite(t, testWorkload).Fingerprint()
	windows := []int{8, 16, 24}
	md := 30

	requests := func(servers []*Server) int64 {
		var total int64
		for _, srv := range servers {
			total += srv.Stats().Requests
		}
		return total
	}

	// Point-wise: a local search whose probes each travel alone.
	pwFleet, pwServers, _ := newFleet(t, 3, nil, nil)
	pwCtx := experiments.NewContext()
	// No RemoteBatch, no RemoteSearch: each probe travels alone.
	pwCtx.Remote = func(workload string, scale int, fingerprint string, pt sweep.Point) (*engine.Result, error) {
		return pwFleet.Run(context.Background(), workload, scale, fingerprint, pt)
	}
	pwRunner, err := pwCtx.Runner(testWorkload)
	if err != nil {
		t.Fatal(err)
	}
	var pwAnswers []experiments.RatioAnswer
	for _, w := range windows {
		search := metrics.NewSearch(pwRunner)
		ratio, ok, err := search.EquivalentWindowRatio(machine.Params{Window: w, MD: md})
		if err != nil {
			t.Fatal(err)
		}
		pwAnswers = append(pwAnswers, experiments.RatioAnswer{Ratio: ratio, OK: ok})
	}
	pointwise := requests(pwServers)

	// Batched: the whole curve as one server-side batch.
	bFleet, bServers, _ := newFleet(t, 3, nil, nil)
	params := make([]machine.Params, len(windows))
	for i, w := range windows {
		params[i] = machine.Params{Window: w, MD: md}
	}
	bAnswers, err := bFleet.RatioBatch(context.Background(), testWorkload, 1, suiteFP, params)
	if err != nil {
		t.Fatal(err)
	}
	batched := requests(bServers)

	for i := range windows {
		if pwAnswers[i] != bAnswers[i] {
			t.Errorf("window %d: point-wise answer %+v != batched %+v", windows[i], pwAnswers[i], bAnswers[i])
		}
	}
	t.Logf("requests: point-wise %d, batched %d (%.1fx)", pointwise, batched, float64(pointwise)/float64(batched))
	if pointwise < 5*batched {
		t.Errorf("batched search must cost >= 5x fewer requests: point-wise %d, batched %d", pointwise, batched)
	}
}

// mustSuite builds a workload suite for key/fingerprint computations.
func mustSuite(t *testing.T, workload string) *machine.Suite {
	t.Helper()
	tr, err := workloads.Build(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := machine.NewSuite(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	return suite
}
