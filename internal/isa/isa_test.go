package isa

import (
	"strings"
	"testing"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU:    "int",
		FPALU:     "fp",
		Load:      "load",
		Store:     "store",
		Class(99): "class(99)",
	}
	for c, want := range cases { //daelint:nondeterministic-ok order-free table-driven assertions
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); c < Class(NumClasses); c++ {
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
	if Class(NumClasses).Valid() {
		t.Errorf("class %d should be invalid", NumClasses)
	}
}

func TestUnitString(t *testing.T) {
	if AU.String() != "AU" || DU.String() != "DU" {
		t.Fatalf("unit names wrong: %v %v", AU, DU)
	}
	if !strings.Contains(Unit(7).String(), "7") {
		t.Errorf("unknown unit should include number: %v", Unit(7))
	}
}

func TestOpKindStringsDistinct(t *testing.T) {
	seen := map[string]OpKind{}
	for k := OpKind(0); k < OpKind(NumOpKinds); k++ {
		if !k.Valid() {
			t.Fatalf("kind %d should be valid", k)
		}
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("duplicate op name %q for %d and %d", s, prev, k)
		}
		seen[s] = k
	}
	if OpKind(NumOpKinds).Valid() {
		t.Errorf("kind %d should be invalid", NumOpKinds)
	}
}

func TestSendConsumeSets(t *testing.T) {
	sends := []OpKind{OpLoadSend, OpPrefetch, OpStoreAddr}
	for _, k := range sends {
		if !k.IsSend() {
			t.Errorf("%v should be a send", k)
		}
	}
	consumes := []OpKind{OpLoadRecv, OpAccess}
	for _, k := range consumes {
		if !k.IsConsume() {
			t.Errorf("%v should be a consume", k)
		}
		if k.IsSend() {
			t.Errorf("%v must not be a send", k)
		}
	}
	for _, k := range []OpKind{OpInt, OpFP, OpCopy, OpStoreData, OpStoreAcc} {
		if k.IsSend() || k.IsConsume() {
			t.Errorf("%v should be neither send nor consume", k)
		}
	}
}

func TestCoreConfigDefaults(t *testing.T) {
	c := CoreConfig{Window: 32, IssueWidth: 4}
	if c.EffectiveDispatch() != 4 {
		t.Errorf("default dispatch = %d, want issue width 4", c.EffectiveDispatch())
	}
	c.DispatchWidth = 2
	if c.EffectiveDispatch() != 2 {
		t.Errorf("explicit dispatch = %d, want 2", c.EffectiveDispatch())
	}
	if c.Unlimited() {
		t.Error("window 32 should not be unlimited")
	}
	if !(CoreConfig{Window: 0, IssueWidth: 1}).Unlimited() {
		t.Error("window 0 should mean unlimited")
	}
}

func TestCoreConfigValidate(t *testing.T) {
	if err := (CoreConfig{Window: 8, IssueWidth: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (CoreConfig{Window: 8, IssueWidth: 0}).Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	if err := (CoreConfig{Window: 8, IssueWidth: 2, DispatchWidth: -1}).Validate(); err == nil {
		t.Error("negative dispatch width accepted")
	}
}

func TestTimingValidateAndLatency(t *testing.T) {
	tm := DefaultTiming(60)
	if err := tm.Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	if tm.MD != 60 || tm.FPLat != DefaultFPLat || tm.CopyLat != DefaultCopyLat {
		t.Fatalf("default timing wrong: %+v", tm)
	}
	if tm.Latency(OpFP) != DefaultFPLat {
		t.Errorf("fp latency = %d", tm.Latency(OpFP))
	}
	if tm.Latency(OpCopy) != DefaultCopyLat {
		t.Errorf("copy latency = %d", tm.Latency(OpCopy))
	}
	for _, k := range []OpKind{OpInt, OpLoadSend, OpLoadRecv, OpPrefetch, OpAccess, OpStoreAddr, OpStoreData, OpStoreAcc} {
		if tm.Latency(k) != 1 {
			t.Errorf("latency(%v) = %d, want 1", k, tm.Latency(k))
		}
	}
	for _, bad := range []Timing{{MD: -1, FPLat: 3, CopyLat: 1}, {MD: 0, FPLat: 0, CopyLat: 1}, {MD: 0, FPLat: 3, CopyLat: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("timing %+v accepted", bad)
		}
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(129) != 2 {
		t.Errorf("LineOf wrong: %d %d %d %d", LineOf(0), LineOf(63), LineOf(64), LineOf(129))
	}
}

func TestDefaultWidthsSum(t *testing.T) {
	if DefaultAUWidth+DefaultDUWidth != DefaultSWSMWidth {
		t.Fatalf("combined issue width mismatch: %d+%d != %d", DefaultAUWidth, DefaultDUWidth, DefaultSWSMWidth)
	}
}
