// Package isa defines the instruction classes, machine-operation kinds,
// execution units and timing/width configuration shared by the whole
// simulator.
//
// The vocabulary follows Jones & Topham (MICRO-30, 1997): a trace is a
// stream of architecture-neutral instructions (Class); lowering turns each
// instruction into one or more machine operations (OpKind) bound to an
// execution unit (Unit) of a particular machine model.
package isa

import "fmt"

// Class is the architecture-neutral instruction class used in traces.
type Class uint8

const (
	// IntALU is integer/address arithmetic: one-cycle latency.
	IntALU Class = iota
	// FPALU is floating-point arithmetic: Config.FPLat latency.
	FPALU
	// Load reads a value from the memory system.
	Load
	// Store writes a value to the memory system.
	Store
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case IntALU:
		return "int"
	case FPALU:
		return "fp"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Valid reports whether c is a defined instruction class.
func (c Class) Valid() bool { return c < numClasses }

// Unit identifies an execution core within a machine model.
type Unit uint8

const (
	// AU is the address unit of the decoupled machine. It is also the
	// single core of the superscalar machine and the serial baseline.
	AU Unit = 0
	// DU is the data unit of the decoupled machine.
	DU Unit = 1
)

func (u Unit) String() string {
	switch u {
	case AU:
		return "AU"
	case DU:
		return "DU"
	default:
		return fmt.Sprintf("unit(%d)", uint8(u))
	}
}

// OpKind is the machine-level operation kind produced by lowering.
type OpKind uint8

const (
	// OpInt is integer/address computation (1 cycle).
	OpInt OpKind = iota
	// OpFP is floating-point computation (FPLat cycles).
	OpFP
	// OpLoadSend computes/dispatches a load address to the memory system
	// (decoupled machine AU). Fire-and-forget: 1 cycle in the window; the
	// fill arrives MD cycles after completion.
	OpLoadSend
	// OpLoadRecv consumes a load value from the decoupled memory. Ready
	// once the fill has arrived; the request costs 1 cycle.
	OpLoadRecv
	// OpPrefetch dispatches a load/store address to the memory system
	// (superscalar machine). Fire-and-forget, 1 cycle.
	OpPrefetch
	// OpAccess consumes a value from the prefetch buffer (superscalar
	// machine). Ready once the fill has arrived; the request costs 1 cycle.
	OpAccess
	// OpStoreAddr sends a store address (decoupled machine AU), 1 cycle.
	OpStoreAddr
	// OpStoreData sends store data to the store queue, 1 cycle.
	OpStoreData
	// OpStoreAcc commits a store on the superscalar machine once both
	// address and data are ready, 1 cycle. Stores never stall consumers.
	OpStoreAcc
	// OpCopy moves a register value between the AU and DU register files.
	// It executes on the producing unit and costs CopyLat cycles.
	OpCopy
	numOpKinds
)

// NumOpKinds is the number of distinct machine-operation kinds.
const NumOpKinds = int(numOpKinds)

func (k OpKind) String() string {
	switch k {
	case OpInt:
		return "int"
	case OpFP:
		return "fp"
	case OpLoadSend:
		return "load.send"
	case OpLoadRecv:
		return "load.recv"
	case OpPrefetch:
		return "prefetch"
	case OpAccess:
		return "access"
	case OpStoreAddr:
		return "store.addr"
	case OpStoreData:
		return "store.data"
	case OpStoreAcc:
		return "store.acc"
	case OpCopy:
		return "copy"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined operation kind.
func (k OpKind) Valid() bool { return k < numOpKinds }

// IsSend reports whether k dispatches an address to the memory system.
func (k OpKind) IsSend() bool {
	return k == OpLoadSend || k == OpPrefetch || k == OpStoreAddr
}

// IsConsume reports whether k waits on a memory fill before issuing.
func (k OpKind) IsConsume() bool { return k == OpLoadRecv || k == OpAccess }

// CoreConfig describes one out-of-order core.
type CoreConfig struct {
	// Window is the number of instruction-window slots. Zero or negative
	// means unlimited (the paper's "unlimited window" configuration).
	Window int
	// IssueWidth is the maximum instructions issued per cycle. Must be >= 1.
	IssueWidth int
	// DispatchWidth is the maximum instructions dispatched (inserted into
	// the window, in program order) per cycle. Zero means "same as
	// IssueWidth".
	DispatchWidth int
}

// EffectiveDispatch returns the dispatch width with the default applied.
func (c CoreConfig) EffectiveDispatch() int {
	if c.DispatchWidth <= 0 {
		return c.IssueWidth
	}
	return c.DispatchWidth
}

// Unlimited reports whether the window is unbounded.
func (c CoreConfig) Unlimited() bool { return c.Window <= 0 }

// Validate reports a descriptive error for nonsensical configurations.
func (c CoreConfig) Validate() error {
	if c.IssueWidth < 1 {
		return fmt.Errorf("isa: issue width %d < 1", c.IssueWidth)
	}
	if c.DispatchWidth < 0 {
		return fmt.Errorf("isa: dispatch width %d < 0", c.DispatchWidth)
	}
	return nil
}

// Timing collects the latency parameters shared by all machine models.
type Timing struct {
	// MD is the memory differential: the extra cycles a memory-system
	// access costs over a register access. The paper sweeps 0..60.
	MD int
	// FPLat is the floating-point latency in cycles (paper: small,
	// excluding divide; we default to 3).
	FPLat int
	// CopyLat is the inter-unit register copy latency in cycles.
	CopyLat int
}

// DefaultTiming returns the paper's default latency parameters with the
// given memory differential.
func DefaultTiming(md int) Timing {
	return Timing{MD: md, FPLat: DefaultFPLat, CopyLat: DefaultCopyLat}
}

// Validate reports a descriptive error for nonsensical timings.
func (t Timing) Validate() error {
	if t.MD < 0 {
		return fmt.Errorf("isa: memory differential %d < 0", t.MD)
	}
	if t.FPLat < 1 {
		return fmt.Errorf("isa: fp latency %d < 1", t.FPLat)
	}
	if t.CopyLat < 1 {
		return fmt.Errorf("isa: copy latency %d < 1", t.CopyLat)
	}
	return nil
}

// Latency returns the execution latency in cycles for an operation kind.
// Memory fills are modelled as edge delays, not execution latency, so
// consume ops cost a single cycle once ready (the buffer request cost).
func (t Timing) Latency(k OpKind) int {
	switch k {
	case OpFP:
		return t.FPLat
	case OpCopy:
		return t.CopyLat
	default:
		return 1
	}
}

// Paper-default machine parameters. The OCR of the paper loses the digits,
// but the figures are labelled CIW=9 (combined issue width 9) and the
// authors' companion study uses a 4/5 split; see DESIGN.md §2.
const (
	DefaultAUWidth   = 4
	DefaultDUWidth   = 5
	DefaultSWSMWidth = DefaultAUWidth + DefaultDUWidth
	DefaultFPLat     = 3
	DefaultCopyLat   = 1
	// DefaultMD is the paper's headline memory differential (an L2-miss
	// comparable cost).
	DefaultMD = 60
	// CacheLineBytes is the line granularity used by the optional
	// locality-aware buffers (bypass buffer, finite prefetch buffer).
	CacheLineBytes = 64
)

// LineOf returns the cache-line index of a byte address.
func LineOf(addr uint64) uint64 { return addr / CacheLineBytes }
