// Package faultinject is a deterministic, schedule-driven fault layer
// for chaos-testing the daemon transport and the sweep.Store blob I/O.
//
// A Schedule is a seed plus a list of Rules; whether the i-th operation
// on a scope (one HTTP request to replica "r1", one blob read in scope
// "store") is faulted — and how — is a pure function of (seed, rules,
// scope, i). Nothing reads the clock or a global RNG, so the same seed
// replays the identical fault sequence on every run and on every host:
// that is what lets the chaos soak assert byte-identical figures and a
// reproducible request trace (DESIGN.md §13), and what keeps daelint's
// determinism analyzer clean over this package.
//
// The injectable faults cover the failure taxonomy the fleet client is
// hardened against: connection refusals, timeouts, slow responses
// (virtual delay), truncated and corrupted bodies, synthesized 5xx
// bursts, and blob corruption.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// Kind identifies one fault class.
type Kind uint8

const (
	// None means the operation proceeds untouched.
	None Kind = iota
	// Refuse fails the operation before any wire traffic, like a
	// connection refused by a dead replica.
	Refuse
	// Timeout fails the operation with a net.Error whose Timeout() is
	// true — a virtual client-side deadline, no wall clock burned.
	Timeout
	// Slow delays the operation by the rule's Delay, then lets it
	// proceed (tail-latency injection for hedging tests).
	Slow
	// Truncate lets the operation complete, then cuts its payload short
	// at a seed-determined position.
	Truncate
	// Corrupt lets the operation complete, then overwrites one
	// seed-determined payload byte with 0x00 — a byte that is invalid
	// anywhere in JSON, so damage is always detectable at decode time
	// rather than silently surviving inside a string.
	Corrupt
	// ServerError synthesizes an HTTP 503 without touching the wire.
	ServerError
)

// kindNames maps spec tokens to kinds; String and ParseSchedule share
// it so the grammar and the trace agree.
var kindNames = []struct {
	kind Kind
	name string
}{
	{None, "none"},
	{Refuse, "refuse"},
	{Timeout, "timeout"},
	{Slow, "slow"},
	{Truncate, "trunc"},
	{Corrupt, "corrupt"},
	{ServerError, "5xx"},
}

func (k Kind) String() string {
	for _, kn := range kindNames {
		if kn.kind == k {
			return kn.name
		}
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

func parseKind(s string) (Kind, bool) {
	for _, kn := range kindNames {
		if kn.name == s && kn.kind != None {
			return kn.kind, true
		}
	}
	return None, false
}

// Rule matches a subset of operations and names the fault to inject.
// The zero values of the selectors are permissive: an empty Scope
// matches every scope, To=0 means no upper bound, Period=0 disables
// duty-cycling, and Rate 0 is promoted to 1 (always, within the other
// selectors) by ParseSchedule.
type Rule struct {
	Kind Kind
	// Scope restricts the rule to one operation stream ("r0".."rN-1"
	// for replica transports, "store" for blob I/O); empty matches all.
	Scope string
	// Rate is the per-operation fault probability in (0,1]; draws come
	// from the schedule seed, not a global RNG.
	Rate float64
	// From and To bound the matched per-scope indices to [From,To);
	// To=0 means unbounded. From=K models a replica dying after its
	// K-th request; From/To windows model bursts.
	From, To uint64
	// Period and Duty duty-cycle the rule: indices with
	// i%Period < Duty match. A flapping replica is period=6,duty=3.
	Period, Duty uint64
	// Delay is the virtual latency for Slow rules.
	Delay time.Duration
}

// applies reports whether the rule's selectors match the index-th
// operation on scope (rate is drawn separately, in Schedule.Decide).
func (r Rule) applies(scope string, index uint64) bool {
	if r.Scope != "" && r.Scope != scope {
		return false
	}
	if index < r.From {
		return false
	}
	if r.To > 0 && index >= r.To {
		return false
	}
	if r.Period > 0 && index%r.Period >= r.Duty {
		return false
	}
	return true
}

// Schedule is a replayable fault plan: Decide is a pure function of
// the seed, the rules, and the (scope, index) coordinate of an
// operation.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// Decision is the fault verdict for one operation. Roll carries
// seed-determined entropy for the fault's free parameters (corruption
// position, truncation length) so they replay too.
type Decision struct {
	Kind  Kind
	Delay time.Duration
	Roll  uint64
}

// Decide returns the fault for the index-th operation on scope. Rules
// are consulted in order; the first match wins.
func (s Schedule) Decide(scope string, index uint64) Decision {
	for ri, r := range s.Rules {
		if !r.applies(scope, index) {
			continue
		}
		roll := mix(s.Seed, uint64(ri), scopeHash(scope), index)
		if r.Rate < 1 && unit(roll) >= r.Rate {
			continue
		}
		// A second mix decorrelates the fault's free parameters from the
		// rate draw.
		return Decision{Kind: r.Kind, Delay: r.Delay, Roll: mix(roll, 0x9e3779b97f4a7c15, 0, 0)}
	}
	return Decision{}
}

// mix folds the coordinates through splitmix64 — a fast, well-mixed
// hash whose output is a pure function of its inputs.
func mix(a, b, c, d uint64) uint64 {
	x := a
	for _, v := range [...]uint64{b, c, d} {
		x += 0x9e3779b97f4a7c15 + v
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// unit maps a hash to [0,1) using its top 53 bits.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

func scopeHash(scope string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(scope))
	return h.Sum64()
}

// ParseSchedule parses the -chaos spec grammar: comma-separated fields,
// one "seed=N" plus zero or more rules of the form
//
//	KIND[@SCOPE][:k=v]...
//
// where KIND is refuse|timeout|slow|trunc|corrupt|5xx and k=v tunes
// rate= (float in (0,1], default 1), from=, to= (per-scope index
// window, half-open), period=, duty= (duty cycle), delay= (Go
// duration, slow only). Examples:
//
//	seed=1,timeout:rate=0.1,5xx:rate=0.1      — 10% timeouts and 503s everywhere
//	seed=2,refuse@r2:from=5                   — replica 2 dies after its 5th request
//	seed=3,refuse@r1:period=6:duty=3          — replica 1 flaps, 3 down of every 6
//	seed=4,slow:rate=0.3:delay=200ms          — 30% of operations take +200ms
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	seenSeed := false
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(field, "seed="); ok {
			n, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("faultinject: bad seed %q: %w", rest, err)
			}
			s.Seed, seenSeed = n, true
			continue
		}
		r, err := parseRule(field)
		if err != nil {
			return Schedule{}, err
		}
		s.Rules = append(s.Rules, r)
	}
	if !seenSeed {
		return Schedule{}, fmt.Errorf("faultinject: spec %q has no seed= field", spec)
	}
	return s, nil
}

func parseRule(field string) (Rule, error) {
	parts := strings.Split(field, ":")
	head := parts[0]
	r := Rule{Rate: 1}
	if at := strings.IndexByte(head, '@'); at >= 0 {
		r.Scope = head[at+1:]
		head = head[:at]
	}
	k, ok := parseKind(head)
	if !ok {
		return Rule{}, fmt.Errorf("faultinject: unknown fault kind %q in %q", head, field)
	}
	r.Kind = k
	for _, kv := range parts[1:] {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return Rule{}, fmt.Errorf("faultinject: bad option %q in %q (want k=v)", kv, field)
		}
		switch key {
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return Rule{}, fmt.Errorf("faultinject: rate %q in %q must be in (0,1]", val, field)
			}
			r.Rate = f
		case "from", "to", "period", "duty":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("faultinject: bad %s %q in %q: %w", key, val, field, err)
			}
			switch key {
			case "from":
				r.From = n
			case "to":
				r.To = n
			case "period":
				r.Period = n
			case "duty":
				r.Duty = n
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("faultinject: bad delay %q in %q", val, field)
			}
			r.Delay = d
		default:
			return Rule{}, fmt.Errorf("faultinject: unknown option %q in %q", key, field)
		}
	}
	if r.Kind == Slow && r.Delay == 0 {
		return Rule{}, fmt.Errorf("faultinject: slow rule %q needs delay=", field)
	}
	if r.Period > 0 && r.Duty == 0 {
		return Rule{}, fmt.Errorf("faultinject: rule %q has period= but duty=0 (never matches)", field)
	}
	return r, nil
}
