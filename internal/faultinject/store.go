package faultinject

// StoreFaults adapts an Injector to sweep.Store's blob-I/O hook
// (sweep.BlobFaults): each read and write is one operation on Scope.
// Only the payload kinds act here — Corrupt and Truncate damage the
// blob bytes (driving the store's checksum/quarantine machinery);
// transport-only kinds pass through untouched.
type StoreFaults struct {
	// Injector supplies decisions; required.
	Injector *Injector
	// Scope names the blob operation stream; "store" when empty.
	Scope string
}

func (s *StoreFaults) scope() string {
	if s.Scope != "" {
		return s.Scope
	}
	return "store"
}

// OnRead implements sweep.BlobFaults.
func (s *StoreFaults) OnRead(key string, data []byte) []byte {
	return Mangle(s.Injector.Next(s.scope()), data)
}

// OnWrite implements sweep.BlobFaults.
func (s *StoreFaults) OnWrite(key string, data []byte) []byte {
	return Mangle(s.Injector.Next(s.scope()), data)
}
