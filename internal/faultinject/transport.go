package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// FaultError is a synthesized transport failure. It implements
// net.Error so an injected timeout is indistinguishable from a real
// one to callers that type-check.
type FaultError struct {
	Kind Kind
}

func (e *FaultError) Error() string   { return "faultinject: injected " + e.Kind.String() }
func (e *FaultError) Timeout() bool   { return e.Kind == Timeout }
func (e *FaultError) Temporary() bool { return true }

// Transport wraps an http.RoundTripper with schedule-driven faults:
// every request through it is one operation on Scope. Refuse, Timeout
// and ServerError are synthesized before any wire traffic (a virtual
// timeout burns no wall clock); Slow sleeps the rule's delay and
// passes through; Truncate and Corrupt let the real response arrive
// and then damage its body. Wrap a replica client's transport with
// Scope "r<i>" to chaos that replica.
type Transport struct {
	// Base is the wrapped transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Injector supplies decisions; required.
	Injector *Injector
	// Scope names this transport's operation stream, e.g. "r0".
	Scope string
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.Injector.Next(t.Scope)
	switch d.Kind {
	case Refuse, Timeout:
		return nil, &FaultError{Kind: d.Kind}
	case ServerError:
		body := `{"error":"faultinject: injected server error"}`
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Slow:
		time.Sleep(d.Delay)
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil || (d.Kind != Truncate && d.Kind != Corrupt) {
		return resp, err
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	data = Mangle(d, data)
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	return resp, nil
}

// Mangle applies a Truncate or Corrupt decision to a payload copy and
// returns it; other kinds return data unchanged. Corrupt writes 0x00 —
// invalid anywhere in JSON — so the damage always surfaces as a decode
// error instead of silently altering a value.
func Mangle(d Decision, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	switch d.Kind {
	case Truncate:
		cut := int(d.Roll % uint64(len(data)))
		return append([]byte(nil), data[:cut]...)
	case Corrupt:
		out := append([]byte(nil), data...)
		out[int(d.Roll%uint64(len(out)))] = 0x00
		return out
	}
	return data
}
