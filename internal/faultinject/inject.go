package faultinject

import (
	"sort"
	"sync"
)

// Event is one recorded fault decision: operation Index within Scope
// was assigned Kind (None events are recorded too — the trace is the
// complete per-scope operation log, which is what makes two runs
// comparable).
type Event struct {
	Scope string `json:"scope"`
	Index uint64 `json:"index"`
	Kind  string `json:"kind"`
}

// Counts aggregates an injector's decisions by kind. Ops is the total
// number of operations seen (faulted or not) — the chaos smoke derives
// retry amplification from it.
type Counts struct {
	Ops         int64 `json:"ops"`
	Faults      int64 `json:"faults"`
	Refuse      int64 `json:"refuse"`
	Timeout     int64 `json:"timeout"`
	Slow        int64 `json:"slow"`
	Truncate    int64 `json:"truncate"`
	Corrupt     int64 `json:"corrupt"`
	ServerError int64 `json:"server_error"`
}

// Injector assigns per-scope operation indices and evaluates a
// Schedule against them, recording every decision. One Injector is
// shared by all the transports and store hooks of a chaos run so its
// trace is the run's complete fault log. Safe for concurrent use; for
// a reproducible trace the caller must also make the per-scope
// operation order deterministic (run with parallelism 1 — each scope's
// counter then sees the same sequence every run).
type Injector struct {
	sched Schedule

	mu     sync.Mutex
	next   map[string]uint64 //daelint:guardedby mu
	events []Event           //daelint:guardedby mu
	counts Counts            //daelint:guardedby mu
}

// NewInjector returns an Injector evaluating sched.
func NewInjector(sched Schedule) *Injector {
	return &Injector{sched: sched, next: make(map[string]uint64)}
}

// Next claims the next operation index for scope and returns the
// schedule's decision for it.
func (in *Injector) Next(scope string) Decision {
	in.mu.Lock()
	i := in.next[scope]
	in.next[scope] = i + 1
	d := in.sched.Decide(scope, i)
	in.events = append(in.events, Event{Scope: scope, Index: i, Kind: d.Kind.String()})
	in.counts.Ops++
	switch d.Kind {
	case Refuse:
		in.counts.Refuse++
	case Timeout:
		in.counts.Timeout++
	case Slow:
		in.counts.Slow++
	case Truncate:
		in.counts.Truncate++
	case Corrupt:
		in.counts.Corrupt++
	case ServerError:
		in.counts.ServerError++
	}
	if d.Kind != None {
		in.counts.Faults++
	}
	in.mu.Unlock()
	return d
}

// Trace returns the decisions so far, sorted by (scope, index) so two
// runs of the same schedule compare equal regardless of the arrival
// interleaving across scopes.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Counts returns a snapshot of the decision counters.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	c := in.counts
	in.mu.Unlock()
	return c
}
