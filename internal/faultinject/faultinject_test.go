package faultinject

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("seed=7,timeout:rate=0.25,refuse@r2:from=5:to=9,slow:delay=20ms,refuse@r1:period=6:duty=3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Rules) != 4 {
		t.Fatalf("got seed %d, %d rules", s.Seed, len(s.Rules))
	}
	want := []Rule{
		{Kind: Timeout, Rate: 0.25},
		{Kind: Refuse, Scope: "r2", Rate: 1, From: 5, To: 9},
		{Kind: Slow, Rate: 1, Delay: 20 * time.Millisecond},
		{Kind: Refuse, Scope: "r1", Rate: 1, Period: 6, Duty: 3},
	}
	if !reflect.DeepEqual(s.Rules, want) {
		t.Fatalf("rules:\n got %+v\nwant %+v", s.Rules, want)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"",                        // no seed
		"timeout",                 // no seed
		"seed=x",                  // bad seed
		"seed=1,explode",          // unknown kind
		"seed=1,timeout:rate=1.5", // rate out of range
		"seed=1,timeout:rate=0",   // rate out of range
		"seed=1,slow",             // slow without delay
		"seed=1,refuse:period=4",  // period without duty
		"seed=1,timeout:bogus=1",  // unknown option
		"seed=1,none",             // none is not injectable
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q): want error, got nil", spec)
		}
	}
}

// Decisions must be a pure function of (seed, scope, index): same
// coordinates, same verdict, on every evaluation order.
func TestDecideDeterministic(t *testing.T) {
	s, err := ParseSchedule("seed=42,timeout:rate=0.3,corrupt@r1:rate=0.5,refuse@r2:from=10")
	if err != nil {
		t.Fatal(err)
	}
	scopes := []string{"r0", "r1", "r2", "store"}
	first := make(map[string][]Decision)
	for _, sc := range scopes {
		for i := uint64(0); i < 200; i++ {
			first[sc] = append(first[sc], s.Decide(sc, i))
		}
	}
	// Re-evaluate in reverse order: pure functions don't care.
	for si := len(scopes) - 1; si >= 0; si-- {
		sc := scopes[si]
		for i := uint64(199); ; i-- {
			if got := s.Decide(sc, i); got != first[sc][i] {
				t.Fatalf("Decide(%q,%d) = %+v on re-evaluation, was %+v", sc, i, got, first[sc][i])
			}
			if i == 0 {
				break
			}
		}
	}
	// A different seed must produce a different fault pattern.
	other := s
	other.Seed = 43
	same := true
	for i := uint64(0); i < 200 && same; i++ {
		same = other.Decide("r0", i) == first["r0"][i]
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical r0 decision sequences")
	}
}

func TestRuleSelectors(t *testing.T) {
	s := Schedule{Seed: 1, Rules: []Rule{{Kind: Refuse, Scope: "r2", Rate: 1, From: 5, To: 9}}}
	for i := uint64(0); i < 15; i++ {
		want := None
		if i >= 5 && i < 9 {
			want = Refuse
		}
		if got := s.Decide("r2", i).Kind; got != want {
			t.Errorf("index %d: got %v want %v", i, got, want)
		}
		if got := s.Decide("r0", i).Kind; got != None {
			t.Errorf("scope r0 index %d: got %v, rule is scoped to r2", i, got)
		}
	}
	flap := Schedule{Seed: 1, Rules: []Rule{{Kind: Refuse, Rate: 1, Period: 6, Duty: 3}}}
	for i := uint64(0); i < 24; i++ {
		want := None
		if i%6 < 3 {
			want = Refuse
		}
		if got := flap.Decide("r0", i).Kind; got != want {
			t.Errorf("flap index %d: got %v want %v", i, got, want)
		}
	}
}

func TestRateIsRoughlyProportional(t *testing.T) {
	s := Schedule{Seed: 9, Rules: []Rule{{Kind: Timeout, Rate: 0.2}}}
	hits := 0
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if s.Decide("r0", i).Kind == Timeout {
			hits++
		}
	}
	if hits < n*15/100 || hits > n*25/100 {
		t.Fatalf("rate=0.2 hit %d/%d operations", hits, n)
	}
}

func TestInjectorTraceReplays(t *testing.T) {
	sched, err := ParseSchedule("seed=5,timeout:rate=0.3,corrupt@b:rate=0.4")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Event {
		in := NewInjector(sched)
		for i := 0; i < 50; i++ {
			in.Next("a")
		}
		for i := 0; i < 30; i++ {
			in.Next("b")
		}
		return in.Trace()
	}
	t1, t2 := run(), run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same schedule, same per-scope operation sequence, different traces")
	}
	in := NewInjector(sched)
	for i := 0; i < 10; i++ {
		in.Next("a")
	}
	c := in.Counts()
	if c.Ops != 10 {
		t.Fatalf("Ops = %d after 10 operations", c.Ops)
	}
	if c.Faults != c.Refuse+c.Timeout+c.Slow+c.Truncate+c.Corrupt+c.ServerError {
		t.Fatalf("Faults %d does not sum the per-kind counts: %+v", c.Faults, c)
	}
}

// Corrupt must always be detectable: 0x00 is invalid anywhere in JSON,
// so a corrupted JSON payload never decodes cleanly.
func TestCorruptAlwaysBreaksJSON(t *testing.T) {
	payload, err := json.Marshal(map[string]any{
		"key": "αβγ quoted \"stuff\" and ÿ bytes", "n": 12345, "list": []int{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for roll := uint64(0); roll < uint64(len(payload)); roll++ {
		got := Mangle(Decision{Kind: Corrupt, Roll: roll}, payload)
		var v map[string]any
		if json.Unmarshal(got, &v) == nil {
			t.Fatalf("corruption at roll %d survived JSON decode: %q", roll, got)
		}
	}
	if cut := Mangle(Decision{Kind: Truncate, Roll: 3}, payload); len(cut) >= len(payload) {
		t.Fatalf("truncate did not shorten: %d -> %d bytes", len(payload), len(cut))
	}
	if same := Mangle(Decision{Kind: None}, payload); &same[0] != &payload[0] {
		t.Fatal("None decision should pass data through untouched")
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true,"payload":"0123456789abcdef"}`)
	}))
	defer srv.Close()

	get := func(in *Injector) (*http.Response, error) {
		c := &http.Client{Transport: &Transport{Injector: in, Scope: "r0"}}
		return c.Get(srv.URL)
	}

	// Refuse and Timeout synthesize transport errors; Timeout satisfies
	// net.Error.Timeout().
	in := NewInjector(Schedule{Seed: 1, Rules: []Rule{{Kind: Refuse, Rate: 1, To: 1}, {Kind: Timeout, Rate: 1, From: 1, To: 2}}})
	if _, err := get(in); err == nil {
		t.Fatal("refused request returned no error")
	}
	_, err := get(in)
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("injected timeout is not a net.Error timeout: %v", err)
	}

	// ServerError synthesizes a 503 without reaching the server.
	in = NewInjector(Schedule{Seed: 1, Rules: []Rule{{Kind: ServerError, Rate: 1}}})
	resp, err := get(in)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Corrupt damages the body so it no longer decodes.
	in = NewInjector(Schedule{Seed: 1, Rules: []Rule{{Kind: Corrupt, Rate: 1}}})
	resp, err = get(in)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("corrupted body decoded cleanly: %q", body)
	}

	// None passes through.
	in = NewInjector(Schedule{Seed: 1})
	resp, err = get(in)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("clean request body mangled: %q", body)
	}
	if c := in.Counts(); c.Ops != 1 || c.Faults != 0 {
		t.Fatalf("counts after one clean request: %+v", c)
	}
}

func TestStoreFaultsScope(t *testing.T) {
	in := NewInjector(Schedule{Seed: 1, Rules: []Rule{{Kind: Corrupt, Scope: "store", Rate: 1}}})
	sf := &StoreFaults{Injector: in}
	data := []byte(`{"key":"k","sum":"s"}`)
	if got := sf.OnRead("k", data); string(got) == string(data) {
		t.Fatal("corrupt-all rule left a read untouched")
	}
	if got := sf.OnWrite("k", data); string(got) == string(data) {
		t.Fatal("corrupt-all rule left a write untouched")
	}
	if c := in.Counts(); c.Ops != 2 || c.Corrupt != 2 {
		t.Fatalf("counts: %+v", c)
	}
}
